"""Setuptools shim.

The execution environment has no network and no ``wheel`` package, so PEP
517 editable installs (``pip install -e .``) cannot build. This shim lets
``python setup.py develop`` (and pip's legacy path) install the package from
the metadata in ``pyproject.toml``.
"""

from setuptools import setup

setup()
