#!/usr/bin/env python3
"""Incremental disambiguation: stream newly published papers (Table VI).

Builds the GCN on older papers, then streams the most recent papers one at
a time through the incremental mode — no retraining — and reports quality
before/after plus the per-paper cost.

Run:  python examples/incremental_stream.py
"""

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator
from repro.data import Corpus, build_testing_dataset, generate_world
from repro.data.testing import per_name_truth, split_for_incremental
from repro.eval import micro_metrics


def main() -> None:
    world = generate_world()
    corpus = world.corpus
    testing = build_testing_dataset(corpus)
    truth = per_name_truth(testing)

    # hold out the 200 most recent testing papers as "newly published"
    _base_pids, new_pids = split_for_incremental(testing, 200)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in corpus if p.pid not in new_set)
    print(
        f"base corpus: {len(base_corpus)} papers; stream: {len(new_pids)} papers"
    )

    iuad = IUAD(IUADConfig()).fit(base_corpus, names=testing.names)
    # Truth units are positional mentions: (pid, position) -> author id.
    base_truth = {
        n: {unit: a for unit, a in t.items() if unit[0] not in new_set}
        for n, t in truth.items()
    }
    before = micro_metrics(
        {n: iuad.mention_clusters_of_name(n) for n in testing.names}, base_truth
    )
    print(f"before streaming: MicroF = {before.f1:.4f}")

    stream = IncrementalDisambiguator(iuad)
    for pid in new_pids:
        assignments = stream.add_paper(corpus[pid])
        # each mention either attached to an existing author or opened a
        # new one; `assignments` reports which
        del assignments

    after = micro_metrics(
        {n: iuad.mention_clusters_of_name(n) for n in testing.names}, truth
    )
    report = stream.report
    print(f"after streaming:  MicroF = {after.f1:.4f} (Δ {after.f1 - before.f1:+.4f})")
    print(
        f"streamed {report.n_papers} papers / {report.n_mentions} mentions: "
        f"{report.n_attached} attached, {report.n_created} new authors"
    )
    print(
        f"avg cost: {report.avg_ms_per_paper:.1f} ms/paper "
        f"(paper reports < 50 ms on the full DBLP)"
    )


if __name__ == "__main__":
    main()
