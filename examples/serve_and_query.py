#!/usr/bin/env python3
"""Disambiguation-as-a-service: serve a snapshot, query it, ingest live.

Starts the full serving stack in-process — the single-writer
:class:`~repro.service.Engine` over a warm-started
:class:`~repro.core.StreamingIngestor`, behind the asyncio HTTP server —
on the committed fixture snapshot, then plays a complete client session
against it with plain ``http.client``:

1. ``GET /healthz`` + ``GET /stats`` — liveness and generation 0;
2. ``GET /who-is`` / ``GET /resolve`` — read the warm-started fit;
3. ``POST /ingest`` (``wait=true``) — stream new papers in; the answer
   arrives only after the new view is *published*, so the very next
   read sees them (one generation bump per burst);
4. staleness: the reply of every read carries the generation of the
   immutable view it was answered from.

The same stack runs standalone via ``tools/serve.py --snapshot ...``
(see the README quickstart for the curl equivalents).

Run:  PYTHONPATH=src python examples/serve_and_query.py
"""

import asyncio
import http.client
import json
from pathlib import Path

from repro.core import StreamingIngestor
from repro.service import Engine, ServiceServer

FIXTURE = (
    Path(__file__).resolve().parents[1]
    / "tests" / "fixtures" / "snapshot_v1.jsonl"
)


def call(port: int, method: str, path: str, body: dict | None = None):
    """One JSON request against the local server."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request(
            method, path,
            body=json.dumps(body) if body is not None else None,
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


async def main() -> None:
    # Warm-start the single writer from the durable snapshot.  The
    # ingestor would auto-checkpoint back onto its source file; a
    # serve-only demo must not rewrite a committed fixture.
    ingestor = StreamingIngestor.resume(FIXTURE)
    ingestor.checkpoint_path = None

    async with Engine(ingestor) as engine:
        server = ServiceServer(engine, port=0)  # 0 = ephemeral port
        await server.start()
        port = server.port
        print(f"serving {FIXTURE.name} at {server.url}")

        # --- read the warm-started fit -------------------------------- #
        status, health = await asyncio.to_thread(
            call, port, "GET", "/healthz"
        )
        print(f"/healthz -> {status} {health}")

        status, hit = await asyncio.to_thread(
            call, port, "GET", "/who-is?name=X%20Y&pid=4&position=0"
        )
        print(
            f"/who-is  -> {status}: 'X Y' on paper 4 is vertex "
            f"{hit['vid']} (cluster of {hit['cluster_size']}, "
            f"generation {hit['generation']})"
        )

        # --- ingest: new papers arrive while the server keeps reading - #
        papers = [
            {"pid": 200, "authors": ["X Y", "R C"],
             "title": "temporal scene graphs", "venue": "CVPR",
             "year": 2024},
            {"pid": 201, "authors": ["X Y", "P A"],
             "title": "join order search revisited", "venue": "VLDB",
             "year": 2024},
        ]
        status, summary = await asyncio.to_thread(
            call, port, "POST", "/ingest",
            {"papers": papers, "wait": True},
        )
        print(
            f"/ingest  -> {status}: {summary['n_papers']} papers "
            f"({summary['n_attached']} mentions attached, "
            f"{summary['n_created']} new clusters) published as "
            f"generation {summary['generation']}"
        )

        # wait=true resolved after the atomic swap, so this read is
        # guaranteed to see the fresh papers — and says which view
        # answered it.
        status, hit = await asyncio.to_thread(
            call, port, "GET", "/who-is?name=X%20Y&pid=200&position=0"
        )
        print(
            f"/who-is  -> {status}: the just-ingested mention resolved "
            f"to vertex {hit['vid']} at generation {hit['generation']}"
        )

        status, stats = await asyncio.to_thread(call, port, "GET", "/stats")
        print(
            f"/stats   -> {stats['n_swaps']} view swaps, "
            f"{stats['n_papers_ingested']} papers ingested, "
            f"{stats['n_papers']} papers served"
        )
        await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
