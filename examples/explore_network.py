#!/usr/bin/env python3
"""Explore the reconstructed collaboration network of one ambiguous name.

Shows the bottom-up story of Figure 1/2: the η-SCRs found for a name, how
Stage 1 groups its mentions into stable vertices, which vertex pairs
Stage 2 scored and merged, and the final author profiles (collaborators,
venues, active years).

Run:  python examples/explore_network.py
"""

from collections import Counter

from repro.core import IUAD, IUADConfig
from repro.core.candidates import candidate_pairs_of_name
from repro.data import build_testing_dataset, generate_world
from repro.graphs.scn import mine_scrs
from repro.model.scoring import match_scores


def main() -> None:
    world = generate_world()
    corpus = world.corpus
    testing = build_testing_dataset(corpus)
    name = max(testing.names, key=lambda n: len(corpus.papers_of_name(n)))
    true_authors = corpus.authors_of_name(name)
    print(
        f"target name: {name!r} — {len(corpus.papers_of_name(name))} papers "
        f"by {len(true_authors)} distinct authors\n"
    )

    # Stage 0: the stable collaborative relations involving the name
    scrs = {
        pair: pids for pair, pids in mine_scrs(corpus, eta=2).items() if name in pair
    }
    print(f"η-SCRs involving {name!r}: {len(scrs)}")
    for pair, pids in sorted(scrs.items(), key=lambda kv: -len(kv[1]))[:5]:
        partner = pair[0] if pair[1] == name else pair[1]
        print(f"  with {partner!r}: {len(pids)} joint papers")

    iuad = IUAD(IUADConfig()).fit(corpus, names=testing.names)

    # Stage 1 view
    scn_clusters = iuad.scn_clusters_of_name(name)
    sizes = sorted((len(p) for p in scn_clusters.values()), reverse=True)
    print(f"\nStage 1 (SCN): {len(scn_clusters)} vertices, sizes {sizes[:8]} ...")

    # Stage 2 scores for the surviving GCN candidates
    pairs = candidate_pairs_of_name(iuad.gcn_, name)
    if pairs:
        scores = match_scores(iuad.model_, iuad.computer_.pair_matrix(pairs))
        print(
            f"Stage 2 rescoring on GCN: {len(pairs)} remaining same-name "
            f"pairs, score range [{scores.min():.1f}, {scores.max():.1f}], "
            f"none above δ={iuad.config.delta:.0f} (that is why they stayed apart)"
        )

    # Final author profiles
    print(f"\nGCN: {len(iuad.clusters_of_name(name))} predicted authors")
    for vid, pids in sorted(
        iuad.clusters_of_name(name).items(), key=lambda kv: -len(kv[1])
    )[:4]:
        venues = Counter(corpus[p].venue for p in pids)
        years = [corpus[p].year for p in pids]
        collaborators = Counter(
            other
            for p in pids
            for other in corpus[p].authors
            if other != name
        )
        top_collab = ", ".join(n for n, _c in collaborators.most_common(3))
        print(
            f"  author #{vid}: {len(pids)} papers, "
            f"{min(years)}–{max(years)}, "
            f"top venue {venues.most_common(1)[0][0]}, "
            f"collaborators: {top_collab}"
        )


if __name__ == "__main__":
    main()
