#!/usr/bin/env python3
"""Sharded fitting: partition by name blocks, fit in parallel, merge.

Fits the same synthetic corpus twice — once with the single-process
``IUAD`` and once with ``ShardedIUAD`` (process pool) — verifies the
mention clusterings are identical, and prints the shard plan plus the
per-shard counters.  On a multi-core machine the sharded fit is the
faster one; on a single core it demonstrates the partition/merge
machinery at a modest overhead.

Run:  python examples/sharded_fit.py
"""

import os
import time

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator, ShardedIUAD
from repro.data import Paper, generate_corpus
from repro.eval import shard_summary


def clusterings(est, names):
    return {
        n: sorted(
            sorted(units)
            for units in est.mention_clusters_of_name(n).values()
        )
        for n in names
    }


def main() -> None:
    corpus = generate_corpus(
        n_authors=1200, n_papers=2600, name_pool_size=500, n_communities=60
    )
    names = corpus.names
    print(f"corpus: {len(corpus)} papers, {len(names)} names")

    t0 = time.perf_counter()
    single = IUAD(IUADConfig()).fit(corpus)
    t_single = time.perf_counter() - t0
    print(f"single-process fit: {t_single:.2f}s")

    workers = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    sharded = ShardedIUAD(IUADConfig(n_workers=workers)).fit(corpus)
    t_sharded = time.perf_counter() - t0
    report = sharded.report_
    print(
        f"sharded fit ({workers} workers): {t_sharded:.2f}s — "
        f"{report.n_shards} shards, "
        f"{report.n_fastpath_vertices} fast-path vertices, "
        f"stitch {report.stitch_seconds * 1000:.0f}ms"
    )
    print("per-shard counters:", shard_summary(report))

    same = clusterings(single, names) == clusterings(sharded, names)
    print(f"shard-vs-global parity: {'identical' if same else 'DIFFERENT!'}")

    # Streaming inserts route through the shard index.
    stream = IncrementalDisambiguator(sharded)
    next_pid = max(p.pid for p in corpus) + 1
    stream.add_paper(
        Paper(next_pid, (names[0], "A New Student"), "fresh result", "V", 2021)
    )
    print(
        "streamed one paper; per-shard insert counts:",
        dict(stream.report.per_shard_papers),
    )


if __name__ == "__main__":
    main()
