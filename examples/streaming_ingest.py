#!/usr/bin/env python3
"""Batched streaming ingestion: vectorised multi-paper bursts.

Builds the GCN on older papers, then ingests the most recent papers as
one burst through ``StreamingIngestor.add_papers`` — scored by a single
vectorised snapshot call, applied in batch order with exact stain
tracking — and cross-checks the result against the sequential
``add_paper`` loop (the parity contract).

Run:  python examples/streaming_ingest.py
"""

import copy
import time

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator, StreamingIngestor
from repro.data import Corpus, build_testing_dataset, generate_world
from repro.data.testing import split_for_incremental


def main() -> None:
    world = generate_world()
    corpus = world.corpus
    testing = build_testing_dataset(corpus)

    # hold out the 300 most recent testing papers as one "daily burst"
    _base_pids, new_pids = split_for_incremental(testing, 300)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in corpus if p.pid not in new_set)
    burst = [corpus[pid] for pid in new_pids]
    print(f"base corpus: {len(base_corpus)} papers; burst: {len(burst)} papers")

    iuad = IUAD(IUADConfig()).fit(base_corpus, names=testing.names)
    # streaming mutates the fitted corpus/network: keep a pristine copy
    # for the sequential cross-check below
    seq_iuad = copy.deepcopy(iuad)

    # --- batched: the whole burst in one call -------------------------- #
    batched = StreamingIngestor(iuad)
    t0 = time.perf_counter()
    assignments = batched.add_papers(burst)
    batched_seconds = time.perf_counter() - t0

    report = batched.report
    stats = batched.last_batch
    attached = sum(1 for batch in assignments for a in batch if not a.created)
    print(
        f"batched ingest: {report.n_papers} papers / {report.n_mentions} "
        f"mentions in {batched_seconds:.2f}s "
        f"({1000 * batched_seconds / len(burst):.1f} ms/paper)"
    )
    print(
        f"  one snapshot scored {stats.n_scored_pairs} candidate pairs; "
        f"{stats.n_patched_pairs} intra-burst-dependent pairs were "
        f"re-scored inline ({attached} mentions attached)"
    )

    # --- parity: the sequential loop produces the identical network ---- #
    sequential = IncrementalDisambiguator(seq_iuad)
    t0 = time.perf_counter()
    for paper in burst:
        sequential.add_paper(paper)
    sequential_seconds = time.perf_counter() - t0

    def state(gcn):
        return sorted(
            (v.vid, v.name, tuple(sorted(v.mentions.items()))) for v in gcn
        )

    identical = state(iuad.gcn_) == state(seq_iuad.gcn_)
    print(
        f"sequential loop: {sequential_seconds:.2f}s "
        f"({1000 * sequential_seconds / len(burst):.1f} ms/paper) — "
        f"identical GCN: {identical}"
    )
    assert identical, "parity violation: batched != sequential"

    # re-ingesting the same burst is governed by duplicate_paper_policy
    # ("raise" by default; "return" replays the mentions' current owners)
    try:
        batched.add_papers(burst[:1])
    except ValueError as err:
        print(f"duplicate re-ingest rejected as configured: {err}")


if __name__ == "__main__":
    main()
