#!/usr/bin/env python3
"""Table III end-to-end: IUAD against the eight baselines.

Runs the full comparison — four unsupervised (ANON, NetE, Aminer, GHOST)
and four supervised (AdaBoost, GBDT, RF, XGBoost) methods — on the default
synthetic corpus and prints the Table III analogue.

This is the heaviest example (a few minutes).  Run:
    python examples/compare_baselines.py
"""

from repro.eval.experiments import make_context, run_table3
from repro.eval.reporting import render_metrics_table


def main() -> None:
    print("building corpus + testing set ...")
    ctx = make_context()
    print(
        f"{len(ctx.corpus)} papers; {len(ctx.testing.names)} testing names; "
        f"{len(ctx.train_names)} labelled training names for the supervised "
        f"baselines\n"
    )
    print("running all nine methods (IUAD + 8 baselines) ...\n")
    results = run_table3(ctx, include_supervised=True)
    print(render_metrics_table(results))
    best_baseline = max(
        (f1, m) for m, c in results.items() if m != "IUAD" for f1 in [c.f1]
    )
    print(
        f"\nIUAD MicroF {results['IUAD'].f1:.4f} vs best baseline "
        f"{best_baseline[1]} {best_baseline[0]:.4f}"
    )


if __name__ == "__main__":
    main()
