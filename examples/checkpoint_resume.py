#!/usr/bin/env python3
"""Durable snapshots & warm-start resume: fit once, restart freely.

Fits the GCN on older papers, streams half of the held-out "new" papers
with periodic checkpoints, then simulates a process restart: the
ingestor is rebuilt **from the checkpoint file alone**
(``StreamingIngestor.resume`` — nothing is replayed, nothing refitted)
and streams the rest.  The final network is cross-checked against an
uninterrupted run — identical vertices, mentions, edges and counters —
and the snapshot is converted between the JSONL and SQLite backends.

Run:  python examples/checkpoint_resume.py
"""

import copy
import tempfile
import time
from pathlib import Path

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.data import Corpus, build_testing_dataset, generate_world
from repro.data.testing import split_for_incremental
from repro.io import Snapshot, read_document, verify_snapshot


def main() -> None:
    world = generate_world()
    corpus = world.corpus
    testing = build_testing_dataset(corpus)

    _base_pids, new_pids = split_for_incremental(testing, 200)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in corpus if p.pid not in new_set)
    stream_papers = [corpus[pid] for pid in new_pids]
    half = len(stream_papers) // 2

    # checkpoint_every_n_papers makes durability automatic: every 50
    # freshly ingested papers, the full fitted state hits disk atomically.
    iuad = IUAD(IUADConfig(checkpoint_every_n_papers=50)).fit(
        base_corpus, names=testing.names
    )
    reference = copy.deepcopy(iuad)  # for the uninterrupted cross-check

    workdir = Path(tempfile.mkdtemp(prefix="iuad_checkpoint_"))
    checkpoint = workdir / "stream.jsonl"

    ingestor = StreamingIngestor(iuad, checkpoint_path=checkpoint)
    ingestor.add_papers(stream_papers[:half])
    ingestor.checkpoint()  # explicit final checkpoint before "the crash"
    print(
        f"ingested {ingestor.report.n_papers} papers, checkpointed to "
        f"{checkpoint} ({checkpoint.stat().st_size} bytes)"
    )

    # ---- simulated restart: a fresh ingestor from the file alone ------ #
    t0 = time.perf_counter()
    resumed = StreamingIngestor.resume(checkpoint)
    print(
        f"warm start in {time.perf_counter() - t0:.2f}s — "
        f"{resumed.report.n_papers} papers of stream state restored, "
        "0 papers replayed"
    )
    resumed.add_papers(stream_papers[half:])

    # ---- cross-check against the uninterrupted run -------------------- #
    uninterrupted = StreamingIngestor(reference)
    uninterrupted.add_papers(stream_papers)
    assert (
        resumed.iuad.gcn_.export_parts()[0]
        == reference.gcn_.export_parts()[0]
    ), "resume parity violated"
    assert resumed.report.n_papers == uninterrupted.report.n_papers
    print(
        f"parity OK: {len(resumed.iuad.gcn_)} vertices, "
        f"{resumed.iuad.gcn_.n_mentions} mentions — identical to the "
        "uninterrupted run"
    )

    # ---- backends are interchangeable --------------------------------- #
    final = workdir / "final.jsonl"
    resumed.checkpoint(final)
    sqlite_twin = workdir / "final.sqlite"
    Snapshot.load(final).save(sqlite_twin, backend="sqlite")
    assert read_document(final) == read_document(sqlite_twin)
    assert verify_snapshot(Snapshot.load(sqlite_twin)) == []
    print(
        f"converted {final.name} ({final.stat().st_size} B, diffable) ⇄ "
        f"{sqlite_twin.name} ({sqlite_twin.stat().st_size} B, queryable) "
        "losslessly"
    )


if __name__ == "__main__":
    main()
