#!/usr/bin/env python3
"""Durable snapshots & warm-start resume: fit once, restart freely.

Fits the GCN on older papers, streams half of the held-out "new" papers
with periodic **delta checkpoints** (``checkpoint_mode="delta"``: one
base snapshot, then O(burst) records appended to a ``.delta`` sibling
log), then simulates a process restart: the ingestor is rebuilt **from
the base + chain alone** (``StreamingIngestor.resume``) and streams the
rest, extending the same chain.  The final network is cross-checked
against an uninterrupted run — identical vertices, mentions, edges and
counters — the chain is folded back into the base (compaction), and the
snapshot is converted between the JSONL and SQLite adapters.

Run:  python examples/checkpoint_resume.py
"""

import copy
import tempfile
import time
from pathlib import Path

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.data import Corpus, build_testing_dataset, generate_world
from repro.data.testing import split_for_incremental
from repro.io import Snapshot, delta_log_path, read_document, verify_snapshot


def main() -> None:
    world = generate_world()
    corpus = world.corpus
    testing = build_testing_dataset(corpus)

    _base_pids, new_pids = split_for_incremental(testing, 200)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in corpus if p.pid not in new_set)
    stream_papers = [corpus[pid] for pid in new_pids]
    half = len(stream_papers) // 2

    # checkpoint_every_n_papers makes durability automatic: every 50
    # freshly ingested papers a checkpoint hits disk — and in delta mode
    # only the *first* one is a full O(corpus) snapshot; every later one
    # appends an O(burst) replayable record to the .delta chain log.
    iuad = IUAD(
        IUADConfig(checkpoint_every_n_papers=50, checkpoint_mode="delta")
    ).fit(base_corpus, names=testing.names)
    reference = copy.deepcopy(iuad)  # for the uninterrupted cross-check

    workdir = Path(tempfile.mkdtemp(prefix="iuad_checkpoint_"))
    checkpoint = workdir / "stream.jsonl"

    ingestor = StreamingIngestor(iuad, checkpoint_path=checkpoint)
    ingestor.add_papers(stream_papers[:half])
    ingestor.checkpoint()  # explicit final checkpoint before "the crash"
    log = delta_log_path(checkpoint)
    print(
        f"ingested {ingestor.report.n_papers} papers: base "
        f"{checkpoint.stat().st_size} B + {ingestor.delta_chain_length} "
        f"delta records ({log.stat().st_size} B appended, not rewritten)"
    )

    # ---- simulated restart: base + chain replayed from disk alone ----- #
    t0 = time.perf_counter()
    resumed = StreamingIngestor.resume(checkpoint)
    print(
        f"warm start in {time.perf_counter() - t0:.2f}s — "
        f"{resumed.report.n_papers} papers of stream state restored, "
        f"{resumed.delta_chain_length} delta records replayed"
    )
    resumed.add_papers(stream_papers[half:])
    resumed.checkpoint()  # keeps extending the same chain

    # a full checkpoint to the base path folds the chain (compaction)
    resumed.checkpoint(mode="full")
    assert resumed.delta_chain_length == 0 and log.stat().st_size == 0
    print(f"compacted: chain folded back into {checkpoint.name}")

    # ---- cross-check against the uninterrupted run -------------------- #
    uninterrupted = StreamingIngestor(reference)
    uninterrupted.add_papers(stream_papers)
    assert (
        resumed.iuad.gcn_.export_parts()[0]
        == reference.gcn_.export_parts()[0]
    ), "resume parity violated"
    assert resumed.report.n_papers == uninterrupted.report.n_papers
    print(
        f"parity OK: {len(resumed.iuad.gcn_)} vertices, "
        f"{resumed.iuad.gcn_.n_mentions} mentions — identical to the "
        "uninterrupted run"
    )

    # ---- adapters are interchangeable --------------------------------- #
    final = workdir / "final.jsonl"
    resumed.checkpoint(final, mode="full")  # side snapshot, chain untouched
    sqlite_twin = workdir / "final.sqlite"
    Snapshot.load(final).save(sqlite_twin, backend="sqlite")
    assert read_document(final) == read_document(sqlite_twin)
    assert verify_snapshot(Snapshot.load(sqlite_twin)) == []
    print(
        f"converted {final.name} ({final.stat().st_size} B, diffable) ⇄ "
        f"{sqlite_twin.name} ({sqlite_twin.stat().st_size} B, queryable) "
        "losslessly"
    )


if __name__ == "__main__":
    main()
