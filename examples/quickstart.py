#!/usr/bin/env python3
"""Quickstart: disambiguate authors in a synthetic DBLP corpus.

Generates a labelled corpus, runs the two-stage IUAD pipeline, prints the
clusters found for the most ambiguous name and the pairwise micro metrics
against the ground truth.

Run:  python examples/quickstart.py

Mention identity is *positional* — ``(paper, name, position)`` — so even a
paper listing the same name twice (two homonymous co-authors) is handled
correctly.  Name ``x`` below has two stable collaboration circles (with
``p`` and with ``q``); paper 4 lists ``x`` twice, and Stage 1 assigns the
two occurrences to the two distinct vertices instead of folding them onto
one (doctested; see ``docs/architecture.md`` for the full data flow):

>>> from repro.data.records import Corpus, Paper
>>> from repro.graphs import build_scn
>>> corpus = Corpus(
...     Paper(pid=i, authors=authors, title=f"t{i}", venue="V", year=2000 + i)
...     for i, authors in enumerate(
...         [("x", "p"), ("x", "p"), ("x", "q"), ("x", "q"), ("x", "x", "p", "q")]
...     )
... )
>>> net, report = build_scn(corpus, eta=2)
>>> report.n_mentions == corpus.num_author_paper_pairs == 12
True
>>> owners = sorted(
...     vid for vid in net.vertices_of_name("x") if 4 in net.papers_of(vid)
... )
>>> len(owners)  # two homonymous co-authors -> two vertices
2
>>> sorted(net.mentions_of(vid)[4] for vid in owners)  # one occurrence each
[0, 1]

"""

from repro.core import IUAD, IUADConfig
from repro.data import build_testing_dataset, generate_world
from repro.data.testing import per_name_truth
from repro.eval import micro_metrics


def main() -> None:
    # 1. A DBLP-like world with exact ground truth (see repro.data.synthetic).
    world = generate_world()
    corpus = world.corpus
    print(
        f"corpus: {len(corpus)} papers, {len(corpus.names)} names, "
        f"{corpus.num_author_paper_pairs} author-paper pairs"
    )

    # 2. The evaluation protocol of the paper: ~50 ambiguous names.
    testing = build_testing_dataset(corpus)
    truth = per_name_truth(testing)
    print(
        f"testing set: {len(testing.names)} names / {testing.num_authors} "
        f"authors / {testing.num_papers} papers"
    )

    # 3. Algorithm 1 — Stage 1 (SCN) + Stage 2 (GCN).
    iuad = IUAD(IUADConfig()).fit(corpus, names=testing.names)
    report = iuad.report_
    print(
        f"\nstage 1: {report.scn.n_scrs} η-SCRs, "
        f"{report.scn.n_vertices} vertices "
        f"({report.scn.n_isolated} isolated), "
        f"{report.scn.n_triangle_certifications} triangle certifications"
    )
    print(
        f"stage 2: {report.n_candidate_pairs} candidate pairs, "
        f"{report.n_training_pairs} training pairs "
        f"(+{report.n_split_pairs} split-balance), {report.n_merges} merges"
    )

    # 4. Look at one ambiguous name in detail.
    name = max(
        testing.names, key=lambda n: len(corpus.authors_of_name(n))
    )
    true_authors = corpus.authors_of_name(name)
    clusters = iuad.clusters_of_name(name)
    print(f"\nname {name!r}: {len(true_authors)} true authors")
    print(f"  SCN split it into {len(iuad.scn_clusters_of_name(name))} vertices")
    print(f"  GCN merged those into {len(clusters)} predicted authors")

    # 5. Micro metrics over all testing names (Table III protocol), paired
    #    at positional-mention granularity.
    gcn_metrics = micro_metrics(
        {n: iuad.mention_clusters_of_name(n) for n in testing.names}, truth
    )
    a, p, r, f = gcn_metrics.as_row()
    print(
        f"\nmicro metrics: A={a:.4f} P={p:.4f} R={r:.4f} F={f:.4f}"
        f"   (paper reports 0.8174 / 0.8608 / 0.8113 / 0.8353)"
    )


if __name__ == "__main__":
    main()
