"""Engine — one writer, many readers, atomic view swaps.

The coordinator of the serving layer's reader/writer split:

* **Reads** come from :attr:`Engine.view`, the current immutable
  :class:`~repro.service.view.FittedView`.  Reading the attribute is a
  single reference load — readers never wait on the writer, no matter
  how long a burst takes.

* **Writes** go through one asyncio queue into ONE
  :class:`~repro.core.streaming.StreamingIngestor`.  A single worker
  task drains the queue, coalesces queued ingest requests into
  ``add_papers`` bursts (run in a worker thread so the event loop keeps
  serving reads), then publishes a freshly projected view with a single
  atomic reference swap.  The generation counter bumps once per swap and
  the swap timestamp rides on the view, so staleness-aware clients can
  see exactly how old their answers are.

* **Checkpoints** ride the same queue: a checkpoint request enqueued
  between ingest requests flushes everything enqueued before it as a
  burst first, then snapshots — so the durable state is always a
  consistent post-burst state even while later requests keep queueing
  (the :meth:`StreamingIngestor.checkpoint
  <repro.core.streaming.StreamingIngestor.checkpoint>` writer lock backs
  the same guarantee for out-of-band callers).

Ordering contract: requests are applied in enqueue order, and the
parity contract of ``add_papers`` guarantees the resulting clustering is
identical to a serial ``add_paper`` replay of the same sequence — burst
boundaries (which depend on queue timing) can never change the outcome.
The load harness (``benchmarks/test_serving.py``) asserts exactly that
against a live server.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

from ..core.streaming import StreamingIngestor
from ..data.records import Paper
from .view import FittedView


@dataclass(slots=True)
class IngestResult:
    """What one ingest request observed once its burst was published."""

    generation: int  #: generation of the view carrying these papers
    n_papers: int
    n_attached: int
    n_created: int
    n_duplicates: int
    #: per input paper: one (vid, created) pair per co-author position
    assignments: list[list[tuple[int, bool]]]


@dataclass(slots=True)
class _IngestRequest:
    papers: tuple[Paper, ...]
    future: asyncio.Future


@dataclass(slots=True)
class _CheckpointRequest:
    path: Path | None
    backend: str | None
    mode: str | None
    future: asyncio.Future


_STOP = object()


@dataclass(slots=True)
class EngineStats:
    """Flat counters for ``GET /stats`` and the load harness."""

    generation: int
    swapped_at: float
    n_swaps: int
    n_requests: int
    n_papers_ingested: int
    n_checkpoints: int
    delta_chain_length: int
    queue_depth: int
    n_papers: int
    n_vertices: int
    n_mentions: int
    uptime_seconds: float
    last_burst_seconds: float
    last_publish_seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "swapped_at": self.swapped_at,
            "n_swaps": self.n_swaps,
            "n_requests": self.n_requests,
            "n_papers_ingested": self.n_papers_ingested,
            "n_checkpoints": self.n_checkpoints,
            "delta_chain_length": self.delta_chain_length,
            "queue_depth": self.queue_depth,
            "n_papers": self.n_papers,
            "n_vertices": self.n_vertices,
            "n_mentions": self.n_mentions,
            "uptime_seconds": round(self.uptime_seconds, 3),
            "last_burst_seconds": round(self.last_burst_seconds, 6),
            "last_publish_seconds": round(self.last_publish_seconds, 6),
        }


class Engine:
    """Owns the single writer and publishes immutable views to readers.

    ``max_batch`` caps how many queued ingest requests one burst
    coalesces — larger bursts amortise the vectorised snapshot scoring
    better but delay the next swap.  ``record_bursts=True`` keeps the
    pid list of every published burst (tests replay them serially to
    pin that every published generation matched a serial fit).
    """

    def __init__(
        self,
        ingestor: StreamingIngestor,
        max_batch: int = 64,
        record_bursts: bool = False,
    ) -> None:
        self.ingestor = ingestor
        self.max_batch = max_batch
        self._view = FittedView.of(ingestor.iuad, generation=0)
        self._queue: asyncio.Queue | None = None
        self._worker: asyncio.Task | None = None
        self.n_swaps = 0
        self.n_requests = 0
        self.n_papers_ingested = 0
        self.n_checkpoints = 0
        self.started_at = time.time()
        self.last_burst_seconds = 0.0
        self.last_publish_seconds = 0.0
        self.burst_log: list[list[int]] | None = [] if record_bursts else None

    # ------------------------------------------------------------------ #
    # reader side
    # ------------------------------------------------------------------ #
    @property
    def view(self) -> FittedView:
        """The current immutable view — one atomic reference read."""
        return self._view

    def stats(self) -> EngineStats:
        view = self._view
        return EngineStats(
            generation=view.generation,
            swapped_at=view.swapped_at,
            n_swaps=self.n_swaps,
            n_requests=self.n_requests,
            n_papers_ingested=self.n_papers_ingested,
            n_checkpoints=self.n_checkpoints,
            delta_chain_length=self.ingestor.delta_chain_length,
            queue_depth=self._queue.qsize() if self._queue else 0,
            n_papers=view.n_papers,
            n_vertices=view.n_vertices,
            n_mentions=view.n_mentions,
            uptime_seconds=time.time() - self.started_at,
            last_burst_seconds=self.last_burst_seconds,
            last_publish_seconds=self.last_publish_seconds,
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> "Engine":
        if self._worker is not None:
            raise RuntimeError("engine already started")
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(self._run(), name="engine-writer")
        return self

    async def stop(self) -> None:
        """Drain everything already enqueued, then stop the worker."""
        if self._queue is None or self._worker is None:
            return
        await self._queue.put(_STOP)
        await self._worker
        self._worker = None

    async def __aenter__(self) -> "Engine":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # ------------------------------------------------------------------ #
    # writer side
    # ------------------------------------------------------------------ #
    async def ingest(
        self, papers: Sequence[Paper], wait: bool = True
    ) -> IngestResult | asyncio.Future:
        """Enqueue papers for the writer; optionally await publication.

        With ``wait=True`` returns the :class:`IngestResult` once the
        burst carrying these papers has been applied *and its view
        published* — the caller's next read is guaranteed to see them.
        With ``wait=False`` returns the pending future immediately.
        """
        if self._queue is None:
            raise RuntimeError("engine not started")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(_IngestRequest(tuple(papers), future))
        self.n_requests += 1
        if wait:
            return await future
        return future

    async def checkpoint(
        self,
        path: str | Path | None = None,
        backend: str | None = None,
        mode: str | None = None,
    ) -> Path:
        """Enqueue a checkpoint; resolves once it is durably on disk.

        Serialized with bursts by the queue: everything enqueued before
        this call is applied and published first, so the snapshot always
        captures a consistent post-burst state even while later ingest
        requests keep queueing behind it.  ``mode`` picks full vs delta
        (see :meth:`repro.core.streaming.StreamingIngestor.checkpoint`);
        ``None`` follows ``config.checkpoint_mode``.
        """
        if self._queue is None:
            raise RuntimeError("engine not started")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(
            _CheckpointRequest(
                Path(path) if path is not None else None, backend, mode,
                future,
            )
        )
        return await future

    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        assert self._queue is not None
        stopping = False
        while not stopping:
            item = await self._queue.get()
            drained: list[Any] = []
            while True:
                if item is _STOP:
                    stopping = True
                    break
                drained.append(item)
                if (
                    len(drained) >= self.max_batch
                    or self._queue.empty()
                ):
                    break
                item = self._queue.get_nowait()
            pending: list[_IngestRequest] = []
            for request in drained:
                if isinstance(request, _IngestRequest):
                    pending.append(request)
                else:
                    # Checkpoint: flush everything enqueued before it so
                    # the snapshot is a consistent post-burst state.
                    await self._flush(pending)
                    pending = []
                    await self._checkpoint(request)
            await self._flush(pending)

    async def _flush(self, requests: list[_IngestRequest]) -> None:
        if not requests:
            return
        papers = [p for request in requests for p in request.papers]
        try:
            assignments, view, burst_s, publish_s = await asyncio.to_thread(
                self._apply_and_project, papers
            )
        except Exception as exc:  # reject the burst, keep serving
            for request in requests:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        # THE swap: readers holding the old reference keep a consistent
        # pre-burst world; every new read sees the post-burst world.
        self._view = view
        self.n_swaps += 1
        self.n_papers_ingested += len(papers)
        self.last_burst_seconds = burst_s
        self.last_publish_seconds = publish_s
        if self.burst_log is not None:
            self.burst_log.append([p.pid for p in papers])
        offset = 0
        for request in requests:
            per_paper = assignments[offset: offset + len(request.papers)]
            offset += len(request.papers)
            if not request.future.done():
                request.future.set_result(
                    IngestResult(
                        generation=view.generation,
                        n_papers=len(request.papers),
                        n_attached=sum(
                            1 for batch in per_paper
                            for a in batch if not a.created
                        ),
                        n_created=sum(
                            1 for batch in per_paper
                            for a in batch if a.created
                        ),
                        n_duplicates=sum(
                            1 for batch in per_paper
                            for a in batch if a.score != a.score
                        ),
                        assignments=[
                            [(a.vid, a.created) for a in batch]
                            for batch in per_paper
                        ],
                    )
                )

    def _apply_and_project(self, papers: list[Paper]):
        """Worker-thread body: one burst + one view projection."""
        t0 = time.perf_counter()
        assignments = self.ingestor.add_papers(papers)
        t1 = time.perf_counter()
        view = FittedView.of(
            self.ingestor.iuad,
            generation=self._view.generation + 1,
            swapped_at=time.time(),
        )
        return assignments, view, t1 - t0, time.perf_counter() - t1

    async def _checkpoint(self, request: _CheckpointRequest) -> None:
        try:
            target = await asyncio.to_thread(
                self.ingestor.checkpoint,
                request.path,
                request.backend,
                request.mode,
            )
        except Exception as exc:
            if not request.future.done():
                request.future.set_exception(exc)
            return
        self.n_checkpoints += 1
        if not request.future.done():
            request.future.set_result(target)
