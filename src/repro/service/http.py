"""Minimal asyncio HTTP/1.1 layer for the disambiguation service.

Deliberately framework-free: the whole protocol surface the service
needs is "parse a request line + headers + optional JSON body, route,
answer JSON" — a few hundred lines of stdlib ``asyncio`` beats pulling a
web framework into a reproduction repo (the container bakes in numpy /
scipy / pytest and nothing web-shaped).

Endpoints (all answers are JSON; every body carries ``generation`` so
clients can reason about staleness):

========  ==============  ====================================================
method    path            answer
========  ==============  ====================================================
GET       /healthz        liveness + current generation
GET       /stats          :meth:`Engine.stats` counters
GET       /who-is         owner of one mention (``name``, ``pid``, ``position``)
GET       /resolve        all occurrences of ``name`` on paper ``pid``
GET       /cluster-of     one name's clustering
GET       /clusters       the whole clustering (load-harness parity dump)
POST      /ingest         enqueue papers; ``wait`` (default true) awaits publish
POST      /checkpoint     snapshot the post-burst state to disk
                          (``mode``: ``full`` | ``delta`` — delta appends
                          an O(burst) record to the chain log)
========  ==============  ====================================================

Reads answer straight from the engine's current immutable view inside
the event loop — no locks, no thread hops — so they stay fast while the
writer thread crunches a burst.  Connections are keep-alive; responses
always carry ``Content-Length``.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Mapping
from urllib.parse import parse_qs, urlsplit

from ..io.schema import decode_paper
from .engine import Engine

#: Request bodies above this are rejected (a serving endpoint is not a
#: bulk loader; warm starts go through snapshots).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class BadRequest(ValueError):
    """Maps to a 400 answer with the message in the body."""


@dataclass(slots=True)
class Request:
    method: str
    path: str
    query: Mapping[str, list[str]]
    headers: Mapping[str, str]
    body: bytes

    def param(self, name: str, default: str | None = None) -> str:
        values = self.query.get(name)
        if not values:
            if default is None:
                raise BadRequest(f"missing query parameter {name!r}")
            return default
        return values[0]

    def int_param(self, name: str, default: int | None = None) -> int:
        raw = self.param(
            name, None if default is None else str(default)
        )
        try:
            return int(raw)
        except ValueError:
            raise BadRequest(
                f"query parameter {name!r} must be an integer, got {raw!r}"
            ) from None

    def json_body(self) -> Any:
        if not self.body:
            raise BadRequest("request body must be JSON, got empty body")
        try:
            return json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise BadRequest(f"malformed JSON body: {exc}") from None


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one HTTP/1.1 request; ``None`` on clean connection close."""
    line = await reader.readline()
    if not line:
        return None
    try:
        method, target, _version = line.decode("latin-1").split()
    except ValueError:
        raise BadRequest(f"malformed request line {line!r}") from None
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n", b""):
            break
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise BadRequest(f"malformed header line {raw!r}")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise BadRequest(f"request body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def encode_response(
    status: int, payload: Any, keep_alive: bool = True
) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


class ServiceServer:
    """The asyncio server binding an :class:`Engine` to a TCP port."""

    def __init__(
        self, engine: Engine, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "ServiceServer":
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except BadRequest as exc:
                    writer.write(
                        encode_response(400, {"error": str(exc)}, False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = (
                    request.headers.get("connection", "").lower() != "close"
                )
                try:
                    status, payload = await self._dispatch(request)
                except BadRequest as exc:
                    status, payload = 400, {"error": str(exc)}
                except Exception as exc:  # keep the server alive
                    status, payload = 500, {
                        "error": f"{type(exc).__name__}: {exc}"
                    }
                writer.write(encode_response(status, payload, keep))
                await writer.drain()
                if not keep:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            BrokenPipeError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------ #
    async def _dispatch(self, request: Request) -> tuple[int, Any]:
        engine = self.engine
        view = engine.view  # one atomic read; consistent for this request
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return 200, {
                "status": "ok",
                "generation": view.generation,
                "swapped_at": view.swapped_at,
            }
        if route == ("GET", "/stats"):
            return 200, engine.stats().as_dict()
        if route == ("GET", "/who-is"):
            hit = view.who_is(
                request.param("name"),
                request.int_param("pid"),
                request.int_param("position", 0),
            )
            if hit is None:
                return 404, {
                    "error": "unknown mention",
                    "generation": view.generation,
                }
            return 200, hit
        if route == ("GET", "/resolve"):
            matches = view.resolve(
                request.param("name"), request.int_param("pid")
            )
            return 200, {
                "name": request.param("name"),
                "pid": request.int_param("pid"),
                "matches": list(matches),
                "generation": view.generation,
            }
        if route == ("GET", "/cluster-of"):
            name = request.param("name")
            clusters = view.cluster_of(name)
            if not clusters:
                return 404, {
                    "error": f"unknown name {name!r}",
                    "generation": view.generation,
                }
            return 200, {
                "name": name,
                "clusters": {
                    str(vid): [list(m) for m in mentions]
                    for vid, mentions in clusters.items()
                },
                "generation": view.generation,
            }
        if route == ("GET", "/clusters"):
            return 200, {
                "generation": view.generation,
                "fingerprint": view.fingerprint,
                "clusters": view.as_clusters_dict(),
            }
        if route == ("POST", "/ingest"):
            return await self._ingest(request)
        if route == ("POST", "/checkpoint"):
            body = request.json_body() if request.body else {}
            if not isinstance(body, dict):
                raise BadRequest("checkpoint body must be a JSON object")
            mode = body.get("mode")
            if mode is not None and mode not in ("full", "delta"):
                raise BadRequest(
                    "checkpoint mode must be 'full' or 'delta'"
                )
            path = await engine.checkpoint(
                body.get("path"), body.get("backend"), mode
            )
            return 200, {
                "path": str(path),
                "generation": engine.view.generation,
                "delta_chain_length": engine.ingestor.delta_chain_length,
            }
        if request.path in (
            "/healthz", "/stats", "/who-is", "/resolve",
            "/cluster-of", "/clusters", "/ingest", "/checkpoint",
        ):
            return 405, {"error": f"wrong method for {request.path}"}
        return 404, {"error": f"no such route {request.path}"}

    async def _ingest(self, request: Request) -> tuple[int, Any]:
        body = request.json_body()
        if not isinstance(body, dict) or "papers" not in body:
            raise BadRequest('ingest body must be {"papers": [...]}')
        try:
            papers = [decode_paper(record) for record in body["papers"]]
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequest(f"malformed paper record: {exc}") from None
        wait = bool(body.get("wait", True))
        if wait:
            result = await self.engine.ingest(papers, wait=True)
            return 200, {
                "generation": result.generation,
                "n_papers": result.n_papers,
                "n_attached": result.n_attached,
                "n_created": result.n_created,
                "n_duplicates": result.n_duplicates,
            }
        await self.engine.ingest(papers, wait=False)
        return 202, {
            "queued": len(papers),
            "generation": self.engine.view.generation,
        }
