"""FittedView — an immutable, hashable projection of the fitted state.

The serving layer's reader/writer split rests on one rule: **readers
never touch writer state**.  A :class:`FittedView` is built once, at
publish time, from a live estimator (or straight from a ``repro.io``
snapshot) and from then on is frozen — plain tuples and read-only
mappings, no reference back into the mutable
:class:`~repro.graphs.collab.CollaborationNetwork`.  The
:class:`~repro.service.engine.Engine` swaps the current view with a
single reference assignment when the writer finishes a burst, so a
reader either sees the whole pre-burst fit or the whole post-burst fit,
never a mix — torn reads are impossible by construction, not by
locking.

Staleness is first-class: every view carries its ``generation`` (how
many swaps preceded it) and ``swapped_at`` (wall-clock of its publish),
so staleness-aware clients can decide whether an answer is fresh enough.

The query methods are pure functions over the frozen projection —
:func:`who_is_in`, :func:`resolve_in` and :func:`cluster_of_in` take the
view explicitly, and the bound methods just delegate.  The live-network
counterpart of the who-is path is
:meth:`repro.graphs.collab.CollaborationNetwork.owner_of`, which the
projection builder uses via the vertices' mention payloads and the
incremental duplicate replay shares.

Views are hashable and compare by **content**: two views projected from
bit-identical fitted states are equal (and hash equal) even if their
generations differ — the fingerprint is a digest of the canonical
cluster encoding, which lets a client detect that a swap was a no-op
for its cached answers.
"""

from __future__ import annotations

import hashlib
import time
from types import MappingProxyType
from typing import TYPE_CHECKING, Any, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.iuad import IUAD
    from ..graphs.collab import CollaborationNetwork

#: A mention unit: ``(paper id, co-author position)``.
MentionKey = tuple[int, int]

#: ``name -> vid -> sorted mention tuple`` — the frozen clustering.
Clusters = Mapping[str, Mapping[int, tuple[MentionKey, ...]]]


class FittedView:
    """Read-only, hashable snapshot of a fitted disambiguation state.

    Constructed via :meth:`of` (from a live estimator) or
    :meth:`from_snapshot` (from a durable ``repro.io`` snapshot) — never
    mutated afterwards.  All query methods answer from the frozen
    projection; none can observe, let alone block on, the writer.
    """

    __slots__ = (
        "generation",
        "swapped_at",
        "n_papers",
        "n_vertices",
        "n_edges",
        "n_names",
        "n_mentions",
        "_clusters",
        "_owners",
        "_by_pid",
        "_name_of",
        "_fingerprint",
    )

    def __init__(
        self,
        clusters: dict[str, dict[int, tuple[MentionKey, ...]]],
        *,
        n_papers: int,
        n_edges: int,
        generation: int = 0,
        swapped_at: float | None = None,
    ) -> None:
        self.generation = generation
        self.swapped_at = (
            time.time() if swapped_at is None else float(swapped_at)
        )
        self.n_papers = n_papers
        self.n_edges = n_edges
        owners: dict[MentionKey, int] = {}
        by_pid: dict[int, list[tuple[int, int]]] = {}
        name_of: dict[int, str] = {}
        n_mentions = 0
        n_vertices = 0
        frozen: dict[str, Mapping[int, tuple[MentionKey, ...]]] = {}
        for name, vid_map in clusters.items():
            frozen[name] = MappingProxyType(dict(vid_map))
            for vid, mentions in vid_map.items():
                n_vertices += 1
                name_of[vid] = name
                n_mentions += len(mentions)
                for pid, position in mentions:
                    owners[(pid, position)] = vid
                    by_pid.setdefault(pid, []).append((position, vid))
        self.n_names = len(frozen)
        self.n_vertices = n_vertices
        self.n_mentions = n_mentions
        self._clusters: Clusters = MappingProxyType(frozen)
        self._owners: Mapping[MentionKey, int] = MappingProxyType(owners)
        self._by_pid: Mapping[int, tuple[tuple[int, int], ...]] = (
            MappingProxyType(
                {pid: tuple(sorted(hits)) for pid, hits in by_pid.items()}
            )
        )
        self._name_of: Mapping[int, str] = MappingProxyType(name_of)
        self._fingerprint: str | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def of(
        cls,
        estimator: "IUAD",
        generation: int = 0,
        swapped_at: float | None = None,
    ) -> "FittedView":
        """Project a live fitted estimator into a frozen view.

        The projection copies everything it needs — after construction
        the writer may mutate freely without the view ever noticing.
        """
        if estimator.gcn_ is None or estimator.corpus_ is None:
            raise ValueError("cannot build a FittedView of an unfitted IUAD")
        return cls._from_network(
            estimator.gcn_,
            n_papers=len(estimator.corpus_),
            generation=generation,
            swapped_at=swapped_at,
        )

    @classmethod
    def from_snapshot(
        cls,
        path: Any,
        backend: str | None = None,
        generation: int = 0,
        full_load: bool = True,
    ) -> "FittedView":
        """Build a view straight from a durable snapshot on disk.

        A delta chain riding next to the base (``<path>.delta``, see
        :mod:`repro.io.delta`) is folded in either way.

        ``full_load=True`` decodes the snapshot into a live network
        first (chain fully validated, including the base fingerprint)
        and projects from it.  ``full_load=False`` builds the clusters
        straight from the stored vertex rows plus the chain's recorded
        decisions — no network, model or similarity computer is ever
        materialised — and produces a **fingerprint-identical** view
        (the serving CLI's ``--no-full-load`` warm start; chain
        checksums and contiguity are still enforced, the base
        fingerprint match is skipped with the base document undecoded).
        """
        if full_load:
            from ..io.snapshot import Snapshot

            snapshot, _info = Snapshot.load_chain(path, backend=backend)
            return cls._from_network(
                snapshot.gcn,
                n_papers=len(snapshot.corpus),
                generation=generation,
            )
        return cls._from_rows(path, backend=backend, generation=generation)

    @classmethod
    def _from_rows(
        cls, path: Any, backend: str | None = None, generation: int = 0
    ) -> "FittedView":
        from pathlib import Path

        from ..io import delta as delta_chain
        from ..io.adapters import resolve_adapter

        path = Path(path)
        adapter = resolve_adapter(path, backend)
        meta = adapter.read_meta(path)
        document: dict[str, Any] | None = None
        if meta is None:
            document = adapter.read(path)
            meta = document["meta"]

        def table_rows(table: str) -> Iterable[dict[str, Any]]:
            nonlocal document
            rows = adapter.iter_table_rows(path, table)
            if rows is not None:
                return rows
            if document is None:
                document = adapter.read(path)
            return document.get("tables", {}).get(table, ())

        clusters: dict[str, dict[int, list[MentionKey]]] = {}
        for row in table_rows("gcn_vertices"):
            mentions = {
                int(pid): int(position)
                for pid, position in row.get("mentions", ())
            }
            # Same unit fallback as _from_network: attributed papers
            # without an explicit mention payload count as position 0.
            clusters.setdefault(row["name"], {})[int(row["vid"])] = [
                (int(pid), mentions.get(int(pid), 0))
                for pid in row.get("papers", ())
            ]
        n_papers = int(meta["n_papers"])
        n_edges = int(meta["n_gcn_edges"])
        log_path = delta_chain.delta_log_path(path)
        if log_path.exists():
            records = delta_chain.read_chain(
                log_path, int(meta.get("delta_seq", 0)), None
            )
            edge_pairs: set[tuple[int, int]] | None = None
            for record in records:
                for paper_row, decisions in zip(
                    record.papers, record.assignments
                ):
                    n_papers += 1
                    pid = int(paper_row["pid"])
                    vids: list[int] = []
                    for position, name in enumerate(paper_row["authors"]):
                        vid = int(decisions[position][0])
                        clusters.setdefault(name, {}).setdefault(
                            vid, []
                        ).append((pid, position))
                        vids.append(vid)
                    if len(set(vids)) > 1 and edge_pairs is None:
                        # New collaboration edges need the base edge set
                        # to count exactly; read it lazily, (u, v) keys
                        # only, still row-streamed.
                        edge_pairs = {
                            (min(int(e["u"]), int(e["v"])),
                             max(int(e["u"]), int(e["v"])))
                            for e in table_rows("gcn_edges")
                        }
                    for i, u in enumerate(vids):
                        for v in vids[i + 1:]:
                            if u == v:
                                continue
                            pair = (min(u, v), max(u, v))
                            assert edge_pairs is not None
                            if pair not in edge_pairs:
                                edge_pairs.add(pair)
                                n_edges += 1
        return cls(
            {
                name: {
                    vid: tuple(sorted(units))
                    for vid, units in vid_map.items()
                }
                for name, vid_map in clusters.items()
            },
            n_papers=n_papers,
            n_edges=n_edges,
            generation=generation,
        )

    @classmethod
    def _from_network(
        cls,
        gcn: "CollaborationNetwork",
        *,
        n_papers: int,
        generation: int = 0,
        swapped_at: float | None = None,
    ) -> "FittedView":
        clusters: dict[str, dict[int, tuple[MentionKey, ...]]] = {}
        for vertex in gcn:
            # Same unit fallback as mention_clusters_of_name: papers
            # attributed without an explicit payload (hand-built
            # networks) count as position 0.
            units = tuple(
                sorted(
                    (pid, vertex.mentions.get(pid, 0))
                    for pid in vertex.papers
                )
            )
            clusters.setdefault(vertex.name, {})[vertex.vid] = units
        return cls(
            clusters,
            n_papers=n_papers,
            n_edges=gcn.n_edges,
            generation=generation,
            swapped_at=swapped_at,
        )

    # ------------------------------------------------------------------ #
    # identity: content fingerprint
    # ------------------------------------------------------------------ #
    @property
    def fingerprint(self) -> str:
        """Stable content digest of the clustering (hex, 16 chars).

        Generation and timestamps are deliberately excluded — equality
        means "these views answer every query identically".
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for name in sorted(self._clusters):
                digest.update(name.encode("utf-8"))
                digest.update(b"\x00")
                vid_map = self._clusters[name]
                for vid in sorted(vid_map):
                    digest.update(str(vid).encode())
                    digest.update(str(vid_map[vid]).encode())
                    digest.update(b"\x01")
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint

    def __hash__(self) -> int:
        return hash(self.fingerprint)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FittedView):
            return NotImplemented
        return self.fingerprint == other.fingerprint

    def __repr__(self) -> str:
        return (
            f"FittedView(generation={self.generation}, "
            f"papers={self.n_papers}, vertices={self.n_vertices}, "
            f"mentions={self.n_mentions}, fp={self.fingerprint})"
        )

    # ------------------------------------------------------------------ #
    # queries (delegating to the pure functions below)
    # ------------------------------------------------------------------ #
    def who_is(
        self, name: str, pid: int, position: int = 0
    ) -> dict[str, Any] | None:
        """Owner of the mention ``(name, pid, position)``, or ``None``."""
        return who_is_in(self, name, pid, position)

    def resolve(self, name: str, pid: int) -> tuple[dict[str, Any], ...]:
        """All occurrences of ``name`` on paper ``pid`` with their owners."""
        return resolve_in(self, name, pid)

    def cluster_of(self, name: str) -> dict[int, tuple[MentionKey, ...]]:
        """Predicted clustering of ``name``: ``vid -> mention units``."""
        return cluster_of_in(self, name)

    @property
    def clusters(self) -> Clusters:
        """The whole frozen clustering (read-only nested mappings)."""
        return self._clusters

    def names(self) -> tuple[str, ...]:
        return tuple(self._clusters)

    # ------------------------------------------------------------------ #
    # serialization + self-checks
    # ------------------------------------------------------------------ #
    def as_clusters_dict(self) -> dict[str, dict[str, list[list[int]]]]:
        """JSON-ready dump: ``{name: {vid: [[pid, position], ...]}}``.

        The load harness pulls this over ``GET /clusters`` to assert
        exact parity with a serial replay of the ingest sequence.
        """
        return {
            name: {
                str(vid): [[pid, position] for pid, position in mentions]
                for vid, mentions in vid_map.items()
            }
            for name, vid_map in self._clusters.items()
        }

    def check_consistency(self) -> list[str]:
        """Internal cross-index invariants; empty list means consistent.

        Used by the concurrent-reader tests to assert that no observed
        view is ever torn: every owner entry must point back into the
        clusters it was derived from, and the counters must re-derive.
        """
        errors: list[str] = []
        n_mentions = sum(
            len(mentions)
            for vid_map in self._clusters.values()
            for mentions in vid_map.values()
        )
        if n_mentions != self.n_mentions:
            errors.append(
                f"n_mentions {self.n_mentions} != recount {n_mentions}"
            )
        n_vertices = sum(len(v) for v in self._clusters.values())
        if n_vertices != self.n_vertices:
            errors.append(
                f"n_vertices {self.n_vertices} != recount {n_vertices}"
            )
        for key, vid in self._owners.items():
            name = self._name_of.get(vid)
            if name is None or key not in self._clusters[name][vid]:
                errors.append(f"owner index entry {key} -> {vid} is dangling")
        return errors


# --------------------------------------------------------------------- #
# pure query functions over a view
# --------------------------------------------------------------------- #
def who_is_in(
    view: FittedView, name: str, pid: int, position: int = 0
) -> dict[str, Any] | None:
    """Pure who-is: the cluster owning one occurrence, or ``None``.

    ``None`` when nobody owns ``(pid, position)`` *or* the owner carries
    a different name (the caller asked about the wrong occurrence).
    """
    vid = view._owners.get((pid, position))
    if vid is None or view._name_of[vid] != name:
        return None
    return {
        "vid": vid,
        "name": name,
        "pid": pid,
        "position": position,
        "cluster_size": len(view._clusters[name][vid]),
        "generation": view.generation,
    }


def resolve_in(
    view: FittedView, name: str, pid: int
) -> tuple[dict[str, Any], ...]:
    """Pure resolve: every occurrence of ``name`` on ``pid``.

    A paper listing the same name twice (homonymous co-authors) yields
    two matches with distinct positions and distinct owning clusters.
    """
    out = []
    for position, vid in view._by_pid.get(pid, ()):
        if view._name_of[vid] == name:
            out.append(
                {
                    "vid": vid,
                    "position": position,
                    "cluster_size": len(view._clusters[name][vid]),
                }
            )
    return tuple(out)


def cluster_of_in(
    view: FittedView, name: str
) -> dict[int, tuple[MentionKey, ...]]:
    """Pure cluster-of: a plain-dict copy of one name's clustering."""
    return dict(view._clusters.get(name, {}))


def prior_assignments_in(
    view: FittedView, authors: Iterable[str], pid: int
) -> list[int]:
    """Owners of every occurrence of an already-ingested paper.

    The read-side analogue of the incremental duplicate replay
    (``duplicate_paper_policy="return"``): one vid per co-author-list
    position, ``-1`` where nobody owns the occurrence.
    """
    out = []
    for position, name in enumerate(authors):
        hit = who_is_in(view, name, pid, position)
        out.append(hit["vid"] if hit is not None else -1)
    return out
