"""Disambiguation-as-a-service: reader/writer split with atomic swaps.

The serving layer of the reproduction (see ``docs/architecture.md``,
"Serving layer"):

* :class:`~repro.service.view.FittedView` — an immutable, hashable
  projection of the fitted state with pure query methods
  (``who_is`` / ``resolve`` / ``cluster_of``) that never touch writer
  state;
* :class:`~repro.service.engine.Engine` — ONE writer
  (:class:`~repro.core.streaming.StreamingIngestor`) behind an asyncio
  queue, bursts coalesced off-loop, a fresh view published per burst via
  a single atomic reference swap (generation counter + swap timestamp
  for staleness-aware clients);
* :class:`~repro.service.http.ServiceServer` — the stdlib-asyncio HTTP
  front-end (``POST /ingest``, ``GET /who-is``, ``GET /resolve``,
  ``GET /healthz``, ``GET /stats``, …) started by ``tools/serve.py``.

Readers never block on ingest: ``benchmarks/test_serving.py`` drives a
mixed read/ingest workload against a subprocess server and records the
p50/p90/p99 evidence to ``BENCH_serving.json``.
"""

from .engine import Engine, EngineStats, IngestResult
from .http import ServiceServer
from .view import (
    FittedView,
    cluster_of_in,
    prior_assignments_in,
    resolve_in,
    who_is_in,
)

__all__ = [
    "Engine",
    "EngineStats",
    "FittedView",
    "IngestResult",
    "ServiceServer",
    "cluster_of_in",
    "prior_assignments_in",
    "resolve_in",
    "who_is_in",
]
