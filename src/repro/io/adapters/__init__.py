"""Persistence adapter registry: one document shape, N drivers.

The registry maps adapter names to :class:`~.base.SnapshotAdapter`
instances.  The bundled drivers — :class:`~.jsonl.JsonlAdapter` and
:class:`~.sqlite.SqliteAdapter` — register at import time; host
applications add their own via :func:`register_adapter` and every
consumer (``Snapshot.save/load``, streaming checkpoints, delta-chain
bases, ``tools/snapshot.py convert``, the serving warm start) picks them
up through :func:`resolve_adapter`.

Resolution order (unchanged from the pre-registry ``repro.io.backends``):

1. an explicit adapter name always wins;
2. for an existing file, each registered adapter's byte ``sniff`` runs
   against the file's first bytes, in registration order;
3. otherwise the path suffix selects the adapter claiming it;
4. the default adapter (JSONL) takes everything else.

Atomicity lives here, once, for every adapter: :func:`write_document`
writes to a ``.tmp`` sibling, fsyncs, then atomically renames over the
destination (``os.replace``).  A crash mid-write leaves at worst a stale
``.tmp`` next to an intact previous snapshot; adapters only ever see the
tmp path.
"""

from __future__ import annotations

import os
from pathlib import Path
from types import MappingProxyType
from typing import Any

from .base import AdapterCursor, SnapshotAdapter
from .jsonl import JsonlAdapter
from .sqlite import SqliteAdapter

#: How many leading bytes :func:`resolve_adapter` hands to ``sniff``.
_SNIFF_BYTES = 64

#: name -> adapter instance, in registration order (= sniff order).
_REGISTRY: dict[str, SnapshotAdapter] = {}

#: Fallback adapter for unrecognised bytes/suffixes.
_DEFAULT = JsonlAdapter.name


def register_adapter(
    adapter: SnapshotAdapter, replace: bool = False
) -> SnapshotAdapter:
    """Add a driver to the registry (``replace=True`` to override a name).

    Returns the adapter so registration composes as a decorator-ish
    one-liner: ``ADAPTER = register_adapter(MyAdapter())``.
    """
    if not adapter.name:
        raise ValueError(f"adapter {adapter!r} has no name")
    if adapter.name in _REGISTRY and not replace:
        raise ValueError(
            f"adapter {adapter.name!r} is already registered "
            "(pass replace=True to override)"
        )
    _REGISTRY[adapter.name] = adapter
    return adapter


def list_adapters() -> dict[str, SnapshotAdapter]:
    """A copy of the registry, in registration order."""
    return dict(_REGISTRY)


def resolve_adapter(
    path: str | Path, name: str | None = None
) -> SnapshotAdapter:
    """Pick an adapter: explicit name > file sniff > path suffix > default.

    Reading sniffs the file's first bytes (a SQLite database always
    starts with its 16-byte magic header), so ``load`` works on any
    snapshot regardless of how it was named.
    """
    if name is not None:
        try:
            return _REGISTRY[name]
        except KeyError:
            raise ValueError(
                f"unknown snapshot adapter {name!r}; "
                f"choose from {sorted(_REGISTRY)}"
            ) from None
    path = Path(path)
    if path.exists():
        with open(path, "rb") as fh:
            prefix = fh.read(_SNIFF_BYTES)
        for adapter in _REGISTRY.values():
            if adapter.name != _DEFAULT and adapter.sniff(prefix):
                return adapter
        return _REGISTRY[_DEFAULT]
    suffix = path.suffix.lower()
    for adapter in _REGISTRY.values():
        if suffix in adapter.suffixes and adapter.name != _DEFAULT:
            return adapter
    return _REGISTRY[_DEFAULT]


def write_document(
    document: dict[str, Any], path: str | Path, adapter: str | None = None
) -> Path:
    """Atomically persist a document: tmp file + fsync + rename."""
    path = Path(path)
    # Resolution runs against the *destination*: overwriting an existing
    # snapshot keeps its format (checkpoints never silently flip
    # adapters), a fresh path goes by explicit choice or suffix.
    chosen = resolve_adapter(path, adapter)
    tmp = path.with_name(path.name + ".tmp")
    chosen.write(document, tmp)
    fsync_path(tmp)
    os.replace(tmp, path)
    fsync_dir(path.parent)
    return path


def read_document(
    path: str | Path, adapter: str | None = None
) -> dict[str, Any]:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no snapshot at {path}")
    return resolve_adapter(path, adapter).read(path)


def fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: Path) -> None:
    # Durability of the rename itself; not supported on some platforms
    # (best effort — the rename's atomicity does not depend on it).
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


#: The bundled drivers.  JSONL first: it is the default *and* the
#: fallback, so its permissive sniff never shadows a specific driver
#: (resolve_adapter skips the default during the sniff pass).
JSONL = register_adapter(JsonlAdapter())
SQLITE = register_adapter(SqliteAdapter())

#: Live read-only view of the registry (``repro.io.BACKENDS`` compat).
ADAPTERS = MappingProxyType(_REGISTRY)

__all__ = [
    "ADAPTERS",
    "AdapterCursor",
    "JSONL",
    "SQLITE",
    "SnapshotAdapter",
    "list_adapters",
    "read_document",
    "register_adapter",
    "resolve_adapter",
    "write_document",
]
