"""SQLite adapter: a single queryable file with real, indexed tables.

Bulk rows land in real tables (``papers``, ``vertices``, ``edges``,
``embedding_rows``) so ad-hoc SQL works on a fitted snapshot, and the
whole write is one transaction.  On top of the document payload the
writer derives an **indexed mention-ownership table**::

    mentions (net, pid, position, vid, name)   PRIMARY KEY (net, pid, position)
    + index on (net, name); vertices indexed on (net, name)

which makes the fitted network queryable *in place*: ``who_is`` /
``owner_of`` lookups run as a point SELECT against the snapshot file
without decoding the full state (:meth:`SqliteAdapter.open_query`,
surfaced as :mod:`repro.io.query`).  The table is derived data —
:meth:`SqliteAdapter.read` reconstructs the document from the vertex
payloads alone, so converting to JSONL and back is lossless — and its
primary key doubles as an integrity check: a snapshot violating the
one-mention-per-paper invariant cannot even be written.

Snapshots written by earlier builds lack the derived table; the query
cursor then falls back to scanning the (name-filtered) vertex payloads,
still without a full decode.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any, Iterator

from .base import AdapterCursor, SnapshotAdapter

#: Magic prefix of every SQLite database file.
SQLITE_MAGIC = b"SQLite format 3\x00"

#: Bulk tables with first-class SQLite columns; everything else in the
#: document's ``tables`` mapping is rejected (schema and adapters move in
#: lock-step — an unknown table means a version skew, not data to guess at).
_TABLES = ("papers", "gcn_vertices", "gcn_edges", "scn_vertices", "scn_edges",
           "embedding_rows")


class SqliteCursor(AdapterCursor):
    """Indexed who-is queries against an open snapshot database."""

    def __init__(self, conn: sqlite3.Connection, indexed: bool) -> None:
        self._conn = conn
        self._indexed = indexed

    def owner_of(self, pid: int, position: int) -> tuple[int, str] | None:
        if self._indexed:
            row = self._conn.execute(
                "SELECT vid, name FROM mentions "
                "WHERE net = 'gcn' AND pid = ? AND position = ?",
                (pid, position),
            ).fetchone()
            return (int(row[0]), row[1]) if row else None
        # pre-index snapshot: scan vertex payloads (no full decode)
        for vid, name, payload in self._conn.execute(
            "SELECT vid, name, payload FROM vertices WHERE net = 'gcn'"
        ):
            for m_pid, m_pos in json.loads(payload).get("mentions", ()):
                if m_pid == pid and m_pos == position:
                    return int(vid), name
        return None

    def clusters_of_name(self, name: str) -> dict[int, list[tuple[int, int]]]:
        if self._indexed:
            out: dict[int, list[tuple[int, int]]] = {}
            for vid, pid, position in self._conn.execute(
                "SELECT vid, pid, position FROM mentions "
                "WHERE net = 'gcn' AND name = ?",
                (name,),
            ):
                out.setdefault(int(vid), []).append((int(pid), int(position)))
            return out
        out = {}
        for vid, payload in self._conn.execute(
            "SELECT vid, payload FROM vertices "
            "WHERE net = 'gcn' AND name = ?",
            (name,),
        ):
            out[int(vid)] = [
                (int(pid), int(pos))
                for pid, pos in json.loads(payload).get("mentions", ())
            ]
        return out

    def close(self) -> None:
        self._conn.close()


class SqliteAdapter(SnapshotAdapter):
    """Single-file SQLite database with real tables for the bulk rows."""

    name = "sqlite"
    suffixes = (".sqlite", ".sqlite3", ".db")

    _SCHEMA = """
        CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE sections (name TEXT PRIMARY KEY, payload TEXT NOT NULL);
        CREATE TABLE papers (
            seq INTEGER PRIMARY KEY, pid INTEGER NOT NULL, payload TEXT NOT NULL
        );
        CREATE TABLE vertices (
            net TEXT NOT NULL, seq INTEGER NOT NULL, vid INTEGER NOT NULL,
            name TEXT NOT NULL, payload TEXT NOT NULL,
            PRIMARY KEY (net, seq)
        );
        CREATE TABLE edges (
            net TEXT NOT NULL, seq INTEGER NOT NULL, u INTEGER NOT NULL,
            v INTEGER NOT NULL, payload TEXT NOT NULL,
            PRIMARY KEY (net, seq)
        );
        CREATE TABLE embedding_rows (
            seq INTEGER PRIMARY KEY, word TEXT NOT NULL, vector TEXT NOT NULL
        );
        CREATE TABLE mentions (
            net TEXT NOT NULL, pid INTEGER NOT NULL, position INTEGER NOT NULL,
            vid INTEGER NOT NULL, name TEXT NOT NULL,
            PRIMARY KEY (net, pid, position)
        );
        CREATE INDEX mentions_by_name ON mentions (net, name);
        CREATE INDEX vertices_by_name ON vertices (net, name);
    """

    def sniff(self, prefix: bytes) -> bool:
        return prefix.startswith(SQLITE_MAGIC)

    def write(self, document: dict[str, Any], path: Path) -> None:
        # A leftover (possibly truncated) file at the target confuses
        # sqlite3.connect; start from a clean slate.  The caller hands us
        # a .tmp path, never the live snapshot.
        path.unlink(missing_ok=True)
        conn = sqlite3.connect(path)
        try:
            with conn:  # one transaction for the entire snapshot
                conn.executescript(self._SCHEMA)
                conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [(k, json.dumps(v)) for k, v in document["meta"].items()],
                )
                conn.executemany(
                    "INSERT INTO sections (name, payload) VALUES (?, ?)",
                    [
                        (name, json.dumps(payload))
                        for name, payload in document["sections"].items()
                    ],
                )
                for name, rows in document["tables"].items():
                    if name not in _TABLES:
                        raise ValueError(f"unknown snapshot table {name!r}")
                    if name == "papers":
                        conn.executemany(
                            "INSERT INTO papers (seq, pid, payload) "
                            "VALUES (?, ?, ?)",
                            [
                                (i, row["pid"], json.dumps(row))
                                for i, row in enumerate(rows)
                            ],
                        )
                    elif name.endswith("_vertices"):
                        net = name[: -len("_vertices")]
                        conn.executemany(
                            "INSERT INTO vertices (seq, net, vid, name, payload)"
                            " VALUES (?, ?, ?, ?, ?)",
                            [
                                (i, net, row["vid"], row["name"], json.dumps(row))
                                for i, row in enumerate(rows)
                            ],
                        )
                        conn.executemany(
                            "INSERT INTO mentions (net, pid, position, vid, "
                            "name) VALUES (?, ?, ?, ?, ?)",
                            [
                                (net, pid, position, row["vid"], row["name"])
                                for row in rows
                                for pid, position in row.get("mentions", ())
                            ],
                        )
                    elif name.endswith("_edges"):
                        net = name[: -len("_edges")]
                        conn.executemany(
                            "INSERT INTO edges (seq, net, u, v, payload) "
                            "VALUES (?, ?, ?, ?, ?)",
                            [
                                (i, net, row["u"], row["v"], json.dumps(row))
                                for i, row in enumerate(rows)
                            ],
                        )
                    else:  # embedding_rows
                        conn.executemany(
                            "INSERT INTO embedding_rows (seq, word, vector) "
                            "VALUES (?, ?, ?)",
                            [
                                (i, word, json.dumps(vector))
                                for i, (word, vector) in enumerate(rows)
                            ],
                        )
        finally:
            conn.close()

    def read(self, path: Path) -> dict[str, Any]:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        try:
            meta = {
                k: json.loads(v)
                for k, v in conn.execute("SELECT key, value FROM meta")
            }
            sections = {
                name: json.loads(payload)
                for name, payload in conn.execute(
                    "SELECT name, payload FROM sections"
                )
            }
            tables: dict[str, list[Any]] = {}
            papers = [
                json.loads(payload)
                for (payload,) in conn.execute(
                    "SELECT payload FROM papers ORDER BY seq"
                )
            ]
            if papers:
                tables["papers"] = papers
            for net, table, column in (
                ("gcn", "vertices", "gcn_vertices"),
                ("scn", "vertices", "scn_vertices"),
                ("gcn", "edges", "gcn_edges"),
                ("scn", "edges", "scn_edges"),
            ):
                rows = [
                    json.loads(payload)
                    for (payload,) in conn.execute(
                        f"SELECT payload FROM {table} WHERE net = ? "
                        "ORDER BY seq",
                        (net,),
                    )
                ]
                if rows or column in ("gcn_vertices", "gcn_edges"):
                    tables[column] = rows
            embedding = [
                [word, json.loads(vector)]
                for word, vector in conn.execute(
                    "SELECT word, vector FROM embedding_rows ORDER BY seq"
                )
            ]
            if embedding:
                tables["embedding_rows"] = embedding
            return {"meta": meta, "sections": sections, "tables": tables}
        except sqlite3.DatabaseError as exc:
            raise ValueError(f"{path}: not a readable snapshot ({exc})") from exc
        finally:
            conn.close()

    def iter_table_rows(
        self, path: Path, table: str
    ) -> Iterator[dict[str, Any]] | None:
        if table not in _TABLES:
            return None
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)

        def rows() -> Iterator[dict[str, Any]]:
            try:
                if table == "papers":
                    cursor = conn.execute(
                        "SELECT payload FROM papers ORDER BY seq"
                    )
                elif table == "embedding_rows":
                    cursor = conn.execute(
                        "SELECT word, vector FROM embedding_rows ORDER BY seq"
                    )
                    for word, vector in cursor:
                        yield [word, json.loads(vector)]
                    return
                else:
                    kind = "vertices" if table.endswith("_vertices") else "edges"
                    net = table[: table.rindex("_")]
                    cursor = conn.execute(
                        f"SELECT payload FROM {kind} WHERE net = ? "
                        "ORDER BY seq",
                        (net,),
                    )
                for (payload,) in cursor:
                    yield json.loads(payload)
            except sqlite3.DatabaseError as exc:
                raise ValueError(
                    f"{path}: not a readable snapshot ({exc})"
                ) from exc
            finally:
                conn.close()

        return rows()

    def read_meta(self, path: Path) -> dict[str, Any]:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        try:
            return {
                k: json.loads(v)
                for k, v in conn.execute("SELECT key, value FROM meta")
            }
        except sqlite3.DatabaseError as exc:
            raise ValueError(f"{path}: not a readable snapshot ({exc})") from exc
        finally:
            conn.close()

    def open_query(self, path: Path) -> SqliteCursor:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        try:
            indexed = bool(
                conn.execute(
                    "SELECT 1 FROM sqlite_master "
                    "WHERE type = 'table' AND name = 'mentions'"
                ).fetchone()
            )
        except sqlite3.DatabaseError as exc:
            conn.close()
            raise ValueError(
                f"{path}: not a readable snapshot ({exc})"
            ) from exc
        return SqliteCursor(conn, indexed)
