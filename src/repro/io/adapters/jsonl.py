"""JSONL adapter: one JSON object per line.

Human-diffable, appends stream, ``grep``/``jq`` friendly — the natural
format for committed fixtures and for eyeballing what a checkpoint
actually contains.  Layout: the ``meta`` object first, then one line per
section, then one line per table row.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from .base import SnapshotAdapter


def jsonl_line(obj: dict[str, Any]) -> str:
    return json.dumps(obj, ensure_ascii=False, separators=(",", ":")) + "\n"


class JsonlAdapter(SnapshotAdapter):
    """One JSON object per line: ``meta`` first, then sections, then rows."""

    name = "jsonl"
    suffixes = (".jsonl", ".json", ".ndjson")

    def sniff(self, prefix: bytes) -> bool:
        # A snapshot's first line opens the meta object; cheap and honest
        # (resolution still falls back to this adapter either way).
        return prefix[:1] in (b"{",)

    def write(self, document: dict[str, Any], path: Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(jsonl_line({"meta": document["meta"]}))
            for name, payload in document["sections"].items():
                fh.write(jsonl_line({"section": name, "payload": payload}))
            for name, rows in document["tables"].items():
                for row in rows:
                    fh.write(jsonl_line({"table": name, "row": row}))
            fh.flush()
            os.fsync(fh.fileno())

    def read(self, path: Path) -> dict[str, Any]:
        meta: dict[str, Any] | None = None
        sections: dict[str, Any] = {}
        tables: dict[str, list[Any]] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, 1):
                if not raw.strip():
                    continue
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}: line {lineno} is not valid JSON ({exc}); "
                        "is this a snapshot file?"
                    ) from exc
                if "meta" in obj:
                    meta = obj["meta"]
                elif "section" in obj:
                    sections[obj["section"]] = obj["payload"]
                elif "table" in obj:
                    tables.setdefault(obj["table"], []).append(obj["row"])
                else:
                    raise ValueError(f"{path}: line {lineno} has no known key")
        if meta is None:
            raise ValueError(f"{path}: no meta line — not a snapshot file")
        return {"meta": meta, "sections": sections, "tables": tables}

    def read_meta(self, path: Path) -> dict[str, Any] | None:
        # The meta object is the first line by construction.
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                if not raw.strip():
                    continue
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}: first line is not valid JSON ({exc}); "
                        "is this a snapshot file?"
                    ) from exc
                if "meta" not in obj:
                    raise ValueError(
                        f"{path}: first line is not a meta line — "
                        "not a snapshot file"
                    )
                return obj["meta"]
        raise ValueError(f"{path}: no meta line — not a snapshot file")

    def iter_table_rows(
        self, path: Path, table: str
    ) -> Iterator[dict[str, Any]]:
        # Streaming scan: parse line by line, yield only the asked-for
        # table's rows — the query fallback never holds the document.
        def rows() -> Iterator[dict[str, Any]]:
            needle = f'"table":"{table}"'
            with open(path, "r", encoding="utf-8") as fh:
                for raw in fh:
                    if needle not in raw:
                        continue
                    obj = json.loads(raw)
                    if obj.get("table") == table:
                        yield obj["row"]

        return rows()
