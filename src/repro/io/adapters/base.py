"""The persistence adapter protocol: one document shape, N drivers.

Every snapshot — full base or delta-compacted — is one backend-neutral
**document** (see :mod:`repro.io.schema`)::

    {"meta": {...}, "sections": {name: payload}, "tables": {name: [rows]}}

An adapter is *how* that document hits disk.  The bundled drivers are
JSONL (:mod:`.jsonl`) and SQLite (:mod:`.sqlite`); new drivers register
through :func:`repro.io.adapters.register_adapter` and immediately work
everywhere — ``Snapshot.save/load``, streaming checkpoints,
``tools/snapshot.py convert`` across any adapter pair, the serving
layer's warm start.

The contract an adapter must honour:

* :meth:`~SnapshotAdapter.write` persists the document to ``path``.  The
  caller always hands a ``.tmp`` sibling and performs the
  fsync-then-rename itself (:func:`repro.io.adapters.write_document`),
  so adapters never need to think about atomicity — only about a
  faithful, *lossless* encoding: ``read(write(doc)) == doc`` up to JSON
  value round-tripping (which Python performs bit-exactly for floats).
* :meth:`~SnapshotAdapter.read` returns the document, raising
  :class:`ValueError` with a one-line message for anything that is not a
  readable snapshot.
* :meth:`~SnapshotAdapter.sniff` inspects a file's first bytes so
  resolution works on any snapshot regardless of how it was named.
* :meth:`~SnapshotAdapter.open_query` *may* return an
  :class:`AdapterCursor` that answers mention-ownership queries without
  decoding the full document — the SQLite driver serves them straight
  off indexed tables.  Returning ``None`` (the default) makes
  :mod:`repro.io.query` fall back to a streaming row scan.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator


class AdapterCursor:
    """Optional query capability: answers without a full document decode.

    All row payloads refer to the GCN (the fitted network queries are
    about); ``close`` releases any underlying handle.  Implementations
    must be safe to use for many queries on one open cursor.
    """

    def owner_of(self, pid: int, position: int) -> tuple[int, str] | None:
        """``(vid, name)`` owning mention ``(pid, position)``, or ``None``."""
        raise NotImplementedError

    def clusters_of_name(self, name: str) -> dict[int, list[tuple[int, int]]]:
        """``vid -> [(pid, position), ...]`` for every vertex of ``name``."""
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass

    def __enter__(self) -> "AdapterCursor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SnapshotAdapter:
    """Base class of a persistence driver.  Subclass, set ``name``, register."""

    #: Registry key and the value of ``snapshot_header()["adapter"]``.
    name: str = ""
    #: Path suffixes that select this adapter for a fresh file.
    suffixes: tuple[str, ...] = ()

    def sniff(self, prefix: bytes) -> bool:
        """Does ``prefix`` (the file's first bytes) look like this format?"""
        return False

    def write(self, document: dict[str, Any], path: Path) -> None:
        raise NotImplementedError

    def read(self, path: Path) -> dict[str, Any]:
        raise NotImplementedError

    def open_query(self, path: Path) -> AdapterCursor | None:
        """An indexed query cursor, or ``None`` when unsupported."""
        return None

    def read_meta(self, path: Path) -> dict[str, Any] | None:
        """Just the ``meta`` object, cheaply — or ``None`` (full read).

        Lets :mod:`repro.io.query` learn the ``delta_seq`` watermark of a
        base without decoding its tables.
        """
        return None

    def iter_table_rows(
        self, path: Path, table: str
    ) -> Iterator[dict[str, Any]] | None:
        """Stream one table's rows without loading the document, or ``None``.

        The query fallback for adapters with no indexed cursor: JSONL
        streams matching lines; drivers that cannot stream return
        ``None`` and the caller does a full :meth:`read`.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} name={self.name!r}>"


def iter_gcn_vertex_rows(document: dict[str, Any]) -> Iterator[dict[str, Any]]:
    """GCN vertex rows of a document — the generic query fallback's input."""
    return iter(document.get("tables", {}).get("gcn_vertices", ()))
