"""Durable snapshots of fitted IUAD state, with exact warm-start resume.

The paper's bottom-up reconstruction treats the fitted collaboration
network as a long-lived artifact that keeps absorbing papers (Section V's
insertion algorithm) — so the fitted state must survive a process exit.
A :class:`Snapshot` captures **everything** a continuation needs:

* the collaboration networks (GCN and, optionally, the Stage-1 SCN) with
  their exact name-index order and ``next_vid`` watermark;
* the learned matched/unmatched mixture and the trained title embeddings
  (stored, never retrained — retraining on a grown corpus would shift γ3);
* the similarity computer's *fit-time* word/venue frequency tables
  (γ4/γ6 inputs — re-deriving them from a corpus that streamed papers
  have grown would silently change scores);
* the ingested corpus, the config, and — for sharded fits — the shard
  plan, the live shard-routing index and the cannot-link pairs;
* optionally the streaming report counters (checkpoints).

The headline guarantee is **exact resume parity**: a fit or ingest that
is snapshotted, reloaded in a fresh process and continued produces the
identical network (vertex ids, ``next_vid``, mention payloads, edge paper
sets), assignments, counters and cannot-link state as an uninterrupted
run (``tests/test_snapshot_parity.py``).  Profile caches are the one
thing deliberately *not* stored: they rebuild deterministically on
demand, in canonical order.

Typical use::

    iuad.fit(corpus)
    iuad.save("fitted.jsonl")                  # or fitted.sqlite
    ...
    iuad = IUAD.load("fitted.jsonl")           # fresh process, no re-fit
    IncrementalDisambiguator(iuad).add_paper(new_paper)

Streaming checkpoints ride the same format — see
:meth:`repro.core.streaming.StreamingIngestor.checkpoint` /
:meth:`~repro.core.streaming.StreamingIngestor.resume`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from ..core.config import IUADConfig
from ..core.incremental import IncrementalReport
from ..core.sharding import Shard, ShardIndex, ShardPlan
from ..data.records import Corpus
from ..graphs.collab import CollaborationNetwork
from ..model.mixture import MatchMixture
from ..similarity.profile import SimilarityComputer
from ..text.embeddings import WordEmbeddings
from . import backends, schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.iuad import IUAD

Pair = tuple[int, int]


@dataclass(slots=True)
class ShardingState:
    """The sharded-execution extras riding in a :class:`Snapshot`.

    ``plan`` is the fitted partition (per-shard name lists, owned/halo
    vertex ids, paper ids — the shipping manifest for future
    multi-machine dispatch), ``index`` the *live* routing state including
    every bridge streaming inserts have performed, ``cannot_links`` the
    re-derived homonym constraints of the stitched network.
    """

    plan: ShardPlan | None
    index: ShardIndex
    cannot_links: list[Pair] = field(default_factory=list)


@dataclass(slots=True)
class Snapshot:
    """The complete fitted state of an (optionally sharded) IUAD run."""

    config: IUADConfig
    corpus: Corpus
    gcn: CollaborationNetwork
    model: MatchMixture
    word_frequencies: dict[str, int]
    venue_frequencies: dict[str, int]
    scn: CollaborationNetwork | None = None
    embeddings: WordEmbeddings | None = None
    frequent_keywords: tuple[str, ...] = ()
    batch_threshold: int = 16
    sharding: ShardingState | None = None
    stream: IncrementalReport | None = None
    version: int = schema.SCHEMA_VERSION
    #: Highest delta-chain seq already folded into this base (0 = none).
    #: Restore skips log records at or below this watermark — that is
    #: what makes compaction crash-safe (see :mod:`repro.io.delta`).
    delta_seq: int = 0

    # ------------------------------------------------------------------ #
    # construction from a fitted estimator
    # ------------------------------------------------------------------ #
    @classmethod
    def of(
        cls, estimator: "IUAD", stream: IncrementalReport | None = None
    ) -> "Snapshot":
        """Capture a fitted estimator (plus optional streaming counters).

        Holds *references* to the live objects — saving never copies or
        mutates; capture-then-continue is safe because :meth:`save`
        serializes immediately.
        """
        if estimator.gcn_ is None or estimator.model_ is None:
            raise ValueError("cannot snapshot an unfitted estimator")
        assert estimator.corpus_ is not None and estimator.computer_ is not None
        computer = estimator.computer_
        sharding = None
        shard_index = getattr(estimator, "shard_index_", None)
        if shard_index is not None:
            sharding = ShardingState(
                plan=getattr(estimator, "plan_", None),
                index=shard_index,
                cannot_links=list(getattr(estimator, "cannot_links_", [])),
            )
        return cls(
            config=estimator.config,
            corpus=estimator.corpus_,
            gcn=estimator.gcn_,
            scn=estimator.scn_,
            model=estimator.model_,
            embeddings=estimator.embeddings_,
            word_frequencies=dict(computer.word_frequencies),
            venue_frequencies=dict(computer.venue_frequencies),
            frequent_keywords=tuple(sorted(computer.frequent_keywords)),
            batch_threshold=computer.batch_threshold,
            sharding=sharding,
            stream=stream,
        )

    # ------------------------------------------------------------------ #
    # restore
    # ------------------------------------------------------------------ #
    def restore(self) -> "IUAD":
        """Materialise a ready-to-serve estimator from this snapshot.

        Returns a :class:`~repro.core.iuad.IUAD` — or a
        :class:`~repro.core.sharding.ShardedIUAD` when the snapshot
        carries sharding state — with every fitted attribute in place and
        a cold-cache similarity computer bound to the restored network
        with the *fit-time* frequency tables.  ``report_`` (fit
        diagnostics) is not part of the snapshot and stays ``None``.
        """
        from ..core.iuad import IUAD
        from ..core.sharding import ShardedIUAD

        estimator = (ShardedIUAD if self.sharding is not None else IUAD)(
            self.config
        )
        estimator.corpus_ = self.corpus
        estimator.scn_ = self.scn
        estimator.gcn_ = self.gcn
        estimator.model_ = self.model
        estimator.embeddings_ = self.embeddings
        estimator.computer_ = SimilarityComputer(
            self.gcn,
            self.corpus,
            embeddings=self.embeddings,
            word_frequencies=self.word_frequencies,
            wl_iterations=self.config.wl_iterations,
            decay_alpha=self.config.decay_alpha,
            frequent_keywords=frozenset(self.frequent_keywords),
            batch_threshold=self.batch_threshold,
            venue_frequencies=self.venue_frequencies,
        )
        if self.sharding is not None:
            estimator.plan_ = self.sharding.plan
            estimator.shard_index_ = self.sharding.index
            estimator.cannot_links_ = list(self.sharding.cannot_links)
        return estimator

    # ------------------------------------------------------------------ #
    # document (backend-neutral) encoding
    # ------------------------------------------------------------------ #
    def to_document(self) -> dict[str, Any]:
        gcn_vertices, gcn_edges, gcn_meta = schema.encode_network(self.gcn)
        tables: dict[str, list[Any]] = {
            "papers": schema.encode_corpus(self.corpus),
            "gcn_vertices": gcn_vertices,
            "gcn_edges": gcn_edges,
        }
        sections: dict[str, Any] = {
            "config": schema.encode_config(self.config),
            "model": schema.encode_model(self.model),
            "computer": {
                "word_frequencies": dict(self.word_frequencies),
                "venue_frequencies": dict(self.venue_frequencies),
                "frequent_keywords": list(self.frequent_keywords),
                "batch_threshold": self.batch_threshold,
            },
            "gcn_meta": gcn_meta,
        }
        if self.scn is not None:
            scn_vertices, scn_edges, scn_meta = schema.encode_network(self.scn)
            tables["scn_vertices"] = scn_vertices
            tables["scn_edges"] = scn_edges
            sections["scn_meta"] = scn_meta
        embedding_rows = schema.encode_embeddings(self.embeddings)
        if embedding_rows is not None:
            tables["embedding_rows"] = embedding_rows
        if self.sharding is not None:
            sections["sharding"] = _encode_sharding(self.sharding)
        if self.stream is not None:
            sections["stream"] = _encode_stream(self.stream)
        meta = {
            "format": schema.FORMAT_NAME,
            "version": self.version,
            "kind": "sharded" if self.sharding is not None else "iuad",
            "has_stream": self.stream is not None,
            "n_papers": len(self.corpus),
            "n_gcn_vertices": len(self.gcn),
            "n_gcn_edges": self.gcn.n_edges,
        }
        if self.delta_seq:
            # Only when nonzero: pre-delta snapshots (and the committed
            # fixture) stay byte-identical.
            meta["delta_seq"] = self.delta_seq
        return {"meta": meta, "sections": sections, "tables": tables}

    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "Snapshot":
        meta = document["meta"]
        if meta.get("format") != schema.FORMAT_NAME:
            raise ValueError(
                f"not a snapshot document (format={meta.get('format')!r})"
            )
        version = int(meta.get("version", 0))
        if version < 1 or version > schema.SCHEMA_VERSION:
            raise ValueError(
                f"snapshot schema version {version} is not supported "
                f"(this build reads 1..{schema.SCHEMA_VERSION})"
            )
        tables = document["tables"]
        sections = document["sections"]
        computer = sections["computer"]
        scn = None
        if "scn_meta" in sections:
            scn = schema.decode_network(
                tables.get("scn_vertices", []),
                tables.get("scn_edges", []),
                sections["scn_meta"],
            )
        sharding = None
        if "sharding" in sections:
            sharding = _decode_sharding(sections["sharding"])
        stream = None
        if "stream" in sections:
            stream = _decode_stream(sections["stream"])
        return cls(
            config=schema.decode_config(sections["config"]),
            corpus=schema.decode_corpus(tables["papers"]),
            gcn=schema.decode_network(
                tables["gcn_vertices"],
                tables["gcn_edges"],
                sections["gcn_meta"],
            ),
            scn=scn,
            model=schema.decode_model(sections["model"]),
            embeddings=schema.decode_embeddings(tables.get("embedding_rows")),
            word_frequencies={
                k: int(v) for k, v in computer["word_frequencies"].items()
            },
            venue_frequencies={
                k: int(v) for k, v in computer["venue_frequencies"].items()
            },
            frequent_keywords=tuple(computer.get("frequent_keywords", ())),
            batch_threshold=int(computer.get("batch_threshold", 16)),
            sharding=sharding,
            stream=stream,
            version=version,
            delta_seq=int(meta.get("delta_seq", 0)),
        )

    # ------------------------------------------------------------------ #
    # disk
    # ------------------------------------------------------------------ #
    def save(self, path: str | Path, backend: str | None = None) -> Path:
        """Atomically write this snapshot (see :mod:`.backends`)."""
        return backends.write_document(self.to_document(), path, backend)

    @classmethod
    def load(cls, path: str | Path, backend: str | None = None) -> "Snapshot":
        """Read a snapshot; the backend is sniffed from the file bytes."""
        return cls.from_document(backends.read_document(path, backend))

    @classmethod
    def load_chain(
        cls, path: str | Path, backend: str | None = None
    ) -> tuple["Snapshot", dict[str, Any] | None]:
        """Load a base snapshot and replay its delta chain, if one rides it.

        Looks for the ``<path>.delta`` append-only log next to the base
        (see :mod:`repro.io.delta`); when present, validates it
        (checksums, seq contiguity, base fingerprint — any damage raises
        :class:`ValueError` with a one-line message) and replays every
        record newer than the base's ``delta_seq`` watermark.  The
        replayed snapshot is byte-identical to a full snapshot taken at
        the chain's last checkpoint boundary.

        Returns ``(snapshot, chain_info)`` where ``chain_info`` is
        ``None`` when no log exists, else the dict
        :func:`repro.io.delta.chain_info` describes.
        """
        from . import delta as delta_chain

        document = backends.read_document(path, backend)
        snapshot = cls.from_document(document)
        log_path = delta_chain.delta_log_path(path)
        if not log_path.exists():
            return snapshot, None
        fingerprint = delta_chain.document_fingerprint(document)
        records = delta_chain.read_chain(
            log_path, snapshot.delta_seq, fingerprint
        )
        for record in records:
            delta_chain.replay_record(snapshot, record)
        info = {
            "log": str(log_path),
            "log_bytes": log_path.stat().st_size,
            "base_seq": snapshot.delta_seq,
            "base_fingerprint": fingerprint,
            "chain_length": len(records),
            "last_seq": records[-1].seq if records else snapshot.delta_seq,
            "n_papers": sum(len(r.papers) for r in records),
        }
        return snapshot, info


def snapshot_of(
    estimator: "IUAD", stream: IncrementalReport | None = None
) -> Snapshot:
    """Convenience alias for :meth:`Snapshot.of`."""
    return Snapshot.of(estimator, stream=stream)


# --------------------------------------------------------------------- #
# sharding / stream payloads
# --------------------------------------------------------------------- #
def _encode_sharding(state: ShardingState) -> dict[str, Any]:
    index = state.index
    payload: dict[str, Any] = {
        "index": {
            "uf": schema.encode_unionfind(index._uf),
            "name_to_shard": dict(index._name_to_shard),
            "next_shard": index._next_shard,
            "n_bridges": index.n_bridges,
        },
        "cannot_links": [[u, v] for u, v in state.cannot_links],
    }
    if state.plan is not None:
        payload["plan"] = {
            "shards": [
                {
                    "index": s.index,
                    "names": list(s.names),
                    "owned_vids": list(s.owned_vids),
                    "halo_vids": list(s.halo_vids),
                    "pids": list(s.pids),
                    "n_candidate_pairs": s.n_candidate_pairs,
                }
                for s in state.plan.shards
            ],
            "fastpath_vids": list(state.plan.fastpath_vids),
            "name_to_shard": dict(state.plan.name_to_shard),
            "n_blocks": state.plan.n_blocks,
            "seconds": state.plan.seconds,
        }
    return payload


def _decode_sharding(payload: Mapping[str, Any]) -> ShardingState:
    raw_index = payload["index"]
    index = ShardIndex({}, 0)
    index._uf = schema.decode_unionfind(raw_index["uf"])
    index._name_to_shard = {
        name: int(sid) for name, sid in raw_index["name_to_shard"].items()
    }
    index._next_shard = int(raw_index["next_shard"])
    index.n_bridges = int(raw_index["n_bridges"])
    plan = None
    if "plan" in payload:
        raw_plan = payload["plan"]
        plan = ShardPlan(
            shards=[
                Shard(
                    index=int(s["index"]),
                    names=tuple(s["names"]),
                    owned_vids=tuple(int(v) for v in s["owned_vids"]),
                    halo_vids=tuple(int(v) for v in s["halo_vids"]),
                    pids=tuple(int(p) for p in s["pids"]),
                    n_candidate_pairs=int(s["n_candidate_pairs"]),
                )
                for s in raw_plan["shards"]
            ],
            fastpath_vids=tuple(int(v) for v in raw_plan["fastpath_vids"]),
            name_to_shard={
                name: int(sid)
                for name, sid in raw_plan["name_to_shard"].items()
            },
            n_blocks=int(raw_plan["n_blocks"]),
            seconds=float(raw_plan["seconds"]),
        )
    return ShardingState(
        plan=plan,
        index=index,
        cannot_links=[(int(u), int(v)) for u, v in payload["cannot_links"]],
    )


def _encode_stream(report: IncrementalReport) -> dict[str, Any]:
    return {
        "n_papers": report.n_papers,
        "n_mentions": report.n_mentions,
        "n_attached": report.n_attached,
        "n_created": report.n_created,
        "n_duplicates": report.n_duplicates,
        "n_batches": report.n_batches,
        "n_waves": report.n_waves,
        "seconds": report.seconds,
        "timing_window": report.timing_window,
        # JSON objects stringify int keys; decode re-ints them.
        "per_shard_papers": {
            str(shard): count
            for shard, count in report.per_shard_papers.items()
        },
        "recent_seconds": list(report.per_paper_seconds),
    }


def _decode_stream(payload: Mapping[str, Any]) -> IncrementalReport:
    report = IncrementalReport(
        n_papers=int(payload["n_papers"]),
        n_mentions=int(payload["n_mentions"]),
        n_attached=int(payload["n_attached"]),
        n_created=int(payload["n_created"]),
        n_duplicates=int(payload["n_duplicates"]),
        n_batches=int(payload["n_batches"]),
        n_waves=int(payload["n_waves"]),
        seconds=float(payload["seconds"]),
        timing_window=int(payload["timing_window"]),
        per_shard_papers={
            int(shard): int(count)
            for shard, count in payload["per_shard_papers"].items()
        },
    )
    for sample in payload.get("recent_seconds", ()):
        report._recent_seconds.append(float(sample))
    return report


# --------------------------------------------------------------------- #
# header inspection (library core of ``tools/snapshot.py inspect``)
# --------------------------------------------------------------------- #
def snapshot_header(path: str | Path, backend: str | None = None) -> dict:
    """Validated, machine-readable snapshot header — without a full decode.

    Reads the document (no fitted objects are materialised) and
    cross-checks the header against the tables it describes: format
    name, schema version range, count fields vs actual table lengths.
    Every corruption mode raises :class:`ValueError` with a one-line
    message — the CLI (``tools/snapshot.py inspect --json``) and the
    serve CLI turn that into a non-zero exit instead of a traceback.

    The returned dict is JSON-ready::

        {"path", "backend", "adapter", "bytes", "format", "version",
         "kind", "n_papers", "n_vertices", "n_edges", "has_scn",
         "has_stream", "has_embeddings", "sharding": {...} | None,
         "stream": {...} | None, "delta_seq", "delta": {...} | None}

    ``adapter`` is the resolved driver name (``backend`` is kept as an
    alias for older callers).  ``delta`` summarises the sibling delta
    chain when one exists — chain length, base fingerprint, seq range —
    and a damaged chain (torn tail, checksum failure, seq gap) raises
    here, so ``inspect`` on a broken chain exits non-zero.
    """
    path = Path(path)
    if not path.exists():
        raise ValueError(f"{path}: no such file")
    try:
        resolved = backends.resolve_backend(path, backend)
        document = backends.read_document(path, backend)
    except ValueError:
        raise
    except Exception as exc:
        raise ValueError(f"{path}: unreadable snapshot ({exc})") from exc
    if not isinstance(document, Mapping):
        raise ValueError(f"{path}: snapshot document is not an object")
    meta = document.get("meta")
    tables = document.get("tables")
    sections = document.get("sections")
    if not isinstance(meta, Mapping) or not isinstance(tables, Mapping) \
            or not isinstance(sections, Mapping):
        raise ValueError(
            f"{path}: snapshot document lacks meta/sections/tables"
        )
    if meta.get("format") != schema.FORMAT_NAME:
        raise ValueError(
            f"{path}: not a repro snapshot "
            f"(meta.format={meta.get('format')!r})"
        )
    try:
        version = int(meta.get("version", 0))
    except (TypeError, ValueError):
        raise ValueError(
            f"{path}: non-integer schema version {meta.get('version')!r}"
        ) from None
    if version < 1 or version > schema.SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported schema version {version} "
            f"(this build reads 1..{schema.SCHEMA_VERSION})"
        )
    header: dict = {
        "path": str(path),
        "backend": resolved.name,
        "adapter": resolved.name,
        "bytes": path.stat().st_size,
        "format": meta["format"],
        "version": version,
        "kind": meta.get("kind", "iuad"),
    }
    for key, table in (
        ("n_papers", "papers"),
        ("n_vertices", "gcn_vertices"),
    ):
        declared = meta.get(key if key != "n_vertices" else "n_gcn_vertices")
        actual = tables.get(table)
        if not isinstance(actual, list):
            raise ValueError(f"{path}: missing table {table!r}")
        if declared is not None and int(declared) != len(actual):
            raise ValueError(
                f"{path}: header claims {declared} {table} rows, "
                f"the table holds {len(actual)}"
            )
        header[key] = len(actual)
    header["n_edges"] = len(tables.get("gcn_edges", []))
    gcn_meta = sections.get("gcn_meta")
    if not isinstance(gcn_meta, Mapping) or "next_vid" not in gcn_meta:
        raise ValueError(f"{path}: gcn_meta section is missing or incomplete")
    header["next_vid"] = int(gcn_meta["next_vid"])
    header["has_scn"] = "scn_meta" in sections
    header["has_stream"] = "stream" in sections
    header["has_embeddings"] = bool(tables.get("embedding_rows"))
    sharding = sections.get("sharding")
    if sharding is not None:
        try:
            plan = sharding.get("plan")
            header["sharding"] = {
                "n_shards": len(plan["shards"]) if plan else 0,
                "routed_names": len(sharding["index"]["name_to_shard"]),
                "n_bridges": int(sharding["index"]["n_bridges"]),
                "n_cannot_links": len(sharding["cannot_links"]),
            }
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"{path}: malformed sharding section ({exc!r})"
            ) from None
    else:
        header["sharding"] = None
    stream = sections.get("stream")
    if stream is not None:
        try:
            header["stream"] = {
                key: int(stream[key])
                for key in ("n_papers", "n_mentions", "n_attached",
                            "n_created", "n_duplicates")
            }
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"{path}: malformed stream section ({exc!r})"
            ) from None
    else:
        header["stream"] = None
    from . import delta as delta_chain

    try:
        delta_seq = int(meta.get("delta_seq", 0))
    except (TypeError, ValueError):
        raise ValueError(
            f"{path}: non-integer delta_seq {meta.get('delta_seq')!r}"
        ) from None
    header["delta_seq"] = delta_seq
    log_path = delta_chain.delta_log_path(path)
    if log_path.exists():
        header["delta"] = delta_chain.chain_info(
            path, delta_seq, delta_chain.document_fingerprint(document)
        )
    else:
        header["delta"] = None
    return header


# --------------------------------------------------------------------- #
# verification (library core of ``tools/snapshot.py verify``)
# --------------------------------------------------------------------- #
def verify_snapshot(snapshot: Snapshot) -> list[str]:
    """Structural invariant sweep; returns one message per violation.

    Checks the contracts every consumer of a restored snapshot leans on:
    unique per-occurrence mention ownership, mention/paper consistency
    against the corpus, a ``next_vid`` watermark strictly above every
    live id, a complete and name-consistent name index (already enforced
    during decode — re-checked here for snapshots built in memory), edge
    sanity, model arity, and shard-index coverage of the network names.
    """
    errors: list[str] = []
    for label, net in (("gcn", snapshot.gcn), ("scn", snapshot.scn)):
        if net is None:
            continue
        errors.extend(_verify_network(label, net, snapshot.corpus))
    if len(snapshot.model.families) != 6:
        errors.append(
            f"model: {len(snapshot.model.families)} families (expected 6)"
        )
    if snapshot.sharding is not None:
        index = snapshot.sharding.index
        for name in snapshot.gcn.names:
            if index.shard_of_name(name) is None:
                errors.append(f"sharding: name {name!r} has no owning shard")
        for u, v in snapshot.sharding.cannot_links:
            if u not in snapshot.gcn or v not in snapshot.gcn:
                errors.append(
                    f"sharding: cannot-link ({u}, {v}) references "
                    "unknown vertices"
                )
    if snapshot.stream is not None and snapshot.stream.n_papers < 0:
        errors.append("stream: negative paper counter")
    return errors


def _verify_network(
    label: str, net: CollaborationNetwork, corpus: Corpus
) -> list[str]:
    errors: list[str] = []
    owners: dict[Pair, int] = {}
    max_vid = -1
    for vertex in net:
        max_vid = max(max_vid, vertex.vid)
        for pid, position in vertex.mentions.items():
            if pid not in vertex.papers:
                errors.append(
                    f"{label}: vertex {vertex.vid} mentions paper {pid} "
                    "without attributing it"
                )
            if pid not in corpus:
                errors.append(
                    f"{label}: vertex {vertex.vid} mentions unknown "
                    f"paper {pid}"
                )
            else:
                authors = corpus[pid].authors
                if not 0 <= position < len(authors):
                    errors.append(
                        f"{label}: vertex {vertex.vid} mention "
                        f"({pid}, {position}) is out of the co-author list"
                    )
                elif authors[position] != vertex.name:
                    errors.append(
                        f"{label}: vertex {vertex.vid} ({vertex.name!r}) "
                        f"owns mention ({pid}, {position}) of "
                        f"{authors[position]!r}"
                    )
            key = (pid, position)
            if key in owners:
                errors.append(
                    f"{label}: mention {key} owned by vertices "
                    f"{owners[key]} and {vertex.vid}"
                )
            owners[key] = vertex.vid
    if net._next_vid <= max_vid:
        errors.append(
            f"{label}: next_vid {net._next_vid} <= max live id {max_vid}"
        )
    for u, v, papers in net.edges():
        if not papers:
            errors.append(f"{label}: edge ({u}, {v}) carries no papers")
    return errors
