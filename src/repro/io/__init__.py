"""Durable snapshots & warm-start resume: multi-backend persistence.

Public surface:

* :class:`~repro.io.snapshot.Snapshot` — the versioned, complete fitted
  state (networks, model, embeddings, frequency tables, corpus, config,
  sharding, streaming counters) with :meth:`~repro.io.snapshot.Snapshot.save`
  / :meth:`~repro.io.snapshot.Snapshot.load` /
  :meth:`~repro.io.snapshot.Snapshot.restore`;
* :func:`~repro.io.snapshot.snapshot_of` — capture a fitted estimator;
* :func:`~repro.io.snapshot.verify_snapshot` — the invariant sweep behind
  ``tools/snapshot.py verify``;
* :func:`~repro.io.snapshot.snapshot_header` — validated machine-readable
  header without a full decode (``tools/snapshot.py inspect --json`` and
  the ``tools/serve.py`` warm-start validation);
* :data:`~repro.io.backends.BACKENDS` /
  :func:`~repro.io.backends.resolve_backend` — the interchangeable JSONL
  and SQLite storage backends;
* :data:`~repro.io.schema.SCHEMA_VERSION` — the document version.

See ``docs/architecture.md`` ("Persistence & warm start") for the format
and the atomicity contract.
"""

from .backends import BACKENDS, read_document, resolve_backend, write_document
from .schema import FORMAT_NAME, SCHEMA_VERSION
from .snapshot import (
    Snapshot,
    ShardingState,
    snapshot_header,
    snapshot_of,
    verify_snapshot,
)

__all__ = [
    "BACKENDS",
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "ShardingState",
    "Snapshot",
    "read_document",
    "resolve_backend",
    "snapshot_header",
    "snapshot_of",
    "verify_snapshot",
    "write_document",
]
