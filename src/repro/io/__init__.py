"""Durable snapshots & warm-start resume: multi-adapter persistence.

Public surface:

* :class:`~repro.io.snapshot.Snapshot` — the versioned, complete fitted
  state (networks, model, embeddings, frequency tables, corpus, config,
  sharding, streaming counters) with :meth:`~repro.io.snapshot.Snapshot.save`
  / :meth:`~repro.io.snapshot.Snapshot.load` /
  :meth:`~repro.io.snapshot.Snapshot.load_chain` /
  :meth:`~repro.io.snapshot.Snapshot.restore`;
* :func:`~repro.io.snapshot.snapshot_of` — capture a fitted estimator;
* :func:`~repro.io.snapshot.verify_snapshot` — the invariant sweep behind
  ``tools/snapshot.py verify``;
* :func:`~repro.io.snapshot.snapshot_header` — validated machine-readable
  header without a full decode (``tools/snapshot.py inspect --json`` and
  the ``tools/serve.py`` warm-start validation), delta-chain aware;
* the **adapter registry** (:mod:`repro.io.adapters`) —
  :func:`~repro.io.adapters.register_adapter` /
  :func:`~repro.io.adapters.resolve_adapter` /
  :func:`~repro.io.adapters.list_adapters` over the bundled JSONL and
  SQLite drivers (``BACKENDS`` / ``resolve_backend`` remain as aliases);
* **delta chains** (:mod:`repro.io.delta`) — append-only O(changes)
  checkpoints replayed on top of a base snapshot, with compaction;
* **point queries** (:mod:`repro.io.query`) —
  :class:`~repro.io.query.SnapshotQuery` answers ``who_is`` /
  ``owner_of`` straight off the snapshot file (indexed SQL when the
  adapter supports it) without materialising fitted state;
* :data:`~repro.io.schema.SCHEMA_VERSION` — the document version.

See ``docs/architecture.md`` ("Persistence & warm start") for the format,
the atomicity contract and the delta-chain design.
"""

from .adapters import (
    ADAPTERS,
    SnapshotAdapter,
    list_adapters,
    register_adapter,
    resolve_adapter,
)
from .backends import BACKENDS, read_document, resolve_backend, write_document
from .delta import compact_chain, delta_log_path
from .query import SnapshotQuery
from .schema import FORMAT_NAME, SCHEMA_VERSION
from .snapshot import (
    Snapshot,
    ShardingState,
    snapshot_header,
    snapshot_of,
    verify_snapshot,
)

__all__ = [
    "ADAPTERS",
    "BACKENDS",
    "FORMAT_NAME",
    "SCHEMA_VERSION",
    "ShardingState",
    "Snapshot",
    "SnapshotAdapter",
    "SnapshotQuery",
    "compact_chain",
    "delta_log_path",
    "list_adapters",
    "read_document",
    "register_adapter",
    "resolve_adapter",
    "resolve_backend",
    "snapshot_header",
    "snapshot_of",
    "verify_snapshot",
    "write_document",
]
