"""Versioned snapshot schema: fitted state ⇄ plain-JSON documents.

The persistence layer is split in three:

* this module — *what* is stored: encoders/decoders between the live
  fitted objects (:class:`~repro.graphs.collab.CollaborationNetwork`,
  :class:`~repro.model.mixture.MatchMixture`, …) and a **document** of
  plain JSON-ready containers;
* :mod:`.backends` — *how* bytes hit disk (JSONL or SQLite), behind one
  document shape shared by both;
* :mod:`.snapshot` — the user-facing :class:`~repro.io.snapshot.Snapshot`
  tying the two together.

Document shape (``SCHEMA_VERSION`` 1)::

    {
      "meta":     {"format": "repro-snapshot", "version": 1,
                   "kind": "iuad" | "sharded", ...counts},
      "tables":   {name: [record, ...]},   # bulk rows, streamed by JSONL,
                                           # real tables in SQLite
      "sections": {name: payload},         # small one-object sections
    }

Bulk tables: ``papers``, ``gcn_vertices``/``gcn_edges``,
``scn_vertices``/``scn_edges`` (optional) and ``embedding_rows``
(optional).  Sections: ``config``, ``model``, ``computer`` (the frequency
tables the similarity computer was *fitted* with — deriving them from the
reloaded corpus would silently shift γ4/γ6 once streamed papers have
grown the corpus past the fit-time tables), ``gcn_meta``/``scn_meta``
(name-index order + ``next_vid``), ``sharding`` and ``stream``.

Exactness: every float travels through JSON text, which Python round-trips
bit-exactly (shortest-repr), and every order that influences later
decisions — the network name index, the corpus insertion order, the
union-find parent maps — is stored explicitly rather than re-derived.
"""

from __future__ import annotations

from dataclasses import fields
from typing import Any, Mapping

import numpy as np

from ..core.config import IUADConfig
from ..data.records import Corpus, Paper
from ..graphs.collab import CollaborationNetwork
from ..graphs.unionfind import UnionFind
from ..model.mixture import MatchMixture
from ..text.embeddings import WordEmbeddings

#: Version of the document layout.  Bump on incompatible changes and keep
#: a decoder for every version with a committed fixture
#: (``tests/fixtures/``) proving old snapshots still load.
SCHEMA_VERSION = 1

#: ``meta.format`` marker — lets ``inspect`` reject arbitrary JSONL/SQLite
#: files early with a clear error.
FORMAT_NAME = "repro-snapshot"


# --------------------------------------------------------------------- #
# papers / corpus
# --------------------------------------------------------------------- #
def encode_paper(paper: Paper) -> dict[str, Any]:
    out: dict[str, Any] = {
        "pid": paper.pid,
        "authors": list(paper.authors),
        "title": paper.title,
        "venue": paper.venue,
        "year": paper.year,
    }
    if paper.author_ids is not None:
        out["author_ids"] = list(paper.author_ids)
    return out


def decode_paper(record: Mapping[str, Any]) -> Paper:
    ids = record.get("author_ids")
    return Paper(
        pid=int(record["pid"]),
        authors=tuple(record["authors"]),
        title=str(record["title"]),
        venue=str(record["venue"]),
        year=int(record["year"]),
        author_ids=tuple(ids) if ids is not None else None,
    )


def encode_corpus(corpus: Corpus) -> list[dict[str, Any]]:
    """Papers in corpus iteration order (= insertion order, which the
    per-name pid indexes replay on load)."""
    return [encode_paper(p) for p in corpus]


def decode_corpus(records: list[Mapping[str, Any]]) -> Corpus:
    return Corpus(decode_paper(r) for r in records)


# --------------------------------------------------------------------- #
# collaboration networks
# --------------------------------------------------------------------- #
def encode_network(
    net: CollaborationNetwork,
) -> tuple[list[dict[str, Any]], list[dict[str, Any]], dict[str, Any]]:
    """``(vertex rows, edge rows, meta section)`` for one network."""
    vertices, edges, name_index, next_vid = net.export_parts()
    vertex_rows = [
        {"vid": vid, "name": name, "papers": papers, "mentions": mentions}
        for vid, name, papers, mentions in vertices
    ]
    edge_rows = [{"u": u, "v": v, "papers": papers} for u, v, papers in edges]
    meta = {
        "next_vid": next_vid,
        "name_index": [[name, vids] for name, vids in name_index],
    }
    return vertex_rows, edge_rows, meta


def decode_network(
    vertex_rows: list[Mapping[str, Any]],
    edge_rows: list[Mapping[str, Any]],
    meta: Mapping[str, Any],
) -> CollaborationNetwork:
    return CollaborationNetwork.from_parts(
        vertices=[
            (
                int(r["vid"]),
                r["name"],
                [int(p) for p in r["papers"]],
                [(int(pid), int(pos)) for pid, pos in r["mentions"]],
            )
            for r in vertex_rows
        ],
        edges=[
            (int(r["u"]), int(r["v"]), [int(p) for p in r["papers"]])
            for r in edge_rows
        ],
        name_index=[
            (name, [int(v) for v in vids]) for name, vids in meta["name_index"]
        ],
        next_vid=int(meta["next_vid"]),
    )


# --------------------------------------------------------------------- #
# config
# --------------------------------------------------------------------- #
def encode_config(config: IUADConfig) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        out[f.name] = list(value) if isinstance(value, tuple) else value
    return out


def decode_config(payload: Mapping[str, Any]) -> IUADConfig:
    """Build a config, tolerating schema drift in both directions.

    Keys a newer snapshot carries that this build does not know are
    ignored; knobs this build added after the snapshot was written fall
    back to their defaults.  The constructor re-validates everything.
    """
    known = {f.name for f in fields(IUADConfig)}
    kwargs = {k: v for k, v in payload.items() if k in known}
    if "families" in kwargs:
        kwargs["families"] = tuple(kwargs["families"])
    return IUADConfig(**kwargs)


# --------------------------------------------------------------------- #
# model + embeddings
# --------------------------------------------------------------------- #
def encode_model(model: MatchMixture) -> dict[str, Any]:
    return model.state_dict()


def decode_model(payload: Mapping[str, Any]) -> MatchMixture:
    return MatchMixture.from_state(dict(payload))


def encode_embeddings(
    embeddings: WordEmbeddings | None,
) -> list[list[Any]] | None:
    """``[[word, [floats...]], ...]`` rows, or ``None`` when γ3 runs on
    the keyword-cosine fallback.

    The stored vectors are the *normalized* matrix the live object holds;
    :func:`decode_embeddings` restores them verbatim instead of passing
    them back through ``WordEmbeddings.__init__`` (whose re-normalization
    of an already-normalized matrix would perturb the low bits and break
    bit-exact resume parity).
    """
    if embeddings is None:
        return None
    matrix = embeddings._matrix
    return [
        [word, [float(x) for x in matrix[i]]]
        for word, i in embeddings._index.items()
    ]


def decode_embeddings(rows: list[list[Any]] | None) -> WordEmbeddings | None:
    if rows is None:
        return None
    vocabulary = [word for word, _vector in rows]
    matrix = np.asarray([vector for _word, vector in rows], dtype=np.float64)
    embeddings = WordEmbeddings.__new__(WordEmbeddings)
    embeddings._index = {w: i for i, w in enumerate(vocabulary)}
    embeddings._matrix = matrix
    return embeddings


# --------------------------------------------------------------------- #
# union-find (shard index routing state)
# --------------------------------------------------------------------- #
def encode_unionfind(uf: UnionFind) -> dict[str, Any]:
    """Exact structural state, int keys only (the shard-id universe).

    Parent pointers are stored verbatim — *not* canonicalised — so a
    reloaded index resolves every future ``find``/``union`` exactly as
    the live one would (union-by-size outcomes depend on the accumulated
    size table, which rides along).
    """
    return {
        "parent": [[k, v] for k, v in uf._parent.items()],
        "size": [[k, s] for k, s in uf._size.items()],
        "forbidden": [
            [k, sorted(others)] for k, others in uf._forbidden.items() if others
        ],
    }


def decode_unionfind(payload: Mapping[str, Any]) -> UnionFind:
    uf = UnionFind()
    for k, v in payload["parent"]:
        uf._parent[int(k)] = int(v)
    for k, s in payload["size"]:
        uf._size[int(k)] = int(s)
    for k, others in payload.get("forbidden", []):
        uf._forbidden[int(k)] = {int(o) for o in others}
    unknown = set(uf._parent.values()) - set(uf._parent)
    if unknown:
        raise ValueError(f"union-find parents reference unknown keys: {unknown}")
    return uf
