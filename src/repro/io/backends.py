"""Compatibility shim over :mod:`repro.io.adapters`.

The JSONL/SQLite storage backends moved into the persistence adapter
registry (``repro.io.adapters`` — one document shape, N drivers, plus
byte-sniffed resolution and the tmp+fsync+rename atomicity contract,
all unchanged).  This module keeps the historical import surface alive:

* :data:`BACKENDS` — live read-only view of the adapter registry;
* :func:`resolve_backend` — alias of
  :func:`repro.io.adapters.resolve_adapter`;
* :func:`read_document` / :func:`write_document` — the document I/O
  entry points (same atomicity semantics, same signatures).

New code should import from :mod:`repro.io.adapters` (or the
:mod:`repro.io` package root) directly.
"""

from __future__ import annotations

import os  # noqa: F401  (monkeypatch surface of the crash-window tests)

from .adapters import (
    ADAPTERS as BACKENDS,
    read_document,
    resolve_adapter as resolve_backend,
    write_document,
)
from .adapters.jsonl import JsonlAdapter as JsonlBackend
from .adapters.sqlite import SQLITE_MAGIC as _SQLITE_MAGIC  # noqa: F401
from .adapters.sqlite import SqliteAdapter as SqliteBackend

__all__ = [
    "BACKENDS",
    "JsonlBackend",
    "SqliteBackend",
    "read_document",
    "resolve_backend",
    "write_document",
]
