"""Snapshot storage backends: JSONL and SQLite behind one document shape.

Both backends persist the same document (see :mod:`.schema`) and are
freely interchangeable — ``tools/snapshot.py convert`` moves a snapshot
between them without touching the payload:

* **JSONL** — one JSON object per line: human-diffable, appends stream,
  ``grep``/``jq`` friendly.  The natural format for committed fixtures
  and for eyeballing what a checkpoint actually contains.
* **SQLite** — a single queryable file: bulk rows land in real tables
  (``papers``, ``vertices``, ``edges``, ``embedding_rows``) so ad-hoc
  SQL works on a fitted snapshot, and the whole write is one
  transaction.

Atomicity contract
------------------

:func:`write_document` never exposes a half-written snapshot: the
document is written to ``<name>.tmp`` in the target directory, flushed
and fsynced, then atomically renamed over the destination
(``os.replace``).  A crash mid-write leaves at worst a stale ``.tmp``
next to an intact previous snapshot; the next write unlinks it.
:func:`read_document` never looks at ``.tmp`` files.
"""

from __future__ import annotations

import json
import os
import sqlite3
from pathlib import Path
from typing import Any

#: Magic prefix of every SQLite database file.
_SQLITE_MAGIC = b"SQLite format 3\x00"

#: Path suffixes that select the SQLite backend when writing a fresh file.
_SQLITE_SUFFIXES = {".sqlite", ".sqlite3", ".db"}

#: Bulk tables with first-class SQLite columns; everything else in the
#: document's ``tables`` mapping is rejected (schema and backends move in
#: lock-step — an unknown table means a version skew, not data to guess at).
_TABLES = ("papers", "gcn_vertices", "gcn_edges", "scn_vertices", "scn_edges",
           "embedding_rows")


class JsonlBackend:
    """One JSON object per line: ``meta`` first, then sections, then rows."""

    name = "jsonl"

    def write(self, document: dict[str, Any], path: Path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(_line({"meta": document["meta"]}))
            for name, payload in document["sections"].items():
                fh.write(_line({"section": name, "payload": payload}))
            for name, rows in document["tables"].items():
                for row in rows:
                    fh.write(_line({"table": name, "row": row}))
            fh.flush()
            os.fsync(fh.fileno())

    def read(self, path: Path) -> dict[str, Any]:
        meta: dict[str, Any] | None = None
        sections: dict[str, Any] = {}
        tables: dict[str, list[Any]] = {}
        with open(path, "r", encoding="utf-8") as fh:
            for lineno, raw in enumerate(fh, 1):
                if not raw.strip():
                    continue
                try:
                    obj = json.loads(raw)
                except json.JSONDecodeError as exc:
                    raise ValueError(
                        f"{path}: line {lineno} is not valid JSON ({exc}); "
                        "is this a snapshot file?"
                    ) from exc
                if "meta" in obj:
                    meta = obj["meta"]
                elif "section" in obj:
                    sections[obj["section"]] = obj["payload"]
                elif "table" in obj:
                    tables.setdefault(obj["table"], []).append(obj["row"])
                else:
                    raise ValueError(f"{path}: line {lineno} has no known key")
        if meta is None:
            raise ValueError(f"{path}: no meta line — not a snapshot file")
        return {"meta": meta, "sections": sections, "tables": tables}


class SqliteBackend:
    """Single-file SQLite database with real tables for the bulk rows."""

    name = "sqlite"

    _SCHEMA = """
        CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE sections (name TEXT PRIMARY KEY, payload TEXT NOT NULL);
        CREATE TABLE papers (
            seq INTEGER PRIMARY KEY, pid INTEGER NOT NULL, payload TEXT NOT NULL
        );
        CREATE TABLE vertices (
            net TEXT NOT NULL, seq INTEGER NOT NULL, vid INTEGER NOT NULL,
            name TEXT NOT NULL, payload TEXT NOT NULL,
            PRIMARY KEY (net, seq)
        );
        CREATE TABLE edges (
            net TEXT NOT NULL, seq INTEGER NOT NULL, u INTEGER NOT NULL,
            v INTEGER NOT NULL, payload TEXT NOT NULL,
            PRIMARY KEY (net, seq)
        );
        CREATE TABLE embedding_rows (
            seq INTEGER PRIMARY KEY, word TEXT NOT NULL, vector TEXT NOT NULL
        );
    """

    def write(self, document: dict[str, Any], path: Path) -> None:
        # A leftover (possibly truncated) file at the target confuses
        # sqlite3.connect; start from a clean slate.  The caller hands us
        # a .tmp path, never the live snapshot.
        path.unlink(missing_ok=True)
        conn = sqlite3.connect(path)
        try:
            with conn:  # one transaction for the entire snapshot
                conn.executescript(self._SCHEMA)
                conn.executemany(
                    "INSERT INTO meta (key, value) VALUES (?, ?)",
                    [(k, json.dumps(v)) for k, v in document["meta"].items()],
                )
                conn.executemany(
                    "INSERT INTO sections (name, payload) VALUES (?, ?)",
                    [
                        (name, json.dumps(payload))
                        for name, payload in document["sections"].items()
                    ],
                )
                for name, rows in document["tables"].items():
                    if name not in _TABLES:
                        raise ValueError(f"unknown snapshot table {name!r}")
                    if name == "papers":
                        conn.executemany(
                            "INSERT INTO papers (seq, pid, payload) "
                            "VALUES (?, ?, ?)",
                            [
                                (i, row["pid"], json.dumps(row))
                                for i, row in enumerate(rows)
                            ],
                        )
                    elif name.endswith("_vertices"):
                        net = name[: -len("_vertices")]
                        conn.executemany(
                            "INSERT INTO vertices (seq, net, vid, name, payload)"
                            " VALUES (?, ?, ?, ?, ?)",
                            [
                                (i, net, row["vid"], row["name"], json.dumps(row))
                                for i, row in enumerate(rows)
                            ],
                        )
                    elif name.endswith("_edges"):
                        net = name[: -len("_edges")]
                        conn.executemany(
                            "INSERT INTO edges (seq, net, u, v, payload) "
                            "VALUES (?, ?, ?, ?, ?)",
                            [
                                (i, net, row["u"], row["v"], json.dumps(row))
                                for i, row in enumerate(rows)
                            ],
                        )
                    else:  # embedding_rows
                        conn.executemany(
                            "INSERT INTO embedding_rows (seq, word, vector) "
                            "VALUES (?, ?, ?)",
                            [
                                (i, word, json.dumps(vector))
                                for i, (word, vector) in enumerate(rows)
                            ],
                        )
        finally:
            conn.close()

    def read(self, path: Path) -> dict[str, Any]:
        conn = sqlite3.connect(f"file:{path}?mode=ro", uri=True)
        try:
            meta = {
                k: json.loads(v)
                for k, v in conn.execute("SELECT key, value FROM meta")
            }
            sections = {
                name: json.loads(payload)
                for name, payload in conn.execute(
                    "SELECT name, payload FROM sections"
                )
            }
            tables: dict[str, list[Any]] = {}
            papers = [
                json.loads(payload)
                for (payload,) in conn.execute(
                    "SELECT payload FROM papers ORDER BY seq"
                )
            ]
            if papers:
                tables["papers"] = papers
            for net, table, column in (
                ("gcn", "vertices", "gcn_vertices"),
                ("scn", "vertices", "scn_vertices"),
                ("gcn", "edges", "gcn_edges"),
                ("scn", "edges", "scn_edges"),
            ):
                rows = [
                    json.loads(payload)
                    for (payload,) in conn.execute(
                        f"SELECT payload FROM {table} WHERE net = ? "
                        "ORDER BY seq",
                        (net,),
                    )
                ]
                if rows or column in ("gcn_vertices", "gcn_edges"):
                    tables[column] = rows
            embedding = [
                [word, json.loads(vector)]
                for word, vector in conn.execute(
                    "SELECT word, vector FROM embedding_rows ORDER BY seq"
                )
            ]
            if embedding:
                tables["embedding_rows"] = embedding
            return {"meta": meta, "sections": sections, "tables": tables}
        except sqlite3.DatabaseError as exc:
            raise ValueError(f"{path}: not a readable snapshot ({exc})") from exc
        finally:
            conn.close()


BACKENDS: dict[str, Any] = {
    JsonlBackend.name: JsonlBackend(),
    SqliteBackend.name: SqliteBackend(),
}


def resolve_backend(path: str | Path, backend: str | None = None):
    """Pick a backend: explicit name > file magic > path suffix > JSONL.

    Reading sniffs the file's first bytes (a SQLite database always
    starts with the 16-byte magic header), so ``load`` works on any
    snapshot regardless of how it was named.
    """
    if backend is not None:
        try:
            return BACKENDS[backend]
        except KeyError:
            raise ValueError(
                f"unknown snapshot backend {backend!r}; "
                f"choose from {sorted(BACKENDS)}"
            ) from None
    path = Path(path)
    if path.exists():
        with open(path, "rb") as fh:
            if fh.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC:
                return BACKENDS["sqlite"]
        return BACKENDS["jsonl"]
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return BACKENDS["sqlite"]
    return BACKENDS["jsonl"]


def write_document(
    document: dict[str, Any], path: str | Path, backend: str | None = None
) -> Path:
    """Atomically persist a document: tmp file + fsync + rename."""
    path = Path(path)
    # Resolution runs against the *destination*: overwriting an existing
    # snapshot keeps its format (checkpoints never silently flip backend),
    # a fresh path goes by explicit choice or suffix.
    chosen = resolve_backend(path, backend)
    tmp = path.with_name(path.name + ".tmp")
    chosen.write(document, tmp)
    _fsync_path(tmp)
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    return path


def read_document(path: str | Path, backend: str | None = None) -> dict[str, Any]:
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no snapshot at {path}")
    return resolve_backend(path, backend).read(path)


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: Path) -> None:
    # Durability of the rename itself; not supported on some platforms
    # (best effort — the rename's atomicity does not depend on it).
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _line(obj: dict[str, Any]) -> str:
    return json.dumps(obj, ensure_ascii=False, separators=(",", ":")) + "\n"
