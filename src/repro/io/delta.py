"""Append-only delta checkpoints: O(changes) durability for streams.

A full snapshot is O(corpus) bytes — ~2.3 MB at 3k papers and GB-scale
at the millions-of-papers regime real AND corpora reach — so writing one
per checkpoint makes steady-state durability quadratically more
expensive as the streamed corpus grows.  A **delta chain** keeps the
cost proportional to what actually changed:

* the **base** is an ordinary full snapshot (any registered adapter),
  whose ``meta.delta_seq`` records how many deltas it has folded in;
* the **log** is an append-only JSONL sibling (``<base>.delta``) of
  :class:`DeltaRecord` lines, each carrying the papers ingested since
  the previous checkpoint together with the *assignment decisions* the
  streaming path already produced — exactly the information needed to
  replay the burst without re-scoring anything — plus the stream
  counters at the boundary, a sequence number, the base fingerprint and
  a content checksum.

Replay (:func:`replay_record`) re-executes the recorded decisions
through the same network mutations the live ingest performed — probe
allocation included, so the ``next_vid`` watermark and the name-index
order come out identical — and is pinned byte-identical to a full
snapshot of the same moment (``tests/test_delta_checkpoint.py``).

Integrity: every record ends with a checksum over its canonical
encoding.  A torn or truncated tail (the crash window of an append),
a sequence gap, or a record written against a different base all raise
:class:`ValueError` with a one-line message — a damaged chain is never
silently replayed.  Records whose ``seq`` the base has already folded in
(``seq <= meta.delta_seq``) are skipped, which is what makes compaction
crash-safe: the new base lands atomically *before* the log is truncated,
and a crash between the two steps leaves a log whose every record is
stale.

Compaction (:func:`compact_chain`, ``tools/snapshot.py compact``, or
automatically every ``IUADConfig.compact_every_n_deltas`` appends) folds
base + chain into a fresh base and truncates the log, bounding restore
cost.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from . import adapters, schema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data.records import Paper
    from .snapshot import Snapshot

#: Suffix of the append-only log riding next to a base snapshot.
DELTA_SUFFIX = ".delta"


def delta_log_path(base_path: str | Path) -> Path:
    """The chain log sibling of a base snapshot path."""
    base_path = Path(base_path)
    return base_path.with_name(base_path.name + DELTA_SUFFIX)


def document_fingerprint(document: Mapping[str, Any]) -> str:
    """Stable 16-hex-char digest of a backend-neutral document.

    Computed over the canonical JSON encoding *after* a JSON round-trip,
    so the write-side value (live Python containers) and the read-side
    value (whatever the adapter decoded) agree — and so the fingerprint
    survives lossless adapter conversion: a base converted from JSONL to
    SQLite still matches its chain.
    """
    canonical = json.loads(
        json.dumps(document, separators=(",", ":"), ensure_ascii=False)
    )
    blob = json.dumps(
        canonical, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _record_checksum(payload: Mapping[str, Any]) -> str:
    blob = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class DeltaRecord:
    """One replayable checkpoint increment.

    ``assignments`` is parallel to ``papers``: one ``[vid, created]``
    pair per co-author position of the matching paper — the complete
    decision trail of the burst(s) since the previous checkpoint.
    ``stream`` is the encoded :class:`~repro.core.incremental.
    IncrementalReport` *at this boundary* (counters and timing are
    wall-clock facts a replay cannot re-derive, so they travel whole —
    they are O(1) in corpus size).
    """

    seq: int
    base: str  #: fingerprint of the base document this record extends
    papers: list[dict[str, Any]]
    assignments: list[list[list[Any]]]
    stream: dict[str, Any] | None

    def to_payload(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "base": self.base,
            "papers": self.papers,
            "assignments": self.assignments,
            "stream": self.stream,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "DeltaRecord":
        return cls(
            seq=int(payload["seq"]),
            base=str(payload["base"]),
            papers=list(payload["papers"]),
            assignments=list(payload["assignments"]),
            stream=payload.get("stream"),
        )


def encode_changes(
    changes: list[tuple["Paper", list[tuple[int, bool]]]],
) -> tuple[list[dict[str, Any]], list[list[list[Any]]]]:
    """Journal entries -> the (papers, assignments) tables of a record."""
    papers = [schema.encode_paper(paper) for paper, _decisions in changes]
    assignments = [
        [[int(vid), bool(created)] for vid, created in decisions]
        for _paper, decisions in changes
    ]
    return papers, assignments


# --------------------------------------------------------------------- #
# log I/O
# --------------------------------------------------------------------- #
def append_record(log_path: str | Path, record: DeltaRecord) -> Path:
    """Append one record to the chain log, durably (write + fsync).

    O(record) — the whole point: the base stays untouched, the log grows
    by exactly the burst's documents.
    """
    log_path = Path(log_path)
    payload = record.to_payload()
    line = json.dumps(
        {"delta": payload, "crc": _record_checksum(payload)},
        separators=(",", ":"),
        ensure_ascii=False,
    )
    created = not log_path.exists()
    with open(log_path, "a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    if created:
        adapters.fsync_dir(log_path.parent)
    return log_path


def truncate_log(log_path: str | Path) -> None:
    """Empty the chain log (post-compaction); keeps the file as a marker."""
    log_path = Path(log_path)
    with open(log_path, "w", encoding="utf-8") as fh:
        fh.flush()
        os.fsync(fh.fileno())


def read_chain(
    log_path: str | Path, base_seq: int, base_fingerprint: str | None
) -> list[DeltaRecord]:
    """Decode the replayable tail of a chain log; error on any damage.

    Returns the records with ``seq > base_seq`` in order, after
    verifying, line by line: JSON well-formedness, the content checksum,
    the base fingerprint and seq contiguity.  A truncated or torn tail —
    the crash window of an interrupted append — fails the JSON or
    checksum check and raises; it is never silently dropped or replayed.

    ``base_fingerprint=None`` skips the base-match check (the query fast
    path, which deliberately avoids decoding the full base document);
    checksums and contiguity are still enforced.
    """
    log_path = Path(log_path)
    records: list[DeltaRecord] = []
    expected = None
    with open(log_path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            if not raw.strip():
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError:
                raise ValueError(
                    f"{log_path}: line {lineno} is torn or truncated "
                    "(not valid JSON) — the delta chain cannot be replayed"
                ) from None
            if not isinstance(obj, dict) or "delta" not in obj:
                raise ValueError(
                    f"{log_path}: line {lineno} is not a delta record"
                )
            if _record_checksum(obj["delta"]) != obj.get("crc"):
                raise ValueError(
                    f"{log_path}: line {lineno} fails its checksum "
                    "(torn write or corruption) — refusing to replay"
                )
            record = DeltaRecord.from_payload(obj["delta"])
            if record.seq <= base_seq:
                # Already folded into the base (compaction landed, the
                # truncate may not have) — stale, skip.
                continue
            if base_fingerprint is not None and record.base != base_fingerprint:
                raise ValueError(
                    f"{log_path}: line {lineno} extends base "
                    f"{record.base}, not {base_fingerprint} — "
                    "mismatched chain"
                )
            if expected is not None and record.seq != expected:
                raise ValueError(
                    f"{log_path}: line {lineno} has seq {record.seq}, "
                    f"expected {expected} — the chain has a gap"
                )
            if expected is None and record.seq != base_seq + 1:
                raise ValueError(
                    f"{log_path}: first live record has seq {record.seq}, "
                    f"the base has folded {base_seq} — the chain has a gap"
                )
            expected = record.seq + 1
            records.append(record)
    return records


def chain_info(
    base_path: str | Path, base_seq: int, base_fingerprint: str
) -> dict[str, Any] | None:
    """Header-level chain summary for ``snapshot_header`` / ``inspect``.

    ``None`` when no chain log rides next to the base.  Raises on a
    damaged log — inspection must surface a torn tail, not hide it.
    """
    log_path = delta_log_path(base_path)
    if not log_path.exists():
        return None
    records = read_chain(log_path, base_seq, base_fingerprint)
    return {
        "log": str(log_path),
        "log_bytes": log_path.stat().st_size,
        "base_seq": base_seq,
        "base_fingerprint": base_fingerprint,
        "chain_length": len(records),
        "last_seq": records[-1].seq if records else base_seq,
        "n_papers": sum(len(r.papers) for r in records),
    }


# --------------------------------------------------------------------- #
# replay
# --------------------------------------------------------------------- #
def replay_record(snapshot: "Snapshot", record: DeltaRecord) -> None:
    """Apply one delta to a decoded base snapshot, in place.

    Re-executes the recorded decisions through the exact mutation
    sequence of the live incremental path — probe vertex allocated per
    mention (``next_vid`` parity), attached probes removed again
    (name-index order parity), pairwise collaboration edges recovered in
    position order — so the replayed state is byte-identical to the live
    network at the boundary the record captured.
    """
    gcn = snapshot.gcn
    index = snapshot.sharding.index if snapshot.sharding is not None else None
    for paper_row, decisions in zip(record.papers, record.assignments):
        paper = schema.decode_paper(paper_row)
        if len(decisions) != len(paper.authors):
            raise ValueError(
                f"delta seq {record.seq}: paper {paper.pid} has "
                f"{len(paper.authors)} co-authors but "
                f"{len(decisions)} recorded decisions"
            )
        if paper.pid in snapshot.corpus:
            raise ValueError(
                f"delta seq {record.seq}: paper {paper.pid} is already "
                "in the base corpus — overlapping chain"
            )
        snapshot.corpus.add(paper)
        if index is not None:
            index.route_paper(paper.authors)
        vids: list[int] = []
        for position, name in enumerate(paper.authors):
            vid, created = int(decisions[position][0]), bool(
                decisions[position][1]
            )
            probe = gcn.add_vertex(
                name, mentions=((paper.pid, position),)
            )
            if created:
                if probe != vid:
                    raise ValueError(
                        f"delta seq {record.seq}: replay allocated vertex "
                        f"{probe} where the record expects {vid} — the "
                        "chain does not extend this base"
                    )
            else:
                gcn.add_mention(vid, paper.pid, position)
                gcn.set_mentions(probe, ())
                gcn.remove_isolated_vertex(probe)
            vids.append(vid)
        for i, u in enumerate(vids):
            for v in vids[i + 1:]:
                if u != v:
                    gcn.add_edge(u, v, (paper.pid,))
    if record.stream is not None:
        from .snapshot import _decode_stream

        snapshot.stream = _decode_stream(record.stream)


# --------------------------------------------------------------------- #
# compaction
# --------------------------------------------------------------------- #
def compact_chain(
    path: str | Path, backend: str | None = None
) -> tuple[Path, int]:
    """Fold base + chain into a fresh base; truncate the log.

    Crash-safe by sequencing: the compacted base (carrying
    ``delta_seq = last folded seq``) lands via the atomic
    tmp+fsync+rename write *first*; only then is the log truncated.  A
    crash in between leaves a base that already skips every log record.
    Returns ``(base path, number of records folded)``.
    """
    from .snapshot import Snapshot

    snapshot, info = Snapshot.load_chain(path, backend=backend)
    folded = info["chain_length"] if info is not None else 0
    if info is not None:
        snapshot.delta_seq = info["last_seq"]
    snapshot.save(path, backend=backend)
    log_path = delta_log_path(path)
    if log_path.exists():
        truncate_log(log_path)
    return Path(path), folded
