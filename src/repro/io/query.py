"""Point queries against a snapshot *file* — no fitted state in memory.

``who_is`` / ``owner_of`` on a live engine walk the in-memory network.
This module answers the same questions straight off a snapshot on disk:

* adapters with an indexed cursor (SQLite's derived ``mentions`` table,
  see :meth:`repro.io.adapters.sqlite.SqliteAdapter.open_query`) serve a
  point SELECT — microseconds, independent of corpus size;
* adapters without one fall back to a streaming row scan of the
  ``gcn_vertices`` table (JSONL parses line by line; a driver that
  cannot stream gets one cached full read) — still no network, model or
  similarity computer is ever materialised;
* a delta chain riding next to the base (see :mod:`repro.io.delta`) is
  overlaid: chain records only ever *add* mentions — an existing vertex
  never changes owner mid-chain — so the overlay is consulted first and
  merged into name queries.

Typical use::

    with SnapshotQuery("fitted.sqlite") as q:
        q.owner_of(pid=4821, position=0)     # -> (vid, name) | None
        q.who_is("wei wang")                 # -> {vid: [(pid, pos), ...]}

or one-shot: :func:`owner_of` / :func:`who_is`.  The CLI surface is
``tools/snapshot.py who-is``; the serving layer's ``--no-full-load``
warm start (:meth:`repro.service.view.FittedView.from_snapshot`) builds
on the same row-level access.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterator

from . import delta as delta_chain
from .adapters import AdapterCursor, resolve_adapter


class SnapshotQuery:
    """Mention-ownership queries against a snapshot file (+ delta chain).

    Open once, query many times, ``close()`` (or use as a context
    manager).  Results reflect the chain's last checkpoint boundary —
    identical to what a full :meth:`~repro.io.snapshot.Snapshot.
    load_chain` + restore would answer.
    """

    def __init__(self, path: str | Path, backend: str | None = None) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ValueError(f"{self.path}: no such file")
        self.adapter = resolve_adapter(self.path, backend)
        self._cursor: AdapterCursor | None = self.adapter.open_query(self.path)
        self._document: dict[str, Any] | None = None
        # (pid, position) -> (vid, name) and name -> vid -> mentions,
        # from the delta chain (additions only — never reassignments).
        self._overlay_owner: dict[tuple[int, int], tuple[int, str]] = {}
        self._overlay_names: dict[str, dict[int, list[tuple[int, int]]]] = {}
        self._load_overlay()

    # ------------------------------------------------------------------ #
    # chain overlay
    # ------------------------------------------------------------------ #
    def _load_overlay(self) -> None:
        log_path = delta_chain.delta_log_path(self.path)
        if not log_path.exists():
            return
        meta = self.adapter.read_meta(self.path)
        if meta is None:
            meta = self._full_document()["meta"]
        base_seq = int(meta.get("delta_seq", 0))
        # Fingerprint validation needs the full base document — exactly
        # what this fast path avoids; checksums and seq contiguity are
        # still enforced, and a damaged log still raises here.
        for record in delta_chain.read_chain(log_path, base_seq, None):
            for paper_row, decisions in zip(
                record.papers, record.assignments
            ):
                pid = int(paper_row["pid"])
                for position, name in enumerate(paper_row["authors"]):
                    vid = int(decisions[position][0])
                    self._overlay_owner[(pid, position)] = (vid, name)
                    self._overlay_names.setdefault(name, {}).setdefault(
                        vid, []
                    ).append((pid, position))

    # ------------------------------------------------------------------ #
    # fallback row access
    # ------------------------------------------------------------------ #
    def _full_document(self) -> dict[str, Any]:
        if self._document is None:
            self._document = self.adapter.read(self.path)
        return self._document

    def _vertex_rows(self) -> Iterator[dict[str, Any]]:
        rows = self.adapter.iter_table_rows(self.path, "gcn_vertices")
        if rows is not None:
            return rows
        return iter(
            self._full_document().get("tables", {}).get("gcn_vertices", ())
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def owner_of(self, pid: int, position: int) -> tuple[int, str] | None:
        """``(vid, name)`` owning mention ``(pid, position)``, or ``None``."""
        hit = self._overlay_owner.get((pid, position))
        if hit is not None:
            return hit
        if self._cursor is not None:
            return self._cursor.owner_of(pid, position)
        for row in self._vertex_rows():
            for m_pid, m_pos in row.get("mentions", ()):
                if m_pid == pid and m_pos == position:
                    return int(row["vid"]), row["name"]
        return None

    def who_is(self, name: str) -> dict[int, list[tuple[int, int]]]:
        """Every vertex of ``name`` with its sorted mention list.

        Matches the live engine's ``who_is`` clustering: base snapshot
        mentions merged with chain additions, per-vertex lists sorted.
        """
        if self._cursor is not None:
            clusters = self._cursor.clusters_of_name(name)
        else:
            clusters = {}
            for row in self._vertex_rows():
                if row.get("name") == name:
                    clusters[int(row["vid"])] = [
                        (int(pid), int(pos))
                        for pid, pos in row.get("mentions", ())
                    ]
        for vid, mentions in self._overlay_names.get(name, {}).items():
            clusters.setdefault(vid, []).extend(mentions)
        return {vid: sorted(mentions) for vid, mentions in clusters.items()}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._cursor is not None:
            self._cursor.close()
            self._cursor = None

    def __enter__(self) -> "SnapshotQuery":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


def owner_of(
    path: str | Path, pid: int, position: int, backend: str | None = None
) -> tuple[int, str] | None:
    """One-shot :meth:`SnapshotQuery.owner_of`."""
    with SnapshotQuery(path, backend=backend) as query:
        return query.owner_of(pid, position)


def who_is(
    path: str | Path, name: str, backend: str | None = None
) -> dict[int, list[tuple[int, int]]]:
    """One-shot :meth:`SnapshotQuery.who_is`."""
    with SnapshotQuery(path, backend=backend) as query:
        return query.who_is(name)
