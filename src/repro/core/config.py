"""Configuration of the IUAD pipeline."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..model.exponential_family import DEFAULT_FAMILIES


@dataclass(slots=True)
class IUADConfig:
    """All knobs of Algorithm 1 in one place.

    Attributes:
        eta: Support threshold of η-stable collaborative relations
            (Definition 2; η = 2 throughout the paper's examples).
        delta: Decision threshold δ on the Eq. 11 matching score for the
            *first* merge round; pairs scoring at or above it are merged.
            Batch merging is transitive (union-find), which amplifies
            single-pair errors, so the default is calibrated well above the
            natural posterior-odds point.
        later_delta: Threshold for merge rounds after the first.  Round-two
            vertices are consolidated clusters carrying much more
            venue/keyword evidence, so a lower bar is safe there and buys
            the recall the first strict round withheld.
        incremental_delta: Threshold for the *single-paper* incremental
            decision (Section V-E).  Attaching one new mention is an
            argmax-plus-threshold choice with no transitive amplification,
            and a one-paper probe carries far less evidence mass, so the
            natural odds threshold (0 = posterior odds 1:1) is the default.
        merge_rounds: Number of score-and-merge passes in Stage 2.  The
            default single pass is the paper's Algorithm 1.  A second pass
            re-scores on the merged network, where vertices carry richer
            venue/keyword profiles, letting one-paper vertices attach to the
            consolidated clusters they could not match in round one — it
            buys extra recall at some precision (ablation
            ``test_ablations.py`` quantifies the trade).
        wl_iterations: ``h`` of the WL sub-graph kernel (Eq. 3).
        decay_alpha: α of the time-consistency similarity (Eq. 7; 0.62 in
            the paper, borrowed from FutureRank).
        sample_rate: Fraction of candidate pairs used to *train* the
            generative model (Section V-F: 10 %); all pairs are still scored
            for the merge decision.
        min_training_pairs: Train on at least this many pairs even when 10 %
            of the candidates is fewer.
        balance_split: Enable the vertex-splitting rebalance strategy
            (Section V-F2).
        split_min_papers: Minimum papers a vertex needs to be splittable.
        max_split_vertices: Cap on how many vertices are split for balance.
        families: Exponential-family assignment per similarity function.
        use_embeddings: Train PPMI-SVD title embeddings for γ3 (falls back
            to keyword-multiset cosine when off or when the corpus is too
            small to train on).
        embedding_dim: Dimensionality of the title embeddings.
        certify_triangles: Stage-1 triangle certification (ablation switch).
        require_triangle_instance: Require a co-occurring paper for each
            certifying triangle (see :class:`repro.graphs.scn.SCNBuilder`).
        em_max_iterations: EM iteration cap.
        em_tolerance: EM convergence tolerance on the log-likelihood.
        seed: Seed for candidate sampling and vertex splitting.
        n_workers: Worker processes of a sharded fit
            (:class:`repro.core.sharding.ShardedIUAD`).  ``0`` fits the
            shards serially in-process (still sharded — same partition,
            same merge, no pool); ``>= 1`` fits them in a
            ``ProcessPoolExecutor`` of that size.  Ignored by the
            single-process :meth:`IUAD.fit`.
        max_shard_size: Work budget of one shard, measured in candidate
            pairs.  Name blocks (connected components of the co-author
            name graph) are packed into shards up to this budget;
            blocks exceeding it are split by name.  ``0`` disables both
            packing and splitting (one shard per block).  Splitting a
            block is exact for ``merge_rounds == 1`` (names never
            influence each other within a round); with more rounds it
            can miss cross-shard profile updates between rounds — keep
            blocks whole (``0``) when that matters.
        gamma_chunk_pairs: Candidate pairs per Phase-A γ task of a
            sharded fit.  Chunks tile the global pair order with whole
            names and are independent of both shard and worker count —
            a fat shard never serialises the phase, and serial/pool runs
            fill byte-identical result buffers.  Also the chunk size of
            the split-balance scoring tasks.
        mp_start_method: Start method of the sharded fit's process pool
            (``"fork"``, ``"spawn"`` or ``"forkserver"``).  ``None``
            (default) picks ``"fork"`` where the platform offers it —
            workers then inherit the SCN/corpus copy-on-write — and
            ``"spawn"`` elsewhere.  Pinned explicitly via
            ``multiprocessing.get_context`` so a host application
            changing the *global* start method cannot silently flip the
            shipping path.
        duplicate_paper_policy: What the incremental path does when a
            streamed paper's pid is already in the fitted corpus.
            ``"raise"`` (default) rejects the re-ingest with a
            ``ValueError`` before any state is touched; ``"return"``
            makes re-ingest idempotent — the current owners of the
            paper's mentions are looked up and returned as assignments
            (``created=False``, ``score=nan``) and nothing is mutated.
            Either way a duplicate can no longer corrupt the
            one-mention-per-paper invariant by being attached twice.
        incremental_timing_window: How many recent per-paper wall-clock
            samples :class:`repro.core.incremental.IncrementalReport`
            retains (a bounded rolling window).  The Table-VI average
            stays exact via running sums regardless of the window size;
            the window only bounds memory on long streams.
        checkpoint_every_n_papers: Automatic durable checkpointing of the
            streaming path: after at least this many freshly ingested
            papers, :class:`repro.core.streaming.StreamingIngestor`
            writes a snapshot to its configured checkpoint path
            (atomic tmp+fsync+rename, see :mod:`repro.io`).  ``0``
            (default) disables auto-checkpointing; explicit
            ``checkpoint()`` calls work either way.
        checkpoint_mode: What a streaming checkpoint writes.  ``"full"``
            (default) rewrites the complete snapshot every time —
            O(corpus) per checkpoint.  ``"delta"`` writes the base
            snapshot once and then appends O(burst) replayable records
            to a ``<path>.delta`` sibling log (see
            :mod:`repro.io.delta`); restore replays base + chain to the
            byte-identical state.
        compact_every_n_deltas: In delta mode, fold the chain back into
            the base after this many appended records (bounding restore
            cost and log growth).  ``0`` disables automatic compaction;
            ``tools/snapshot.py compact`` is always available.  Default
            64.
    """

    eta: int = 2
    delta: float = 80.0
    later_delta: float = 80.0
    incremental_delta: float = 0.0
    merge_rounds: int = 1
    wl_iterations: int = 2
    decay_alpha: float = 0.62
    sample_rate: float = 0.10
    min_training_pairs: int = 200
    balance_split: bool = True
    split_min_papers: int = 6
    max_split_vertices: int = 400
    families: tuple[str, ...] = field(default=DEFAULT_FAMILIES)
    use_embeddings: bool = True
    embedding_dim: int = 64
    certify_triangles: bool = True
    require_triangle_instance: bool = True
    em_max_iterations: int = 200
    em_tolerance: float = 1e-6
    seed: int = 29
    n_workers: int = 0
    max_shard_size: int = 4000
    gamma_chunk_pairs: int = 2048
    mp_start_method: str | None = None
    duplicate_paper_policy: str = "raise"
    incremental_timing_window: int = 4096
    checkpoint_every_n_papers: int = 0
    checkpoint_mode: str = "full"
    compact_every_n_deltas: int = 64

    def __post_init__(self) -> None:
        if self.eta < 1:
            raise ValueError(f"eta must be >= 1, got {self.eta}")
        if self.n_workers < 0:
            raise ValueError(f"n_workers must be >= 0, got {self.n_workers}")
        if self.duplicate_paper_policy not in ("raise", "return"):
            raise ValueError(
                "duplicate_paper_policy must be 'raise' or 'return', got "
                f"{self.duplicate_paper_policy!r}"
            )
        if self.incremental_timing_window < 1:
            raise ValueError(
                "incremental_timing_window must be >= 1, got "
                f"{self.incremental_timing_window}"
            )
        if self.checkpoint_every_n_papers < 0:
            raise ValueError(
                "checkpoint_every_n_papers must be >= 0, got "
                f"{self.checkpoint_every_n_papers}"
            )
        if self.checkpoint_mode not in ("full", "delta"):
            raise ValueError(
                "checkpoint_mode must be 'full' or 'delta', got "
                f"{self.checkpoint_mode!r}"
            )
        if self.compact_every_n_deltas < 0:
            raise ValueError(
                "compact_every_n_deltas must be >= 0, got "
                f"{self.compact_every_n_deltas}"
            )
        if self.max_shard_size < 0:
            raise ValueError(
                f"max_shard_size must be >= 0, got {self.max_shard_size}"
            )
        if self.gamma_chunk_pairs < 1:
            raise ValueError(
                f"gamma_chunk_pairs must be >= 1, got {self.gamma_chunk_pairs}"
            )
        if self.mp_start_method not in (None, "fork", "spawn", "forkserver"):
            raise ValueError(
                "mp_start_method must be None, 'fork', 'spawn' or "
                f"'forkserver', got {self.mp_start_method!r}"
            )
        if not 0.0 < self.sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in (0, 1], got {self.sample_rate}"
            )
        if len(self.families) != 6:
            raise ValueError("families must assign one family per γ1..γ6")
        if self.split_min_papers < 2:
            raise ValueError("split_min_papers must be >= 2")
