"""IUAD — the full Algorithm 1 pipeline.

Stage 1 builds the stable collaboration network (high precision, per-
occurrence mention assignment — see :mod:`repro.graphs.scn`); Stage 2
learns the matched/unmatched mixture on a 10 % candidate sample (balanced
by vertex splitting, Section V-F2), scores every same-name vertex pair
with the six-dimensional similarity vector γ1–γ6 (γ1 WL kernel Eq. 3, γ2
clique coincidence Eq. 5, γ3 interest cosine Eq. 6, γ4 time consistency
Eq. 7, γ5 representative community Eq. 8, γ6 research community Eq. 9)
combined into the Eq. 11 matching score, and merges pairs clearing δ into
the global collaboration network.  After fitting, newly published papers
are disambiguated incrementally (see :mod:`repro.core.incremental`)
without retraining.

Mention identity: every decision operates on occurrence-level mentions
(``(paper, name, position)``).  Two same-name vertices owning mentions of
one paper are two homonymous co-authors — such pairs are registered as
:meth:`~repro.graphs.unionfind.UnionFind.forbid` cannot-links before each
merge round, and :meth:`~repro.graphs.collab.CollaborationNetwork.merged`
re-asserts that no component ever carries two mentions of one paper.

Stage 2 performance: each merge round gathers *all* names' candidate pairs
and scores them in one call to the batched similarity engine
(:mod:`repro.similarity.batch`), and a single
:class:`~repro.similarity.profile.SimilarityComputer` serves every round —
merged networks preserve vertex ids, so only the profiles a merge actually
stained are invalidated (``SimilarityComputer.rebind``) rather than the
whole store being rebuilt per round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..data.records import Corpus
from ..graphs.collab import CollaborationNetwork
from ..graphs.scn import SCNBuilder, SCNBuildReport
from ..graphs.unionfind import UnionFind
from ..model.mixture import EMReport, MatchMixture
from ..model.scoring import match_scores
from ..similarity.profile import SimilarityComputer
from ..text.embeddings import WordEmbeddings, train_title_embeddings
from .balance import split_prolific_vertices
from .candidates import (
    candidate_pairs_of_name,
    cannot_link_pairs,
    sample_training_pairs,
)
from .config import IUADConfig

Pair = tuple[int, int]

#: Precomputed first-round decision input: the per-name candidate pairs
#: (in decision-name order) and the Eq. 11 scores of the flattened pair
#: list.  :func:`run_merge_rounds` accepts this so a sharded fit can score
#: round one centrally (see :mod:`repro.core.sharding`) while the decision
#: loop itself stays byte-for-byte the single-process code path.
Round1Scores = tuple[list[tuple[str, list[Pair]]], np.ndarray]


@dataclass(slots=True)
class MergeRoundsOutcome:
    """What the Stage-2 decision loop did to a network.

    ``network`` is the merged result (the input network is never mutated —
    the first ``merged()`` call copies).  ``per_name_seconds`` attributes
    the decision wall-clock to names by pair share, the accounting
    ``eval/timing.py`` (Table V) sums back into the stage total.
    """

    network: CollaborationNetwork
    n_merges: int
    per_round_candidate_pairs: list[int]
    per_round_merges: list[int]
    per_name_seconds: dict[str, float]


def run_merge_rounds(
    network: CollaborationNetwork,
    names: Sequence[str],
    model: MatchMixture,
    computer: SimilarityComputer,
    config: IUADConfig,
    round1: Round1Scores | None = None,
) -> MergeRoundsOutcome:
    """Run the Stage-2 score-and-merge rounds of Algorithm 1.

    This is the decision stage shared by :meth:`IUAD.fit` (whole corpus)
    and the shard workers of :class:`repro.core.sharding.ShardedIUAD`
    (one name block at a time): candidate pairs of every name in
    ``names`` are scored with the Eq. 11 matching score, pairs clearing
    the round's δ are merged transitively under the cannot-link
    constraints, and the network is re-materialised between rounds with
    preserved vertex ids so ``computer``'s profile caches survive.

    Args:
        network: The network to consolidate (an SCN, or a shard of one).
            Never mutated.
        names: Decision names, in order.  Only their candidate pairs are
            scored; other vertices pass through untouched.
        model: The fitted matched/unmatched mixture.
        computer: A similarity computer bound to ``network``; it is
            rebound to each round's merged network.
        config: Decision thresholds and round count.
        round1: Optional precomputed ``(name_pairs, scores)`` for the
            first round (same names, same per-name pair order).  Later
            rounds always re-score through ``computer``.
    """
    cfg = config
    gcn = network
    n_merges = 0
    per_name: dict[str, float] = {}
    per_round_pairs: list[int] = []
    per_round_merges: list[int] = []
    for round_index in range(cfg.merge_rounds):
        round_delta = cfg.delta if round_index == 0 else cfg.later_delta
        union = UnionFind(v.vid for v in gcn)
        # Cannot-link constraints from the mention model: same-name
        # vertices owning mentions of one paper are two homonymous
        # co-authors — provably distinct, however similar their profiles
        # look.  Registering them up front keeps the constraint
        # component-aware through transitive union chains.
        for cl_u, cl_v in cannot_link_pairs(gcn):
            union.forbid(cl_u, cl_v)
        round_merges = 0

        # Gather every name's candidates, then score the whole round in
        # one batched call so the engine amortises its sparse assembly
        # over all names instead of paying it per name.
        t_collect = time.perf_counter()
        if round_index == 0 and round1 is not None:
            name_pairs, scores = round1
            all_pairs = [pair for _name, pairs in name_pairs for pair in pairs]
            shared_seconds = time.perf_counter() - t_collect
        else:
            name_pairs = []
            all_pairs = []
            for name in names:
                pairs = candidate_pairs_of_name(gcn, name)
                name_pairs.append((name, pairs))
                all_pairs.extend(pairs)
            shared_seconds = time.perf_counter() - t_collect

            t_score = time.perf_counter()
            if all_pairs:
                scores = match_scores(model, computer.pair_matrix(all_pairs))
            else:
                scores = np.empty(0, dtype=np.float64)
            shared_seconds += time.perf_counter() - t_score
        per_round_pairs.append(len(all_pairs))

        # The batched time is attributed to names by pair share, so the
        # per-name accounting of eval/timing.py (Table V) still sums to
        # the true decision-stage total.
        total_pairs = max(len(all_pairs), 1)
        merged_vids: list[int] = []
        offset = 0
        for name, pairs in name_pairs:
            tn = time.perf_counter()
            for (u, v), score in zip(
                pairs, scores[offset : offset + len(pairs)]
            ):
                if score >= round_delta:
                    if union.connected(u, v):
                        # Already joined transitively — counting this
                        # as a merge would overstate merge activity
                        # and could defeat the convergence break.
                        continue
                    if not union.allowed(u, v):
                        # Cannot-link: the components own mentions of
                        # one paper (homonymous co-authors).
                        continue
                    union.union(u, v)
                    merged_vids.append(u)
                    merged_vids.append(v)
                    round_merges += 1
            offset += len(pairs)
            per_name[name] = (
                per_name.get(name, 0.0)
                + (time.perf_counter() - tn)
                + shared_seconds * (len(pairs) / total_pairs)
            )
        n_merges += round_merges
        per_round_merges.append(round_merges)
        if round_merges == 0 and gcn is not network:
            # Converged on an already-copied network: a further
            # merged() pass would rebuild an identical graph.  (The
            # first round always copies, so callers' later mutations
            # never touch the pristine input network.)
            break
        touched = {union.find(vid) for vid in merged_vids}
        gcn = gcn.merged(union, preserve_ids=True)
        computer.rebind(gcn, touched=touched)
        if round_merges == 0:
            break
    return MergeRoundsOutcome(
        network=gcn,
        n_merges=n_merges,
        per_round_candidate_pairs=per_round_pairs,
        per_round_merges=per_round_merges,
        per_name_seconds=per_name,
    )


@dataclass(slots=True)
class FitReport:
    """Everything a run of Algorithm 1 learned about itself.

    ``n_candidate_pairs`` counts the *unique first-round* candidate pairs
    (``R_a`` summed over names, Section V-A); later merge rounds re-score
    the consolidated network, and those re-scored pairs are reported per
    round in ``per_round_candidate_pairs`` rather than inflating the total.

    ``gcn_mentions`` counts author occurrences attributed across the final
    network (per-occurrence mention model): it equals the corpus's
    author–paper-pair total and ``scn.n_mentions`` — merging never loses a
    mention.

    Sharded fits (:class:`repro.core.sharding.ShardedIUAD`) additionally
    fill the shard counters: ``n_shards`` name blocks were fitted
    (``shard_stats`` holds one :class:`repro.core.sharding.ShardStats`
    each), ``n_fastpath_vertices`` vertices took the singleton fast path
    (no same-name candidate, hence no Stage-2 work), and
    ``partition_seconds`` / ``stitch_seconds`` time the orchestration
    around the parallel region.  Single-process fits leave them at their
    zero defaults.

    The pipeline block describes the sharded executor's overlapped
    schedule: ``pipeline_seconds`` spans first task submission to last
    decision result; ``gamma_wall_seconds`` / ``split_wall_seconds`` /
    ``decide_wall_seconds`` are parent-observed phase walls (on a pool
    they overlap each other and ``em_seconds`` — that is the point);
    ``overlap_seconds`` is the wall-clock saved versus running
    γ → EM → decisions as sequential barriers, with
    ``overlap_gamma_chunks`` counting the γ chunks that completed under
    the EM midsection or later.  ``*_task_seconds`` are worker-summed
    compute, ``ipc_task_bytes`` the pickled bytes of every submitted
    task (pool runs only) and ``shm_bytes`` the shared-memory result
    transport replacing what used to round-trip through pickle.
    """

    scn: SCNBuildReport
    em: EMReport
    n_candidate_pairs: int
    n_training_pairs: int
    n_split_pairs: int
    n_merges: int
    gcn_vertices: int
    gcn_mentions: int
    gcn_edges: int
    stage1_seconds: float
    stage2_seconds: float
    per_name_seconds: dict[str, float] = field(default_factory=dict)
    per_round_candidate_pairs: list[int] = field(default_factory=list)
    per_round_merges: list[int] = field(default_factory=list)
    n_shards: int = 0
    n_fastpath_vertices: int = 0
    partition_seconds: float = 0.0
    stitch_seconds: float = 0.0
    shard_stats: list = field(default_factory=list)
    em_seconds: float = 0.0
    pipeline_seconds: float = 0.0
    gamma_wall_seconds: float = 0.0
    split_wall_seconds: float = 0.0
    decide_wall_seconds: float = 0.0
    overlap_seconds: float = 0.0
    gamma_task_seconds: float = 0.0
    split_task_seconds: float = 0.0
    decide_task_seconds: float = 0.0
    n_gamma_chunks: int = 0
    overlap_gamma_chunks: int = 0
    ipc_task_bytes: int = 0
    shm_bytes: int = 0


class IUAD:
    """Incremental & Unsupervised Author Disambiguation.

    Typical use::

        iuad = IUAD()
        iuad.fit(corpus)
        clusters = iuad.clusters_of_name("Wei Wang")   # vid -> paper ids
        # stream new papers without retraining:
        from repro.core.incremental import IncrementalDisambiguator
        inc = IncrementalDisambiguator(iuad)
        inc.add_paper(new_paper)

    After :meth:`fit`, the fitted state lives in ``scn_``, ``gcn_``,
    ``model_``, ``computer_`` and ``report_``.
    """

    def __init__(self, config: IUADConfig | None = None):
        self.config = config or IUADConfig()
        self.corpus_: Corpus | None = None
        self.scn_: CollaborationNetwork | None = None
        self.gcn_: CollaborationNetwork | None = None
        self.model_: MatchMixture | None = None
        self.computer_: SimilarityComputer | None = None
        self.embeddings_: WordEmbeddings | None = None
        self.report_: FitReport | None = None

    # ------------------------------------------------------------------ #
    # Stage 1 + Stage 2
    # ------------------------------------------------------------------ #
    def fit(self, corpus: Corpus, names: Iterable[str] | None = None) -> "IUAD":
        """Run Algorithm 1 on ``corpus``.

        Args:
            corpus: The paper database.
            names: Optional restriction of the Stage-2 merge decisions to a
                subset of names (the model is still trained on candidates
                from every name).  ``None`` processes all names.
        """
        cfg = self.config
        t0 = time.perf_counter()
        scn, scn_report = self._build_scn(corpus)
        stage1 = time.perf_counter() - t0

        t1 = time.perf_counter()
        self.embeddings_ = self._train_embeddings(corpus)
        computer = SimilarityComputer(
            scn,
            corpus,
            embeddings=self.embeddings_,
            wl_iterations=cfg.wl_iterations,
            decay_alpha=cfg.decay_alpha,
        )
        model, em_report, n_train, n_split = self._learn_model(
            scn, corpus, computer
        )

        decision_names = list(corpus.names if names is None else names)
        # One SimilarityComputer serves every merge round: the merged
        # network is built with preserve_ids=True, so only vertices whose
        # neighbourhood a merge (or a recovered relation) actually changed
        # lose their cached profiles (see SimilarityComputer.rebind).
        outcome = run_merge_rounds(scn, decision_names, model, computer, cfg)
        gcn = outcome.network
        touched = self._recover_relations(gcn, corpus)
        computer.rebind(gcn, touched=touched)
        stage2 = time.perf_counter() - t1

        self.corpus_ = corpus
        self.scn_ = scn
        self.gcn_ = gcn
        self.model_ = model
        self.computer_ = computer
        self.report_ = FitReport(
            scn=scn_report,
            em=em_report,
            n_candidate_pairs=(
                outcome.per_round_candidate_pairs[0]
                if outcome.per_round_candidate_pairs
                else 0
            ),
            n_training_pairs=n_train,
            n_split_pairs=n_split,
            n_merges=outcome.n_merges,
            gcn_vertices=len(gcn),
            gcn_mentions=gcn.n_mentions,
            gcn_edges=gcn.n_edges,
            stage1_seconds=stage1,
            stage2_seconds=stage2,
            per_name_seconds=outcome.per_name_seconds,
            per_round_candidate_pairs=outcome.per_round_candidate_pairs,
            per_round_merges=outcome.per_round_merges,
        )
        return self

    # ------------------------------------------------------------------ #
    def _build_scn(
        self, corpus: Corpus
    ) -> tuple[CollaborationNetwork, SCNBuildReport]:
        """Stage 1: build the stable collaboration network."""
        cfg = self.config
        return SCNBuilder(
            corpus,
            cfg.eta,
            cfg.certify_triangles,
            cfg.require_triangle_instance,
        ).build()

    def _train_embeddings(self, corpus: Corpus) -> WordEmbeddings | None:
        if not self.config.use_embeddings:
            return None
        try:
            return train_title_embeddings(
                (p.title for p in corpus), dim=self.config.embedding_dim
            )
        except ValueError:
            # Corpus too small to train on; γ3 falls back to multiset cosine.
            return None

    def _learn_model(
        self,
        scn: CollaborationNetwork,
        corpus: Corpus,
        computer: SimilarityComputer | None,
        precomputed: tuple[list[Pair], np.ndarray] | None = None,
        precomputed_split: tuple[list[Pair], np.ndarray] | None = None,
    ) -> tuple[MatchMixture, EMReport, int, int]:
        """Train the mixture on sampled candidates + split-balance pairs.

        ``precomputed`` short-circuits the candidate γ computation with an
        already-scored ``(training_pairs, gamma_matrix)`` — the sharded
        orchestrator computes every candidate γ in parallel name-block
        workers and slices the training sample out of those results, so
        the serial section of a sharded fit never re-scores pairs
        (``computer`` may then be ``None``).  ``precomputed_split``
        likewise injects already-scored split-balance pairs (the sharded
        orchestrator scores them in pool workers too — on dense networks
        the split vertices' WL profiles are the single most expensive
        serial item).
        """
        cfg = self.config
        if precomputed is None:
            assert computer is not None
            all_pairs: list[Pair] = []
            for name in scn.names:
                all_pairs.extend(candidate_pairs_of_name(scn, name))
            training = sample_training_pairs(
                all_pairs, cfg.sample_rate, cfg.min_training_pairs, cfg.seed
            )
            gammas = [computer.pair_matrix(training)] if training else []
        else:
            training, training_gammas = precomputed
            gammas = [training_gammas] if training else []
        seeds: list[np.ndarray] = []
        n_split = 0
        if cfg.balance_split:
            if precomputed_split is not None:
                split_pairs, split_gammas = precomputed_split
                if split_pairs:
                    gammas.append(split_gammas)
                    n_split = len(split_pairs)
            else:
                split = split_prolific_vertices(
                    scn,
                    min_papers=cfg.split_min_papers,
                    max_vertices=cfg.max_split_vertices,
                    seed=cfg.seed,
                )
                if split.matched_pairs:
                    split_computer = SimilarityComputer(
                        split.network,
                        corpus,
                        embeddings=self.embeddings_,
                        wl_iterations=cfg.wl_iterations,
                        decay_alpha=cfg.decay_alpha,
                    )
                    gammas.append(
                        split_computer.pair_matrix(split.matched_pairs)
                    )
                    n_split = len(split.matched_pairs)
        if not gammas:
            raise ValueError(
                "no candidate pairs to train on — every name has a single "
                "vertex (is the corpus trivially unambiguous?)"
            )
        stacked = np.vstack(gammas)
        if training:
            seeds.append(np.full(len(training), 0.1))
        if n_split:
            seeds.append(np.full(n_split, 0.95))
        model = MatchMixture(cfg.families)
        em_report = model.fit(
            stacked,
            max_iterations=cfg.em_max_iterations,
            tolerance=cfg.em_tolerance,
            initial_responsibilities=np.concatenate(seeds),
        )
        return model, em_report, len(training), n_split

    @staticmethod
    def _recover_relations(
        gcn: CollaborationNetwork, corpus: Corpus
    ) -> set[int]:
        """Algorithm 1 line 16: add back the non-stable co-author edges.

        Every paper's co-author list induces edges between the vertices that
        own its mentions; Stage 1 materialised only the stable ones, the
        rest are recovered here so the GCN is the *complete* collaboration
        network of Definition 1.  Ownership is looked up per occurrence —
        ``(pid, position) -> vid`` — so a paper listing one name twice
        contributes edges for *both* homonymous co-authors.  Returns the
        vertices that gained an edge, so the caller can invalidate exactly
        their profile neighbourhoods.
        """
        touched: set[int] = set()
        owner: dict[tuple[int, int], int] = {}
        for vertex in gcn:
            for pid, position in vertex.mentions.items():
                owner[(pid, position)] = vertex.vid
        for paper in corpus:
            vids = [
                vid
                for position in range(len(paper.authors))
                if (vid := owner.get((paper.pid, position))) is not None
            ]
            for i, u in enumerate(vids):
                for v in vids[i + 1 :]:
                    if u != v and not (
                        paper.pid in gcn.edge_papers(u, v)
                    ):
                        gcn.add_edge(u, v, (paper.pid,))
                        touched.add(u)
                        touched.add(v)
        return touched

    # ------------------------------------------------------------------ #
    # persistence (durable snapshots, warm-start resume)
    # ------------------------------------------------------------------ #
    def save(self, path, backend: str | None = None):
        """Persist the complete fitted state as a durable snapshot.

        ``backend`` selects ``"jsonl"`` (human-diffable, streaming-
        friendly) or ``"sqlite"`` (queryable single file); when omitted
        it is inferred from an existing file's bytes or the path suffix
        (``.sqlite``/``.sqlite3``/``.db`` → SQLite, else JSONL).  The
        write is atomic (tmp + fsync + rename).  Fit diagnostics
        (``report_``) are not part of the snapshot.  Returns the path.
        """
        from ..io.snapshot import snapshot_of

        self._require_fitted()
        return snapshot_of(self).save(path, backend=backend)

    @classmethod
    def load(cls, path, backend: str | None = None) -> "IUAD":
        """Restore a fitted estimator from :meth:`save` output.

        The loaded estimator serves queries and absorbs streamed papers
        exactly as the saved one would — same vertex ids, same
        ``next_vid`` watermark, same name-index order, same learned
        parameters and fit-time frequency tables (resume parity is
        pinned by ``tests/test_snapshot_parity.py``).  A snapshot of a
        :class:`~repro.core.sharding.ShardedIUAD` restores that class,
        shard index and all; loading it through a class it does not
        satisfy raises ``TypeError``.
        """
        from ..io.snapshot import Snapshot

        estimator = Snapshot.load(path, backend=backend).restore()
        if not isinstance(estimator, cls):
            raise TypeError(
                f"snapshot at {path} holds a "
                f"{type(estimator).__name__}, not a {cls.__name__}"
            )
        return estimator

    # ------------------------------------------------------------------ #
    # fitted-state accessors
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if self.gcn_ is None:
            raise RuntimeError("IUAD is not fitted; call fit() first")

    def clusters_of_name(self, name: str) -> dict[int, set[int]]:
        """Predicted clustering of ``name``'s papers (vertex -> paper ids)."""
        self._require_fitted()
        assert self.gcn_ is not None
        return self.gcn_.clusters_of_name(name)

    def mention_clusters_of_name(self, name: str) -> dict[int, set[tuple[int, int]]]:
        """Predicted clustering at mention granularity.

        Vertex id -> set of ``(pid, position)`` units — the view the
        positional evaluation protocol pairs against ground truth.
        """
        self._require_fitted()
        assert self.gcn_ is not None
        return self.gcn_.mention_clusters_of_name(name)

    def scn_clusters_of_name(self, name: str) -> dict[int, set[int]]:
        """Stage-1-only clustering (for the Table IV stage ablation)."""
        if self.scn_ is None:
            raise RuntimeError("IUAD is not fitted; call fit() first")
        return self.scn_.clusters_of_name(name)

    def scn_mention_clusters_of_name(
        self, name: str
    ) -> dict[int, set[tuple[int, int]]]:
        """Stage-1-only clustering at mention granularity."""
        if self.scn_ is None:
            raise RuntimeError("IUAD is not fitted; call fit() first")
        return self.scn_.mention_clusters_of_name(name)

    def score_pairs(self, pairs: Sequence[Pair]) -> np.ndarray:
        """Eq. 11 scores of arbitrary GCN vertex pairs."""
        self._require_fitted()
        assert self.computer_ is not None and self.model_ is not None
        return match_scores(self.model_, self.computer_.pair_matrix(pairs))


def disambiguate(
    corpus: Corpus,
    config: IUADConfig | None = None,
    names: Iterable[str] | None = None,
) -> IUAD:
    """One-call convenience: fit IUAD on ``corpus`` and return it."""
    return IUAD(config).fit(corpus, names=names)
