"""Sharded name-block execution: partition, parallel fit, global merge.

The bottom-up design of the paper makes Stage 2 embarrassingly
partitionable: every merge decision concerns two same-name vertices, and
candidate enumeration, γ scoring and the merge itself never cross name
boundaries.  Partitioning the corpus by *name blocks* — connected
components of the co-author name graph — therefore cuts the expensive
similarity work into independent shards that can be fitted in parallel
and stitched back into one global collaboration network.  This is the
"sharding" leg of the ROADMAP's production-scale north star and the
foundation for multi-machine scale-out.

Execution plan of :class:`ShardedIUAD.fit` (serial or process-pool):

1. **Global Stage 1 + text models** (serial): the SCN, the title
   embeddings and the corpus frequency tables are built exactly as in the
   single-process :meth:`~repro.core.iuad.IUAD.fit` — they are cheap
   relative to pair scoring and keep the learned model bit-compatible.
2. **Partition** (:func:`plan_shards`): pair-bearing names are grouped
   into blocks (connected components over shared papers), blocks are
   packed into shards up to ``config.max_shard_size`` candidate pairs,
   oversized blocks are split by name, and every vertex of a name with no
   same-name candidate takes the **singleton fast path** straight into
   the final network — no Stage-2 work at all.
3. **Phase A — parallel γ computation**: workers receive the SCN, the
   corpus and the global frequency tables *once per process* (pool
   initializer, see :class:`_WorkerContext`).  The candidate pairs of
   every pair-bearing name are laid out in one global
   ``(n_pairs, 6)`` result buffer in canonical ``scn.names`` order and
   chunked by **candidate-pair count** (``config.gamma_chunk_pairs``,
   independent of both shard and worker count, so a fat shard never
   serialises the phase and serial/pool runs fill byte-identical
   buffers); each worker writes its chunk's rows straight into a
   :mod:`multiprocessing.shared_memory` block instead of pickling γ
   matrices back.  Split-balance matched pairs (the densest profile
   work of model learning) are scored **in the parent** while the pool
   crunches γ chunks: their profile build allocates so much transient
   memory that running it in a freshly forked (or spawned) worker
   degenerates into a copy-on-write page-fault storm — see
   :func:`_score_split_chunk`.
4. **Global model** (serial, *overlapped*): the training sample is drawn
   from the global candidate order (identical to the single-process
   sample) and its γ rows are sliced from the shared buffer.  The EM
   midsection starts as soon as the sampled rows and split scores are in
   hand — γ chunks that carry no sampled row keep computing in the pool
   *while* the mixture trains, so the midsection is no longer a barrier.
5. **Phase B — parallel decisions, pipelined**: the fitted model is
   broadcast once through a shared-memory blob (workers deserialise and
   cache it process-locally); each shard's decision task is dispatched
   the moment its γ rows are complete — shards whose chunks finished
   before the model simply go first.  Tasks carry only name lists, vid
   tuples and ``(offset, count)`` row spans; the worker re-reads its γ
   rows from shared memory, scores them against the cached model, cuts
   its block (plus a radius-``max(1, wl_iterations)`` profile halo,
   needed only when ``merge_rounds > 1`` re-scores) out of its
   process-local SCN, runs the shared
   :func:`~repro.core.iuad.run_merge_rounds` decision loop, merges its
   components under the cannot-link constraints, drops the halo and
   ships back its fitted block network.
6. **Merge** (serial, deterministic): per-shard networks and the
   fast-path vertices are stitched by
   :func:`repro.graphs.collab.combine_networks` — stable remapped vertex
   ids, preserved ``pid -> position`` mention payloads, a global
   uniqueness check on mention ownership — then the non-stable
   collaborative relations are recovered globally and the cannot-link
   constraints are re-derived on the stitched network.

Results are keyed by chunk/shard index and assembled in plan order, so
pool scheduling never changes an outcome, only the timeline.  The
per-phase walls, the overlap they bought, and the IPC/shared-memory
byte counts are recorded on the :class:`~repro.core.iuad.FitReport`
(``pipeline_seconds``, ``overlap_seconds``, ``ipc_task_bytes``, …) and
flattened into benchmark records by
:func:`repro.eval.timing.shard_summary` — a transport regression shows
up in the committed record, not in a reviewer's profiler.

Exactness: with ``merge_rounds == 1`` (the paper's Algorithm 1) the
sharded fit produces mention clusterings *identical* to the whole-corpus
fit — names cannot influence each other within a round, and profiles are
computed on the full network (``tests/test_sharding_parity.py`` pins
this, serially and under a process pool; profile construction iterates
papers in canonical order so results survive the pickling of networks,
see ``SimilarityComputer._build_profile``).  With more rounds, exactness
additionally requires blocks to stay whole (``max_shard_size = 0``):
splitting a block can miss cross-shard profile updates between rounds.

Edge-paper caveat: a stable SCN edge between two blocks is re-established
by relation recovery, whose paper annotation derives from mention
ownership rather than SCR support; scoring never reads edge paper sets,
so clusterings are unaffected.
"""

from __future__ import annotations

import gc
import multiprocessing
import pickle
import time
from bisect import bisect_right
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterable, Mapping

import numpy as np

from ..data.records import Corpus
from ..graphs.collab import CollaborationNetwork, combine_networks
from ..graphs.unionfind import UnionFind
from ..model.mixture import MatchMixture
from ..model.scoring import match_scores
from ..similarity.profile import SimilarityComputer
from ..text.embeddings import WordEmbeddings
from ..text.tokenize import corpus_word_frequencies
from .balance import split_prolific_vertices
from .candidates import candidate_pairs_of_name, cannot_link_pairs, sample_training_pairs
from .config import IUADConfig
from .iuad import IUAD, FitReport, run_merge_rounds

Pair = tuple[int, int]


# --------------------------------------------------------------------- #
# plan data model
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class ShardStats:
    """Per-shard counters of one sharded fit (rides in ``FitReport``)."""

    index: int
    n_names: int
    n_vertices: int
    n_halo: int
    n_papers: int
    n_candidate_pairs: int
    n_decision_pairs: int = 0
    n_merges: int = 0
    gamma_seconds: float = 0.0
    decide_seconds: float = 0.0


@dataclass(slots=True)
class Shard:
    """One unit of parallel work: a set of whole (or split) name blocks.

    ``names`` are the shard's pair-bearing names in global ``scn.names``
    order; ``owned_vids`` are *all* their vertices (a name is never split
    across shards); ``halo_vids`` are the extra profile-context vertices
    within radius of the owned set; ``pids`` are the papers of the owned
    vertices.
    """

    index: int
    names: tuple[str, ...]
    owned_vids: tuple[int, ...]
    halo_vids: tuple[int, ...]
    pids: tuple[int, ...]
    n_candidate_pairs: int


@dataclass(slots=True)
class ShardPlan:
    """The full partition: shards + singleton fast path + routing index.

    ``name_to_shard`` covers *every* corpus name: pair-bearing names map
    to their fitted shard, the rest to their component's shard or to a
    fast-path block id (``len(shards) <= id < n_blocks``) when their
    whole component had no Stage-2 work.
    """

    shards: list[Shard]
    fastpath_vids: tuple[int, ...]
    name_to_shard: dict[str, int]
    n_blocks: int
    seconds: float

    @property
    def n_candidate_pairs(self) -> int:
        return sum(s.n_candidate_pairs for s in self.shards)


class ShardIndex:
    """Routes names to their owning shard (streaming inserts, Section V-E).

    The fitted partition seeds the index; papers streamed in later are
    routed to the shard owning their author names.  A new paper whose
    names span several shards *bridges* them — the shards are unioned so
    subsequent routing stays consistent — and a paper carrying only
    unknown names opens a fresh shard id.  The incremental path uses this
    to account every insert to exactly one (canonical) shard.
    """

    def __init__(self, name_to_shard: Mapping[str, int], n_shards: int):
        self._uf: UnionFind = UnionFind(range(n_shards))
        self._name_to_shard: dict[str, int] = dict(name_to_shard)
        self._next_shard = n_shards
        self.n_bridges = 0

    @property
    def n_shards(self) -> int:
        """Number of distinct (canonical) shards currently known."""
        return self._uf.n_components

    def shard_of_name(self, name: str) -> int | None:
        """Canonical shard id owning ``name`` (``None`` if never seen)."""
        sid = self._name_to_shard.get(name)
        return None if sid is None else self._uf.find(sid)

    def route_paper(self, names: Iterable[str]) -> int:
        """Owning shard of a new paper; registers names, bridges shards."""
        names = list(names)
        known = {self._name_to_shard[n] for n in names if n in self._name_to_shard}
        roots = {self._uf.find(sid) for sid in known}
        if roots:
            canonical = roots.pop()
            for other in roots:
                canonical = self._uf.union(canonical, other)
                self.n_bridges += 1
        else:
            canonical = self._next_shard
            self._next_shard += 1
            self._uf.add(canonical)
        for name in names:
            if name not in self._name_to_shard:
                self._name_to_shard[name] = canonical
        return self._uf.find(canonical)

    def route_papers(
        self, author_lists: Iterable[Iterable[str]]
    ) -> list[int]:
        """Bulk routing: one canonical shard id per paper, in order.

        The batched streaming path (:class:`repro.core.streaming.
        StreamingIngestor`) routes a whole burst through here before
        planning its waves.  Routing is applied paper by paper *in input
        order* — bridging is order-sensitive (the shard a paper lands on
        depends on the unions performed so far), and the sequential
        ``add_paper`` loop routes in exactly that order, which is what
        keeps the index state and the per-shard counters in parity.
        Returned ids are canonical at the time each paper was routed; a
        later bridge may merge them further (resolve via
        :meth:`shard_of_name` for the current canonical id).
        """
        return [self.route_paper(names) for names in author_lists]


# --------------------------------------------------------------------- #
# partitioner
# --------------------------------------------------------------------- #
def _pair_count(n_vertices: int) -> int:
    return n_vertices * (n_vertices - 1) // 2


def plan_shards(
    scn: CollaborationNetwork,
    corpus: Corpus,
    max_shard_size: int = 4000,
    halo_radius: int = 2,
) -> ShardPlan:
    """Partition the corpus into independent name-block shards.

    Blocks are connected components of the co-author name graph (two
    names are linked when they appear on one paper), restricted to
    *pair-bearing* names — names with at least two SCN vertices, i.e.
    names with Stage-2 work.  Vertices of all other names take the
    singleton fast path (``fastpath_vids``) straight into the merged
    network.

    ``max_shard_size`` is a per-shard candidate-pair budget: small blocks
    are packed together (first-fit decreasing, deterministic) and a block
    exceeding the budget on its own is split into name chunks.  ``0``
    disables both and yields one shard per block.

    ``halo_radius`` controls the profile context around a block that the
    Phase-B sub-network keeps: every vertex within that many hops of an
    owned vertex (pass ``max(1, config.wl_iterations)``).  Only re-scoring
    rounds (``merge_rounds > 1``) read profiles off that sub-network.
    """
    t0 = time.perf_counter()
    # Name components over shared papers.
    names_uf: UnionFind = UnionFind()
    for paper in corpus:
        first = paper.authors[0]
        names_uf.add(first)
        for other in paper.authors[1:]:
            names_uf.add(other)
            names_uf.union(first, other)

    # Blocks of pair-bearing names, in deterministic scn.names order.
    pair_counts: dict[str, int] = {}
    block_names: dict[str, list[str]] = {}
    block_order: list[str] = []
    for name in scn.names:
        count = _pair_count(len(scn.vertices_of_name(name)))
        if count == 0:
            continue
        pair_counts[name] = count
        root = names_uf.find(name) if name in names_uf else name
        if root not in block_names:
            block_names[root] = []
            block_order.append(root)
        block_names[root].append(name)

    # Split oversized blocks by name (exact for merge_rounds == 1).
    chunks: list[list[str]] = []
    for root in block_order:
        names = block_names[root]
        size = sum(pair_counts[n] for n in names)
        if max_shard_size <= 0 or size <= max_shard_size:
            chunks.append(names)
            continue
        current: list[str] = []
        current_size = 0
        for name in names:
            if current and current_size + pair_counts[name] > max_shard_size:
                chunks.append(current)
                current, current_size = [], 0
            current.append(name)
            current_size += pair_counts[name]
        if current:
            chunks.append(current)

    # Pack chunks into shards (first-fit decreasing, deterministic).
    if max_shard_size > 0:
        sized = sorted(
            enumerate(chunks),
            key=lambda kv: (-sum(pair_counts[n] for n in kv[1]), kv[0]),
        )
        bins: list[list[str]] = []
        bin_sizes: list[int] = []
        for _, chunk in sized:
            size = sum(pair_counts[n] for n in chunk)
            for i, used in enumerate(bin_sizes):
                if used + size <= max_shard_size:
                    bins[i].extend(chunk)
                    bin_sizes[i] += size
                    break
            else:
                bins.append(list(chunk))
                bin_sizes.append(size)
        groups = bins
    else:
        groups = chunks

    # Materialise shards: owned vertices, profile halo, papers.
    name_order = {name: i for i, name in enumerate(scn.names)}
    owned_anywhere: set[int] = set()
    shards: list[Shard] = []
    name_to_shard: dict[str, int] = {}
    for index, group in enumerate(groups):
        group = sorted(group, key=name_order.__getitem__)
        owned: list[int] = []
        for name in group:
            owned.extend(scn.vertices_of_name(name))
            name_to_shard[name] = index
        owned_set = set(owned)
        owned_anywhere.update(owned_set)
        halo: set[int] = set()
        frontier = list(owned_set)
        for _ in range(max(1, halo_radius)):
            next_frontier: list[int] = []
            for vid in frontier:
                for nbr in scn.neighbors(vid):
                    if nbr not in owned_set and nbr not in halo:
                        halo.add(nbr)
                        next_frontier.append(nbr)
            frontier = next_frontier
        pids: set[int] = set()
        for vid in owned_set:
            pids.update(scn.papers_of(vid))
        shards.append(
            Shard(
                index=index,
                names=tuple(group),
                owned_vids=tuple(sorted(owned_set)),
                halo_vids=tuple(sorted(halo)),
                pids=tuple(sorted(pids)),
                n_candidate_pairs=sum(pair_counts[n] for n in group),
            )
        )

    # Every remaining corpus name — singleton names living inside a
    # sharded block, and whole blocks with no pair-bearing name — still
    # belongs to a block: route it to its component's shard, or allocate
    # a fresh fast-path block id.  Streaming inserts by known fast-path
    # authors then route into their real block instead of opening a
    # phantom shard.
    comp_shard: dict[str, int] = {}
    for shard in shards:
        for name in shard.names:
            comp_shard.setdefault(names_uf.find(name), shard.index)
    next_block = len(shards)
    for name in names_uf:
        if name in name_to_shard:
            continue
        root = names_uf.find(name)
        if root not in comp_shard:
            comp_shard[root] = next_block
            next_block += 1
        name_to_shard[name] = comp_shard[root]

    fastpath = tuple(
        sorted(v.vid for v in scn if v.vid not in owned_anywhere)
    )
    return ShardPlan(
        shards=shards,
        fastpath_vids=fastpath,
        name_to_shard=name_to_shard,
        n_blocks=next_block,
        seconds=time.perf_counter() - t0,
    )


# --------------------------------------------------------------------- #
# shared-memory transport
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class _ArrayRef:
    """Reference to a ``(rows, 6)`` float64 result buffer workers fill.

    Pool runs back the buffer with a :mod:`multiprocessing.shared_memory`
    segment (``shm_name``): γ chunks are *written in place* by workers
    and never round-trip through pickle.  The serial in-process path
    (and the zero-row degenerate case) holds a plain array directly in
    ``array`` instead of allocating an OS segment.  (The split-balance
    buffer is always a plain parent-side array — see
    :func:`_score_split_chunk`.)
    """

    rows: int
    shm_name: str | None = None
    array: np.ndarray | None = None


@dataclass(slots=True)
class _ModelRef:
    """Broadcast handle of the fitted mixture for Phase-B workers.

    Pool runs pickle the model *once* into a shared-memory blob; every
    worker deserialises it on first use and caches it process-locally
    (:data:`_MODEL_CACHE`), so each decision task carries a tiny segment
    name instead of its own model copy.  The serial path carries the
    live object in ``model``.
    """

    shm_name: str | None = None
    nbytes: int = 0
    model: MatchMixture | None = None


#: Process-local attached shared-memory views, keyed by segment name.
#: Workers attach each segment once and keep the mapping for the pool's
#: lifetime; the parent closes and unlinks after the pool is joined.
_SHM_VIEWS: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}

#: Process-local deserialised model broadcasts, keyed by segment name.
_MODEL_CACHE: dict[str, MatchMixture] = {}


def _view_of(ref: _ArrayRef) -> np.ndarray:
    """The live ``(rows, 6)`` ndarray behind ``ref`` in this process."""
    if ref.array is not None:
        return ref.array
    assert ref.shm_name is not None, "array ref carries neither array nor shm"
    cached = _SHM_VIEWS.get(ref.shm_name)
    if cached is None:
        shm = shared_memory.SharedMemory(name=ref.shm_name)
        view = np.ndarray((ref.rows, 6), dtype=np.float64, buffer=shm.buf)
        cached = (shm, view)
        _SHM_VIEWS[ref.shm_name] = cached
    return cached[1]


def _resolve_model(ref: _ModelRef) -> MatchMixture:
    """The fitted mixture behind ``ref``, deserialised at most once."""
    if ref.model is not None:
        return ref.model
    assert ref.shm_name is not None, "model ref carries neither model nor shm"
    model = _MODEL_CACHE.get(ref.shm_name)
    if model is None:
        shm = shared_memory.SharedMemory(name=ref.shm_name)
        try:
            model = pickle.loads(bytes(shm.buf[: ref.nbytes]))
        finally:
            shm.close()
        _MODEL_CACHE[ref.shm_name] = model
    return model


# --------------------------------------------------------------------- #
# worker context + tasks
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class _WorkerContext:
    """Heavy shared inputs, shipped once per worker (pool initializer).

    Tasks themselves stay light (name lists, vid tuples, row spans): the
    SCN, the corpus, the global frequency tables and the γ-buffer
    reference travel to each worker process exactly once instead of
    once per task, which is what keeps pool overhead flat as the number
    of chunks grows.  (The split-balance network deliberately stays
    out: its scoring runs parent-side — see :func:`_score_split_chunk`.)
    """

    scn: CollaborationNetwork
    corpus: Corpus
    word_frequencies: dict[str, int]
    venue_frequencies: dict[str, int]
    embeddings: WordEmbeddings | None
    wl_iterations: int
    decay_alpha: float
    gamma_ref: _ArrayRef

    def computer(self, network: CollaborationNetwork) -> SimilarityComputer:
        """A similarity computer over ``network`` with the global tables."""
        return SimilarityComputer(
            network,
            self.corpus,
            embeddings=self.embeddings,
            word_frequencies=self.word_frequencies,
            wl_iterations=self.wl_iterations,
            decay_alpha=self.decay_alpha,
            venue_frequencies=self.venue_frequencies,
        )


#: Per-process context, set by :func:`_init_worker` (pool) or directly by
#: the serial in-process path.
_CTX: _WorkerContext | None = None


def _init_worker(ctx: _WorkerContext) -> None:
    global _CTX
    _CTX = ctx


def _boot_pool_worker(ctx: _WorkerContext | None = None) -> None:
    """Pool-worker initializer: install the context, then freeze the heap.

    A worker starts life holding a heavy object graph — the fork-
    inherited parent heap (which may include a whole previously fitted
    estimator, as in the benchmark's single-vs-sharded comparison) or
    the spawn-pickled :class:`_WorkerContext`.  Chunk scoring allocates
    enough to trigger full GC passes, and every pass would re-walk
    those millions of long-lived objects (unsharing their
    copy-on-write pages in the bargain): on a corpus where the fit
    itself takes ~11 s, that repeated traversal alone blew the pooled
    fit up to ~190 s.  ``gc.freeze`` parks everything alive at worker
    start in the permanent generation, so collections scan only
    worker-born garbage.  Workers are short-lived and never need to
    reclaim the context, so freezing costs nothing.
    """
    if ctx is not None:
        _init_worker(ctx)
    gc.freeze()


def _require_ctx() -> _WorkerContext:
    assert _CTX is not None, "worker context not initialised"
    return _CTX


@dataclass(slots=True)
class _GammaChunkTask:
    """Phase-A unit: a contiguous run of names, ≈equal candidate pairs.

    Chunk boundaries depend only on the network and
    ``config.gamma_chunk_pairs`` — never on worker count — so serial and
    pool runs fill byte-identical buffers and a fat shard never
    serialises the phase behind one straggler task.
    """

    index: int
    names: tuple[str, ...]
    offset: int    # first γ-buffer row of this chunk
    n_pairs: int


@dataclass(slots=True)
class _ChunkDone:
    """Tiny pool return of a buffer-writing task: identity + wall-clock."""

    index: int
    seconds: float


@dataclass(slots=True)
class _SplitScoreTask:
    index: int
    offset: int    # first split-buffer row of this chunk
    pairs: list[Pair]


@dataclass(slots=True)
class _DecisionTask:
    """Phase-B unit: everything a worker needs that its context lacks.

    Deliberately model- and score-free: the worker re-reads its γ rows
    from the shared buffer (``row_spans``) and scores them against the
    broadcast model it resolves through :func:`_resolve_model`.
    """

    index: int
    names: tuple[str, ...]                    # decision names, shard order
    vids: tuple[int, ...]                     # owned + halo, cut in the worker
    owned_vids: tuple[int, ...]
    row_spans: tuple[tuple[int, int], ...]    # γ-buffer (offset, count) per name
    model: _ModelRef
    config: IUADConfig


@dataclass(slots=True)
class _ShardFit:
    index: int
    network: CollaborationNetwork
    n_merges: int
    per_round_candidate_pairs: list[int]
    per_round_merges: list[int]
    per_name_seconds: dict[str, float]
    seconds: float


def _compute_gamma_chunk(task: _GammaChunkTask) -> _ChunkDone:
    """Phase A: γ vectors of the chunk's candidate pairs, written in place.

    Scoring runs against the *full* process-local SCN — the same graph
    the single-process fit scores against, so profiles and γ values are
    identical by construction (no halo bookkeeping on this path).

    Each chunk deliberately starts a fresh computer: profiles are built
    only for pair endpoints, and names never straddle chunks, so chunks'
    profile sets are disjoint — a cross-task cache would buy nothing,
    while sharing the engine's interned column space across
    scheduler-ordered tasks would make float accumulation order depend
    on pool scheduling and break run-to-run determinism.
    """
    t0 = time.perf_counter()
    ctx = _require_ctx()
    flat: list[Pair] = []
    for name in task.names:
        flat.extend(candidate_pairs_of_name(ctx.scn, name))
    assert len(flat) == task.n_pairs, "γ chunk plan drifted from the network"
    if flat:
        out = _view_of(ctx.gamma_ref)[task.offset : task.offset + len(flat)]
        ctx.computer(ctx.scn).pair_matrix(flat, out=out)
    return _ChunkDone(index=task.index, seconds=time.perf_counter() - t0)


def _score_split_chunk(
    computer: SimilarityComputer, split_buf: np.ndarray, task: _SplitScoreTask
) -> _ChunkDone:
    """Score one chunk of split-balance matched pairs (Section V-F2).

    This deliberately runs **in the parent**, overlapped with the pooled
    γ chunks, never as a pool task.  Profiles on the dense split network
    allocate on the order of a gigabyte of transients; in a forked
    worker every one of those writes lands on a copy-on-write arena
    page inherited from the parent, and the resulting minor-fault storm
    (~400k faults measured for a few hundred pairs) made the pooled
    version 10–30× slower than this in-parent loop, whose heap is
    already warm.  A spawn worker fares no better — it pays the same
    bill unpickling the context.  The parent scores the split buffer
    while the pool crunches γ, which is all the parallelism this small,
    profile-bound workload can profit from.
    """
    t0 = time.perf_counter()
    out = split_buf[task.offset : task.offset + len(task.pairs)]
    computer.pair_matrix(task.pairs, out=out)
    return _ChunkDone(index=task.index, seconds=time.perf_counter() - t0)


def _fit_shard(task: _DecisionTask) -> _ShardFit:
    """Phase B: run the shared decision loop on one block, drop the halo.

    Round-one inputs are rebuilt worker-side: candidate pairs from the
    process-local SCN (deterministic: sorted-vid combinations), γ rows
    from the shared buffer, Eq. 11 scores from the cached broadcast
    model — ``match_scores`` is row-wise, so scoring here instead of in
    the parent is bit-identical.
    """
    t0 = time.perf_counter()
    ctx = _require_ctx()
    model = _resolve_model(task.model)
    gamma = _view_of(ctx.gamma_ref)
    name_pairs: list[tuple[str, list[Pair]]] = []
    blocks: list[np.ndarray] = []
    for name, (offset, count) in zip(task.names, task.row_spans):
        pairs = candidate_pairs_of_name(ctx.scn, name)
        assert len(pairs) == count, "γ row span drifted from the network"
        name_pairs.append((name, pairs))
        blocks.append(gamma[offset : offset + count])
    scores = match_scores(
        model,
        np.concatenate(blocks) if blocks else np.zeros((0, 6), dtype=np.float64),
    )
    network = ctx.scn.subnetwork(task.vids)
    computer = ctx.computer(network)
    outcome = run_merge_rounds(
        network,
        [name for name, _pairs in name_pairs],
        model,
        computer,
        task.config,
        round1=(name_pairs, scores),
    )
    # Same-name merges keep representatives inside the owned set, so the
    # halo survives untouched — strip it before shipping the block back.
    owned = set(task.owned_vids)
    survivors = [v.vid for v in outcome.network if v.vid in owned]
    return _ShardFit(
        index=task.index,
        network=outcome.network.subnetwork(survivors),
        n_merges=outcome.n_merges,
        per_round_candidate_pairs=outcome.per_round_candidate_pairs,
        per_round_merges=outcome.per_round_merges,
        per_name_seconds=outcome.per_name_seconds,
        seconds=time.perf_counter() - t0,
    )


# --------------------------------------------------------------------- #
# γ layout
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class _GammaPlan:
    """Global γ-buffer layout: canonical row order + pair-count chunks.

    Rows follow the exact candidate order the single-process fit
    enumerates (``scn.names`` order, per-name sorted-vid pairs), so the
    training sample is a plain row slice and per-name spans are
    contiguous.  ``tasks`` tile that order into
    ``config.gamma_chunk_pairs``-sized chunks of whole names.
    """

    ordered_names: list[str]
    name_rows: dict[str, tuple[int, int]]    # name -> (offset, count)
    all_pairs: list[Pair]
    tasks: list[_GammaChunkTask]
    chunk_of_name: dict[str, int]
    chunk_starts: list[int]                  # first row of each chunk
    total_rows: int

    def chunk_of_row(self, row: int) -> int:
        """Index of the chunk that computes γ-buffer row ``row``."""
        return bisect_right(self.chunk_starts, row) - 1


def _plan_gamma(scn: CollaborationNetwork, chunk_pairs: int) -> _GammaPlan:
    """Lay out every pair-bearing name's candidates into one flat buffer."""
    ordered_names: list[str] = []
    name_rows: dict[str, tuple[int, int]] = {}
    all_pairs: list[Pair] = []
    offset = 0
    for name in scn.names:
        pairs = candidate_pairs_of_name(scn, name)
        if not pairs:
            continue
        ordered_names.append(name)
        name_rows[name] = (offset, len(pairs))
        all_pairs.extend(pairs)
        offset += len(pairs)

    budget = max(1, chunk_pairs)
    tasks: list[_GammaChunkTask] = []
    chunk_of_name: dict[str, int] = {}
    chunk_starts: list[int] = []
    current: list[str] = []
    current_rows = 0
    start = 0
    for name in ordered_names:
        row_offset, count = name_rows[name]
        if current and current_rows + count > budget:
            tasks.append(
                _GammaChunkTask(
                    index=len(tasks),
                    names=tuple(current),
                    offset=start,
                    n_pairs=current_rows,
                )
            )
            chunk_starts.append(start)
            current, current_rows, start = [], 0, row_offset
        current.append(name)
        chunk_of_name[name] = len(tasks)
        current_rows += count
    if current:
        tasks.append(
            _GammaChunkTask(
                index=len(tasks),
                names=tuple(current),
                offset=start,
                n_pairs=current_rows,
            )
        )
        chunk_starts.append(start)
    return _GammaPlan(
        ordered_names=ordered_names,
        name_rows=name_rows,
        all_pairs=all_pairs,
        tasks=tasks,
        chunk_of_name=chunk_of_name,
        chunk_starts=chunk_starts,
        total_rows=offset,
    )


# --------------------------------------------------------------------- #
# execution accounting
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class _PhaseStats:
    """Pipeline phase walls + transport counters of one sharded fit.

    ``*_wall_seconds`` are parent-observed spans (submission of the first
    task of a kind to completion of its last), ``*_task_seconds`` are
    worker-summed compute; on a pool their walls overlap, which is the
    point — ``overlap_seconds`` is the wall-clock the pipelining bought
    versus running γ → EM → decisions as sequential barriers.
    """

    pipeline_seconds: float = 0.0
    gamma_wall_seconds: float = 0.0
    split_wall_seconds: float = 0.0
    em_seconds: float = 0.0
    decide_wall_seconds: float = 0.0
    overlap_seconds: float = 0.0
    gamma_task_seconds: float = 0.0
    split_task_seconds: float = 0.0
    decide_task_seconds: float = 0.0
    n_gamma_chunks: int = 0
    overlap_gamma_chunks: int = 0
    ipc_task_bytes: int = 0
    shm_bytes: int = 0


@dataclass(slots=True)
class _FitOutcome:
    """Everything a driver (serial or pool) hands back to ``fit``."""

    model: MatchMixture
    em_report: object
    n_train: int
    n_split: int
    shard_fits: list[_ShardFit]
    per_name_gamma: dict[str, float]
    shard_gamma: dict[int, float]
    phase: _PhaseStats


# --------------------------------------------------------------------- #
# orchestrator
# --------------------------------------------------------------------- #
class ShardedIUAD(IUAD):
    """Algorithm 1 executed shard-by-shard over independent name blocks.

    Drop-in replacement for :class:`~repro.core.iuad.IUAD`: same
    constructor, same ``fit`` signature, same fitted-state accessors, and
    — for ``merge_rounds == 1`` — mention clusterings identical to the
    single-process fit.  ``config.n_workers`` selects serial in-process
    execution (``0``) or a ``ProcessPoolExecutor`` of that size; both are
    deterministic, including under process-pool scheduling (results are
    collected in shard order, never in completion order).

    After fitting, ``shard_index_`` routes streaming inserts
    (:class:`~repro.core.incremental.IncrementalDisambiguator`) to their
    owning shard, ``cannot_links_`` holds the re-derived cannot-link
    pairs of the stitched network, and ``report_.shard_stats`` carries
    the per-shard counters.
    """

    def __init__(self, config: IUADConfig | None = None):
        super().__init__(config)
        self.plan_: ShardPlan | None = None
        self.shard_index_: ShardIndex | None = None
        self.cannot_links_: list[Pair] = []

    # ------------------------------------------------------------------ #
    def fit(
        self, corpus: Corpus, names: Iterable[str] | None = None
    ) -> "ShardedIUAD":
        """Run the sharded Algorithm 1 on ``corpus``.

        Identical contract to :meth:`IUAD.fit`; ``names`` restricts the
        merge decisions while the model still trains on candidates from
        every name block.
        """
        global _CTX
        cfg = self.config
        t0 = time.perf_counter()
        scn, scn_report = self._build_scn(corpus)
        stage1 = time.perf_counter() - t0

        t1 = time.perf_counter()
        self.embeddings_ = self._train_embeddings(corpus)
        word_freq = dict(corpus_word_frequencies(p.title for p in corpus))
        venue_freq = dict(corpus.venue_frequencies)

        plan = plan_shards(
            scn,
            corpus,
            max_shard_size=cfg.max_shard_size,
            halo_radius=max(1, cfg.wl_iterations),
        )
        decision_names = list(corpus.names if names is None else names)
        decision_set = set(decision_names)

        gplan = _plan_gamma(scn, cfg.gamma_chunk_pairs)
        split_pairs, split_tasks, split_network = self._split_tasks(scn)
        # The training sample is known *before* any γ is computed: the
        # global candidate order is a pure function of the SCN, so the
        # sample (identical to the single-process draw) tells the pool
        # driver exactly which γ chunks the EM midsection must await —
        # the rest keep computing underneath it.
        training = sample_training_pairs(
            gplan.all_pairs, cfg.sample_rate, cfg.min_training_pairs, cfg.seed
        )
        row_of = {pair: i for i, pair in enumerate(gplan.all_pairs)}
        training_rows = [row_of[pair] for pair in training]

        use_pool = cfg.n_workers >= 1 and bool(gplan.tasks)
        previous_ctx = _CTX
        shm_blocks: list[shared_memory.SharedMemory] = []
        try:
            run = self._run_pool if use_pool else self._run_serial
            outcome = run(
                scn, corpus, plan, gplan, split_pairs, split_tasks,
                split_network, training, training_rows, decision_set,
                word_freq, venue_freq, shm_blocks,
            )
        finally:
            _CTX = previous_ctx
            # The pool is joined by now (its context manager exits inside
            # the driver), so no worker still reads these segments.
            for shm in shm_blocks:
                try:
                    shm.close()
                except BufferError:  # pragma: no cover - a traceback frame
                    pass             # still pins a view; unlink regardless
                try:
                    shm.unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        model = outcome.model
        shard_fits = outcome.shard_fits

        # Deterministic merge: shard networks in index order, then the
        # singleton fast path, stitched under one fresh id space.
        t_stitch = time.perf_counter()
        nets = [fit.network for fit in shard_fits]
        if plan.fastpath_vids:
            nets.append(scn.subnetwork(plan.fastpath_vids))
        gcn, _mappings = combine_networks(nets)
        touched = self._recover_relations(gcn, corpus)
        # Re-apply the cannot-link constraints on the stitched id space:
        # the pairs that must never merge (homonymous co-authors) are
        # re-derived from the preserved mention payloads and re-registered
        # — registration itself re-validates that no stitched component
        # already violates one.
        self.cannot_links_ = cannot_link_pairs(gcn)
        guard: UnionFind = UnionFind(v.vid for v in gcn)
        for cl_u, cl_v in self.cannot_links_:
            guard.forbid(cl_u, cl_v)
        stitch_seconds = time.perf_counter() - t_stitch

        computer = SimilarityComputer(
            gcn,
            corpus,
            embeddings=self.embeddings_,
            word_frequencies=word_freq,
            wl_iterations=cfg.wl_iterations,
            decay_alpha=cfg.decay_alpha,
            venue_frequencies=venue_freq,
        )
        computer.invalidate_many(touched)
        stage2 = time.perf_counter() - t1

        self.corpus_ = corpus
        self.scn_ = scn
        self.gcn_ = gcn
        self.model_ = model
        self.computer_ = computer
        self.plan_ = plan
        self.shard_index_ = ShardIndex(plan.name_to_shard, plan.n_blocks)
        self.report_ = self._build_report(
            scn_report, outcome, plan, gcn, stage1, stage2, stitch_seconds,
        )
        return self

    # ------------------------------------------------------------------ #
    # drivers
    # ------------------------------------------------------------------ #
    def _run_serial(
        self,
        scn: CollaborationNetwork,
        corpus: Corpus,
        plan: ShardPlan,
        gplan: _GammaPlan,
        split_pairs: list[Pair],
        split_tasks: list[_SplitScoreTask],
        split_network: CollaborationNetwork | None,
        training: list[Pair],
        training_rows: list[int],
        decision_set: set[str],
        word_freq: dict[str, int],
        venue_freq: dict[str, int],
        shm_blocks: list[shared_memory.SharedMemory],
    ) -> _FitOutcome:
        """Eager in-process execution of the same A → EM → B pipeline.

        Every chunk runs through the *same* task functions and result
        buffers as the pool path (plain process-local arrays standing in
        for shared memory), and every stage is materialised eagerly
        inside its own timer — no lazy generators executing under a
        later stage's clock, so the per-stage attribution is honest.
        """
        gamma_buf = np.zeros((gplan.total_rows, 6), dtype=np.float64)
        split_buf = np.zeros((len(split_pairs), 6), dtype=np.float64)
        ctx = self._make_context(
            scn, corpus, word_freq, venue_freq,
            _ArrayRef(rows=gplan.total_rows, array=gamma_buf),
        )
        _init_worker(ctx)
        phase = _PhaseStats(n_gamma_chunks=len(gplan.tasks))
        chunk_secs: dict[int, float] = {}

        t_pipe = time.perf_counter()
        t = time.perf_counter()
        for task in gplan.tasks:
            done = _compute_gamma_chunk(task)
            chunk_secs[done.index] = done.seconds
            phase.gamma_task_seconds += done.seconds
        phase.gamma_wall_seconds = time.perf_counter() - t

        t = time.perf_counter()
        if split_tasks:
            split_computer = ctx.computer(split_network)
            for split_task in split_tasks:
                phase.split_task_seconds += _score_split_chunk(
                    split_computer, split_buf, split_task
                ).seconds
        phase.split_wall_seconds = time.perf_counter() - t

        t = time.perf_counter()
        model, em_report, n_train, n_split = self._central_section(
            scn, corpus, training, training_rows,
            gamma_buf, split_pairs, split_buf,
        )
        phase.em_seconds = time.perf_counter() - t

        tasks, fits = self._decision_tasks(
            plan, gplan, decision_set, _ModelRef(model=model), scn
        )
        t = time.perf_counter()
        for decision_task in tasks:
            fit = _fit_shard(decision_task)
            phase.decide_task_seconds += fit.seconds
            fits[fit.index] = fit
        phase.decide_wall_seconds = time.perf_counter() - t
        phase.pipeline_seconds = time.perf_counter() - t_pipe

        per_name_gamma, shard_gamma = self._attribute_gamma(
            gplan, plan, chunk_secs
        )
        return _FitOutcome(
            model=model,
            em_report=em_report,
            n_train=n_train,
            n_split=n_split,
            shard_fits=[fits[shard.index] for shard in plan.shards],
            per_name_gamma=per_name_gamma,
            shard_gamma=shard_gamma,
            phase=phase,
        )

    def _run_pool(
        self,
        scn: CollaborationNetwork,
        corpus: Corpus,
        plan: ShardPlan,
        gplan: _GammaPlan,
        split_pairs: list[Pair],
        split_tasks: list[_SplitScoreTask],
        split_network: CollaborationNetwork | None,
        training: list[Pair],
        training_rows: list[int],
        decision_set: set[str],
        word_freq: dict[str, int],
        venue_freq: dict[str, int],
        shm_blocks: list[shared_memory.SharedMemory],
    ) -> _FitOutcome:
        """Pipelined pool execution: submit/as_completed, no phase barriers.

        Timeline: all γ chunks are submitted up front; the parent then
        scores the split-balance pairs itself while the pool crunches γ
        (pooling that profile-bound workload loses badly — see
        :func:`_score_split_chunk`); the EM midsection starts once the
        split buffer and the *sampled* γ rows are in — the γ tail keeps
        computing underneath it; each shard's decision task is
        dispatched the moment both the model and its γ rows exist.
        Results are keyed by chunk/shard index, so completion order
        never leaks into the outcome.
        """
        cfg = self.config
        method = cfg.mp_start_method or (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        mp_context = multiprocessing.get_context(method)
        gamma_ref, gamma_buf = self._shared_block(gplan.total_rows, shm_blocks)
        split_buf = np.zeros((len(split_pairs), 6), dtype=np.float64)
        ctx = self._make_context(
            scn, corpus, word_freq, venue_freq, gamma_ref,
        )
        if method == "fork":
            # Fork workers inherit the parent's memory copy-on-write:
            # setting the module-level context *before* the pool forks
            # ships the SCN/corpus to every worker for free.  The
            # initializer then freezes the inherited heap in each child
            # (see :func:`_boot_pool_worker`).
            _init_worker(ctx)
            pool_kwargs = {"initializer": _boot_pool_worker}
        else:
            # Spawn/forkserver workers pickle the context once per worker
            # through the initializer, then freeze it the same way.
            pool_kwargs = {
                "initializer": _boot_pool_worker,
                "initargs": (ctx,),
            }

        phase = _PhaseStats(
            n_gamma_chunks=len(gplan.tasks),
            shm_bytes=sum(shm.size for shm in shm_blocks),
        )
        chunk_secs: dict[int, float] = {}
        finished_at: dict[tuple[str, int], float] = {}

        def stamp(kind: str, index: int):
            key = (kind, index)

            def record(_fut: Future) -> None:
                finished_at[key] = time.perf_counter()

            return record

        with ProcessPoolExecutor(
            max_workers=cfg.n_workers, mp_context=mp_context, **pool_kwargs
        ) as pool:
            t_pipe = time.perf_counter()
            gamma_futs: dict[Future, _GammaChunkTask] = {}
            for task in gplan.tasks:
                phase.ipc_task_bytes += len(
                    pickle.dumps(task, pickle.HIGHEST_PROTOCOL)
                )
                fut = pool.submit(_compute_gamma_chunk, task)
                fut.add_done_callback(stamp("gamma", task.index))
                gamma_futs[fut] = task

            # Split-balance scoring runs here in the parent, under the
            # pool's γ work — the first slice of pipeline overlap.
            t_split = time.perf_counter()
            if split_tasks:
                split_computer = ctx.computer(split_network)
                for split_task in split_tasks:
                    phase.split_task_seconds += _score_split_chunk(
                        split_computer, split_buf, split_task
                    ).seconds
            phase.split_wall_seconds = time.perf_counter() - t_split

            # The EM midsection additionally needs exactly the γ chunks
            # carrying a sampled training row — not the whole phase.
            needed = {gplan.chunk_of_row(row) for row in training_rows}
            em_futs = [
                fut for fut, task in gamma_futs.items() if task.index in needed
            ]
            done_chunks: set[int] = set()
            for fut in as_completed(em_futs):
                done = fut.result()
                done_chunks.add(done.index)
                chunk_secs[done.index] = done.seconds
                phase.gamma_task_seconds += done.seconds

            t_em = time.perf_counter()
            model, em_report, n_train, n_split = self._central_section(
                scn, corpus, training, training_rows,
                gamma_buf, split_pairs, split_buf,
            )
            phase.em_seconds = time.perf_counter() - t_em

            model_ref = self._broadcast_model(model, shm_blocks)
            phase.shm_bytes += model_ref.nbytes
            tasks, fits = self._decision_tasks(
                plan, gplan, decision_set, model_ref, scn
            )
            pending = {task.index: task for task in tasks}
            rows_needed = {
                task.index: {gplan.chunk_of_name[name] for name in task.names}
                for task in tasks
            }
            decide_futs: dict[Future, int] = {}
            t_decide: float | None = None

            def dispatch_ready() -> None:
                nonlocal t_decide
                ready = [
                    index
                    for index, chunks in rows_needed.items()
                    if index in pending and chunks <= done_chunks
                ]
                for index in ready:
                    decision_task = pending.pop(index)
                    phase.ipc_task_bytes += len(
                        pickle.dumps(decision_task, pickle.HIGHEST_PROTOCOL)
                    )
                    if t_decide is None:
                        t_decide = time.perf_counter()
                    fut = pool.submit(_fit_shard, decision_task)
                    fut.add_done_callback(stamp("decide", index))
                    decide_futs[fut] = index

            # Shards whose γ landed before the model go out immediately;
            # the rest dispatch as their tail chunks complete.
            dispatch_ready()
            tail = [
                fut
                for fut, task in gamma_futs.items()
                if task.index not in done_chunks
            ]
            for fut in as_completed(tail):
                done = fut.result()
                done_chunks.add(done.index)
                chunk_secs[done.index] = done.seconds
                phase.gamma_task_seconds += done.seconds
                dispatch_ready()
            assert not pending, "decision dispatch lost a shard"
            for fut in as_completed(decide_futs):
                fit = fut.result()
                phase.decide_task_seconds += fit.seconds
                fits[fit.index] = fit
            t_end = time.perf_counter()

        # The pool is joined: every done-callback has fired, so the
        # completion stamps are final.
        gamma_done = [ts for (k, _), ts in finished_at.items() if k == "gamma"]
        decide_done = [
            ts for (k, _), ts in finished_at.items() if k == "decide"
        ]
        phase.gamma_wall_seconds = max(gamma_done, default=t_pipe) - t_pipe
        phase.decide_wall_seconds = (
            max(decide_done) - t_decide if decide_done and t_decide else 0.0
        )
        phase.pipeline_seconds = t_end - t_pipe
        phase.overlap_gamma_chunks = sum(
            1 for (k, _), ts in finished_at.items() if k == "gamma" and ts > t_em
        )
        # Concurrency won: how much longer the phases would have taken
        # laid end to end.  The parent-side split loop runs under the γ
        # wall, and the γ tail runs under EM/decide, so the sum of walls
        # can legitimately exceed the pipeline.
        phase.overlap_seconds = max(
            0.0,
            phase.gamma_wall_seconds
            + phase.split_wall_seconds
            + phase.em_seconds
            + phase.decide_wall_seconds
            - phase.pipeline_seconds,
        )

        per_name_gamma, shard_gamma = self._attribute_gamma(
            gplan, plan, chunk_secs
        )
        return _FitOutcome(
            model=model,
            em_report=em_report,
            n_train=n_train,
            n_split=n_split,
            shard_fits=[fits[shard.index] for shard in plan.shards],
            per_name_gamma=per_name_gamma,
            shard_gamma=shard_gamma,
            phase=phase,
        )

    # ------------------------------------------------------------------ #
    # driver helpers
    # ------------------------------------------------------------------ #
    def _make_context(
        self,
        scn: CollaborationNetwork,
        corpus: Corpus,
        word_freq: dict[str, int],
        venue_freq: dict[str, int],
        gamma_ref: _ArrayRef,
    ) -> _WorkerContext:
        cfg = self.config
        return _WorkerContext(
            scn=scn,
            corpus=corpus,
            word_frequencies=word_freq,
            venue_frequencies=venue_freq,
            embeddings=self.embeddings_,
            wl_iterations=cfg.wl_iterations,
            decay_alpha=cfg.decay_alpha,
            gamma_ref=gamma_ref,
        )

    @staticmethod
    def _shared_block(
        rows: int, shm_blocks: list[shared_memory.SharedMemory]
    ) -> tuple[_ArrayRef, np.ndarray]:
        """A ``(rows, 6)`` float64 result block backed by shared memory.

        Returns the worker-facing reference and the parent's own view.
        Zero-row blocks skip the OS segment (``SharedMemory`` forbids
        empty segments) and ship a plain empty array instead.
        """
        if rows == 0:
            empty = np.zeros((0, 6), dtype=np.float64)
            return _ArrayRef(rows=0, array=empty), empty
        shm = shared_memory.SharedMemory(create=True, size=rows * 6 * 8)
        shm_blocks.append(shm)
        view = np.ndarray((rows, 6), dtype=np.float64, buffer=shm.buf)
        view[:] = 0.0
        return _ArrayRef(rows=rows, shm_name=shm.name), view

    @staticmethod
    def _broadcast_model(
        model: MatchMixture, shm_blocks: list[shared_memory.SharedMemory]
    ) -> _ModelRef:
        """Publish the fitted mixture once for every Phase-B worker."""
        blob = pickle.dumps(model, pickle.HIGHEST_PROTOCOL)
        shm = shared_memory.SharedMemory(create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        shm_blocks.append(shm)
        return _ModelRef(shm_name=shm.name, nbytes=len(blob))

    def _split_tasks(
        self, scn: CollaborationNetwork
    ) -> tuple[list[Pair], list[_SplitScoreTask], CollaborationNetwork | None]:
        """Split-balance matched pairs, chunked like the γ phase.

        Chunk size follows ``config.gamma_chunk_pairs`` — not the worker
        count — so the layout (and the float accumulation order behind
        it) is identical on the serial and pool paths.
        """
        cfg = self.config
        if not cfg.balance_split:
            return [], [], None
        split = split_prolific_vertices(
            scn,
            min_papers=cfg.split_min_papers,
            max_vertices=cfg.max_split_vertices,
            seed=cfg.seed,
        )
        pairs = list(split.matched_pairs)
        if not pairs:
            return [], [], None
        chunk = max(1, cfg.gamma_chunk_pairs)
        tasks = [
            _SplitScoreTask(
                index=i, offset=start, pairs=pairs[start : start + chunk]
            )
            for i, start in enumerate(range(0, len(pairs), chunk))
        ]
        return pairs, tasks, split.network

    def _central_section(
        self,
        scn: CollaborationNetwork,
        corpus: Corpus,
        training: list[Pair],
        training_rows: list[int],
        gamma_buf: np.ndarray,
        split_pairs: list[Pair],
        split_buf: np.ndarray,
    ):
        """The serial middle: sampled training rows + EM fit.

        The γ buffer is already in the exact global order the
        single-process fit enumerates (``scn.names`` order, per-name
        sorted-vid pairs — see :func:`_plan_gamma`), so the sampled rows
        are a plain slice; nothing is re-scored.  Both inputs are
        materialised as copies so no EM state pins the shared-memory
        segments past the pool's lifetime.
        """
        training_gammas = (
            gamma_buf[training_rows]
            if training_rows
            else np.zeros((0, 6), dtype=np.float64)
        )
        split_gammas = np.array(split_buf, dtype=np.float64, copy=True)
        return self._learn_model(
            scn,
            corpus,
            None,
            precomputed=(training, training_gammas),
            precomputed_split=(split_pairs, split_gammas),
        )

    def _decision_tasks(
        self,
        plan: ShardPlan,
        gplan: _GammaPlan,
        decision_set: set[str],
        model_ref: _ModelRef,
        scn: CollaborationNetwork,
    ) -> tuple[list[_DecisionTask], dict[int, _ShardFit]]:
        """Phase-B tasks plus pre-filled pass-through fits, by shard index.

        Tasks carry name lists, vid tuples and γ-row spans only — scores
        are recomputed worker-side from the shared buffer and the cached
        broadcast model, so no score array or model copy rides in any
        task.  A shard whose names all fall outside the decision set
        passes its block through unchanged, like the singleton fast path.
        """
        cfg = self.config
        tasks: list[_DecisionTask] = []
        fits: dict[int, _ShardFit] = {}
        for shard in plan.shards:
            decision_names = tuple(
                name for name in shard.names if name in decision_set
            )
            if not decision_names:
                fits[shard.index] = _ShardFit(
                    index=shard.index,
                    network=scn.subnetwork(shard.owned_vids),
                    n_merges=0,
                    per_round_candidate_pairs=[0],
                    per_round_merges=[0],
                    per_name_seconds={},
                    seconds=0.0,
                )
                continue
            tasks.append(
                _DecisionTask(
                    index=shard.index,
                    names=decision_names,
                    vids=shard.owned_vids + shard.halo_vids,
                    owned_vids=shard.owned_vids,
                    row_spans=tuple(
                        gplan.name_rows[name] for name in decision_names
                    ),
                    model=model_ref,
                    config=cfg,
                )
            )
        return tasks, fits

    @staticmethod
    def _attribute_gamma(
        gplan: _GammaPlan, plan: ShardPlan, chunk_secs: dict[int, float]
    ) -> tuple[dict[str, float], dict[int, float]]:
        """Attribute chunk γ seconds to names and shards by pair share.

        γ chunks tile the global pair order and cut across shard
        boundaries, so per-shard γ time is reconstructed by prorating
        each chunk over its names' candidate pairs — the same accounting
        the per-name report always used (cf. ``run_merge_rounds``).
        """
        per_name: dict[str, float] = {}
        per_shard: dict[int, float] = {}
        for task in gplan.tasks:
            seconds = chunk_secs.get(task.index, 0.0)
            total = max(task.n_pairs, 1)
            for name in task.names:
                share = seconds * (gplan.name_rows[name][1] / total)
                per_name[name] = per_name.get(name, 0.0) + share
                shard_id = plan.name_to_shard.get(name)
                if shard_id is not None:
                    per_shard[shard_id] = per_shard.get(shard_id, 0.0) + share
        return per_name, per_shard

    def _build_report(
        self,
        scn_report,
        outcome: _FitOutcome,
        plan: ShardPlan,
        gcn: CollaborationNetwork,
        stage1: float,
        stage2: float,
        stitch_seconds: float,
    ) -> FitReport:
        per_name: dict[str, float] = dict(outcome.per_name_gamma)
        per_round_pairs: list[int] = []
        per_round_merges: list[int] = []
        shard_stats: list[ShardStats] = []
        n_merges = 0
        for shard, fit in zip(plan.shards, outcome.shard_fits):
            for name, seconds in fit.per_name_seconds.items():
                per_name[name] = per_name.get(name, 0.0) + seconds
            for i, count in enumerate(fit.per_round_candidate_pairs):
                if i >= len(per_round_pairs):
                    per_round_pairs.append(0)
                    per_round_merges.append(0)
                per_round_pairs[i] += count
                per_round_merges[i] += fit.per_round_merges[i]
            n_merges += fit.n_merges
            shard_stats.append(
                ShardStats(
                    index=shard.index,
                    n_names=len(shard.names),
                    n_vertices=len(shard.owned_vids),
                    n_halo=len(shard.halo_vids),
                    n_papers=len(shard.pids),
                    n_candidate_pairs=shard.n_candidate_pairs,
                    n_decision_pairs=(
                        fit.per_round_candidate_pairs[0]
                        if fit.per_round_candidate_pairs
                        else 0
                    ),
                    n_merges=fit.n_merges,
                    gamma_seconds=outcome.shard_gamma.get(shard.index, 0.0),
                    decide_seconds=fit.seconds,
                )
            )
        phase = outcome.phase
        return FitReport(
            scn=scn_report,
            em=outcome.em_report,
            n_candidate_pairs=per_round_pairs[0] if per_round_pairs else 0,
            n_training_pairs=outcome.n_train,
            n_split_pairs=outcome.n_split,
            n_merges=n_merges,
            gcn_vertices=len(gcn),
            gcn_mentions=gcn.n_mentions,
            gcn_edges=gcn.n_edges,
            stage1_seconds=stage1,
            stage2_seconds=stage2,
            per_name_seconds=per_name,
            per_round_candidate_pairs=per_round_pairs,
            per_round_merges=per_round_merges,
            n_shards=len(plan.shards),
            n_fastpath_vertices=len(plan.fastpath_vids),
            partition_seconds=plan.seconds,
            stitch_seconds=stitch_seconds,
            shard_stats=shard_stats,
            em_seconds=phase.em_seconds,
            pipeline_seconds=phase.pipeline_seconds,
            gamma_wall_seconds=phase.gamma_wall_seconds,
            split_wall_seconds=phase.split_wall_seconds,
            decide_wall_seconds=phase.decide_wall_seconds,
            overlap_seconds=phase.overlap_seconds,
            gamma_task_seconds=phase.gamma_task_seconds,
            split_task_seconds=phase.split_task_seconds,
            decide_task_seconds=phase.decide_task_seconds,
            n_gamma_chunks=phase.n_gamma_chunks,
            overlap_gamma_chunks=phase.overlap_gamma_chunks,
            ipc_task_bytes=phase.ipc_task_bytes,
            shm_bytes=phase.shm_bytes,
        )
