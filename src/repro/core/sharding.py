"""Sharded name-block execution: partition, parallel fit, global merge.

The bottom-up design of the paper makes Stage 2 embarrassingly
partitionable: every merge decision concerns two same-name vertices, and
candidate enumeration, γ scoring and the merge itself never cross name
boundaries.  Partitioning the corpus by *name blocks* — connected
components of the co-author name graph — therefore cuts the expensive
similarity work into independent shards that can be fitted in parallel
and stitched back into one global collaboration network.  This is the
"sharding" leg of the ROADMAP's production-scale north star and the
foundation for multi-machine scale-out.

Execution plan of :class:`ShardedIUAD.fit` (serial or process-pool):

1. **Global Stage 1 + text models** (serial): the SCN, the title
   embeddings and the corpus frequency tables are built exactly as in the
   single-process :meth:`~repro.core.iuad.IUAD.fit` — they are cheap
   relative to pair scoring and keep the learned model bit-compatible.
2. **Partition** (:func:`plan_shards`): pair-bearing names are grouped
   into blocks (connected components over shared papers), blocks are
   packed into shards up to ``config.max_shard_size`` candidate pairs,
   oversized blocks are split by name, and every vertex of a name with no
   same-name candidate takes the **singleton fast path** straight into
   the final network — no Stage-2 work at all.
3. **Phase A — parallel γ computation**: workers receive the SCN, the
   corpus and the global frequency tables *once per process* (pool
   initializer, see :class:`_WorkerContext`); each task then carries only
   its shard's name list.  Profiles are computed on the full network —
   exactly what the single-process fit does, so γ values are
   bit-compatible by construction.  Split-balance matched pairs (the
   densest profile work of model learning) are chunked into the same pool.
4. **Global model** (serial): the training sample is drawn from the
   *reassembled global candidate order* (identical to the single-process
   sample) and its γ rows are sliced from the Phase-A results; the
   matched/unmatched mixture is then fitted exactly as in ``IUAD``.
5. **Phase B — parallel decisions**: each worker cuts its block (plus a
   radius-``max(1, wl_iterations)`` profile halo, needed only when
   ``merge_rounds > 1`` re-scores) out of its process-local SCN, runs the
   shared :func:`~repro.core.iuad.run_merge_rounds` decision loop with
   the precomputed round-one scores, merges its components under the
   cannot-link constraints, drops the halo and ships back its fitted
   block network.
6. **Merge** (serial, deterministic): per-shard networks and the
   fast-path vertices are stitched by
   :func:`repro.graphs.collab.combine_networks` — stable remapped vertex
   ids, preserved ``pid -> position`` mention payloads, a global
   uniqueness check on mention ownership — then the non-stable
   collaborative relations are recovered globally and the cannot-link
   constraints are re-derived on the stitched network.

Exactness: with ``merge_rounds == 1`` (the paper's Algorithm 1) the
sharded fit produces mention clusterings *identical* to the whole-corpus
fit — names cannot influence each other within a round, and profiles are
computed on the full network (``tests/test_sharding_parity.py`` pins
this, serially and under a process pool; profile construction iterates
papers in canonical order so results survive the pickling of networks,
see ``SimilarityComputer._build_profile``).  With more rounds, exactness
additionally requires blocks to stay whole (``max_shard_size = 0``):
splitting a block can miss cross-shard profile updates between rounds.

Edge-paper caveat: a stable SCN edge between two blocks is re-established
by relation recovery, whose paper annotation derives from mention
ownership rather than SCR support; scoring never reads edge paper sets,
so clusterings are unaffected.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

import numpy as np

from ..data.records import Corpus
from ..graphs.collab import CollaborationNetwork, combine_networks
from ..graphs.unionfind import UnionFind
from ..model.mixture import MatchMixture
from ..model.scoring import match_scores
from ..similarity.profile import SimilarityComputer
from ..text.embeddings import WordEmbeddings
from ..text.tokenize import corpus_word_frequencies
from .balance import split_prolific_vertices
from .candidates import candidate_pairs_of_name, cannot_link_pairs, sample_training_pairs
from .config import IUADConfig
from .iuad import IUAD, FitReport, run_merge_rounds

Pair = tuple[int, int]


# --------------------------------------------------------------------- #
# plan data model
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class ShardStats:
    """Per-shard counters of one sharded fit (rides in ``FitReport``)."""

    index: int
    n_names: int
    n_vertices: int
    n_halo: int
    n_papers: int
    n_candidate_pairs: int
    n_decision_pairs: int = 0
    n_merges: int = 0
    gamma_seconds: float = 0.0
    decide_seconds: float = 0.0


@dataclass(slots=True)
class Shard:
    """One unit of parallel work: a set of whole (or split) name blocks.

    ``names`` are the shard's pair-bearing names in global ``scn.names``
    order; ``owned_vids`` are *all* their vertices (a name is never split
    across shards); ``halo_vids`` are the extra profile-context vertices
    within radius of the owned set; ``pids`` are the papers of the owned
    vertices.
    """

    index: int
    names: tuple[str, ...]
    owned_vids: tuple[int, ...]
    halo_vids: tuple[int, ...]
    pids: tuple[int, ...]
    n_candidate_pairs: int


@dataclass(slots=True)
class ShardPlan:
    """The full partition: shards + singleton fast path + routing index.

    ``name_to_shard`` covers *every* corpus name: pair-bearing names map
    to their fitted shard, the rest to their component's shard or to a
    fast-path block id (``len(shards) <= id < n_blocks``) when their
    whole component had no Stage-2 work.
    """

    shards: list[Shard]
    fastpath_vids: tuple[int, ...]
    name_to_shard: dict[str, int]
    n_blocks: int
    seconds: float

    @property
    def n_candidate_pairs(self) -> int:
        return sum(s.n_candidate_pairs for s in self.shards)


class ShardIndex:
    """Routes names to their owning shard (streaming inserts, Section V-E).

    The fitted partition seeds the index; papers streamed in later are
    routed to the shard owning their author names.  A new paper whose
    names span several shards *bridges* them — the shards are unioned so
    subsequent routing stays consistent — and a paper carrying only
    unknown names opens a fresh shard id.  The incremental path uses this
    to account every insert to exactly one (canonical) shard.
    """

    def __init__(self, name_to_shard: Mapping[str, int], n_shards: int):
        self._uf: UnionFind = UnionFind(range(n_shards))
        self._name_to_shard: dict[str, int] = dict(name_to_shard)
        self._next_shard = n_shards
        self.n_bridges = 0

    @property
    def n_shards(self) -> int:
        """Number of distinct (canonical) shards currently known."""
        return self._uf.n_components

    def shard_of_name(self, name: str) -> int | None:
        """Canonical shard id owning ``name`` (``None`` if never seen)."""
        sid = self._name_to_shard.get(name)
        return None if sid is None else self._uf.find(sid)

    def route_paper(self, names: Iterable[str]) -> int:
        """Owning shard of a new paper; registers names, bridges shards."""
        names = list(names)
        known = {self._name_to_shard[n] for n in names if n in self._name_to_shard}
        roots = {self._uf.find(sid) for sid in known}
        if roots:
            canonical = roots.pop()
            for other in roots:
                canonical = self._uf.union(canonical, other)
                self.n_bridges += 1
        else:
            canonical = self._next_shard
            self._next_shard += 1
            self._uf.add(canonical)
        for name in names:
            if name not in self._name_to_shard:
                self._name_to_shard[name] = canonical
        return self._uf.find(canonical)

    def route_papers(
        self, author_lists: Iterable[Iterable[str]]
    ) -> list[int]:
        """Bulk routing: one canonical shard id per paper, in order.

        The batched streaming path (:class:`repro.core.streaming.
        StreamingIngestor`) routes a whole burst through here before
        planning its waves.  Routing is applied paper by paper *in input
        order* — bridging is order-sensitive (the shard a paper lands on
        depends on the unions performed so far), and the sequential
        ``add_paper`` loop routes in exactly that order, which is what
        keeps the index state and the per-shard counters in parity.
        Returned ids are canonical at the time each paper was routed; a
        later bridge may merge them further (resolve via
        :meth:`shard_of_name` for the current canonical id).
        """
        return [self.route_paper(names) for names in author_lists]


# --------------------------------------------------------------------- #
# partitioner
# --------------------------------------------------------------------- #
def _pair_count(n_vertices: int) -> int:
    return n_vertices * (n_vertices - 1) // 2


def plan_shards(
    scn: CollaborationNetwork,
    corpus: Corpus,
    max_shard_size: int = 4000,
    halo_radius: int = 2,
) -> ShardPlan:
    """Partition the corpus into independent name-block shards.

    Blocks are connected components of the co-author name graph (two
    names are linked when they appear on one paper), restricted to
    *pair-bearing* names — names with at least two SCN vertices, i.e.
    names with Stage-2 work.  Vertices of all other names take the
    singleton fast path (``fastpath_vids``) straight into the merged
    network.

    ``max_shard_size`` is a per-shard candidate-pair budget: small blocks
    are packed together (first-fit decreasing, deterministic) and a block
    exceeding the budget on its own is split into name chunks.  ``0``
    disables both and yields one shard per block.

    ``halo_radius`` controls the profile context around a block that the
    Phase-B sub-network keeps: every vertex within that many hops of an
    owned vertex (pass ``max(1, config.wl_iterations)``).  Only re-scoring
    rounds (``merge_rounds > 1``) read profiles off that sub-network.
    """
    t0 = time.perf_counter()
    # Name components over shared papers.
    names_uf: UnionFind = UnionFind()
    for paper in corpus:
        first = paper.authors[0]
        names_uf.add(first)
        for other in paper.authors[1:]:
            names_uf.add(other)
            names_uf.union(first, other)

    # Blocks of pair-bearing names, in deterministic scn.names order.
    pair_counts: dict[str, int] = {}
    block_names: dict[str, list[str]] = {}
    block_order: list[str] = []
    for name in scn.names:
        count = _pair_count(len(scn.vertices_of_name(name)))
        if count == 0:
            continue
        pair_counts[name] = count
        root = names_uf.find(name) if name in names_uf else name
        if root not in block_names:
            block_names[root] = []
            block_order.append(root)
        block_names[root].append(name)

    # Split oversized blocks by name (exact for merge_rounds == 1).
    chunks: list[list[str]] = []
    for root in block_order:
        names = block_names[root]
        size = sum(pair_counts[n] for n in names)
        if max_shard_size <= 0 or size <= max_shard_size:
            chunks.append(names)
            continue
        current: list[str] = []
        current_size = 0
        for name in names:
            if current and current_size + pair_counts[name] > max_shard_size:
                chunks.append(current)
                current, current_size = [], 0
            current.append(name)
            current_size += pair_counts[name]
        if current:
            chunks.append(current)

    # Pack chunks into shards (first-fit decreasing, deterministic).
    if max_shard_size > 0:
        sized = sorted(
            enumerate(chunks),
            key=lambda kv: (-sum(pair_counts[n] for n in kv[1]), kv[0]),
        )
        bins: list[list[str]] = []
        bin_sizes: list[int] = []
        for _, chunk in sized:
            size = sum(pair_counts[n] for n in chunk)
            for i, used in enumerate(bin_sizes):
                if used + size <= max_shard_size:
                    bins[i].extend(chunk)
                    bin_sizes[i] += size
                    break
            else:
                bins.append(list(chunk))
                bin_sizes.append(size)
        groups = bins
    else:
        groups = chunks

    # Materialise shards: owned vertices, profile halo, papers.
    name_order = {name: i for i, name in enumerate(scn.names)}
    owned_anywhere: set[int] = set()
    shards: list[Shard] = []
    name_to_shard: dict[str, int] = {}
    for index, group in enumerate(groups):
        group = sorted(group, key=name_order.__getitem__)
        owned: list[int] = []
        for name in group:
            owned.extend(scn.vertices_of_name(name))
            name_to_shard[name] = index
        owned_set = set(owned)
        owned_anywhere.update(owned_set)
        halo: set[int] = set()
        frontier = list(owned_set)
        for _ in range(max(1, halo_radius)):
            next_frontier: list[int] = []
            for vid in frontier:
                for nbr in scn.neighbors(vid):
                    if nbr not in owned_set and nbr not in halo:
                        halo.add(nbr)
                        next_frontier.append(nbr)
            frontier = next_frontier
        pids: set[int] = set()
        for vid in owned_set:
            pids.update(scn.papers_of(vid))
        shards.append(
            Shard(
                index=index,
                names=tuple(group),
                owned_vids=tuple(sorted(owned_set)),
                halo_vids=tuple(sorted(halo)),
                pids=tuple(sorted(pids)),
                n_candidate_pairs=sum(pair_counts[n] for n in group),
            )
        )

    # Every remaining corpus name — singleton names living inside a
    # sharded block, and whole blocks with no pair-bearing name — still
    # belongs to a block: route it to its component's shard, or allocate
    # a fresh fast-path block id.  Streaming inserts by known fast-path
    # authors then route into their real block instead of opening a
    # phantom shard.
    comp_shard: dict[str, int] = {}
    for shard in shards:
        for name in shard.names:
            comp_shard.setdefault(names_uf.find(name), shard.index)
    next_block = len(shards)
    for name in names_uf:
        if name in name_to_shard:
            continue
        root = names_uf.find(name)
        if root not in comp_shard:
            comp_shard[root] = next_block
            next_block += 1
        name_to_shard[name] = comp_shard[root]

    fastpath = tuple(
        sorted(v.vid for v in scn if v.vid not in owned_anywhere)
    )
    return ShardPlan(
        shards=shards,
        fastpath_vids=fastpath,
        name_to_shard=name_to_shard,
        n_blocks=next_block,
        seconds=time.perf_counter() - t0,
    )


# --------------------------------------------------------------------- #
# worker context + tasks
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class _WorkerContext:
    """Heavy shared inputs, shipped once per worker (pool initializer).

    Tasks themselves stay light (name lists, vid tuples, score arrays):
    the SCN, the split-balance network, the corpus and the global
    frequency tables travel to each worker process exactly once instead
    of once per task, which is what keeps pool overhead flat as the
    number of shards grows.
    """

    scn: CollaborationNetwork
    split_network: CollaborationNetwork | None
    corpus: Corpus
    word_frequencies: dict[str, int]
    venue_frequencies: dict[str, int]
    embeddings: WordEmbeddings | None
    wl_iterations: int
    decay_alpha: float

    def computer(self, network: CollaborationNetwork) -> SimilarityComputer:
        """A similarity computer over ``network`` with the global tables."""
        return SimilarityComputer(
            network,
            self.corpus,
            embeddings=self.embeddings,
            word_frequencies=self.word_frequencies,
            wl_iterations=self.wl_iterations,
            decay_alpha=self.decay_alpha,
            venue_frequencies=self.venue_frequencies,
        )


#: Per-process context, set by :func:`_init_worker` (pool) or directly by
#: the serial in-process path.
_CTX: _WorkerContext | None = None


def _init_worker(ctx: _WorkerContext) -> None:
    global _CTX
    _CTX = ctx


def _require_ctx() -> _WorkerContext:
    assert _CTX is not None, "worker context not initialised"
    return _CTX


@dataclass(slots=True)
class _GammaTask:
    index: int
    names: tuple[str, ...]


@dataclass(slots=True)
class _ShardGammas:
    index: int
    name_pairs: list[tuple[str, list[Pair]]]
    gammas: np.ndarray
    seconds: float


@dataclass(slots=True)
class _SplitScoreTask:
    pairs: list[Pair]


@dataclass(slots=True)
class _DecisionTask:
    index: int
    vids: tuple[int, ...]          # owned + halo, cut in the worker
    owned_vids: tuple[int, ...]
    name_pairs: list[tuple[str, list[Pair]]]
    round1_scores: np.ndarray
    model: MatchMixture
    config: IUADConfig


@dataclass(slots=True)
class _ShardFit:
    index: int
    network: CollaborationNetwork
    n_merges: int
    per_round_candidate_pairs: list[int]
    per_round_merges: list[int]
    per_name_seconds: dict[str, float]
    seconds: float


def _compute_shard_gammas(task: _GammaTask) -> _ShardGammas:
    """Phase A: γ vectors of every candidate pair of the shard's names.

    Scoring runs against the *full* process-local SCN — the same graph
    the single-process fit scores against, so profiles and γ values are
    identical by construction (no halo bookkeeping on this path).

    Each task deliberately starts a fresh computer: profiles are built
    only for pair endpoints, and names are partitioned across shards, so
    tasks' profile sets are disjoint — a cross-task cache would buy
    nothing, while sharing the engine's interned column space across
    scheduler-ordered tasks would make float accumulation order depend
    on pool scheduling and break run-to-run determinism.
    """
    t0 = time.perf_counter()
    ctx = _require_ctx()
    computer = ctx.computer(ctx.scn)
    name_pairs: list[tuple[str, list[Pair]]] = []
    flat: list[Pair] = []
    for name in task.names:
        pairs = candidate_pairs_of_name(ctx.scn, name)
        name_pairs.append((name, pairs))
        flat.extend(pairs)
    gammas = (
        computer.pair_matrix(flat)
        if flat
        else np.zeros((0, 6), dtype=np.float64)
    )
    return _ShardGammas(
        index=task.index,
        name_pairs=name_pairs,
        gammas=gammas,
        seconds=time.perf_counter() - t0,
    )


def _score_split_chunk(task: _SplitScoreTask) -> np.ndarray:
    """Score one chunk of split-balance matched pairs (Section V-F2).

    Building WL profiles on the dense split network is the single most
    expensive item of model learning — chunked into the pool so it never
    runs serial nor as one straggler task.
    """
    ctx = _require_ctx()
    assert ctx.split_network is not None
    return ctx.computer(ctx.split_network).pair_matrix(task.pairs)


def _fit_shard(task: _DecisionTask) -> _ShardFit:
    """Phase B: run the shared decision loop on one block, drop the halo."""
    t0 = time.perf_counter()
    ctx = _require_ctx()
    network = ctx.scn.subnetwork(task.vids)
    computer = ctx.computer(network)
    outcome = run_merge_rounds(
        network,
        [name for name, _pairs in task.name_pairs],
        task.model,
        computer,
        task.config,
        round1=(task.name_pairs, task.round1_scores),
    )
    # Same-name merges keep representatives inside the owned set, so the
    # halo survives untouched — strip it before shipping the block back.
    owned = set(task.owned_vids)
    survivors = [v.vid for v in outcome.network if v.vid in owned]
    return _ShardFit(
        index=task.index,
        network=outcome.network.subnetwork(survivors),
        n_merges=outcome.n_merges,
        per_round_candidate_pairs=outcome.per_round_candidate_pairs,
        per_round_merges=outcome.per_round_merges,
        per_name_seconds=outcome.per_name_seconds,
        seconds=time.perf_counter() - t0,
    )


# --------------------------------------------------------------------- #
# orchestrator
# --------------------------------------------------------------------- #
class ShardedIUAD(IUAD):
    """Algorithm 1 executed shard-by-shard over independent name blocks.

    Drop-in replacement for :class:`~repro.core.iuad.IUAD`: same
    constructor, same ``fit`` signature, same fitted-state accessors, and
    — for ``merge_rounds == 1`` — mention clusterings identical to the
    single-process fit.  ``config.n_workers`` selects serial in-process
    execution (``0``) or a ``ProcessPoolExecutor`` of that size; both are
    deterministic, including under process-pool scheduling (results are
    collected in shard order, never in completion order).

    After fitting, ``shard_index_`` routes streaming inserts
    (:class:`~repro.core.incremental.IncrementalDisambiguator`) to their
    owning shard, ``cannot_links_`` holds the re-derived cannot-link
    pairs of the stitched network, and ``report_.shard_stats`` carries
    the per-shard counters.
    """

    def __init__(self, config: IUADConfig | None = None):
        super().__init__(config)
        self.plan_: ShardPlan | None = None
        self.shard_index_: ShardIndex | None = None
        self.cannot_links_: list[Pair] = []

    # ------------------------------------------------------------------ #
    def fit(
        self, corpus: Corpus, names: Iterable[str] | None = None
    ) -> "ShardedIUAD":
        """Run the sharded Algorithm 1 on ``corpus``.

        Identical contract to :meth:`IUAD.fit`; ``names`` restricts the
        merge decisions while the model still trains on candidates from
        every name block.
        """
        global _CTX
        cfg = self.config
        t0 = time.perf_counter()
        scn, scn_report = self._build_scn(corpus)
        stage1 = time.perf_counter() - t0

        t1 = time.perf_counter()
        self.embeddings_ = self._train_embeddings(corpus)
        word_freq = dict(corpus_word_frequencies(p.title for p in corpus))
        venue_freq = dict(corpus.venue_frequencies)

        plan = plan_shards(
            scn,
            corpus,
            max_shard_size=cfg.max_shard_size,
            halo_radius=max(1, cfg.wl_iterations),
        )
        decision_names = list(corpus.names if names is None else names)
        decision_set = set(decision_names)

        split_pairs, split_tasks, split_network = self._split_tasks(scn)
        ctx = _WorkerContext(
            scn=scn,
            split_network=split_network,
            corpus=corpus,
            word_frequencies=word_freq,
            venue_frequencies=venue_freq,
            embeddings=self.embeddings_,
            wl_iterations=cfg.wl_iterations,
            decay_alpha=cfg.decay_alpha,
        )
        gamma_tasks = [
            _GammaTask(index=shard.index, names=shard.names)
            for shard in plan.shards
        ]

        def execute(run_map):
            """Phases A → model → B, parameterised only by the mapper.

            One body for the serial and pool paths — the parity contract
            forbids letting them drift.  Split-score chunks are the
            longest poles, so they are submitted first and the pool never
            ends on one straggler.
            """
            split_iter = run_map(_score_split_chunk, split_tasks)
            gamma_results = list(run_map(_compute_shard_gammas, gamma_tasks))
            split_gammas = self._stack_split(split_tasks, split_iter)
            model, em_report, n_train, n_split, decision_data = (
                self._central_section(
                    scn, corpus, plan, gamma_results,
                    (split_pairs, split_gammas),
                )
            )
            shard_fits = self._decide_shards(
                plan, scn, gamma_results, decision_data,
                decision_set, model,
                lambda tasks: list(run_map(_fit_shard, tasks)),
            )
            return gamma_results, model, em_report, n_train, n_split, shard_fits

        previous_ctx = _CTX
        try:
            if cfg.n_workers >= 1 and (gamma_tasks or split_tasks):
                # Under the fork start method, workers inherit the
                # parent's memory copy-on-write: setting the module-level
                # context *before* the pool forks ships the SCN/corpus to
                # every worker for free.  Spawn platforms pickle it once
                # per worker through the initializer instead.
                if multiprocessing.get_start_method() == "fork":
                    _init_worker(ctx)
                    pool_kwargs = {}
                else:
                    pool_kwargs = {
                        "initializer": _init_worker,
                        "initargs": (ctx,),
                    }
                with ProcessPoolExecutor(
                    max_workers=cfg.n_workers, **pool_kwargs
                ) as pool:
                    (
                        gamma_results, model, em_report,
                        n_train, n_split, shard_fits,
                    ) = execute(pool.map)
            else:
                _init_worker(ctx)
                (
                    gamma_results, model, em_report,
                    n_train, n_split, shard_fits,
                ) = execute(map)
        finally:
            _CTX = previous_ctx

        # Deterministic merge: shard networks in index order, then the
        # singleton fast path, stitched under one fresh id space.
        t_stitch = time.perf_counter()
        nets = [fit.network for fit in shard_fits]
        if plan.fastpath_vids:
            nets.append(scn.subnetwork(plan.fastpath_vids))
        gcn, _mappings = combine_networks(nets)
        touched = self._recover_relations(gcn, corpus)
        # Re-apply the cannot-link constraints on the stitched id space:
        # the pairs that must never merge (homonymous co-authors) are
        # re-derived from the preserved mention payloads and re-registered
        # — registration itself re-validates that no stitched component
        # already violates one.
        self.cannot_links_ = cannot_link_pairs(gcn)
        guard: UnionFind = UnionFind(v.vid for v in gcn)
        for cl_u, cl_v in self.cannot_links_:
            guard.forbid(cl_u, cl_v)
        stitch_seconds = time.perf_counter() - t_stitch

        computer = SimilarityComputer(
            gcn,
            corpus,
            embeddings=self.embeddings_,
            word_frequencies=word_freq,
            wl_iterations=cfg.wl_iterations,
            decay_alpha=cfg.decay_alpha,
            venue_frequencies=venue_freq,
        )
        computer.invalidate_many(touched)
        stage2 = time.perf_counter() - t1

        self.corpus_ = corpus
        self.scn_ = scn
        self.gcn_ = gcn
        self.model_ = model
        self.computer_ = computer
        self.plan_ = plan
        self.shard_index_ = ShardIndex(plan.name_to_shard, plan.n_blocks)
        self.report_ = self._build_report(
            scn_report, em_report, n_train, n_split, plan, gamma_results,
            shard_fits, gcn, stage1, stage2, stitch_seconds,
        )
        return self

    # ------------------------------------------------------------------ #
    def _split_tasks(
        self, scn: CollaborationNetwork
    ) -> tuple[list[Pair], list[_SplitScoreTask], CollaborationNetwork | None]:
        """Split-balance matched pairs, chunked for the pool."""
        cfg = self.config
        if not cfg.balance_split:
            return [], [], None
        split = split_prolific_vertices(
            scn,
            min_papers=cfg.split_min_papers,
            max_vertices=cfg.max_split_vertices,
            seed=cfg.seed,
        )
        pairs = list(split.matched_pairs)
        if not pairs:
            return [], [], None
        n_chunks = max(1, cfg.n_workers)
        chunk_size = -(-len(pairs) // n_chunks)
        tasks = [
            _SplitScoreTask(pairs=pairs[start : start + chunk_size])
            for start in range(0, len(pairs), chunk_size)
        ]
        return pairs, tasks, split.network

    @staticmethod
    def _stack_split(tasks, chunks) -> np.ndarray:
        if not tasks:
            return np.zeros((0, 6), dtype=np.float64)
        return np.vstack(list(chunks))

    def _central_section(
        self,
        scn: CollaborationNetwork,
        corpus: Corpus,
        plan: ShardPlan,
        gamma_results: list[_ShardGammas],
        split: tuple[list[Pair], np.ndarray],
    ):
        """The serial middle: global training sample + EM fit.

        Reassembles the candidate pairs in the exact global order the
        single-process fit enumerates (``scn.names`` order, per-name
        sorted-vid pairs), so ``sample_training_pairs`` draws the same
        sample, then slices the sampled γ rows out of the Phase-A
        matrices instead of re-scoring anything.
        """
        cfg = self.config
        by_name: dict[str, tuple[list[Pair], np.ndarray]] = {}
        for result in gamma_results:
            offset = 0
            for name, pairs in result.name_pairs:
                by_name[name] = (pairs, result.gammas[offset : offset + len(pairs)])
                offset += len(pairs)
        all_pairs: list[Pair] = []
        row_blocks: list[np.ndarray] = []
        for name in scn.names:
            entry = by_name.get(name)
            if entry is not None:
                pairs, rows = entry
                all_pairs.extend(pairs)
                row_blocks.append(rows)
        all_gammas = (
            np.vstack(row_blocks)
            if row_blocks
            else np.zeros((0, 6), dtype=np.float64)
        )
        training = sample_training_pairs(
            all_pairs, cfg.sample_rate, cfg.min_training_pairs, cfg.seed
        )
        row_of = {pair: i for i, pair in enumerate(all_pairs)}
        training_gammas = (
            all_gammas[[row_of[p] for p in training]]
            if training
            else np.zeros((0, 6), dtype=np.float64)
        )
        model, em_report, n_train, n_split = self._learn_model(
            scn,
            corpus,
            None,
            precomputed=(training, training_gammas),
            precomputed_split=split,
        )
        return model, em_report, n_train, n_split, by_name

    def _decide_shards(
        self,
        plan: ShardPlan,
        scn: CollaborationNetwork,
        gamma_results: list[_ShardGammas],
        by_name: dict[str, tuple[list[Pair], np.ndarray]],
        decision_set: set[str],
        model: MatchMixture,
        mapper: Callable[[list[_DecisionTask]], list[_ShardFit]],
    ) -> list[_ShardFit]:
        """Build Phase-B tasks, run them, fill in pass-through shards."""
        cfg = self.config
        tasks: list[_DecisionTask] = []
        passthrough: dict[int, _ShardFit] = {}
        for shard, result in zip(plan.shards, gamma_results):
            name_pairs: list[tuple[str, list[Pair]]] = []
            score_blocks: list[np.ndarray] = []
            for name, _pairs in result.name_pairs:
                if name not in decision_set:
                    continue
                pairs, rows = by_name[name]
                name_pairs.append((name, pairs))
                score_blocks.append(rows)
            flat = [pair for _name, pairs in name_pairs for pair in pairs]
            if not flat:
                # Nothing to decide in this shard (its names are outside
                # the requested decision set): its block passes through
                # unchanged, like the singleton fast path.
                passthrough[shard.index] = _ShardFit(
                    index=shard.index,
                    network=scn.subnetwork(shard.owned_vids),
                    n_merges=0,
                    per_round_candidate_pairs=[0],
                    per_round_merges=[0],
                    per_name_seconds={},
                    seconds=0.0,
                )
                continue
            scores = match_scores(model, np.vstack(score_blocks))
            tasks.append(
                _DecisionTask(
                    index=shard.index,
                    vids=shard.owned_vids + shard.halo_vids,
                    owned_vids=shard.owned_vids,
                    name_pairs=name_pairs,
                    round1_scores=scores,
                    model=model,
                    config=cfg,
                )
            )
        fitted = {fit.index: fit for fit in mapper(tasks)}
        fitted.update(passthrough)
        return [fitted[shard.index] for shard in plan.shards]

    def _build_report(
        self,
        scn_report,
        em_report,
        n_train: int,
        n_split: int,
        plan: ShardPlan,
        gamma_results: list[_ShardGammas],
        shard_fits: list[_ShardFit],
        gcn: CollaborationNetwork,
        stage1: float,
        stage2: float,
        stitch_seconds: float,
    ) -> FitReport:
        per_name: dict[str, float] = {}
        per_round_pairs: list[int] = []
        per_round_merges: list[int] = []
        shard_stats: list[ShardStats] = []
        n_merges = 0
        for shard, gammas, fit in zip(plan.shards, gamma_results, shard_fits):
            # Attribute the shard's batched γ time to its names by pair
            # share (cf. the per-name accounting of run_merge_rounds).
            total = max(shard.n_candidate_pairs, 1)
            for name, pairs in gammas.name_pairs:
                per_name[name] = (
                    per_name.get(name, 0.0)
                    + fit.per_name_seconds.get(name, 0.0)
                    + gammas.seconds * (len(pairs) / total)
                )
            for i, count in enumerate(fit.per_round_candidate_pairs):
                if i >= len(per_round_pairs):
                    per_round_pairs.append(0)
                    per_round_merges.append(0)
                per_round_pairs[i] += count
                per_round_merges[i] += fit.per_round_merges[i]
            n_merges += fit.n_merges
            shard_stats.append(
                ShardStats(
                    index=shard.index,
                    n_names=len(shard.names),
                    n_vertices=len(shard.owned_vids),
                    n_halo=len(shard.halo_vids),
                    n_papers=len(shard.pids),
                    n_candidate_pairs=shard.n_candidate_pairs,
                    n_decision_pairs=(
                        fit.per_round_candidate_pairs[0]
                        if fit.per_round_candidate_pairs
                        else 0
                    ),
                    n_merges=fit.n_merges,
                    gamma_seconds=gammas.seconds,
                    decide_seconds=fit.seconds,
                )
            )
        return FitReport(
            scn=scn_report,
            em=em_report,
            n_candidate_pairs=per_round_pairs[0] if per_round_pairs else 0,
            n_training_pairs=n_train,
            n_split_pairs=n_split,
            n_merges=n_merges,
            gcn_vertices=len(gcn),
            gcn_mentions=gcn.n_mentions,
            gcn_edges=gcn.n_edges,
            stage1_seconds=stage1,
            stage2_seconds=stage2,
            per_name_seconds=per_name,
            per_round_candidate_pairs=per_round_pairs,
            per_round_merges=per_round_merges,
            n_shards=len(plan.shards),
            n_fastpath_vertices=len(plan.fastpath_vids),
            partition_seconds=plan.seconds,
            stitch_seconds=stitch_seconds,
            shard_stats=shard_stats,
        )
