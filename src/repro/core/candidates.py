"""Candidate-pair enumeration and training-sample selection (Stage 2).

``R_a ⊂ V_a × V_a`` — all unordered pairs of same-name vertices — is the
candidate set of name ``a`` (Section V-A).  Only 10 % of the pairs are used
for parameter learning (Section V-F1); every pair is scored for the merge
decision.

:func:`cannot_link_pairs` enumerates the candidate pairs the decision stage
must *refuse* regardless of score: two same-name vertices owning mentions
of one paper are two homonymous co-authors of that paper — provably
distinct people.  The per-occurrence mention model makes these pairs
directly enumerable from vertex payloads.
"""

from __future__ import annotations

import random
from itertools import combinations
from typing import Iterable, Iterator, Sequence

from ..graphs.collab import CollaborationNetwork

Pair = tuple[int, int]


def candidate_pairs_of_name(
    net: CollaborationNetwork, name: str
) -> list[Pair]:
    """All unordered same-name vertex pairs of ``name``."""
    vids = sorted(net.vertices_of_name(name))
    return list(combinations(vids, 2))


def cannot_link_pairs(net: CollaborationNetwork) -> list[Pair]:
    """Same-name vertex pairs sharing an attributed paper (never mergeable).

    With the per-occurrence mention model such pairs arise exactly from
    papers listing one name twice: each occurrence sits on its own vertex
    and both vertices carry the paper.  Registered as
    :meth:`~repro.graphs.unionfind.UnionFind.forbid` constraints before any
    merge decision is applied.
    """
    owners: dict[tuple[str, int], list[int]] = {}
    for vertex in net:
        for pid in vertex.papers:
            owners.setdefault((vertex.name, pid), []).append(vertex.vid)
    pairs: set[Pair] = set()
    for vids in owners.values():
        if len(vids) > 1:
            ordered = sorted(vids)
            pairs.update(combinations(ordered, 2))
    return sorted(pairs)


def iter_candidate_pairs(
    net: CollaborationNetwork,
    names: Iterable[str] | None = None,
) -> Iterator[tuple[str, Pair]]:
    """Candidate pairs of many names: yields ``(name, (u, v))``."""
    for name in net.names if names is None else names:
        for pair in candidate_pairs_of_name(net, name):
            yield name, pair


def sample_training_pairs(
    pairs: Sequence[Pair],
    sample_rate: float,
    min_pairs: int,
    seed: int,
) -> list[Pair]:
    """The Section V-F1 training sample: ``sample_rate`` of the candidate
    pairs, floor ``min_pairs`` (all pairs when fewer exist)."""
    if not 0.0 < sample_rate <= 1.0:
        raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
    target = max(min_pairs, int(round(sample_rate * len(pairs))))
    if target >= len(pairs):
        return list(pairs)
    rng = random.Random(seed)
    return rng.sample(list(pairs), k=target)
