"""Vertex-splitting rebalance strategy (Section V-F2).

Matched pairs are rare among same-name candidates, which starves the EM's
M component.  The paper's remedy: randomly partition prolific vertices into
two pseudo-vertices — the two halves are *known* to belong to one author,
so they provide high-confidence matched pairs for training.

The split network preserves the SCN's edge semantics: each edge's paper set
is routed to the half that owns the paper, and the two halves of a vertex
are not connected to each other (they must look like ordinary same-name
vertices to the similarity functions).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graphs.collab import CollaborationNetwork

Pair = tuple[int, int]


@dataclass(slots=True)
class SplitResult:
    """The auxiliary training network and its planted matched pairs."""

    network: CollaborationNetwork
    matched_pairs: list[Pair]
    #: original vid -> (half-1 vid, half-2 vid) for split vertices;
    #: original vid -> (new vid,) otherwise.
    mapping: dict[int, tuple[int, ...]]


def split_prolific_vertices(
    net: CollaborationNetwork,
    min_papers: int = 6,
    max_vertices: int = 400,
    seed: int = 0,
) -> SplitResult:
    """Build the balance-training network.

    Args:
        net: The stable collaboration network.
        min_papers: A vertex must own at least this many papers to be split
            (each half keeps ≥ ``min_papers // 2``).
        max_vertices: Split at most this many vertices (the most prolific
            first), bounding the training-set size.
        seed: Seed of the random paper partitions.
    """
    rng = random.Random(seed)
    prolific = sorted(
        (v.vid for v in net if len(v.papers) >= min_papers),
        key=lambda vid: (-len(net.papers_of(vid)), vid),
    )[:max_vertices]
    to_split = set(prolific)

    out = CollaborationNetwork()
    mapping: dict[int, tuple[int, ...]] = {}
    # (original vid, pid) -> new vid, for edge routing.
    owner: dict[tuple[int, int], int] = {}
    matched_pairs: list[Pair] = []

    for vertex in net:
        papers = sorted(vertex.papers)
        if vertex.vid in to_split:
            rng.shuffle(papers)
            half = len(papers) // 2
            first = out.add_vertex(vertex.name, papers=papers[:half])
            second = out.add_vertex(vertex.name, papers=papers[half:])
            mapping[vertex.vid] = (first, second)
            matched_pairs.append((first, second))
            for pid in papers[:half]:
                owner[(vertex.vid, pid)] = first
            for pid in papers[half:]:
                owner[(vertex.vid, pid)] = second
        else:
            new_vid = out.add_vertex(vertex.name, papers=papers)
            mapping[vertex.vid] = (new_vid,)
            for pid in papers:
                owner[(vertex.vid, pid)] = new_vid

    for u, v, edge_papers in net.edges():
        for pid in edge_papers:
            # Route each edge paper to the halves owning it on both ends;
            # papers in P_uv but not attributed to a vertex (mention owned
            # elsewhere) keep the half that got the larger share.
            nu = owner.get((u, pid), mapping[u][0])
            nv = owner.get((v, pid), mapping[v][0])
            out.add_edge(nu, nv, (pid,))
    # add_edge grows vertex paper sets; restore the exact split attribution.
    for vid, halves in mapping.items():
        original = sorted(net.papers_of(vid))
        if len(halves) == 2:
            first_set = {p for p in original if owner[(vid, p)] == halves[0]}
            out.set_papers(halves[0], first_set)
            out.set_papers(halves[1], set(original) - first_set)
        else:
            out.set_papers(halves[0], original)
    return SplitResult(network=out, matched_pairs=matched_pairs, mapping=mapping)
