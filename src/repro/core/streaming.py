"""Batched streaming ingestion: vectorised multi-paper inserts.

Real bibliographic streams arrive in bursty batches, not single records.
The scalar :meth:`~repro.core.incremental.IncrementalDisambiguator.
add_paper` loop pays, per mention, a full candidate-scoring call — with
its per-call dispatch, assembly and ``match_scores`` overhead — plus a
radius-``h`` cache invalidation per paper and the profile rebuilds
earlier invalidations forced.  :class:`StreamingIngestor.add_papers`
ingests a whole burst at once while staying in *exact parity* with the
sequential loop:

1. **Shard-grouped admission** — every paper is bulk-routed through the
   fitted :class:`~repro.core.sharding.ShardIndex` (when present), in
   batch order, so the index state and the per-shard counters match the
   sequential loop.  Papers of different name blocks never interact;
   their scores come straight off the shared snapshot below.

2. **Batched snapshot scoring** — the candidate ``(probe, vertex)``
   pairs of *every* paper in the burst are resolved up front and scored
   in ONE vectorised ``SimilarityComputer.pair_matrix`` /
   ``match_scores`` call, instead of one call per mention.  Probe
   vertices are pre-allocated for the whole batch in batch × position
   order (exactly the order the sequential loop allocates them, so
   surviving vertices keep identical ids), and probes of
   not-yet-applied papers are hidden from candidate enumeration (a
   sequential stream would not have created them yet).  Each mention
   keeps a zero-copy slice of the snapshot's score vector.

3. **Ordered walk with exact value-stain tracking** — papers are then
   applied strictly in batch order.  Each application *stains* exactly
   the vertices whose similarity inputs it changed: the attach targets
   (their own keyword/venue profiles grew) and, when collaboration
   edges went in, the vertices whose radius-``h`` WL ball gained a
   vertex or an induced edge (:func:`_value_stain` — a strict subset of
   the conservative radius-``h`` ball the sequential loop drops,
   because profiles outside it would rebuild bit-identically).  The
   stain doubles as the cache invalidation, so dependency tracking and
   cache hygiene share one BFS.  At each paper's turn, a mention whose
   candidate list is unchanged and untouched by stains consumes its
   snapshot slice outright; any stale pair — a stained or newly created
   candidate — is re-scored *inline against the live network*, which is
   literally what the sequential loop computes at that point.
   Intra-batch dependencies therefore cost exactly what they cost
   sequentially and are resolved in dependency (= batch) order, while
   every untouched pair rides the vectorised snapshot.  A burst of
   unrelated papers consumes the snapshot wholesale; a pathologically
   self-dependent burst degrades gracefully toward the sequential loop,
   never below it by more than the snapshot overhead.

4. **Incremental attach updates** — attachments fold the new paper into
   the target's cached profile in place
   (``SimilarityComputer.attach_paper``): WL features and triangles
   depend only on adjacency, which an attachment never changes, so the
   full rebuild that drop-and-rebuild invalidation used to force on
   every later read of a hot vertex disappears — from the batched and
   the sequential path alike.

Honest throughput accounting: the end-to-end gain of ``add_papers`` is
bounded by two costs both paths share — profile construction for every
distinct candidate (the irreducible floor) and the genuinely dependent
pairs, which exact parity *requires* re-scoring at sequential cost.  The
vectorised snapshot itself scores pairs several times faster than the
per-pair scalar loop; ``benchmarks/test_table6_streaming.py`` records
both that scoring throughput and the end-to-end papers/second.

Parity contract
---------------

``add_papers(batch)`` produces the same GCN (identical vertex ids,
names, papers, mention payloads and edges), the same assignments
(vid/created; scores to batch-engine precision, ≤1e-9 — stale pairs are
re-scored on the sequential code path itself) and the same report
counters as looping ``add_paper`` over the batch in order — including
same-paper homonyms and papers bridging shards
(``tests/test_streaming_parity.py`` pins this).  Cache hygiene is
value-identical: the walk drops (or in-place-updates) every cached
profile whose value the batch changed, so a stale profile can never
serve an inline re-score; profiles the sequential loop would drop *and
rebuild to the same values* are simply kept.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from ..data.records import Paper
from ..graphs.collab import CollaborationNetwork
from ..graphs.wl import multi_source_ball
from ..model.scoring import match_scores
from .incremental import Assignment, IncrementalDisambiguator


@dataclass(slots=True)
class BatchStats:
    """Execution counters of one ``add_papers`` burst.

    ``n_scored_pairs`` are pairs scored through the vectorised snapshot
    call; ``n_patched_pairs`` the stale pairs re-scored inline on the
    sequential path at their paper's turn (``n_patch_calls`` scoring
    calls).  The patched share is the burst's intra-batch dependency
    rate — 0 for a burst of unrelated papers.
    """

    n_papers: int
    n_fresh: int
    n_duplicates: int
    n_scored_pairs: int
    n_patched_pairs: int
    n_patch_calls: int
    plan_seconds: float
    score_seconds: float
    apply_seconds: float
    seconds: float


def _value_stain(
    gcn: CollaborationNetwork, assigned: list[int], radius: int
) -> set[int]:
    """Vertices whose *similarity inputs* the new clique edges changed.

    Exact, not conservative: ``φ⟨h⟩(c)`` (and the triangle set of ``c``)
    reads only the induced subgraph of ``ball(c, h)``, so inserting the
    edge ``(u, v)`` changes ``c``'s profile iff the ball's vertex set
    grew — an endpoint within ``h − 1`` hops of ``c`` pulled the other
    in — or the ball gained an induced edge — both endpoints already
    within ``h`` hops.  Over the clique on ``assigned`` that is::

        ball(assigned, h−1)  ∪  ⋃_{u<v} ball(u, h) ∩ ball(v, h)

    Computed on the live network (the clique edges are already in), so
    chains through this batch's earlier insertions are included.  Every
    vertex outside this set keeps a bit-identical profile, which is why
    the streaming walk may keep both its cached profile and its snapshot
    scores — the sequential loop's wider radius-``h`` invalidation would
    merely rebuild the same values.
    """
    vids = sorted(set(assigned))
    stain = multi_source_ball(gcn, vids, radius - 1)
    balls = {u: multi_source_ball(gcn, (u,), radius) for u in vids}
    for i, u in enumerate(vids):
        for v in vids[i + 1 :]:
            stain |= balls[u] & balls[v]
    return stain


class StreamingIngestor(IncrementalDisambiguator):
    """Batched streaming front-end over the incremental disambiguator.

    Drop-in extension of
    :class:`~repro.core.incremental.IncrementalDisambiguator`: single
    papers still go through :meth:`add_paper`; bursts go through
    :meth:`add_papers`, which returns one assignment list per input
    paper, in input order, exactly as the sequential loop would.
    ``last_batch`` holds the :class:`BatchStats` of the most recent
    burst; cumulative batch counters ride on ``report``.

    Checkpointing: with a ``checkpoint_path`` (and
    ``config.checkpoint_every_n_papers > 0``) the ingestor periodically
    persists the complete fitted state — network, model, corpus,
    counters, shard routing — as an atomic snapshot (:mod:`repro.io`).
    :meth:`resume` warm-starts from such a snapshot in a fresh process
    and **replays nothing**: the restored state already contains every
    checkpointed paper, so the continuation is exactly the uninterrupted
    stream (``tests/test_snapshot_parity.py``).

    Checkpoint *modes* (``config.checkpoint_mode`` or the ``mode=``
    argument): ``"full"`` rewrites the complete snapshot — O(corpus) per
    checkpoint; ``"delta"`` writes the base once, then each checkpoint
    appends an O(burst) replayable record (the papers and assignment
    decisions since the previous checkpoint — journaled as they happen,
    no re-derivation) to a ``<path>.delta`` sibling log
    (:mod:`repro.io.delta`).  :meth:`resume` replays base + chain to the
    byte-identical state, and the chain keeps extending across resumes.
    Every ``config.compact_every_n_deltas`` appends the chain is folded
    back into the base; a *full* checkpoint to the base path does the
    same fold explicitly, while a full checkpoint to any other path is a
    side snapshot that leaves the chain untouched.

    Thread safety: a writer lock serializes :meth:`add_paper`,
    :meth:`add_papers` and :meth:`checkpoint`, so a checkpoint requested
    from another thread while bursts are running (the serving layer's
    pattern — requests keep queueing while the writer drains) can never
    observe a half-applied burst: it always captures a consistent
    *post-burst* state, and resuming it then replaying the still-queued
    papers reproduces exactly the clustering of draining the queue first
    and checkpointing after (``tests/test_service.py`` pins this).
    Queries are not serialized — readers are expected to go through an
    immutable :class:`~repro.service.FittedView`, never the live writer.
    """

    def __init__(
        self,
        iuad,
        checkpoint_path: str | Path | None = None,
        checkpoint_backend: str | None = None,
    ) -> None:
        super().__init__(iuad)
        self.last_batch: BatchStats | None = None
        self.checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )
        self.checkpoint_backend = checkpoint_backend
        self._papers_since_checkpoint = 0
        # Re-entrant: add_papers -> _maybe_checkpoint -> checkpoint
        # re-acquires while the burst still holds the write side.
        self._write_lock = threading.RLock()
        # Delta-chain state: the journal collects (paper, decisions)
        # pairs as ingestion happens — a delta checkpoint drains it into
        # one appended record.  Armed up front in delta mode (or by the
        # first explicit delta checkpoint).
        self._journal: list[tuple[Paper, list[tuple[int, bool]]]] = []
        self._journal_armed = iuad.config.checkpoint_mode == "delta"
        self._delta_seq = 0
        self._delta_base_fp: str | None = None
        self._delta_base_path: Path | None = None
        self._delta_chain_len = 0

    @property
    def delta_chain_length(self) -> int:
        """Appended (un-compacted) delta records of the live chain."""
        return self._delta_chain_len

    def set_checkpoint_mode(self, mode: str) -> None:
        """Override ``config.checkpoint_mode`` on the live ingestor.

        Switching to ``"delta"`` arms the journal immediately, so every
        paper from this moment on is replayable; papers ingested before
        the switch are covered by the base the first delta checkpoint
        writes.
        """
        if mode not in ("full", "delta"):
            raise ValueError(
                f"checkpoint mode must be 'full' or 'delta', got {mode!r}"
            )
        with self._write_lock:
            self.iuad.config.checkpoint_mode = mode
            if mode == "delta":
                self._journal_armed = True

    # ------------------------------------------------------------------ #
    # durable checkpoints & warm-start resume
    # ------------------------------------------------------------------ #
    def checkpoint(
        self,
        path: str | Path | None = None,
        backend: str | None = None,
        mode: str | None = None,
    ) -> Path:
        """Write a durable checkpoint of the current state, atomically.

        The checkpoint carries the fitted estimator *and* this ingestor's
        report counters, so a :meth:`resume` continues both.  ``path`` /
        ``backend`` default to the constructor's checkpoint target;
        ``mode`` defaults to ``config.checkpoint_mode``.

        ``mode="full"`` rewrites the whole snapshot (a crash mid-write
        can never corrupt the previous checkpoint: tmp sibling + fsync +
        atomic rename).  To the live chain's base path it doubles as
        **compaction** — the chain is folded in and the log truncated.

        ``mode="delta"`` writes the base on first use, then appends one
        O(changes-since-last-checkpoint) record to ``<path>.delta``
        (durable: write + fsync).  The chain is pinned to one base path;
        auto-compaction folds it after
        ``config.compact_every_n_deltas`` appends.
        """
        target = Path(path) if path is not None else self.checkpoint_path
        if target is None:
            raise ValueError(
                "no checkpoint path: pass one here or to the constructor"
            )
        mode = mode if mode is not None else self.iuad.config.checkpoint_mode
        if mode not in ("full", "delta"):
            raise ValueError(
                f"checkpoint mode must be 'full' or 'delta', got {mode!r}"
            )
        backend = backend or self.checkpoint_backend
        with self._write_lock:
            if mode == "delta":
                self._checkpoint_delta(target, backend)
            else:
                self._checkpoint_full(target, backend)
            self._papers_since_checkpoint = 0
        return target

    def _checkpoint_full(self, target: Path, backend: str | None) -> None:
        from ..io import backends as io_backends
        from ..io import delta as delta_chain
        from ..io.snapshot import snapshot_of

        snapshot = snapshot_of(self.iuad, stream=self.report)
        if self._delta_base_path is not None and target == self._delta_base_path:
            # Full write over the chain's base = compaction: the new base
            # subsumes every appended record (watermark delta_seq), lands
            # atomically, and only then is the log truncated — a crash in
            # between leaves a log of records the base already skips.
            snapshot.delta_seq = self._delta_seq
            document = snapshot.to_document()
            io_backends.write_document(document, target, backend)
            self._delta_base_fp = delta_chain.document_fingerprint(document)
            self._delta_chain_len = 0
            self._journal.clear()
            log_path = delta_chain.delta_log_path(target)
            if log_path.exists():
                delta_chain.truncate_log(log_path)
        else:
            # Side snapshot (or no chain at all): the chain, the journal
            # and the watermark are untouched.
            snapshot.save(target, backend=backend)

    def _checkpoint_delta(self, target: Path, backend: str | None) -> None:
        from ..io import backends as io_backends
        from ..io import delta as delta_chain
        from ..io.snapshot import _encode_stream, snapshot_of

        if self._delta_base_path is not None and target != self._delta_base_path:
            raise ValueError(
                f"delta checkpoints extend the chain at "
                f"{self._delta_base_path}; cannot append to {target} "
                "(write a full checkpoint there instead)"
            )
        self._journal_armed = True
        if self._delta_base_fp is None:
            # First delta checkpoint: establish the base (O(corpus), once).
            snapshot = snapshot_of(self.iuad, stream=self.report)
            snapshot.delta_seq = self._delta_seq
            document = snapshot.to_document()
            io_backends.write_document(document, target, backend)
            self._delta_base_fp = delta_chain.document_fingerprint(document)
            self._delta_base_path = Path(target)
            self._delta_chain_len = 0
            # Everything journaled so far is inside the base; a stale log
            # from an earlier run must not pollute the new chain.
            self._journal.clear()
            log_path = delta_chain.delta_log_path(target)
            if log_path.exists():
                delta_chain.truncate_log(log_path)
            return
        papers, assignments = delta_chain.encode_changes(self._journal)
        self._delta_seq += 1
        record = delta_chain.DeltaRecord(
            seq=self._delta_seq,
            base=self._delta_base_fp,
            papers=papers,
            assignments=assignments,
            stream=_encode_stream(self.report),
        )
        delta_chain.append_record(delta_chain.delta_log_path(target), record)
        self._journal.clear()
        self._delta_chain_len += 1
        every = self.iuad.config.compact_every_n_deltas
        if every > 0 and self._delta_chain_len >= every:
            # In-memory compaction: the live state IS base + chain, so
            # folding costs one full write, no replay.
            self._checkpoint_full(target, backend)

    @classmethod
    def resume(
        cls,
        path: str | Path,
        backend: str | None = None,
        checkpoint_path: str | Path | None = None,
    ) -> "StreamingIngestor":
        """Warm-start an ingestor from a snapshot; re-scores nothing.

        Restores the estimator (plain or sharded — the snapshot decides)
        and, when the snapshot was written by :meth:`checkpoint`, the
        stream counters.  A delta chain riding next to the base
        (``<path>.delta``) is validated and replayed — recorded
        decisions only, no similarity is recomputed — and the resumed
        ingestor keeps extending that same chain.  Future
        auto-checkpoints go back to the same file unless
        ``checkpoint_path`` overrides it.
        """
        from ..io import backends as io_backends
        from ..io import delta as delta_chain
        from ..io.snapshot import Snapshot

        document = io_backends.read_document(path, backend)
        snapshot = Snapshot.from_document(document)
        log_path = delta_chain.delta_log_path(path)
        fingerprint: str | None = None
        records: list[delta_chain.DeltaRecord] = []
        if log_path.exists() or snapshot.config.checkpoint_mode == "delta":
            fingerprint = delta_chain.document_fingerprint(document)
        if log_path.exists():
            records = delta_chain.read_chain(
                log_path, snapshot.delta_seq, fingerprint
            )
            for record in records:
                delta_chain.replay_record(snapshot, record)
        ingestor = cls(
            snapshot.restore(),
            checkpoint_path=checkpoint_path if checkpoint_path is not None else path,
            checkpoint_backend=backend,
        )
        if snapshot.stream is not None:
            ingestor.report = snapshot.stream
        if fingerprint is not None and ingestor.checkpoint_path == Path(path):
            # Continue the chain where it left off: the next append is
            # contiguous with the replayed tail (or the base watermark).
            # A checkpoint_path override starts a fresh chain there
            # instead (its first delta checkpoint writes a new base).
            ingestor._delta_base_fp = fingerprint
            ingestor._delta_base_path = Path(path)
            ingestor._delta_seq = (
                records[-1].seq if records else snapshot.delta_seq
            )
            ingestor._delta_chain_len = len(records)
            ingestor._journal_armed = True
        return ingestor

    def add_paper(self, paper: Paper):  # inherits the full docstring
        with self._write_lock:
            before = self.report.n_papers
            assignments = super().add_paper(paper)
            if self._journal_armed and self.report.n_papers > before:
                # Duplicates (policy "return") mutate nothing — only a
                # genuinely ingested paper becomes a replayable decision.
                self._journal.append(
                    (paper, [(a.vid, a.created) for a in assignments])
                )
            self._maybe_checkpoint(self.report.n_papers - before)
        return assignments

    def _maybe_checkpoint(self, n_new: int) -> None:
        every = self.iuad.config.checkpoint_every_n_papers
        if every <= 0 or self.checkpoint_path is None or n_new <= 0:
            return
        self._papers_since_checkpoint += n_new
        if self._papers_since_checkpoint >= every:
            self.checkpoint()

    # ------------------------------------------------------------------ #
    def add_papers(self, papers: Sequence[Paper]) -> list[list[Assignment]]:
        """Ingest a burst of papers; parity-exact with sequential order.

        Duplicates (pids already in the corpus, or repeated within the
        batch) follow ``config.duplicate_paper_policy``.  Under
        ``"raise"`` the whole batch is validated up front and rejected
        before anything is mutated — unlike the sequential loop, which
        would fail midway; under ``"return"`` duplicates replay the
        current owners of their mentions, exactly as sequentially.
        """
        with self._write_lock:
            return self._add_papers_locked(papers)

    def _add_papers_locked(
        self, papers: Sequence[Paper]
    ) -> list[list[Assignment]]:
        corpus = self.iuad.corpus_
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        model = self.iuad.model_
        assert corpus is not None and gcn is not None
        assert computer is not None and model is not None
        if not papers:
            return []

        t0 = time.perf_counter()
        # ---------------- duplicates + admission (atomic validation) --- #
        fresh: list[tuple[int, Paper]] = []  # (batch index, paper)
        duplicates: list[int] = []
        seen_pids: set[int] = set()
        for index, paper in enumerate(papers):
            if paper.pid in corpus or paper.pid in seen_pids:
                if self.iuad.config.duplicate_paper_policy == "raise":
                    raise ValueError(
                        f"paper {paper.pid} is already ingested (or repeated "
                        "within the batch); the batch was rejected before "
                        "any state was touched (set "
                        "duplicate_paper_policy='return' for idempotent "
                        "replay)"
                    )
                duplicates.append(index)
            else:
                seen_pids.add(paper.pid)
                fresh.append((index, paper))

        for _index, paper in fresh:
            corpus.add(paper)
        if self.shard_index is not None and fresh:
            # Bulk routing through the fitted shard partition: identical
            # index state (bridging happens in batch order) and counters
            # as one route_paper call per sequential insert.
            shards = self.shard_index.route_papers(
                paper.authors for _index, paper in fresh
            )
            for shard in shards:
                self.report.per_shard_papers[shard] = (
                    self.report.per_shard_papers.get(shard, 0) + 1
                )
        # Probe vids for the whole batch, in batch × position order (the
        # sequential allocation order — vid parity).
        probes: dict[tuple[int, int], int] = {}
        pending_probes: set[int] = set()
        for fresh_pos, (_index, paper) in enumerate(fresh):
            for position, name in enumerate(paper.authors):
                probe = self._make_probe(name, paper.pid, position)
                probes[(fresh_pos, position)] = probe
                pending_probes.add(probe)
        plan_seconds = time.perf_counter() - t0

        # ---------------- snapshot: one vectorised scoring call -------- #
        t_score = time.perf_counter()
        #: (fresh_pos, position) -> (candidates, score slice)
        snapshot: dict[tuple[int, int], tuple[list[int], np.ndarray]] = {}
        pairs: list[tuple[int, int]] = []
        bounds: list[tuple[tuple[int, int], int, int]] = []
        frozen = frozenset(pending_probes)
        for fresh_pos, (_index, paper) in enumerate(fresh):
            for position, name in enumerate(paper.authors):
                key = (fresh_pos, position)
                candidates = self._candidate_vids(
                    name, paper.pid, exclude=frozen
                )
                start = len(pairs)
                pairs.extend((probes[key], vid) for vid in candidates)
                bounds.append((key, start, len(pairs)))
                snapshot[key] = (candidates, _EMPTY)
        if pairs:
            # Probes are NOT marked transient here on purpose: the walk's
            # inline patching re-scores stale pairs against these same
            # probes, so their cached profiles are read again; the
            # ordinary attach/create paths clean them up afterwards.
            scores = match_scores(model, computer.pair_matrix(pairs))
            for key, start, end in bounds:
                snapshot[key] = (snapshot[key][0], scores[start:end])
        n_scored_pairs = len(pairs)
        score_seconds = time.perf_counter() - t_score

        # ---------------- ordered walk with inline patching ------------ #
        t_walk = time.perf_counter()
        radius = max(1, computer.wl_iterations)
        results: dict[int, list[Assignment]] = {}
        stained: set[int] = set()
        created_names: set[str] = set()
        n_patched_pairs = 0
        n_patch_calls = 0
        for fresh_pos, (index, paper) in enumerate(fresh):
            # Gather the paper's stale pairs across all its mentions and
            # patch them in ONE call (mention decisions stay positional:
            # scores never depend on sibling mentions, only the
            # candidate filter does, and _apply_assignment re-checks it).
            plan: list[tuple[int, str, list[int], object]] = []
            patch_pairs: list[tuple[int, int]] = []
            patch_slots: list[tuple[int, int]] = []  # (plan row, cand idx)
            for position, name in enumerate(paper.authors):
                key = (fresh_pos, position)
                known_cands, known_scores = snapshot.pop(key)
                if name not in created_names:
                    # No vertex of this name was created since the
                    # snapshot, and none can have vanished (only pending
                    # probes are removable, and those were hidden), so
                    # the enumeration is still current.
                    candidates = known_cands
                else:
                    candidates = self._candidate_vids(
                        name, paper.pid, exclude=pending_probes
                    )
                if candidates is known_cands and stained.isdisjoint(
                    candidates
                ):
                    # Clean mention: the snapshot slice is the score
                    # vector the sequential loop would compute here.
                    plan.append((position, name, candidates, known_scores))
                    continue
                known = dict(zip(known_cands, known_scores))
                row = len(plan)
                mention_scores = np.empty(len(candidates), dtype=np.float64)
                for i, vid in enumerate(candidates):
                    score = known.get(vid)
                    if score is None or vid in stained:
                        patch_pairs.append((probes[key], vid))
                        patch_slots.append((row, i))
                    else:
                        mention_scores[i] = score
                plan.append((position, name, candidates, mention_scores))
            if patch_pairs:
                # The sequential code path, verbatim: score against the
                # live network (caches were dropped exactly as add_paper
                # drops them, so values are current).
                patch = match_scores(model, computer.pair_matrix(patch_pairs))
                for (row, i), score in zip(patch_slots, patch):
                    plan[row][3][i] = score
                n_patched_pairs += len(patch_pairs)
                n_patch_calls += 1
            assignments: list[Assignment] = []
            for position, name, candidates, mention_scores in plan:
                assignment = self._apply_assignment(
                    name, paper.pid, position,
                    probes[(fresh_pos, position)], candidates,
                    mention_scores,
                )
                pending_probes.discard(probes[(fresh_pos, position)])
                assignments.append(assignment)
                if assignment.created:
                    created_names.add(name)
            edge_touched = self._recover_paper_relations(
                paper.pid, assignments
            )
            if edge_touched:
                # The stain doubles as the cache invalidation — computed
                # once, used for both.  It is the *exact* set of vertices
                # whose profile values the new edges changed (see
                # ``_value_stain``); profiles outside it are kept even
                # though ``add_paper`` would conservatively drop its
                # whole radius-``h`` ball, because a rebuild would
                # reproduce them bit-identically.
                ball = _value_stain(
                    gcn, [a.vid for a in assignments], radius
                )
                stained |= ball
                computer.invalidate_exact(ball)
            else:
                stained.update(a.vid for a in assignments if not a.created)
            results[index] = assignments
            if self._journal_armed:
                self._journal.append(
                    (paper, [(a.vid, a.created) for a in assignments])
                )
            self.report.n_papers += 1
            self.report.n_mentions += len(assignments)
        apply_seconds = time.perf_counter() - t_walk

        # ---------------- duplicates replay (idempotent) --------------- #
        # Mention ownership is stable once assigned, so replaying after
        # the walk answers exactly what the sequential loop would have
        # answered at the duplicate's stream position.
        for index in duplicates:
            self.report.n_duplicates += 1
            results[index] = self._prior_assignments(papers[index])

        elapsed = time.perf_counter() - t0
        if fresh:
            # Amortised per-paper accounting: the exact batch wall-clock
            # lands in the running sum, one share per paper in the window.
            share = elapsed / len(fresh)
            for _ in fresh:
                self.report.record_paper_seconds(share)
        self.report.n_batches += 1
        self.report.n_waves += 1 if fresh else 0
        self.last_batch = BatchStats(
            n_papers=len(papers),
            n_fresh=len(fresh),
            n_duplicates=len(duplicates),
            n_scored_pairs=n_scored_pairs,
            n_patched_pairs=n_patched_pairs,
            n_patch_calls=n_patch_calls,
            plan_seconds=plan_seconds,
            score_seconds=score_seconds,
            apply_seconds=apply_seconds,
            seconds=elapsed,
        )
        self._maybe_checkpoint(len(fresh))
        return [results[index] for index in sorted(results)]


_EMPTY = np.empty(0, dtype=np.float64)
