"""Incremental single-paper disambiguation (Section V-E).

A newly published paper ``p`` carrying name ``a`` is first treated as an
isolated vertex ``v_a``.  Its similarity vector against every existing GCN
vertex of name ``a`` is scored with the *already learned* parameters; the
mention is attached to the argmax vertex ``v_k`` iff

1. ``sc_k ≥ sc_i`` for every other candidate ``v_i`` (argmax), and
2. ``sc_k ≥ δ``.

Otherwise ``v_a`` stays a new isolated vertex.  No retraining happens —
this is the property that makes IUAD incremental (Table VI measures the
cost at < 50 ms per paper).

Mention identity is positional: each occurrence of ``p``'s co-author list
is disambiguated separately, and candidate vertices are filtered by the
one-mention-per-paper invariant — a vertex that already owns an occurrence
of ``p`` is structurally barred from its later occurrences, so a paper
listing the same name twice (two homonymous co-authors) always yields two
distinct vertices.

The per-mention decision is factored into three reusable phases so the
batched streaming path (:mod:`repro.core.streaming`) can interleave them
across many papers while staying in exact parity with this scalar loop:

* **candidates** — :meth:`IncrementalDisambiguator._candidate_vids`
  enumerates the admissible same-name vertices (structural
  one-mention-per-paper filter, plus an optional exclusion set for
  not-yet-applied batch probes);
* **score** — the caller scores ``(probe, candidate)`` pairs however it
  likes (one paper at a time here, one batched call per wave there);
* **apply** — :meth:`IncrementalDisambiguator._apply_assignment` makes
  the argmax-plus-threshold decision and mutates the network.  Ties on
  the matching score are broken by the *lowest vertex id*, never by
  candidate enumeration order, so equal-score candidates attach
  identically after a shard stitch and after a whole-corpus fit (whose
  name-index orders differ).

Re-ingesting an already-known pid is governed by
``IUADConfig.duplicate_paper_policy``: ``"raise"`` rejects it before any
state is touched, ``"return"`` answers idempotently with the current
owners of the paper's mentions.  Either way the duplicate can never be
attached twice (which would break the one-mention-per-paper invariant).

Cache hygiene: every attachment or recovered edge invalidates the profile
caches of all vertices within ``wl_iterations`` hops of the touched
endpoints (WL features span that radius — see
``SimilarityComputer.invalidate``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.records import Paper
from ..model.scoring import match_scores
from .iuad import IUAD


@dataclass(slots=True)
class Assignment:
    """Outcome of disambiguating one mention of a new paper."""

    name: str
    position: int  # occurrence index into the paper's co-author list
    vid: int
    created: bool  # True when a fresh vertex was created
    score: float   # best Eq. 11 score (−inf when no candidates existed;
                   # nan for an idempotent duplicate replay)


@dataclass(slots=True)
class IncrementalReport:
    """Stream statistics: papers processed and time spent.

    ``n_mentions`` counts occurrences — a paper listing one name twice
    contributes two mentions, matching the per-occurrence model everywhere
    else in the pipeline.

    ``per_shard_papers`` is filled only when the fitted estimator carries
    a shard index (:class:`repro.core.sharding.ShardedIUAD`): it counts
    streamed papers per owning (canonical) shard id, the locality
    evidence that every insert touched exactly one name block.

    Timing is bounded: only the last ``timing_window`` per-paper samples
    are retained (:attr:`per_paper_seconds`), so a million-paper stream
    never holds a million floats.  :attr:`avg_ms_per_paper` stays *exact*
    regardless, because it divides the running ``seconds`` sum by
    ``n_papers`` rather than summing the window.

    ``n_batches`` / ``n_waves`` are filled by the batched streaming path
    (:class:`repro.core.streaming.StreamingIngestor`): how many
    ``add_papers`` bursts were ingested, and how many vectorised
    snapshot-scoring rounds they ran (one per non-empty burst).
    ``n_duplicates`` counts idempotent duplicate replays
    (``duplicate_paper_policy="return"``).
    """

    n_papers: int = 0
    n_mentions: int = 0
    n_attached: int = 0
    n_created: int = 0
    n_duplicates: int = 0
    n_batches: int = 0
    n_waves: int = 0
    seconds: float = 0.0
    timing_window: int = 4096
    per_shard_papers: dict[int, int] = field(default_factory=dict)
    _recent_seconds: deque = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.timing_window < 1:
            raise ValueError(
                f"timing_window must be >= 1, got {self.timing_window}"
            )
        self._recent_seconds = deque(maxlen=self.timing_window)

    def record_paper_seconds(self, elapsed: float) -> None:
        """Account one paper's wall-clock: exact sum + rolling window."""
        self.seconds += elapsed
        self._recent_seconds.append(elapsed)

    @property
    def per_paper_seconds(self) -> list[float]:
        """The most recent per-paper wall-clock samples (bounded window).

        At most ``timing_window`` entries — the tail of the stream, not
        its full history.  Use :attr:`avg_ms_per_paper` for the exact
        whole-stream average.
        """
        return list(self._recent_seconds)

    @property
    def avg_ms_per_paper(self) -> float:
        """Average wall-clock per paper in milliseconds (Table VI row).

        Exact over the whole stream (running sums, independent of the
        bounded sample window).  Guarded for the empty stream: a report
        that has processed no papers yet answers ``0.0`` instead of
        dividing by zero.
        """
        if self.n_papers == 0:
            return 0.0
        return 1000.0 * self.seconds / self.n_papers

    @property
    def recent_avg_ms_per_paper(self) -> float:
        """Average over the retained window only (recent-cost telemetry)."""
        if not self._recent_seconds:
            return 0.0
        return 1000.0 * sum(self._recent_seconds) / len(self._recent_seconds)


class IncrementalDisambiguator:
    """Streams newly published papers into a fitted IUAD's GCN."""

    def __init__(self, iuad: IUAD):
        if iuad.gcn_ is None or iuad.model_ is None or iuad.computer_ is None:
            raise ValueError("IUAD must be fitted before incremental use")
        self.iuad = iuad
        self.report = IncrementalReport(
            timing_window=iuad.config.incremental_timing_window
        )
        # A sharded fit exposes its name-block routing; streaming inserts
        # are then accounted to (and structurally confined to) the shard
        # owning the paper's names.  Plain IUAD fits have no index.
        self.shard_index = getattr(iuad, "shard_index_", None)

    # ------------------------------------------------------------------ #
    def add_paper(self, paper: Paper) -> list[Assignment]:
        """Disambiguate every mention of ``paper`` and update the GCN.

        Returns one :class:`Assignment` per occurrence on the paper's
        co-author list.  The paper is appended to the fitted corpus, each
        mention is attached to the best-scoring same-name vertex (or
        becomes a new vertex), and the paper's collaborative relations are
        recovered as GCN edges.

        A pid already in the corpus is handled per
        ``config.duplicate_paper_policy`` — rejected (``"raise"``) or
        answered idempotently with the mentions' current owners
        (``"return"``); it is never ingested twice.
        """
        corpus = self.iuad.corpus_
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        model = self.iuad.model_
        assert corpus is not None and gcn is not None
        assert computer is not None and model is not None

        if paper.pid in corpus:
            return self._resolve_duplicate(paper)
        t0 = time.perf_counter()
        corpus.add(paper)
        if self.shard_index is not None:
            # Route through the shard index: candidate vertices are
            # same-name, hence inside the owning block by construction;
            # the index keeps the partition current (new names join the
            # block, papers spanning two blocks bridge them) and the
            # report counts the insert against the canonical shard.
            shard = self.shard_index.route_paper(paper.authors)
            self.report.per_shard_papers[shard] = (
                self.report.per_shard_papers.get(shard, 0) + 1
            )
        assignments: list[Assignment] = []
        for position, name in enumerate(paper.authors):
            assignments.append(self._assign_mention(name, paper.pid, position))
        # Recover the paper's collaborative relations between the assigned
        # vertices (the incremental analogue of Algorithm 1 line 16), then
        # invalidate all touched neighbourhoods in one multi-source BFS
        # instead of one radius-h traversal per edge endpoint.
        touched = self._recover_paper_relations(paper.pid, assignments)
        if touched:
            computer.invalidate_many(touched)
        elapsed = time.perf_counter() - t0
        self.report.n_papers += 1
        self.report.n_mentions += len(assignments)
        self.report.record_paper_seconds(elapsed)
        return assignments

    # ------------------------------------------------------------------ #
    # duplicate pids
    # ------------------------------------------------------------------ #
    def _resolve_duplicate(self, paper: Paper) -> list[Assignment]:
        """Apply ``duplicate_paper_policy`` to an already-known pid."""
        if self.iuad.config.duplicate_paper_policy == "raise":
            raise ValueError(
                f"paper {paper.pid} is already in the fitted corpus; "
                "re-ingesting would duplicate its mentions "
                "(set duplicate_paper_policy='return' for idempotent replay)"
            )
        self.report.n_duplicates += 1
        return self._prior_assignments(paper)

    def _prior_assignments(self, paper: Paper) -> list[Assignment]:
        """The current owners of ``paper``'s mentions, as assignments.

        Reconstructed from the GCN's mention payloads rather than stored
        per pid, so idempotent replay costs no memory on long streams and
        also answers for papers that were part of the original fit.  A
        mention nobody owns (possible only for hand-built networks)
        reports ``vid=-1``; scores are ``nan`` — no fresh decision was
        made.
        """
        gcn = self.iuad.gcn_
        assert gcn is not None
        out: list[Assignment] = []
        for position, name in enumerate(paper.authors):
            owner = gcn.owner_of(paper.pid, position, name)
            if owner is None:
                owner = -1
            out.append(
                Assignment(
                    name=name,
                    position=position,
                    vid=owner,
                    created=False,
                    score=float("nan"),
                )
            )
        return out

    # ------------------------------------------------------------------ #
    # the three phases of one mention decision
    # ------------------------------------------------------------------ #
    def _candidate_vids(
        self, name: str, pid: int, exclude: frozenset[int] = frozenset()
    ) -> list[int]:
        """Admissible attachment candidates for a mention of ``name``.

        One-mention-per-paper invariant as a structural candidate filter:
        a vertex already owning an occurrence of this paper (an earlier
        position of a twice-listed name) is a provably different person,
        and scoring it would let the second mention self-attach on the
        evidence of this very paper.  ``exclude`` additionally drops
        vertices that must not be visible yet — the streaming path passes
        its not-yet-applied batch probes, which a sequential stream would
        not have created at this point.
        """
        gcn = self.iuad.gcn_
        assert gcn is not None
        return [
            vid
            for vid in gcn.vertices_of_name(name)
            if vid not in exclude and pid not in gcn.papers_of(vid)
        ]

    def _make_probe(self, name: str, pid: int, position: int) -> int:
        """The isolated probe vertex ``v_a`` carrying just this mention."""
        gcn = self.iuad.gcn_
        assert gcn is not None
        return gcn.add_vertex(name, mentions=((pid, position),))

    def _select_candidate(
        self, candidates: list[int], scores: np.ndarray, pid: int
    ) -> tuple[int, float]:
        """Argmax with a deterministic tie-break: lowest vertex id wins.

        Candidates that meanwhile acquired a mention of ``pid`` (an
        earlier position of the same paper attached there) are skipped —
        the structural filter re-checked at apply time.  Returns
        ``(index, score)``; ``(-1, -inf)`` when nothing is admissible.

        Enumeration order deliberately plays no role: ``np.argmax`` would
        return the first maximal entry, making equal-score attachments
        depend on name-index insertion order, which differs between a
        whole-corpus fit and a stitched sharded fit.
        """
        gcn = self.iuad.gcn_
        assert gcn is not None
        best_i = -1
        best_vid = -1
        best_score = float("-inf")
        for i, vid in enumerate(candidates):
            if pid in gcn.papers_of(vid):
                continue
            score = float(scores[i])
            if score > best_score or (
                score == best_score and (best_i < 0 or vid < best_vid)
            ):
                best_i, best_vid, best_score = i, vid, score
        return best_i, best_score

    def _apply_assignment(
        self,
        name: str,
        pid: int,
        position: int,
        probe: int,
        candidates: list[int],
        scores: np.ndarray,
    ) -> Assignment:
        """Decide and mutate: attach to the best candidate or keep the probe.

        ``scores`` is aligned with ``candidates`` (Eq. 11 matching scores
        of the ``(probe, candidate)`` pairs).  Shared verbatim by the
        scalar :meth:`add_paper` loop and the batched streaming waves —
        the parity contract forbids letting the two decision paths drift.
        """
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        assert gcn is not None and computer is not None
        best_i, best_score = self._select_candidate(candidates, scores, pid)
        if best_i >= 0 and best_score >= self.iuad.config.incremental_delta:
            target = candidates[best_i]
            gcn.add_mention(target, pid, position)
            gcn.set_mentions(probe, ())
            self._drop_probe(probe)
            # Attaching the paper changed target's own keyword/venue
            # profile but no adjacency: fold the paper into the cached
            # profile in place (WL features and triangles stay valid; a
            # full rebuild per later read would dominate hot streams).
            # The structural ball is invalidated later, when the
            # recovered edges go in.
            computer.attach_paper(target, pid)
            self.report.n_attached += 1
            return Assignment(
                name=name,
                position=position,
                vid=target,
                created=False,
                score=best_score,
            )
        if candidates:
            computer.invalidate(probe)
        self.report.n_created += 1
        return Assignment(
            name=name,
            position=position,
            vid=probe,
            created=True,
            score=best_score,
        )

    # ------------------------------------------------------------------ #
    def _assign_mention(self, name: str, pid: int, position: int) -> Assignment:
        """Scalar path: candidates → one scoring call → apply."""
        computer = self.iuad.computer_
        model = self.iuad.model_
        assert computer is not None and model is not None
        candidates = self._candidate_vids(name, pid)
        probe = self._make_probe(name, pid, position)
        if candidates:
            pairs = [(probe, vid) for vid in candidates]
            scores = match_scores(model, computer.pair_matrix(pairs))
        else:
            scores = np.empty(0, dtype=np.float64)
        return self._apply_assignment(
            name, pid, position, probe, candidates, scores
        )

    def _recover_paper_relations(
        self, pid: int, assignments: list[Assignment]
    ) -> set[int]:
        """Insert the paper's collaboration edges; returns touched vids."""
        gcn = self.iuad.gcn_
        assert gcn is not None
        vids = [a.vid for a in assignments]
        touched: set[int] = set()
        for i, u in enumerate(vids):
            for v in vids[i + 1 :]:
                if u != v:
                    gcn.add_edge(u, v, (pid,))
                    touched.add(u)
                    touched.add(v)
        return touched

    def _drop_probe(self, probe: int) -> None:
        """Remove the temporary probe vertex (it never acquired edges).

        The probe was scored, so its profile is cached; drop that too or
        the store leaks one dead entry per attached mention.
        """
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        assert gcn is not None and computer is not None
        gcn.remove_isolated_vertex(probe)
        computer.invalidate(probe)
