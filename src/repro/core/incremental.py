"""Incremental single-paper disambiguation (Section V-E).

A newly published paper ``p`` carrying name ``a`` is first treated as an
isolated vertex ``v_a``.  Its similarity vector against every existing GCN
vertex of name ``a`` is scored with the *already learned* parameters; the
mention is attached to the argmax vertex ``v_k`` iff

1. ``sc_k ≥ sc_i`` for every other candidate ``v_i`` (argmax), and
2. ``sc_k ≥ δ``.

Otherwise ``v_a`` stays a new isolated vertex.  No retraining happens —
this is the property that makes IUAD incremental (Table VI measures the
cost at < 50 ms per paper).

Mention identity is positional: each occurrence of ``p``'s co-author list
is disambiguated separately, and candidate vertices are filtered by the
one-mention-per-paper invariant — a vertex that already owns an occurrence
of ``p`` is structurally barred from its later occurrences, so a paper
listing the same name twice (two homonymous co-authors) always yields two
distinct vertices.  This replaces the bespoke ``taken``-set guard earlier
revisions threaded through the attachment loop.

Cache hygiene: every attachment or recovered edge invalidates the profile
caches of all vertices within ``wl_iterations`` hops of the touched
endpoints (WL features span that radius — see
``SimilarityComputer.invalidate``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..data.records import Paper
from ..model.scoring import match_scores
from .iuad import IUAD


@dataclass(slots=True)
class Assignment:
    """Outcome of disambiguating one mention of a new paper."""

    name: str
    position: int  # occurrence index into the paper's co-author list
    vid: int
    created: bool  # True when a fresh vertex was created
    score: float   # best Eq. 11 score (−inf when no candidates existed)


@dataclass(slots=True)
class IncrementalReport:
    """Stream statistics: papers processed and time spent.

    ``n_mentions`` counts occurrences — a paper listing one name twice
    contributes two mentions, matching the per-occurrence model everywhere
    else in the pipeline.

    ``per_shard_papers`` is filled only when the fitted estimator carries
    a shard index (:class:`repro.core.sharding.ShardedIUAD`): it counts
    streamed papers per owning (canonical) shard id, the locality
    evidence that every insert touched exactly one name block.
    """

    n_papers: int = 0
    n_mentions: int = 0
    n_attached: int = 0
    n_created: int = 0
    seconds: float = 0.0
    per_paper_seconds: list[float] = field(default_factory=list)
    per_shard_papers: dict[int, int] = field(default_factory=dict)

    @property
    def avg_ms_per_paper(self) -> float:
        """Average wall-clock per paper in milliseconds (Table VI row).

        Guarded for the empty stream: a report that has processed no
        papers yet answers ``0.0`` instead of dividing by zero.
        """
        if self.n_papers == 0:
            return 0.0
        return 1000.0 * self.seconds / self.n_papers


class IncrementalDisambiguator:
    """Streams newly published papers into a fitted IUAD's GCN."""

    def __init__(self, iuad: IUAD):
        if iuad.gcn_ is None or iuad.model_ is None or iuad.computer_ is None:
            raise ValueError("IUAD must be fitted before incremental use")
        self.iuad = iuad
        self.report = IncrementalReport()
        # A sharded fit exposes its name-block routing; streaming inserts
        # are then accounted to (and structurally confined to) the shard
        # owning the paper's names.  Plain IUAD fits have no index.
        self.shard_index = getattr(iuad, "shard_index_", None)

    # ------------------------------------------------------------------ #
    def add_paper(self, paper: Paper) -> list[Assignment]:
        """Disambiguate every mention of ``paper`` and update the GCN.

        Returns one :class:`Assignment` per occurrence on the paper's
        co-author list.  The paper is appended to the fitted corpus, each
        mention is attached to the best-scoring same-name vertex (or
        becomes a new vertex), and the paper's collaborative relations are
        recovered as GCN edges.
        """
        t0 = time.perf_counter()
        corpus = self.iuad.corpus_
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        model = self.iuad.model_
        assert corpus is not None and gcn is not None
        assert computer is not None and model is not None

        corpus.add(paper)
        if self.shard_index is not None:
            # Route through the shard index: candidate vertices are
            # same-name, hence inside the owning block by construction;
            # the index keeps the partition current (new names join the
            # block, papers spanning two blocks bridge them) and the
            # report counts the insert against the canonical shard.
            shard = self.shard_index.route_paper(paper.authors)
            self.report.per_shard_papers[shard] = (
                self.report.per_shard_papers.get(shard, 0) + 1
            )
        assignments: list[Assignment] = []
        for position, name in enumerate(paper.authors):
            assignments.append(self._assign_mention(name, paper.pid, position))
        # Recover the paper's collaborative relations between the assigned
        # vertices (the incremental analogue of Algorithm 1 line 16), then
        # invalidate all touched neighbourhoods in one multi-source BFS
        # instead of one radius-h traversal per edge endpoint.
        vids = [a.vid for a in assignments]
        touched: set[int] = set()
        for i, u in enumerate(vids):
            for v in vids[i + 1 :]:
                if u != v:
                    gcn.add_edge(u, v, (paper.pid,))
                    touched.add(u)
                    touched.add(v)
        if touched:
            computer.invalidate_many(touched)
        elapsed = time.perf_counter() - t0
        self.report.n_papers += 1
        self.report.n_mentions += len(assignments)
        self.report.seconds += elapsed
        self.report.per_paper_seconds.append(elapsed)
        return assignments

    # ------------------------------------------------------------------ #
    def _assign_mention(self, name: str, pid: int, position: int) -> Assignment:
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        model = self.iuad.model_
        assert gcn is not None and computer is not None and model is not None

        # One-mention-per-paper invariant as a structural candidate filter:
        # a vertex already owning an occurrence of this paper (an earlier
        # position of a twice-listed name) is a provably different person,
        # and scoring it would let the second mention self-attach on the
        # evidence of this very paper.
        candidates = [
            vid
            for vid in gcn.vertices_of_name(name)
            if pid not in gcn.papers_of(vid)
        ]
        probe = gcn.add_vertex(name, mentions=((pid, position),))
        if not candidates:
            self.report.n_created += 1
            return Assignment(
                name=name,
                position=position,
                vid=probe,
                created=True,
                score=float("-inf"),
            )
        pairs = [(probe, vid) for vid in candidates]
        gammas = computer.pair_matrix(pairs)
        scores = match_scores(model, gammas)
        best = int(np.argmax(scores))
        best_score = float(scores[best])
        if best_score >= self.iuad.config.incremental_delta:
            target = candidates[best]
            gcn.add_mention(target, pid, position)
            gcn.set_mentions(probe, ())
            self._drop_probe(probe)
            # Attaching the paper changed target's own keyword/venue
            # profile but no adjacency; the structural ball is invalidated
            # later, when add_paper inserts the recovered edges.
            computer.invalidate_papers_only(target)
            self.report.n_attached += 1
            return Assignment(
                name=name,
                position=position,
                vid=target,
                created=False,
                score=best_score,
            )
        computer.invalidate(probe)
        self.report.n_created += 1
        return Assignment(
            name=name,
            position=position,
            vid=probe,
            created=True,
            score=best_score,
        )

    def _drop_probe(self, probe: int) -> None:
        """Remove the temporary probe vertex (it never acquired edges).

        The probe was scored, so its profile is cached; drop that too or
        the store leaks one dead entry per attached mention.
        """
        gcn = self.iuad.gcn_
        computer = self.iuad.computer_
        assert gcn is not None and computer is not None
        gcn.remove_isolated_vertex(probe)
        computer.invalidate(probe)
