"""The paper's contribution: the two-stage IUAD pipeline + incremental mode."""

from .balance import SplitResult, split_prolific_vertices
from .candidates import (
    candidate_pairs_of_name,
    iter_candidate_pairs,
    sample_training_pairs,
)
from .config import IUADConfig
from .incremental import Assignment, IncrementalDisambiguator, IncrementalReport
from .iuad import (
    IUAD,
    FitReport,
    MergeRoundsOutcome,
    disambiguate,
    run_merge_rounds,
)
from .sharding import (
    Shard,
    ShardIndex,
    ShardPlan,
    ShardStats,
    ShardedIUAD,
    plan_shards,
)
from .streaming import BatchStats, StreamingIngestor

__all__ = [
    "Assignment",
    "BatchStats",
    "FitReport",
    "IUAD",
    "IUADConfig",
    "IncrementalDisambiguator",
    "IncrementalReport",
    "MergeRoundsOutcome",
    "Shard",
    "ShardIndex",
    "ShardPlan",
    "ShardStats",
    "ShardedIUAD",
    "SplitResult",
    "StreamingIngestor",
    "candidate_pairs_of_name",
    "disambiguate",
    "iter_candidate_pairs",
    "plan_shards",
    "run_merge_rounds",
    "sample_training_pairs",
    "split_prolific_vertices",
]
