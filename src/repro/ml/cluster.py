"""Clustering substrate for the unsupervised baselines.

* :func:`hac_cluster` — hierarchical agglomerative clustering (ANON and
  Aminer cluster papers with HAC), built on scipy's linkage;
* :class:`AffinityPropagation` — Frey & Dueck (2007), from scratch (GHOST
  and NetE's secondary clusterer);
* :func:`hdbscan_lite` — a simplified HDBSCAN (Campello et al., 2013):
  mutual-reachability distances → MST → cut long edges → discard clusters
  below ``min_cluster_size`` (NetE's primary clusterer).  The full
  stability-based cluster extraction is out of scope; the mutual-reachability
  MST core — which is what gives HDBSCAN its density adaptivity — is kept.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import minimum_spanning_tree
from scipy.spatial.distance import squareform


def hac_cluster(
    distances: np.ndarray,
    threshold: float,
    method: str = "average",
) -> np.ndarray:
    """Agglomerative clustering cut at a distance threshold.

    Args:
        distances: Square symmetric distance matrix ``(n, n)``.
        threshold: Clusters are merged while linkage distance ≤ threshold.
        method: scipy linkage method ("average", "complete", "single").

    Returns:
        Integer labels ``(n,)`` starting at 0.
    """
    n = distances.shape[0]
    if n == 1:
        return np.zeros(1, dtype=int)
    condensed = squareform(np.asarray(distances, dtype=np.float64), checks=False)
    tree = linkage(condensed, method=method)
    return fcluster(tree, t=threshold, criterion="distance") - 1


class AffinityPropagation:
    """Affinity propagation on a similarity matrix (Frey & Dueck, 2007)."""

    def __init__(
        self,
        damping: float = 0.7,
        max_iterations: int = 200,
        convergence_iterations: int = 15,
        preference: float | None = None,
    ):
        if not 0.5 <= damping < 1.0:
            raise ValueError(f"damping must be in [0.5, 1), got {damping}")
        self.damping = damping
        self.max_iterations = max_iterations
        self.convergence_iterations = convergence_iterations
        self.preference = preference

    def fit_predict(self, similarity: np.ndarray) -> np.ndarray:
        """Cluster labels from a square similarity matrix."""
        S = np.array(similarity, dtype=np.float64, copy=True)
        n = S.shape[0]
        if n == 1:
            return np.zeros(1, dtype=int)
        pref = (
            float(np.median(S[~np.eye(n, dtype=bool)]))
            if self.preference is None
            else self.preference
        )
        np.fill_diagonal(S, pref)
        # small symmetric noise breaks ties deterministically
        rng = np.random.default_rng(0)
        S += 1e-10 * S.std() * rng.standard_normal((n, n))

        A = np.zeros((n, n))
        R = np.zeros((n, n))
        stable = 0
        last_exemplars: np.ndarray | None = None
        for _ in range(self.max_iterations):
            # responsibilities
            AS = A + S
            idx = np.argmax(AS, axis=1)
            first = AS[np.arange(n), idx]
            AS[np.arange(n), idx] = -np.inf
            second = AS.max(axis=1)
            new_R = S - first[:, None]
            new_R[np.arange(n), idx] = S[np.arange(n), idx] - second
            R = self.damping * R + (1.0 - self.damping) * new_R
            # availabilities
            Rp = np.maximum(R, 0.0)
            np.fill_diagonal(Rp, R.diagonal())
            col = Rp.sum(axis=0)
            new_A = np.minimum(0.0, col[None, :] - Rp)
            np.fill_diagonal(new_A, col - Rp.diagonal())
            A = self.damping * A + (1.0 - self.damping) * new_A

            exemplars = np.nonzero((A + R).diagonal() > 0)[0]
            if last_exemplars is not None and np.array_equal(
                exemplars, last_exemplars
            ):
                stable += 1
                if stable >= self.convergence_iterations:
                    break
            else:
                stable = 0
            last_exemplars = exemplars

        exemplars = np.nonzero((A + R).diagonal() > 0)[0]
        if exemplars.size == 0:
            return np.zeros(n, dtype=int)
        labels = np.argmax(S[:, exemplars], axis=1)
        labels[exemplars] = np.arange(exemplars.size)
        return labels


def hdbscan_lite(
    distances: np.ndarray,
    min_cluster_size: int = 2,
    min_samples: int = 2,
    cut_quantile: float = 0.9,
) -> np.ndarray:
    """Simplified HDBSCAN: mutual-reachability MST with a quantile cut.

    1. core distance of each point = distance to its ``min_samples``-th
       neighbour;
    2. mutual reachability ``d_mr(a, b) = max(core_a, core_b, d(a, b))``;
    3. minimum spanning tree over ``d_mr``;
    4. remove MST edges above the ``cut_quantile`` of MST edge weights;
    5. connected components below ``min_cluster_size`` become singleton
       "noise" clusters (each its own author — the safe default for
       disambiguation).

    Returns integer labels ``(n,)``.
    """
    D = np.asarray(distances, dtype=np.float64)
    n = D.shape[0]
    if n <= 1:
        return np.zeros(n, dtype=int)
    k = min(min_samples, n - 1)
    core = np.partition(D + np.diag([np.inf] * n), k - 1, axis=1)[:, k - 1]
    mr = np.maximum(D, np.maximum(core[:, None], core[None, :]))
    np.fill_diagonal(mr, 0.0)
    mst = minimum_spanning_tree(csr_matrix(mr)).tocoo()
    if mst.data.size == 0:
        return np.arange(n, dtype=int)
    cut = np.quantile(mst.data, cut_quantile)
    keep = mst.data <= cut
    # union-find over surviving edges
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in zip(mst.row[keep], mst.col[keep]):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
    roots = np.array([find(i) for i in range(n)])
    sizes = np.bincount(roots, minlength=n)
    labels = np.empty(n, dtype=int)
    next_label = 0
    seen: dict[int, int] = {}
    for i, root in enumerate(roots):
        if sizes[root] < min_cluster_size:
            labels[i] = next_label  # noise -> own singleton cluster
            next_label += 1
        else:
            if root not in seen:
                seen[root] = next_label
                next_label += 1
            labels[i] = seen[root]
    return labels
