"""ML substrate (from scratch, numpy): trees, forests, boosting, clustering."""

from .boosting import AdaBoostClassifier, GradientBoostingClassifier
from .cluster import AffinityPropagation, hac_cluster, hdbscan_lite
from .forest import RandomForestClassifier
from .tree import DecisionTreeClassifier, DecisionTreeRegressor
from .xgb import XGBoostClassifier

__all__ = [
    "AdaBoostClassifier",
    "AffinityPropagation",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "RandomForestClassifier",
    "XGBoostClassifier",
    "hac_cluster",
    "hdbscan_lite",
]
