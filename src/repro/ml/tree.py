"""CART decision trees (classifier and regressor), from scratch on numpy.

The supervised baselines of Table III (AdaBoost, GBDT, RF, XGBoost) all
stand on decision trees; no ML library is available offline, so this module
implements the classic CART algorithm: greedy binary splits chosen by Gini
impurity (classification) or variance reduction (regression), found with
the sort-and-scan prefix trick in ``O(n log n)`` per feature per node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class _Node:
    """One tree node; leaves carry a prediction value/distribution."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | float | None = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split_gini(
    x: np.ndarray, y: np.ndarray, sample_weight: np.ndarray, n_classes: int
) -> tuple[float, float]:
    """Best (threshold, impurity decrease) of one feature for classification.

    Uses weighted class-count prefix sums over the sorted feature values.
    Returns ``(nan, 0)`` when no split improves.
    """
    order = np.argsort(x, kind="stable")
    xs, ys, ws = x[order], y[order], sample_weight[order]
    # weighted one-hot class matrix, prefix-summed
    onehot = np.zeros((len(ys), n_classes))
    onehot[np.arange(len(ys)), ys] = ws
    prefix = np.cumsum(onehot, axis=0)
    total = prefix[-1]
    total_w = total.sum()
    if total_w <= 0.0:
        return float("nan"), 0.0
    parent_gini = 1.0 - ((total / total_w) ** 2).sum()

    # candidate split positions: between distinct consecutive values
    diff = np.nonzero(xs[1:] != xs[:-1])[0]
    if diff.size == 0:
        return float("nan"), 0.0
    left = prefix[diff]
    right = total - left
    lw = left.sum(axis=1)
    rw = right.sum(axis=1)
    valid = (lw > 0) & (rw > 0)
    if not valid.any():
        return float("nan"), 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        gini_l = 1.0 - ((left / lw[:, None]) ** 2).sum(axis=1)
        gini_r = 1.0 - ((right / rw[:, None]) ** 2).sum(axis=1)
    weighted = (lw * gini_l + rw * gini_r) / total_w
    weighted[~valid] = np.inf
    best = int(np.argmin(weighted))
    decrease = parent_gini - weighted[best]
    if decrease <= 1e-12:
        return float("nan"), 0.0
    pos = diff[best]
    return float((xs[pos] + xs[pos + 1]) / 2.0), float(decrease)


def _best_split_mse(
    x: np.ndarray, y: np.ndarray, sample_weight: np.ndarray
) -> tuple[float, float]:
    """Best (threshold, variance decrease) of one feature for regression."""
    order = np.argsort(x, kind="stable")
    xs, ys, ws = x[order], y[order], sample_weight[order]
    wsum = np.cumsum(ws)
    wysum = np.cumsum(ws * ys)
    wy2sum = np.cumsum(ws * ys * ys)
    total_w, total_wy, total_wy2 = wsum[-1], wysum[-1], wy2sum[-1]
    if total_w <= 0.0:
        return float("nan"), 0.0
    parent_sse = total_wy2 - total_wy**2 / total_w

    diff = np.nonzero(xs[1:] != xs[:-1])[0]
    if diff.size == 0:
        return float("nan"), 0.0
    lw, lwy, lwy2 = wsum[diff], wysum[diff], wy2sum[diff]
    rw, rwy, rwy2 = total_w - lw, total_wy - lwy, total_wy2 - lwy2
    valid = (lw > 0) & (rw > 0)
    if not valid.any():
        return float("nan"), 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        sse = (lwy2 - lwy**2 / lw) + (rwy2 - rwy**2 / rw)
    sse[~valid] = np.inf
    best = int(np.argmin(sse))
    decrease = parent_sse - sse[best]
    if decrease <= 1e-12:
        return float("nan"), 0.0
    pos = diff[best]
    return float((xs[pos] + xs[pos + 1]) / 2.0), float(decrease)


@dataclass
class DecisionTreeClassifier:
    """CART classifier with Gini splits.

    Attributes:
        max_depth: Depth cap (None = unbounded).
        min_samples_split: Minimum samples to attempt a split.
        min_samples_leaf: Minimum samples in each child.
        max_features: Features examined per split (None = all; "sqrt" =
            √d, the random-forest default).
        random_state: Seed for feature subsampling.
    """

    max_depth: int | None = None
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: int | str | None = None
    random_state: int = 0
    n_classes_: int = field(default=0, init=False)
    _root: _Node | None = field(default=None, init=False, repr=False)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        if X.ndim != 2 or len(X) != len(y):
            raise ValueError("X must be 2-D and aligned with y")
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        self.n_classes_ = int(y.max()) + 1 if len(y) else 1
        self._rng = np.random.default_rng(self.random_state)
        self._root = self._grow(X, y, np.asarray(sample_weight, float), 0)
        return self

    def _n_features_per_split(self, d: int) -> int:
        if self.max_features is None:
            return d
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(d)))
        return min(d, int(self.max_features))

    def _grow(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> _Node:
        node = _Node(value=self._leaf_value(y, w))
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or np.unique(y).size == 1
        ):
            return node
        d = X.shape[1]
        k = self._n_features_per_split(d)
        features = (
            np.arange(d) if k == d else self._rng.choice(d, size=k, replace=False)
        )
        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        for f in features:
            threshold, gain = _best_split_gini(X[:, f], y, w, self.n_classes_)
            if gain > best_gain:
                best_feature, best_threshold, best_gain = int(f), threshold, gain
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        if (
            mask.sum() < self.min_samples_leaf
            or (~mask).sum() < self.min_samples_leaf
        ):
            return node
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def _leaf_value(self, y: np.ndarray, w: np.ndarray) -> np.ndarray:
        dist = np.zeros(self.n_classes_)
        np.add.at(dist, y, w)
        total = dist.sum()
        return dist / total if total > 0 else np.full(self.n_classes_, 1.0 / self.n_classes_)

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((len(X), self.n_classes_))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)


@dataclass
class DecisionTreeRegressor:
    """CART regressor with variance-reduction splits (GBDT/XGBoost base)."""

    max_depth: int | None = 3
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    _root: _Node | None = field(default=None, init=False, repr=False)

    def fit(
        self,
        X: np.ndarray,
        y: np.ndarray,
        sample_weight: np.ndarray | None = None,
    ) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if sample_weight is None:
            sample_weight = np.ones(len(y))
        self._root = self._grow(X, y, np.asarray(sample_weight, float), 0)
        return self

    def _grow(
        self, X: np.ndarray, y: np.ndarray, w: np.ndarray, depth: int
    ) -> _Node:
        total_w = w.sum()
        node = _Node(value=float((w @ y) / total_w) if total_w > 0 else 0.0)
        if (
            len(y) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
        ):
            return node
        best_feature, best_threshold, best_gain = -1, 0.0, 0.0
        for f in range(X.shape[1]):
            threshold, gain = _best_split_mse(X[:, f], y, w)
            if gain > best_gain:
                best_feature, best_threshold, best_gain = f, threshold, gain
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        if (
            mask.sum() < self.min_samples_leaf
            or (~mask).sum() < self.min_samples_leaf
        ):
            return node
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(X[mask], y[mask], w[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], w[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out
