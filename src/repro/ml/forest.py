"""Random forest classifier (Breiman 2001) on the CART substrate.

One of the four supervised Table III baselines, following Treeratpituk &
Giles (2009) who disambiguate authors with random forests over pairwise
features.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .tree import DecisionTreeClassifier


@dataclass
class RandomForestClassifier:
    """Bagged CART trees with √d feature subsampling."""

    n_estimators: int = 50
    max_depth: int | None = None
    min_samples_leaf: int = 1
    random_state: int = 0
    trees_: list[DecisionTreeClassifier] = field(default_factory=list, init=False)
    n_classes_: int = field(default=0, init=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        rng = np.random.default_rng(self.random_state)
        self.n_classes_ = int(y.max()) + 1
        self.trees_ = []
        n = len(y)
        for t in range(self.n_estimators):
            idx = rng.integers(0, n, size=n)  # bootstrap
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features="sqrt",
                random_state=self.random_state + t,
            )
            # Bootstrap may miss a class; pad so all trees agree on shape.
            yb = y[idx]
            tree.fit(X[idx], yb)
            if tree.n_classes_ < self.n_classes_:
                tree.n_classes_ = self.n_classes_
                _pad_tree_leaves(tree, self.n_classes_)
            self.trees_.append(tree)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest is not fitted")
        proba = np.zeros((len(X), self.n_classes_))
        for tree in self.trees_:
            proba += tree.predict_proba(X)
        return proba / len(self.trees_)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.predict_proba(X).argmax(axis=1)


def _pad_tree_leaves(tree: DecisionTreeClassifier, n_classes: int) -> None:
    """Extend leaf distributions of a tree trained on fewer classes."""
    stack = [tree._root]  # noqa: SLF001 — internal surgery by design
    while stack:
        node = stack.pop()
        if node is None:
            continue
        if node.value is not None and len(node.value) < n_classes:
            padded = np.zeros(n_classes)
            padded[: len(node.value)] = node.value
            node.value = padded
        stack.extend([node.left, node.right])
