"""XGBoost-style second-order regularised boosting (Chen & Guestrin 2016).

The fourth supervised Table III baseline.  Differs from plain GBDT in three
XGBoost-defining ways: trees are grown on second-order (gradient, hessian)
statistics; leaf weights are ``-G/(H+λ)``; splits maximise the regularised
gain with complexity penalty γ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(slots=True)
class _XGBNode:
    feature: int = -1
    threshold: float = 0.0
    left: "_XGBNode | None" = None
    right: "_XGBNode | None" = None
    weight: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class _XGBTree:
    """One regularised tree grown on (g, h) statistics."""

    def __init__(
        self,
        max_depth: int,
        reg_lambda: float,
        gamma: float,
        min_child_weight: float,
    ):
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.root: _XGBNode | None = None

    def fit(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> "_XGBTree":
        self.root = self._grow(X, g, h, 0)
        return self

    def _leaf_weight(self, g_sum: float, h_sum: float) -> float:
        return -g_sum / (h_sum + self.reg_lambda)

    def _grow(self, X: np.ndarray, g: np.ndarray, h: np.ndarray, depth: int) -> _XGBNode:
        g_sum, h_sum = float(g.sum()), float(h.sum())
        node = _XGBNode(weight=self._leaf_weight(g_sum, h_sum))
        if depth >= self.max_depth or len(g) < 2:
            return node
        parent_score = g_sum**2 / (h_sum + self.reg_lambda)
        best_gain, best_feature, best_threshold = 0.0, -1, 0.0
        for f in range(X.shape[1]):
            order = np.argsort(X[:, f], kind="stable")
            xs = X[order, f]
            gl = np.cumsum(g[order])
            hl = np.cumsum(h[order])
            cut = np.nonzero(xs[1:] != xs[:-1])[0]
            if cut.size == 0:
                continue
            gl_c, hl_c = gl[cut], hl[cut]
            gr_c, hr_c = g_sum - gl_c, h_sum - hl_c
            valid = (hl_c >= self.min_child_weight) & (hr_c >= self.min_child_weight)
            if not valid.any():
                continue
            gain = (
                gl_c**2 / (hl_c + self.reg_lambda)
                + gr_c**2 / (hr_c + self.reg_lambda)
                - parent_score
            ) / 2.0 - self.gamma
            gain[~valid] = -np.inf
            best = int(np.argmax(gain))
            if gain[best] > best_gain:
                best_gain = float(gain[best])
                best_feature = f
                pos = cut[best]
                best_threshold = float((xs[pos] + xs[pos + 1]) / 2.0)
        if best_feature < 0:
            return node
        mask = X[:, best_feature] <= best_threshold
        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(X[mask], g[mask], h[mask], depth + 1)
        node.right = self._grow(X[~mask], g[~mask], h[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.weight
        return out


@dataclass
class XGBoostClassifier:
    """Binary classifier with logistic loss and second-order boosting."""

    n_estimators: int = 100
    learning_rate: float = 0.1
    max_depth: int = 4
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1.0
    base_score: float = 0.5
    trees_: list[_XGBTree] = field(default_factory=list, init=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "XGBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("XGBoostClassifier is binary (labels 0/1)")
        raw = np.full(len(y), float(np.log(self.base_score / (1 - self.base_score))))
        self.trees_ = []
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            g = p - y                      # gradient of logloss
            h = np.maximum(p * (1.0 - p), 1e-12)  # hessian
            tree = _XGBTree(
                self.max_depth, self.reg_lambda, self.gamma, self.min_child_weight
            ).fit(X, g, h)
            raw += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        raw = np.full(
            len(X), float(np.log(self.base_score / (1 - self.base_score)))
        )
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)
