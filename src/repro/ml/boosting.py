"""Boosting classifiers: AdaBoost (SAMME) and gradient boosting.

Two of the four supervised Table III baselines.  AdaBoost follows the SAMME
multi-class formulation (reduces to classic AdaBoost for two classes);
gradient boosting fits regression trees to the negative gradient of the
logistic loss with shrinkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .tree import DecisionTreeClassifier, DecisionTreeRegressor


@dataclass
class AdaBoostClassifier:
    """SAMME AdaBoost over shallow CART trees."""

    n_estimators: int = 50
    max_depth: int = 1
    learning_rate: float = 1.0
    random_state: int = 0
    estimators_: list[DecisionTreeClassifier] = field(default_factory=list, init=False)
    alphas_: list[float] = field(default_factory=list, init=False)
    n_classes_: int = field(default=0, init=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "AdaBoostClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.int64)
        n = len(y)
        self.n_classes_ = int(y.max()) + 1
        k = self.n_classes_
        w = np.full(n, 1.0 / n)
        self.estimators_, self.alphas_ = [], []
        for t in range(self.n_estimators):
            stump = DecisionTreeClassifier(
                max_depth=self.max_depth, random_state=self.random_state + t
            )
            stump.fit(X, y, sample_weight=w)
            if stump.n_classes_ < k:
                stump.n_classes_ = k
            pred = stump.predict(X)
            miss = pred != y
            err = float(w[miss].sum() / w.sum())
            if err >= 1.0 - 1.0 / k:
                continue  # worse than chance: skip this round
            err = max(err, 1e-10)
            alpha = self.learning_rate * (
                np.log((1.0 - err) / err) + np.log(k - 1.0)
            )
            if alpha <= 0.0:
                continue
            w *= np.exp(alpha * miss)
            w /= w.sum()
            self.estimators_.append(stump)
            self.alphas_.append(alpha)
            if err < 1e-9:
                break
        if not self.estimators_:
            # Degenerate data: keep one stump so predict() works.
            stump = DecisionTreeClassifier(max_depth=self.max_depth)
            stump.fit(X, y)
            self.estimators_ = [stump]
            self.alphas_ = [1.0]
        return self

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Per-class weighted vote totals."""
        scores = np.zeros((len(X), self.n_classes_))
        for stump, alpha in zip(self.estimators_, self.alphas_):
            pred = stump.predict(X)
            scores[np.arange(len(X)), pred] += alpha
        return scores

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        scores = self.decision_scores(X)
        total = scores.sum(axis=1, keepdims=True)
        total[total == 0.0] = 1.0
        return scores / total

    def predict(self, X: np.ndarray) -> np.ndarray:
        return self.decision_scores(X).argmax(axis=1)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


@dataclass
class GradientBoostingClassifier:
    """Binary GBDT with logistic loss (Friedman 2001)."""

    n_estimators: int = 100
    learning_rate: float = 0.1
    max_depth: int = 3
    min_samples_leaf: int = 1
    trees_: list[DecisionTreeRegressor] = field(default_factory=list, init=False)
    init_score_: float = field(default=0.0, init=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if set(np.unique(y)) - {0.0, 1.0}:
            raise ValueError("GradientBoostingClassifier is binary (labels 0/1)")
        p = float(np.clip(y.mean(), 1e-6, 1.0 - 1e-6))
        self.init_score_ = float(np.log(p / (1.0 - p)))
        raw = np.full(len(y), self.init_score_)
        self.trees_ = []
        for _ in range(self.n_estimators):
            residual = y - _sigmoid(raw)  # negative gradient of logloss
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X, residual)
            raw += self.learning_rate * tree.predict(X)
            self.trees_.append(tree)
        return self

    def decision_function(self, X: np.ndarray) -> np.ndarray:
        raw = np.full(len(X), self.init_score_)
        for tree in self.trees_:
            raw += self.learning_rate * tree.predict(np.asarray(X, np.float64))
        return raw

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X: np.ndarray) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)
