"""NetE baseline (Xu et al., CIKM 2018).

"A network-embedding based method for author disambiguation": papers of a
target name are embedded from *multiple* relation networks (co-author,
co-venue, title similarity, co-organisation, citation — we build the three
available in our record model), the per-relation embeddings are fused, and
papers are clustered with HDBSCAN, falling back to Affinity Propagation for
the points HDBSCAN leaves unresolved.

The paper reports NetE as the strongest unsupervised baseline (MicroF
0.7405), still below IUAD.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.records import Corpus
from ..ml.cluster import AffinityPropagation, hdbscan_lite
from .anon import spectral_embedding
from .common import PaperView, clusters_from_labels, views_of_name


def relation_graphs(views: list[PaperView]) -> list[np.ndarray]:
    """The three relation networks NetE can build from our records.

    1. co-author network: #shared co-author names;
    2. venue network: same venue indicator;
    3. keyword network: #shared title keywords.
    """
    n = len(views)
    coauthor = np.zeros((n, n))
    venue = np.zeros((n, n))
    keyword = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            coauthor[i, j] = coauthor[j, i] = len(
                views[i].coauthors & views[j].coauthors
            )
            if views[i].venue == views[j].venue:
                venue[i, j] = venue[j, i] = 1.0
            keyword[i, j] = keyword[j, i] = len(
                views[i].keywords & views[j].keywords
            )
    return [coauthor, venue, keyword]


@dataclass
class NetE:
    """NetE per-name clusterer: fused multi-relation embedding + HDBSCAN/AP."""

    dim: int = 16
    relation_weights: tuple[float, float, float] = (1.0, 0.3, 0.15)
    min_cluster_size: int = 2
    cut_quantile: float = 0.82
    ap_damping: float = 0.7

    def cluster_name(self, corpus: Corpus, name: str) -> dict[int, set[int]]:
        views = views_of_name(corpus, name)
        if not views:
            return {}
        if len(views) == 1:
            return {0: {views[0].pid}}
        graphs = relation_graphs(views)
        embeddings = []
        for graph, weight in zip(graphs, self.relation_weights):
            if graph.sum() == 0.0:
                continue
            embeddings.append(weight * spectral_embedding(graph, self.dim))
        pids = [v.pid for v in views]
        if not embeddings:
            # no relational evidence at all: everyone their own author
            return clusters_from_labels(pids, range(len(pids)))
        X = np.hstack(embeddings)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        X = X / norms
        D = np.maximum(1.0 - X @ X.T, 0.0)
        np.fill_diagonal(D, 0.0)
        labels = hdbscan_lite(
            D,
            min_cluster_size=self.min_cluster_size,
            cut_quantile=self.cut_quantile,
        )
        labels = self._refine_noise(D, labels)
        return clusters_from_labels(pids, labels)

    def _refine_noise(self, D: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Re-cluster HDBSCAN's singleton fallout with Affinity Propagation.

        NetE applies AP to the papers HDBSCAN could not group; we follow
        suit for singleton labels when they form a sizeable residue.
        """
        counts = np.bincount(labels)
        noise = np.nonzero(counts[labels] == 1)[0]
        if noise.size < 3:
            return labels
        sub = -D[np.ix_(noise, noise)]
        ap_labels = AffinityPropagation(damping=self.ap_damping).fit_predict(sub)
        out = labels.copy()
        offset = labels.max() + 1
        out[noise] = offset + ap_labels
        return out
