"""Supervised baselines: pairwise classifiers + transitive closure.

Table III compares IUAD against AdaBoost, GBDT, RF and XGBoost trained to
decide whether two papers of a name belong to one author, with features
following Treeratpituk & Giles (2009).  Training requires labelled paper
pairs; following the transfer protocol, classifiers are trained on pairs
from a *disjoint* set of labelled names and applied to the testing names.
Predicted-positive pairs are closed transitively (union-find) to produce
clusters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Protocol

import numpy as np

from ..data.records import Corpus
from ..graphs.unionfind import UnionFind
from ..ml.boosting import AdaBoostClassifier, GradientBoostingClassifier
from ..ml.forest import RandomForestClassifier
from ..ml.xgb import XGBoostClassifier
from .common import PaperView, pair_features, views_of_name


class _PairClassifier(Protocol):
    def fit(self, X: np.ndarray, y: np.ndarray) -> object: ...
    def predict(self, X: np.ndarray) -> np.ndarray: ...


def make_classifier(kind: str, seed: int = 0) -> _PairClassifier:
    """Instantiate one of the four supervised models by name."""
    if kind == "adaboost":
        return AdaBoostClassifier(n_estimators=60, max_depth=2, random_state=seed)
    if kind == "gbdt":
        return GradientBoostingClassifier(n_estimators=80, max_depth=3)
    if kind == "rf":
        return RandomForestClassifier(n_estimators=60, max_depth=10, random_state=seed)
    if kind == "xgboost":
        return XGBoostClassifier(n_estimators=80, max_depth=4)
    raise ValueError(f"unknown classifier kind {kind!r}")


def training_pairs_from_names(
    corpus: Corpus,
    names: Iterable[str],
    max_pairs_per_name: int = 300,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Labelled paper pairs from a set of labelled names.

    Both-direction balance is inherited from the data (same-author pairs
    are the minority); per-name pair counts are capped so one prolific name
    cannot dominate the training set.
    """
    rng = random.Random(seed)
    venue_freq = corpus.venue_frequencies
    features: list[np.ndarray] = []
    labels: list[int] = []
    for name in names:
        views = views_of_name(corpus, name)
        pairs = list(combinations(range(len(views)), 2))
        if len(pairs) > max_pairs_per_name:
            pairs = rng.sample(pairs, max_pairs_per_name)
        for i, j in pairs:
            u, v = views[i], views[j]
            features.append(pair_features(u, v, venue_freq))
            # Shared-identity membership (set overlap) so papers listing a
            # homonymous co-author pair still yield a well-defined label.
            same = bool(
                set(corpus[u.pid].author_ids_of(name))
                & set(corpus[v.pid].author_ids_of(name))
            )
            labels.append(1 if same else 0)
    if not features:
        raise ValueError("no training pairs could be generated")
    return np.vstack(features), np.array(labels, dtype=np.int64)


@dataclass
class SupervisedPairwise:
    """A supervised per-name clusterer (one of the four Table III rows).

    Must be fitted on labelled names before use::

        model = SupervisedPairwise("rf").fit_names(corpus, train_names)
        clusters = model.cluster_name(corpus, "Wei Wang")
    """

    kind: str = "rf"
    seed: int = 0
    _model: _PairClassifier | None = field(default=None, init=False, repr=False)

    def fit_names(
        self, corpus: Corpus, names: Iterable[str]
    ) -> "SupervisedPairwise":
        X, y = training_pairs_from_names(corpus, names, seed=self.seed)
        self._model = make_classifier(self.kind, self.seed)
        self._model.fit(X, y)
        return self

    def cluster_name(self, corpus: Corpus, name: str) -> dict[int, set[int]]:
        if self._model is None:
            raise RuntimeError("call fit_names() before cluster_name()")
        views = views_of_name(corpus, name)
        if not views:
            return {}
        pids = [v.pid for v in views]
        if len(views) == 1:
            return {0: set(pids)}
        venue_freq = corpus.venue_frequencies
        pairs = list(combinations(range(len(views)), 2))
        X = np.vstack(
            [pair_features(views[i], views[j], venue_freq) for i, j in pairs]
        )
        positive = self._model.predict(X).astype(bool)
        union = UnionFind(range(len(views)))
        for (i, j), match in zip(pairs, positive):
            if match:
                union.union(i, j)
        clusters: dict[int, set[int]] = {}
        for idx, pid in enumerate(pids):
            clusters.setdefault(int(union.find(idx)), set()).add(pid)
        return clusters
