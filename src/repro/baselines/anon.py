"""ANON baseline (Zhang & Al Hasan, CIKM 2017).

"Name disambiguation in anonymized graphs using network embedding": for a
target name, build relational graphs among the name's papers (shared
co-authors, shared venue), learn a low-dimensional paper embedding from the
graph structure, and cluster the embedded papers with hierarchical
agglomerative clustering — each cluster is one author.

Our re-implementation keeps every stage: the paper graph, a spectral
embedding of its normalised adjacency (the matrix-factorisation equivalent
of the original's random-walk embedding), and HAC with a distance
threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.records import Corpus
from ..ml.cluster import hac_cluster
from .common import PaperView, clusters_from_labels, views_of_name


def paper_graph(
    views: list[PaperView],
    coauthor_weight: float = 1.0,
    venue_weight: float = 0.25,
) -> np.ndarray:
    """Weighted adjacency between a name's papers.

    Edges combine the two ANON relations: shared co-author names (strong
    evidence) and shared venue (weak evidence).
    """
    n = len(views)
    A = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            w = coauthor_weight * len(views[i].coauthors & views[j].coauthors)
            if views[i].venue == views[j].venue:
                w += venue_weight
            A[i, j] = A[j, i] = w
    return A


def spectral_embedding(A: np.ndarray, dim: int) -> np.ndarray:
    """Top eigenvectors of the symmetrically normalised adjacency."""
    n = A.shape[0]
    degree = A.sum(axis=1)
    degree[degree == 0.0] = 1.0
    d_inv_sqrt = 1.0 / np.sqrt(degree)
    M = A * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]
    eigenvalues, eigenvectors = np.linalg.eigh(M)
    k = min(dim, n)
    top = eigenvectors[:, -k:] * np.maximum(eigenvalues[-k:], 0.0)
    return top


@dataclass
class ANON:
    """ANON per-name clusterer: paper-graph embedding + HAC."""

    dim: int = 16
    distance_threshold: float = 0.35
    linkage: str = "average"

    def cluster_name(self, corpus: Corpus, name: str) -> dict[int, set[int]]:
        views = views_of_name(corpus, name)
        if not views:
            return {}
        if len(views) == 1:
            return {0: {views[0].pid}}
        A = paper_graph(views)
        X = spectral_embedding(A, self.dim)
        norms = np.linalg.norm(X, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        X = X / norms
        D = 1.0 - X @ X.T
        np.fill_diagonal(D, 0.0)
        D = np.maximum(D, 0.0)
        # Papers with no graph evidence at all (zero rows) must not collapse
        # into one cluster just because their embeddings are both ~0.
        isolated = A.sum(axis=1) == 0.0
        if isolated.any():
            D[isolated, :] = 1.0
            D[:, isolated] = 1.0
            np.fill_diagonal(D, 0.0)
        labels = hac_cluster(D, threshold=self.distance_threshold, method=self.linkage)
        return clusters_from_labels([v.pid for v in views], labels)
