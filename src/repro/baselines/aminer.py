"""Aminer baseline (Zhang et al., KDD 2018).

"Name disambiguation in AMiner: clustering, maintenance, and human in the
loop": every paper gets a *global* embedding learned from its textual
features across the whole corpus, refined by a *local* linkage graph
(papers of the target name connected when they share strong evidence);
papers are then grouped with hierarchical agglomerative clustering.

Our re-implementation keeps the global/local split: the global embedding is
the keyword-centroid in corpus-level PPMI-SVD space plus a venue signature;
the local refinement averages each paper's embedding with its linkage-graph
neighbours (one round of graph smoothing, standing in for the original's
graph auto-encoder); HAC cuts at a distance threshold.  The original also
uses human labels to fine-tune the global metric — unavailable here, which
matches its mid-table Table III showing (MicroF 0.5578).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..data.records import Corpus
from ..ml.cluster import hac_cluster
from ..text.embeddings import WordEmbeddings, train_title_embeddings
from .common import PaperView, clusters_from_labels, views_of_name


@dataclass
class Aminer:
    """Aminer per-name clusterer: global embedding + local smoothing + HAC."""

    dim: int = 48
    distance_threshold: float = 0.32
    linkage: str = "average"
    smoothing: float = 0.5
    _embeddings: WordEmbeddings | None = field(default=None, init=False, repr=False)
    _embeddings_corpus: int | None = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------ #
    def _global_embeddings(self, corpus: Corpus) -> WordEmbeddings | None:
        """Corpus-level word vectors (cached per corpus identity)."""
        if self._embeddings is not None and self._embeddings_corpus == id(corpus):
            return self._embeddings
        try:
            self._embeddings = train_title_embeddings(
                (p.title for p in corpus), dim=self.dim
            )
        except ValueError:
            self._embeddings = None
        self._embeddings_corpus = id(corpus)
        return self._embeddings

    def _paper_vectors(
        self, corpus: Corpus, views: list[PaperView]
    ) -> np.ndarray:
        """Global embedding: keyword centroid ⊕ hashed venue signature."""
        emb = self._global_embeddings(corpus)
        dim = emb.dim if emb is not None else 8
        venue_dim = 16
        X = np.zeros((len(views), dim + venue_dim))
        for i, view in enumerate(views):
            if emb is not None:
                centroid = emb.centroid(view.keywords)
                if centroid is not None:
                    X[i, :dim] = centroid
            X[i, dim + (hash(view.venue) % venue_dim)] = 0.6
        return X

    @staticmethod
    def _linkage_graph(views: list[PaperView]) -> np.ndarray:
        """Local linkage: connect papers sharing co-authors (strong) or
        venue (weak)."""
        n = len(views)
        A = np.zeros((n, n))
        for i in range(n):
            for j in range(i + 1, n):
                w = float(len(views[i].coauthors & views[j].coauthors))
                if views[i].venue == views[j].venue:
                    w += 0.3
                A[i, j] = A[j, i] = w
        return A

    # ------------------------------------------------------------------ #
    def cluster_name(self, corpus: Corpus, name: str) -> dict[int, set[int]]:
        views = views_of_name(corpus, name)
        if not views:
            return {}
        pids = [v.pid for v in views]
        if len(views) == 1:
            return {0: set(pids)}
        X = self._paper_vectors(corpus, views)
        A = self._linkage_graph(views)
        # one smoothing round: pull papers toward their linkage neighbours
        row_sum = A.sum(axis=1, keepdims=True)
        has_nbrs = row_sum[:, 0] > 0
        smoothed = X.copy()
        if has_nbrs.any():
            neighbour_mean = np.zeros_like(X)
            neighbour_mean[has_nbrs] = (A @ X)[has_nbrs] / row_sum[has_nbrs]
            smoothed[has_nbrs] = (
                (1.0 - self.smoothing) * X[has_nbrs]
                + self.smoothing * neighbour_mean[has_nbrs]
            )
        norms = np.linalg.norm(smoothed, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        V = smoothed / norms
        D = np.maximum(1.0 - V @ V.T, 0.0)
        np.fill_diagonal(D, 0.0)
        labels = hac_cluster(D, threshold=self.distance_threshold, method=self.linkage)
        return clusters_from_labels(pids, labels)
