"""GHOST baseline (Fan et al., JDIQ 2011).

"On graph-based name disambiguation": GHOST uses *only* co-authorship.  For
a target name it builds the co-author graph of the name's papers (vertices
are co-author names, connected when they co-sign a paper), measures the
similarity of two papers through the connection paths between their
co-author sets, and clusters papers with Affinity Propagation.

GHOST famously ignores titles and venues, which is exactly why the paper
reports it far below the content-aware methods (Table III MicroF 0.2690) —
and its path computations make it the slowest method in Table V (183 s per
name at full scale).  Our re-implementation preserves both properties: the
similarity is a path-based resistance metric via BFS over the co-author
graph, with no content features.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..data.records import Corpus
from ..ml.cluster import AffinityPropagation
from .common import PaperView, clusters_from_labels, views_of_name


def coauthor_graph(views: list[PaperView]) -> dict[str, set[str]]:
    """Adjacency over co-author names (the target name excluded)."""
    adj: dict[str, set[str]] = {}
    for view in views:
        members = sorted(view.coauthors)
        for i, a in enumerate(members):
            adj.setdefault(a, set())
            for b in members[i + 1 :]:
                adj.setdefault(b, set())
                adj[a].add(b)
                adj[b].add(a)
    return adj


def _bfs_distances(adj: dict[str, set[str]], source: str) -> dict[str, int]:
    dist = {source: 0}
    queue = deque([source])
    while queue:
        node = queue.popleft()
        for nbr in adj.get(node, ()):
            if nbr not in dist:
                dist[nbr] = dist[node] + 1
                queue.append(nbr)
    return dist


def path_similarity_matrix(views: list[PaperView]) -> np.ndarray:
    """GHOST's paper-pair similarity from co-author connection paths.

    Two papers are similar when their co-author sets are connected by short
    paths in the co-author graph; each co-author pair contributes
    ``2^(1-d)`` for shortest-path length ``d`` (direct co-authorship = 1,
    two hops = 1/2, ...), normalised by the number of pairs.
    """
    adj = coauthor_graph(views)
    n = len(views)
    # one BFS per distinct co-author appearing in any paper
    sources = sorted({a for v in views for a in v.coauthors})
    distances = {s: _bfs_distances(adj, s) for s in sources}
    S = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            pairs = 0
            total = 0.0
            for a in views[i].coauthors:
                dist_a = distances[a]
                for b in views[j].coauthors:
                    pairs += 1
                    if a == b:
                        total += 2.0
                        continue
                    d = dist_a.get(b)
                    if d is not None:
                        total += 2.0 ** (1 - d)
            S[i, j] = S[j, i] = total / pairs if pairs else 0.0
    return S


@dataclass
class GHOST:
    """GHOST per-name clusterer: path-based similarity + AP."""

    damping: float = 0.7

    def cluster_name(self, corpus: Corpus, name: str) -> dict[int, set[int]]:
        views = views_of_name(corpus, name)
        if not views:
            return {}
        pids = [v.pid for v in views]
        if len(views) == 1:
            return {0: set(pids)}
        S = path_similarity_matrix(views)
        if S.max() == 0.0:
            # no co-author connectivity at all: every paper its own author
            return clusters_from_labels(pids, range(len(pids)))
        labels = AffinityPropagation(damping=self.damping).fit_predict(S)
        return clusters_from_labels(pids, labels)
