"""The eight Table III comparison systems (4 unsupervised + 4 supervised)."""

from .aminer import Aminer
from .anon import ANON
from .common import (
    N_PAIR_FEATURES,
    PaperView,
    as_mention_clusters,
    clusters_from_labels,
    pair_features,
    pairwise_distance_matrix,
    predict_all,
    predict_all_mentions,
    views_of_name,
)
from .ghost import GHOST
from .nete import NetE
from .supervised import SupervisedPairwise, make_classifier, training_pairs_from_names

__all__ = [
    "ANON",
    "Aminer",
    "GHOST",
    "N_PAIR_FEATURES",
    "NetE",
    "PaperView",
    "SupervisedPairwise",
    "as_mention_clusters",
    "clusters_from_labels",
    "make_classifier",
    "pair_features",
    "pairwise_distance_matrix",
    "predict_all",
    "predict_all_mentions",
    "training_pairs_from_names",
    "views_of_name",
]
