"""Shared infrastructure of the Table III baselines.

All comparison methods are *top-down*: for each target name they collect
the name's papers (the ego view), compute paper-level features or graphs,
and cluster the papers — every cluster is declared one author.  This module
provides the per-name harness, the paper-pair feature extraction following
Treeratpituk & Giles (2009), and the cluster-output plumbing shared by all
eight baselines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping, Protocol, Sequence

import numpy as np

from ..data.records import Corpus, Paper
from ..text.tokenize import extract_keywords

#: Number of pairwise features produced by :func:`pair_features`.
N_PAIR_FEATURES = 10


class NameClusterer(Protocol):
    """A per-name paper clusterer — the baseline interface."""

    def cluster_name(self, corpus: Corpus, name: str) -> dict[int, set[int]]:
        """Cluster the papers of ``name``: cluster id -> paper ids."""


def clusters_from_labels(
    pids: Sequence[int], labels: Iterable[int]
) -> dict[int, set[int]]:
    """Convert a label vector to the cluster-dict output format."""
    out: dict[int, set[int]] = {}
    for pid, label in zip(pids, labels):
        out.setdefault(int(label), set()).add(pid)
    return out


def predict_all(
    method: NameClusterer, corpus: Corpus, names: Iterable[str]
) -> dict[str, dict[int, set[int]]]:
    """Run a baseline over many names (the Table III evaluation loop)."""
    return {name: method.cluster_name(corpus, name) for name in names}


def as_mention_clusters(
    clusters: Mapping[int, Iterable[int]], corpus: Corpus, name: str
) -> dict[int, set[tuple[int, int]]]:
    """Expand a paper-level clustering of ``name`` to positional mentions.

    The top-down baselines cluster *papers* and cannot tell two occurrences
    of one name on one paper apart, so both ``(pid, position)`` units of a
    homonym paper land in whichever cluster got the paper — the honest
    handicap the positional evaluation protocol charges them with.
    """
    return {
        cid: {
            (pid, position)
            for pid in pids
            for position in corpus[pid].positions_of(name)
        }
        for cid, pids in clusters.items()
    }


def predict_all_mentions(
    method: NameClusterer, corpus: Corpus, names: Iterable[str]
) -> dict[str, dict[int, set[tuple[int, int]]]]:
    """Like :func:`predict_all`, but emitting positional mention units."""
    return {
        name: as_mention_clusters(method.cluster_name(corpus, name), corpus, name)
        for name in names
    }


# --------------------------------------------------------------------- #
# pairwise features (Treeratpituk & Giles, JCDL 2009)
# --------------------------------------------------------------------- #
def _jaccard(a: set, b: set) -> float:
    if not a and not b:
        return 0.0
    return len(a & b) / len(a | b)


@dataclass(slots=True)
class PaperView:
    """Pre-tokenised view of one paper from the perspective of one name."""

    pid: int
    coauthors: frozenset[str]
    keywords: frozenset[str]
    venue: str
    year: int

    @classmethod
    def of(cls, paper: Paper, name: str) -> "PaperView":
        return cls(
            pid=paper.pid,
            coauthors=frozenset(n for n in paper.authors if n != name),
            keywords=frozenset(extract_keywords(paper.title)),
            venue=paper.venue,
            year=paper.year,
        )


def pair_features(
    u: PaperView,
    v: PaperView,
    venue_freq: Mapping[str, int],
) -> np.ndarray:
    """Treeratpituk–Giles-style similarity features of two papers.

    Ten features covering co-authors, titles (concepts), venues and years —
    the groups the original paper extracts for its random forest.
    """
    shared_coauthors = len(u.coauthors & v.coauthors)
    same_venue = 1.0 if u.venue == v.venue else 0.0
    venue_rarity = (
        1.0 / math.log(1.0 + venue_freq.get(u.venue, 1)) if same_venue else 0.0
    )
    shared_keywords = len(u.keywords & v.keywords)
    return np.array(
        [
            shared_coauthors,
            _jaccard(u.coauthors, v.coauthors),
            1.0 if shared_coauthors >= 2 else 0.0,
            shared_keywords,
            _jaccard(u.keywords, v.keywords),
            same_venue,
            venue_rarity,
            abs(u.year - v.year),
            1.0 if abs(u.year - v.year) <= 2 else 0.0,
            min(len(u.coauthors), len(v.coauthors)),
        ],
        dtype=np.float64,
    )


def views_of_name(corpus: Corpus, name: str) -> list[PaperView]:
    """Paper views of every paper carrying ``name``."""
    return [PaperView.of(corpus[pid], name) for pid in corpus.papers_of_name(name)]


def pairwise_distance_matrix(
    views: Sequence[PaperView],
    venue_freq: Mapping[str, int],
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """A paper-pair distance matrix from the pairwise features.

    Features are combined into a similarity score with fixed weights
    (emphasising co-author evidence as all baselines do), then flipped to a
    distance in ``[0, 1]``.
    """
    if weights is None:
        weights = np.array([0.30, 0.20, 0.10, 0.02, 0.12, 0.08, 0.08, 0.0, 0.05, 0.0])
    n = len(views)
    D = np.ones((n, n))
    np.fill_diagonal(D, 0.0)
    for i in range(n):
        for j in range(i + 1, n):
            f = pair_features(views[i], views[j], venue_freq)
            f = f.copy()
            f[0] = min(f[0], 3.0) / 3.0     # saturate counts
            f[3] = min(f[3], 5.0) / 5.0
            f[9] = min(f[9], 4.0) / 4.0
            sim = float(weights @ f)
            D[i, j] = D[j, i] = max(0.0, 1.0 - sim)
    return D
