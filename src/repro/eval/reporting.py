"""Text rendering of experiment results (terminal tables + EXPERIMENTS.md)."""

from __future__ import annotations

from typing import Mapping, Sequence

from .experiments import Fig3Result, FullRun, Table4Result, Table6Row
from .metrics import PairwiseCounts
from .timing import TimingResult

_METRIC_HEADER = f"{'Method':<12}{'MicroA':>9}{'MicroP':>9}{'MicroR':>9}{'MicroF':>9}"


def render_metrics_table(results: Mapping[str, PairwiseCounts]) -> str:
    """Table III-style text table."""
    lines = [_METRIC_HEADER]
    for method, counts in results.items():
        a, p, r, f = counts.as_row()
        lines.append(f"{method:<12}{a:>9.4f}{p:>9.4f}{r:>9.4f}{f:>9.4f}")
    return "\n".join(lines)


def render_fig3(result: Fig3Result) -> str:
    return (
        f"Fig 3a  papers-per-name   slope={result.papers_per_name.slope:+.2f} "
        f"(r²={result.papers_per_name.r_squared:.2f}; paper ≈ -1.68)\n"
        f"Fig 3b  pair frequencies  slope={result.pair_frequency.slope:+.2f} "
        f"(r²={result.pair_frequency.r_squared:.2f}; paper ≈ -3.17)"
    )


def render_table4(result: Table4Result) -> str:
    s, g = result.scn.as_row(), result.gcn.as_row()
    d = result.improvements
    lines = [f"{'Metric':<8}{'SCN':>9}{'GCN':>9}{'Improv.':>9}"]
    for name, sv, gv, dv in zip(("MicroA", "MicroP", "MicroR", "MicroF"), s, g, d):
        lines.append(f"{name:<8}{sv:>9.4f}{gv:>9.4f}{dv:>+9.4f}")
    return "\n".join(lines)


def render_table5(
    results: Mapping[str, Mapping[float, TimingResult]],
) -> str:
    fractions = sorted(next(iter(results.values())).keys())
    header = f"{'Method':<10}" + "".join(f"{int(f * 100):>9}%" for f in fractions)
    lines = [header]
    for method, per_fraction in results.items():
        cells = "".join(
            f"{per_fraction[f].avg_seconds_per_name:>10.3f}" for f in fractions
        )
        lines.append(f"{method:<10}{cells}")
    return "\n".join(lines)


def render_fig5(results: Mapping[float, PairwiseCounts]) -> str:
    lines = [f"{'Scale':<8}{'MicroA':>9}{'MicroP':>9}{'MicroR':>9}{'MicroF':>9}"]
    for fraction in sorted(results):
        a, p, r, f = results[fraction].as_row()
        lines.append(f"{fraction:<8.0%}{a:>9.4f}{p:>9.4f}{r:>9.4f}{f:>9.4f}")
    return "\n".join(lines)


def render_table6(rows: Sequence[Table6Row]) -> str:
    lines = [
        f"{'N new':<8}{'F before':>10}{'F after':>10}{'ΔF':>9}{'ms/paper':>10}"
    ]
    for row in rows:
        before, after = row.base.f1, row.after.f1
        lines.append(
            f"{row.n_new_papers:<8}{before:>10.4f}{after:>10.4f}"
            f"{after - before:>+9.4f}{row.avg_ms_per_paper:>10.2f}"
        )
    return "\n".join(lines)


def render_fig6(
    results: Mapping[str, Mapping[float, PairwiseCounts]],
) -> str:
    blocks = []
    for sim_name, sweep in results.items():
        lines = [
            f"[{sim_name}]",
            f"{'δ':>8}{'MicroA':>9}{'MicroP':>9}{'MicroR':>9}{'MicroF':>9}",
        ]
        for threshold in sorted(sweep):
            a, p, r, f = sweep[threshold].as_row()
            lines.append(
                f"{threshold:>8.1f}{a:>9.4f}{p:>9.4f}{r:>9.4f}{f:>9.4f}"
            )
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks)


def render_full_run(run: FullRun) -> str:
    """The complete experiment report, one exhibit after another."""
    sections = [
        ("Figure 3 — descriptive power laws", render_fig3(run.fig3)),
        (
            "Table II — testing dataset",
            f"{len(run.table2.rows)} names, {run.table2.total_authors} authors, "
            f"{run.table2.total_papers} papers",
        ),
        ("Table III — performance comparison", render_metrics_table(run.table3)),
        ("Table IV — effect of the two stages", render_table4(run.table4)),
        ("Table V — avg seconds per name", render_table5(run.table5)),
        ("Figure 5 — data-scale analysis", render_fig5(run.fig5)),
        ("Table VI — incremental disambiguation", render_table6(run.table6)),
        ("Figure 6 — similarity rationality", render_fig6(run.fig6)),
    ]
    parts = []
    for title, body in sections:
        parts.append(f"== {title} ==\n{body}")
    parts.append(f"(total driver time: {run.seconds:.1f}s)")
    return "\n\n".join(parts)
