"""Pairwise micro metrics (Section VI-A2).

Performance is measured over *mention pairs*: TP counts pairs correctly
predicted to share an author, FP pairs incorrectly predicted to share one,
FN pairs incorrectly split, TN pairs correctly split.  Counts are summed
over all evaluated names before the ratios are taken (micro-averaging), so
prolific names do not drown the rest.

The pairing unit is any hashable id shared by the predicted clustering and
the ground truth.  The positional evaluation protocol uses
``(pid, position)`` mention units (so a paper listing one name twice is
scored occurrence-by-occurrence); plain paper ids — the paper's original
protocol — remain valid for homonym-free corpora and produce identical
numbers there.

Counting uses the contingency-table identity — for cluster sizes the number
of same-cluster pairs is ``Σ C(n, 2)`` — so evaluation is linear in the
number of mentions, not quadratic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Mapping


def _choose2(n: int) -> int:
    return n * (n - 1) // 2


@dataclass(slots=True)
class PairwiseCounts:
    """TP/FP/FN/TN over paper pairs, with the four micro ratios."""

    tp: int = 0
    fp: int = 0
    fn: int = 0
    tn: int = 0

    def __add__(self, other: "PairwiseCounts") -> "PairwiseCounts":
        return PairwiseCounts(
            self.tp + other.tp,
            self.fp + other.fp,
            self.fn + other.fn,
            self.tn + other.tn,
        )

    @property
    def total(self) -> int:
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self) -> float:
        """MicroA = (TP + TN) / all pairs."""
        return (self.tp + self.tn) / self.total if self.total else 0.0

    @property
    def precision(self) -> float:
        """MicroP = TP / (TP + FP)."""
        denom = self.tp + self.fp
        return self.tp / denom if denom else 0.0

    @property
    def recall(self) -> float:
        """MicroR = TP / (TP + FN)."""
        denom = self.tp + self.fn
        return self.tp / denom if denom else 0.0

    @property
    def f1(self) -> float:
        """MicroF = harmonic mean of MicroP and MicroR."""
        p, r = self.precision, self.recall
        return 2.0 * p * r / (p + r) if (p + r) > 0.0 else 0.0

    def as_row(self) -> tuple[float, float, float, float]:
        """(MicroA, MicroP, MicroR, MicroF) — one Table III row."""
        return (self.accuracy, self.precision, self.recall, self.f1)


def pairwise_counts(
    predicted: Mapping[Hashable, Iterable[Hashable]],
    truth: Mapping[Hashable, int],
) -> PairwiseCounts:
    """Pair counts for one name.

    Args:
        predicted: Predicted clustering — cluster id -> mention units
            (``(pid, position)`` tuples in the positional protocol, or bare
            paper ids).  Units outside ``truth`` are ignored; units in
            ``truth`` but missing from ``predicted`` count as singletons
            (the method abstained).
        truth: Ground truth — mention unit -> author id.
    """
    pred_of: dict[Hashable, object] = {}
    for cluster_id, units in predicted.items():
        for unit in units:
            if unit in truth:
                pred_of[unit] = cluster_id
    singleton = 0
    for unit in truth:
        if unit not in pred_of:
            pred_of[unit] = ("singleton", singleton)
            singleton += 1

    joint: Counter[tuple[object, int]] = Counter()
    pred_sizes: Counter[object] = Counter()
    true_sizes: Counter[int] = Counter()
    for unit, author in truth.items():
        cluster = pred_of[unit]
        joint[(cluster, author)] += 1
        pred_sizes[cluster] += 1
        true_sizes[author] += 1

    tp = sum(_choose2(n) for n in joint.values())
    predicted_same = sum(_choose2(n) for n in pred_sizes.values())
    true_same = sum(_choose2(n) for n in true_sizes.values())
    all_pairs = _choose2(len(truth))
    fp = predicted_same - tp
    fn = true_same - tp
    tn = all_pairs - tp - fp - fn
    return PairwiseCounts(tp=tp, fp=fp, fn=fn, tn=tn)


def micro_metrics(
    per_name_predicted: Mapping[str, Mapping[Hashable, Iterable[Hashable]]],
    per_name_truth: Mapping[str, Mapping[Hashable, int]],
) -> PairwiseCounts:
    """Micro-averaged counts over many names (the Table III protocol)."""
    total = PairwiseCounts()
    for name, truth in per_name_truth.items():
        total = total + pairwise_counts(per_name_predicted.get(name, {}), truth)
    return total
