"""Experiment drivers: one function per table/figure of the paper.

Every driver returns plain data (dataclasses/dicts) so that benches,
examples and the EXPERIMENTS.md generator all share one implementation.

=============  =======================================  ==================
Paper exhibit  What it shows                            Driver
=============  =======================================  ==================
Figure 3       power laws of the corpus                 :func:`run_fig3`
Table II       testing-dataset descriptives             :func:`run_table2`
Table III      IUAD vs 8 baselines                      :func:`run_table3`
Table IV       stage ablation (SCN vs GCN)              :func:`run_table4`
Table V        per-name time vs data scale              :func:`run_table5`
Figure 5       IUAD quality vs data scale               :func:`run_fig5`
Table VI       incremental disambiguation               :func:`run_table6`
Figure 6       single-similarity threshold sweeps       :func:`run_fig6`
=============  =======================================  ==================
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..baselines import (
    ANON,
    GHOST,
    Aminer,
    NetE,
    SupervisedPairwise,
    predict_all_mentions,
)
from ..core import IUAD, IUADConfig, IncrementalDisambiguator
from ..core.candidates import candidate_pairs_of_name, cannot_link_pairs
from ..data.powerlaw import (
    PowerLawFit,
    fit_power_law,
    pair_frequency_distribution,
    papers_per_name_distribution,
)
from ..data.records import Corpus
from ..data.synthetic import SyntheticConfig, SyntheticDBLP, ambiguous_names
from ..data.testing import (
    NameStats,
    TestingDataset,
    build_testing_dataset,
    per_name_truth,
    split_for_incremental,
)
from ..graphs.unionfind import UnionFind
from ..model.mixture import MatchMixture
from ..model.scoring import match_scores
from ..similarity import SIMILARITY_NAMES, SimilarityComputer
from .metrics import PairwiseCounts, micro_metrics
from .timing import TimingResult, time_iuad, time_per_name


@dataclass(slots=True)
class ExperimentContext:
    """Everything the drivers need: corpus, testing subset, ground truth.

    ``truth`` is positional: name -> {(pid, position) -> author id}, so
    homonym papers are scored occurrence-by-occurrence.
    """

    corpus: Corpus
    testing: TestingDataset
    truth: Mapping[str, dict[tuple[int, int], int]]
    train_names: list[str] = field(default_factory=list)


def make_context(
    scale: float = 1.0,
    n_names: int = 50,
    seed: int = 7,
    config: SyntheticConfig | None = None,
) -> ExperimentContext:
    """Build the standard experiment context on a synthetic corpus.

    Args:
        scale: Fraction of the generated corpus to keep (Figure 5 /
            Table V sweep this).
        n_names: Number of testing names (50 in the paper).
        seed: Generator seed.
        config: Full generator config override.
    """
    cfg = config or SyntheticConfig(seed=seed)
    corpus = SyntheticDBLP(cfg).generate()
    if scale < 1.0:
        corpus = corpus.subset(scale, seed=seed)
    testing = build_testing_dataset(corpus, n_names=n_names)
    truth = per_name_truth(testing)
    chosen = set(testing.names)
    train_names = [n for n in ambiguous_names(corpus) if n not in chosen][:60]
    return ExperimentContext(
        corpus=corpus, testing=testing, truth=truth, train_names=train_names
    )


# --------------------------------------------------------------------- #
# Figure 3 — descriptive power laws
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class Fig3Result:
    papers_per_name: PowerLawFit
    pair_frequency: PowerLawFit


def run_fig3(corpus: Corpus) -> Fig3Result:
    """Figure 3: log-binned power-law fits of the two distributions."""
    return Fig3Result(
        papers_per_name=fit_power_law(
            papers_per_name_distribution(corpus), log_binned=True
        ),
        pair_frequency=fit_power_law(
            pair_frequency_distribution(corpus), log_binned=True
        ),
    )


# --------------------------------------------------------------------- #
# Table II — testing-dataset descriptives
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class Table2Result:
    rows: list[NameStats]
    total_authors: int
    total_papers: int


def run_table2(testing: TestingDataset) -> Table2Result:
    rows = testing.stats()
    total_authors, total_papers = testing.totals()
    return Table2Result(rows, total_authors, total_papers)


# --------------------------------------------------------------------- #
# Table III — IUAD vs baselines
# --------------------------------------------------------------------- #
def run_table3(
    ctx: ExperimentContext,
    include_supervised: bool = True,
    iuad_config: IUADConfig | None = None,
) -> dict[str, PairwiseCounts]:
    """Table III: micro metrics of every method on the testing names."""
    results: dict[str, PairwiseCounts] = {}
    names = ctx.testing.names

    iuad = IUAD(iuad_config or IUADConfig()).fit(ctx.corpus, names=names)
    results["IUAD"] = micro_metrics(
        {n: iuad.mention_clusters_of_name(n) for n in names}, ctx.truth
    )
    for label, method in (
        ("ANON", ANON()),
        ("NetE", NetE()),
        ("Aminer", Aminer()),
        ("GHOST", GHOST()),
    ):
        results[label] = micro_metrics(
            predict_all_mentions(method, ctx.corpus, names), ctx.truth
        )
    if include_supervised:
        for kind, label in (
            ("adaboost", "AdaBoost"),
            ("gbdt", "GBDT"),
            ("rf", "RF"),
            ("xgboost", "XGBoost"),
        ):
            model = SupervisedPairwise(kind).fit_names(ctx.corpus, ctx.train_names)
            results[label] = micro_metrics(
                predict_all_mentions(model, ctx.corpus, names), ctx.truth
            )
    return results


# --------------------------------------------------------------------- #
# Table IV — stage ablation
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class Table4Result:
    scn: PairwiseCounts
    gcn: PairwiseCounts

    @property
    def improvements(self) -> tuple[float, float, float, float]:
        """(ΔMicroA, ΔMicroP, ΔMicroR, ΔMicroF) from SCN to GCN."""
        s, g = self.scn.as_row(), self.gcn.as_row()
        return tuple(gv - sv for sv, gv in zip(s, g))  # type: ignore[return-value]


def run_table4(
    ctx: ExperimentContext, iuad_config: IUADConfig | None = None
) -> Table4Result:
    names = ctx.testing.names
    iuad = IUAD(iuad_config or IUADConfig()).fit(ctx.corpus, names=names)
    scn = micro_metrics(
        {n: iuad.scn_mention_clusters_of_name(n) for n in names}, ctx.truth
    )
    gcn = micro_metrics(
        {n: iuad.mention_clusters_of_name(n) for n in names}, ctx.truth
    )
    return Table4Result(scn=scn, gcn=gcn)


# --------------------------------------------------------------------- #
# Table V — per-name time vs data scale
# --------------------------------------------------------------------- #
def run_table5(
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    n_names: int = 12,
    seed: int = 7,
    config: SyntheticConfig | None = None,
) -> dict[str, dict[float, TimingResult]]:
    """Table V: average per-name seconds for each unsupervised method."""
    out: dict[str, dict[float, TimingResult]] = {}
    base = SyntheticDBLP(config or SyntheticConfig(seed=seed)).generate()
    for fraction in fractions:
        corpus = base.subset(fraction, seed=seed) if fraction < 1.0 else base
        testing = build_testing_dataset(corpus, n_names=n_names)
        names = testing.names
        for label, method in (
            ("ANON", ANON()),
            ("NetE", NetE()),
            ("Aminer", Aminer()),
            ("GHOST", GHOST()),
        ):
            result = time_per_name(
                label, method.cluster_name, corpus, names, fraction
            )
            out.setdefault(label, {})[fraction] = result
        out.setdefault("IUAD", {})[fraction] = time_iuad(
            lambda: IUAD(IUADConfig()), corpus, names, fraction
        )
    return out


# --------------------------------------------------------------------- #
# Figure 5 — IUAD quality vs data scale
# --------------------------------------------------------------------- #
def run_fig5(
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    n_names: int = 50,
    seed: int = 7,
    config: SyntheticConfig | None = None,
) -> dict[float, PairwiseCounts]:
    """Figure 5: IUAD micro metrics at increasing data scale.

    Testing names are selected on the full corpus and evaluated on each
    subsample's papers, so the curves are comparable across fractions.
    """
    base = SyntheticDBLP(config or SyntheticConfig(seed=seed)).generate()
    full_testing = build_testing_dataset(base, n_names=n_names)
    out: dict[float, PairwiseCounts] = {}
    for fraction in fractions:
        corpus = base.subset(fraction, seed=seed) if fraction < 1.0 else base
        names = [n for n in full_testing.names if corpus.papers_of_name(n)]
        truth = {
            name: {
                (pid, position): corpus[pid].author_id_at(position)
                for pid in dict.fromkeys(corpus.papers_of_name(name))
                for position in corpus[pid].positions_of(name)
            }
            for name in names
        }
        iuad = IUAD(IUADConfig()).fit(corpus, names=names)
        out[fraction] = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in names}, truth
        )
    return out


# --------------------------------------------------------------------- #
# Table VI — incremental disambiguation
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class Table6Row:
    n_new_papers: int
    base: PairwiseCounts       # metrics on part 1 (before streaming)
    after: PairwiseCounts      # metrics on everything (after streaming)
    avg_ms_per_paper: float


def run_table6(
    ctx: ExperimentContext,
    stream_sizes: Sequence[int] = (100, 200, 300),
    iuad_config: IUADConfig | None = None,
) -> list[Table6Row]:
    """Table VI: stream N held-out papers through the incremental mode."""
    rows: list[Table6Row] = []
    names = ctx.testing.names
    for n_new in stream_sizes:
        base_pids, new_pids = split_for_incremental(ctx.testing, n_new)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in ctx.corpus if p.pid not in new_set)
        iuad = IUAD(iuad_config or IUADConfig()).fit(base_corpus, names=names)
        base_truth = {
            n: {
                unit: a
                for unit, a in t.items()
                if unit[0] not in new_set
            }
            for n, t in ctx.truth.items()
        }
        base_metrics = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in names}, base_truth
        )
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(ctx.corpus[pid])
        after_metrics = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in names}, ctx.truth
        )
        rows.append(
            Table6Row(
                n_new_papers=n_new,
                base=base_metrics,
                after=after_metrics,
                avg_ms_per_paper=inc.report.avg_ms_per_paper,
            )
        )
    return rows


# --------------------------------------------------------------------- #
# Figure 6 — rationality of the similarity functions
# --------------------------------------------------------------------- #
def run_fig6(
    ctx: ExperimentContext,
    thresholds: Sequence[float] = (-20.0, -5.0, 0.0, 5.0, 20.0, 60.0, 150.0),
    iuad_config: IUADConfig | None = None,
) -> dict[str, dict[float, PairwiseCounts]]:
    """Figure 6: GCN quality using each similarity function *alone*.

    For each γᵢ a single-feature mixture is trained on the same candidate
    sample, scores are swept over ``thresholds``, and the resulting GCN is
    evaluated — six panels of four curves, as in the paper.
    """
    cfg = iuad_config or IUADConfig(merge_rounds=1)
    names = ctx.testing.names
    iuad = IUAD(cfg).fit(ctx.corpus, names=names)
    scn = iuad.scn_
    assert scn is not None
    computer = SimilarityComputer(
        scn,
        ctx.corpus,
        embeddings=iuad.embeddings_,
        wl_iterations=cfg.wl_iterations,
        decay_alpha=cfg.decay_alpha,
    )
    # All candidate gammas, computed in one batched call (the engine
    # amortises its sparse assembly over every testing name at once) and
    # sliced back per name.
    per_name_pairs: dict[str, list[tuple[int, int]]] = {}
    flat_pairs: list[tuple[int, int]] = []
    for name in names:
        pairs = candidate_pairs_of_name(scn, name)
        per_name_pairs[name] = pairs
        flat_pairs.extend(pairs)
    training = (
        computer.pair_matrix(flat_pairs)
        if flat_pairs
        else np.zeros((0, 6))
    )
    per_name_gammas: dict[str, np.ndarray] = {}
    offset = 0
    for name in names:
        count = len(per_name_pairs[name])
        if count:
            per_name_gammas[name] = training[offset : offset + count]
        offset += count

    out: dict[str, dict[float, PairwiseCounts]] = {}
    # Same-paper mentions (homonymous co-authors) must survive even the
    # most permissive threshold; the SCN is immutable across the sweep,
    # so the constraint list is computed once.
    constraints = cannot_link_pairs(scn)
    for i, sim_name in enumerate(SIMILARITY_NAMES):
        family = (cfg.families[i],)
        model = MatchMixture(family)
        model.fit(training[:, [i]])
        sweep: dict[float, PairwiseCounts] = {}
        for threshold in thresholds:
            union = UnionFind(v.vid for v in scn)
            for cl_u, cl_v in constraints:
                union.forbid(cl_u, cl_v)
            for name in names:
                pairs = per_name_pairs[name]
                if not pairs:
                    continue
                scores = match_scores(model, per_name_gammas[name][:, [i]])
                for (u, v), score in zip(pairs, scores):
                    if score >= threshold and union.allowed(u, v):
                        union.union(u, v)
            merged = scn.merged(union)
            sweep[threshold] = micro_metrics(
                {n: merged.mention_clusters_of_name(n) for n in names},
                ctx.truth,
            )
        out[sim_name] = sweep
    return out


# --------------------------------------------------------------------- #
# one-call full run (EXPERIMENTS.md generator uses this)
# --------------------------------------------------------------------- #
@dataclass(slots=True)
class FullRun:
    fig3: Fig3Result
    table2: Table2Result
    table3: dict[str, PairwiseCounts]
    table4: Table4Result
    table5: dict[str, dict[float, TimingResult]]
    fig5: dict[float, PairwiseCounts]
    table6: list[Table6Row]
    fig6: dict[str, dict[float, PairwiseCounts]]
    seconds: float


def run_everything(seed: int = 7) -> FullRun:
    """Run every experiment on the default synthetic corpus."""
    t0 = time.perf_counter()
    ctx = make_context(seed=seed)
    return FullRun(
        fig3=run_fig3(ctx.corpus),
        table2=run_table2(ctx.testing),
        table3=run_table3(ctx),
        table4=run_table4(ctx),
        table5=run_table5(seed=seed),
        fig5=run_fig5(seed=seed),
        table6=run_table6(ctx),
        fig6=run_fig6(ctx),
        seconds=time.perf_counter() - t0,
    )
