"""Timing harnesses: Table V scalability accounting + benchmark recording.

Table V reports the *average time cost per name disambiguation* of each
unsupervised method at 20/40/60/80/100 % of the corpus.  For the top-down
baselines this is simply the per-name clustering time; for IUAD — which
builds one global network rather than one ego-network per name — the
per-name cost is its Stage-2 decision time per name plus the per-name share
of the global construction, matching the paper's accounting (IUAD's
reported numbers include its full pipeline amortised over names).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from ..data.records import Corpus


@dataclass(slots=True)
class StageTimer:
    """Accumulates named wall-clock stages for a benchmark run.

    Use as ``with timer.stage("score"): ...``; repeated stages accumulate.
    ``as_dict`` returns seconds per stage, ready for
    :func:`write_benchmark_json`.
    """

    stages: dict[str, float] = field(default_factory=dict)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.stages[name] = self.stages.get(name, 0.0) + (
                time.perf_counter() - t0
            )

    def record(self, name: str, seconds: float) -> None:
        """Add ``seconds`` to stage ``name`` without running code."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def as_dict(self) -> dict[str, float]:
        return dict(self.stages)


def write_benchmark_json(
    path: str | Path,
    benchmark: str,
    stages: Mapping[str, float],
    **extra: Any,
) -> dict[str, Any]:
    """Persist a benchmark record (stage seconds + free-form metadata).

    The file is a single JSON object::

        {"benchmark": ..., "stages": {name: seconds, ...}, ...extra}

    Benchmarks commit these files (e.g. ``BENCH_similarity.json`` at the
    repo root) so speedups remain comparable across PRs.  Returns the
    written payload.

    Provenance guard: the record's ``quick`` flag (when present) must
    agree with the path convention — quick-mode records live in
    ``*.quick.json``, full-mode records anywhere else.  A full-mode
    payload aimed at a quick path (or vice versa) raises instead of
    committing a record that lies about how it was produced.
    """
    path = Path(path)
    quick = extra.get("quick")
    if quick is not None:
        quick_path = path.name.endswith(".quick.json")
        if bool(quick) != quick_path:
            mode = "quick" if quick else "full"
            raise ValueError(
                f"refusing to write a {mode}-mode record to {path.name}: "
                f"quick={bool(quick)} does not match the "
                f"{'*.quick.json' if quick_path else 'non-quick'} path "
                "convention"
            )
    payload: dict[str, Any] = {
        "benchmark": benchmark,
        "stages": {k: round(v, 6) for k, v in stages.items()},
    }
    payload.update(extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return payload


def shard_summary(report: Any) -> dict[str, float]:
    """Aggregate the per-shard counters of a sharded :class:`FitReport`.

    Duck-typed over ``report.shard_stats``
    (:class:`repro.core.sharding.ShardStats` entries) so this evaluation
    helper needs no import from ``core``.  The returned dict is flat and
    JSON-ready — the sharding benchmark embeds it into
    ``BENCH_sharding.json`` next to the stage seconds.  ``imbalance`` is
    the largest shard's share of all candidate pairs divided by the ideal
    equal share: 1.0 means perfectly balanced shards, ``n_shards`` means
    one shard holds all the work.
    """
    stats = list(getattr(report, "shard_stats", ()) or ())
    pairs = [s.n_candidate_pairs for s in stats]
    total_pairs = sum(pairs)
    n = len(stats)
    ideal = total_pairs / n if n else 0.0
    summary = {
        "n_shards": n,
        "n_fastpath_vertices": getattr(report, "n_fastpath_vertices", 0),
        "total_candidate_pairs": total_pairs,
        "max_shard_pairs": max(pairs, default=0),
        "imbalance": (max(pairs, default=0) / ideal) if ideal else 0.0,
        "gamma_seconds": round(sum(s.gamma_seconds for s in stats), 6),
        "decide_seconds": round(sum(s.decide_seconds for s in stats), 6),
        "partition_seconds": round(getattr(report, "partition_seconds", 0.0), 6),
        "stitch_seconds": round(getattr(report, "stitch_seconds", 0.0), 6),
        "total_merges": sum(s.n_merges for s in stats),
    }
    # Pipeline phase walls + transport counters of the overlapped sharded
    # executor (zero on single-process reports) — committed with the
    # benchmark record so a scheduling or IPC regression is visible in
    # the diff, not in a profiler.
    for key in (
        "pipeline_seconds",
        "gamma_wall_seconds",
        "split_wall_seconds",
        "em_seconds",
        "decide_wall_seconds",
        "overlap_seconds",
        "gamma_task_seconds",
        "split_task_seconds",
        "decide_task_seconds",
    ):
        summary[key] = round(float(getattr(report, key, 0.0)), 6)
    for key in (
        "n_gamma_chunks",
        "overlap_gamma_chunks",
        "ipc_task_bytes",
        "shm_bytes",
    ):
        summary[key] = int(getattr(report, key, 0))
    return summary


def streaming_summary(report: Any) -> dict[str, float]:
    """Flatten an incremental/streaming report for benchmark records.

    Duck-typed over :class:`repro.core.incremental.IncrementalReport`
    (optionally filled by the batched
    :class:`repro.core.streaming.StreamingIngestor`) so this evaluation
    helper needs no import from ``core``.  The returned dict is flat and
    JSON-ready — the streaming benchmark embeds it into
    ``BENCH_streaming.json`` next to the stage seconds.
    ``papers_per_wave`` is the batching yield: how many papers each
    dependency wave carried on average (1.0 means the burst degenerated
    to the sequential loop).
    """
    n_papers = getattr(report, "n_papers", 0)
    n_waves = getattr(report, "n_waves", 0)
    return {
        "n_papers": n_papers,
        "n_mentions": getattr(report, "n_mentions", 0),
        "n_attached": getattr(report, "n_attached", 0),
        "n_created": getattr(report, "n_created", 0),
        "n_duplicates": getattr(report, "n_duplicates", 0),
        "n_batches": getattr(report, "n_batches", 0),
        "n_waves": n_waves,
        "papers_per_wave": round(n_papers / n_waves, 3) if n_waves else 0.0,
        "n_shards_touched": len(getattr(report, "per_shard_papers", {}) or {}),
        "avg_ms_per_paper": round(getattr(report, "avg_ms_per_paper", 0.0), 6),
    }


def latency_percentile(samples: Iterable[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Plain-python so the serving harness needs no numpy in its client
    threads; 0.0 for an empty sample set.
    """
    ordered = sorted(samples)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] * (1.0 - frac) + ordered[high] * frac


def latency_summary(seconds: Iterable[float]) -> dict[str, float]:
    """p50/p90/p99/mean of latency samples, in milliseconds."""
    samples = list(seconds)
    return {
        "n": len(samples),
        "mean_ms": round(
            1000.0 * sum(samples) / len(samples), 3
        ) if samples else 0.0,
        "p50_ms": round(1000.0 * latency_percentile(samples, 50), 3),
        "p90_ms": round(1000.0 * latency_percentile(samples, 90), 3),
        "p99_ms": round(1000.0 * latency_percentile(samples, 99), 3),
    }


def serving_summary(
    idle_read_seconds: Iterable[float],
    loaded_read_seconds: Iterable[float],
    *,
    read_wall_seconds: float,
    n_ingested_papers: int,
    ingest_wall_seconds: float,
    n_swaps: int,
) -> dict[str, Any]:
    """Flatten one serving load-test run for benchmark records.

    ``idle_read_seconds`` are read latencies against a quiet server,
    ``loaded_read_seconds`` the same reads with the continuous ingest
    stream running — their p99 ratio is the record's headline: how much
    ingest is allowed to hurt readers (the atomic-swap design bounds it;
    ``benchmarks/test_serving.py`` asserts the ≤5× acceptance floor in
    full mode).  ``read_wall_seconds`` / ``ingest_wall_seconds`` are the
    wall-clock of the loaded phase (reads and ingest overlap, so
    reads/sec and papers/sec are both against their own wall), and
    ``n_swaps`` counts the view generations the run published.
    """
    idle = latency_summary(idle_read_seconds)
    loaded = latency_summary(loaded_read_seconds)
    out: dict[str, Any] = {"n_swaps": int(n_swaps)}
    for prefix, summary in (("idle_read", idle), ("loaded_read", loaded)):
        out[f"n_{prefix}s"] = summary["n"]
        for key in ("mean_ms", "p50_ms", "p90_ms", "p99_ms"):
            out[f"{prefix}_{key}"] = summary[key]
    out["reads_per_sec"] = round(
        loaded["n"] / read_wall_seconds, 1
    ) if read_wall_seconds > 0 else 0.0
    out["papers_per_sec"] = round(
        n_ingested_papers / ingest_wall_seconds, 2
    ) if ingest_wall_seconds > 0 else 0.0
    out["n_ingested_papers"] = int(n_ingested_papers)
    idle_p99 = idle["p99_ms"]
    out["read_p99_ratio_loaded_vs_idle"] = round(
        loaded["p99_ms"] / idle_p99, 3
    ) if idle_p99 > 0 else 0.0
    return out


def snapshot_summary(
    stages: Mapping[str, float], n_papers: int, sizes: Mapping[str, int]
) -> dict[str, Any]:
    """Flatten snapshot-I/O measurements for benchmark records.

    ``stages`` maps ``save_<backend>`` / ``load_<backend>`` to seconds
    (cf. :class:`StageTimer`), ``sizes`` maps backend name to on-disk
    bytes.  Emits papers-per-second per direction and backend — the
    headline of ``BENCH_snapshot.json`` — next to the raw inputs, all
    flat and JSON-ready for :func:`write_benchmark_json`.
    """
    out: dict[str, Any] = {"n_papers": n_papers}
    for stage, seconds in stages.items():
        direction, _, backend = stage.partition("_")
        if direction in ("save", "load") and backend and seconds > 0:
            out[f"{backend}_{direction}_papers_per_sec"] = round(
                n_papers / seconds, 1
            )
    for backend, size in sizes.items():
        out[f"{backend}_bytes"] = int(size)
    return out


@dataclass(frozen=True, slots=True)
class TimingResult:
    """Per-name average wall-clock of one method at one data scale."""

    method: str
    fraction: float
    n_names: int
    total_seconds: float

    @property
    def avg_seconds_per_name(self) -> float:
        return self.total_seconds / self.n_names if self.n_names else 0.0


def time_per_name(
    method_name: str,
    cluster_name: Callable[[Corpus, str], dict],
    corpus: Corpus,
    names: Iterable[str],
    fraction: float = 1.0,
) -> TimingResult:
    """Average per-name time of a top-down baseline."""
    names = list(names)
    t0 = time.perf_counter()
    for name in names:
        cluster_name(corpus, name)
    return TimingResult(
        method=method_name,
        fraction=fraction,
        n_names=len(names),
        total_seconds=time.perf_counter() - t0,
    )


def time_iuad(
    iuad_factory: Callable[[], object],
    corpus: Corpus,
    names: Iterable[str],
    fraction: float = 1.0,
) -> TimingResult:
    """Per-name time of IUAD under the paper's amortised accounting.

    IUAD builds *one* global network and trains *one* model shared by every
    name in the corpus — that is exactly why it avoids the top-down methods'
    repeated per-name work (Section V-F1).  Its per-name cost is therefore
    the per-name Stage-2 decision time plus the global phases (SCN build,
    embeddings, EM) amortised over **all** corpus names, not just the
    evaluated subset.
    """
    names = list(names)
    iuad = iuad_factory()
    t0 = time.perf_counter()
    iuad.fit(corpus, names=names)  # type: ignore[attr-defined]
    total = time.perf_counter() - t0
    report = iuad.report_  # type: ignore[attr-defined]
    decision_time = sum(report.per_name_seconds.values())
    global_time = max(total - decision_time, 0.0)
    n_all_names = max(len(corpus.names), 1)
    amortised = decision_time + global_time * len(names) / n_all_names
    return TimingResult(
        method="IUAD",
        fraction=fraction,
        n_names=len(names),
        total_seconds=amortised,
    )
