"""Core record types: papers, author mentions, and the corpus container.

The input of IUAD (paper, Section III-A) is a paper database where every
paper carries four attributes: the co-author list, the title, the published
venue, and the published year.  ``Paper`` models exactly that record;
``Corpus`` is the indexed container the rest of the library consumes.

The atomic unit of the bottom-up view is the :class:`Mention` — one author
*occurrence* identified by ``(paper, name, position)``.  Identity is
positional, not name-keyed: a paper may legitimately list the same name
twice (two homonymous co-authors), and every layer of the pipeline — the
Stage-1 SCN builder, Stage-2 candidate generation, the incremental path and
the evaluation harness — resolves mentions at occurrence granularity, so
the two homonyms are distinct vertices end to end (see
``docs/architecture.md``).

Ground-truth author identities (available for synthetic corpora and for
labelled evaluation subsets) ride along in ``Paper.author_ids`` but are never
read by the disambiguation pipeline itself — only by the evaluation harness.
"""

from __future__ import annotations

import json
import random
from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True, slots=True)
class Paper:
    """A single bibliographic record.

    Attributes:
        pid: Unique integer id of the paper within its corpus.
        authors: Author *names* in list order (names may be ambiguous).
        title: Paper title (free text; tokenised downstream).
        venue: Publication venue (journal or conference key).
        year: Publication year.
        author_ids: Optional ground-truth author identities, parallel to
            ``authors``.  ``None`` when the corpus is unlabelled.
    """

    pid: int
    authors: tuple[str, ...]
    title: str
    venue: str
    year: int
    author_ids: tuple[int, ...] | None = None

    def __post_init__(self) -> None:
        if self.author_ids is not None and len(self.author_ids) != len(self.authors):
            raise ValueError(
                f"paper {self.pid}: author_ids length {len(self.author_ids)} "
                f"!= authors length {len(self.authors)}"
            )
        # A name may legitimately appear twice — two homonymous co-authors
        # on one paper (rare but real).  Mention identity is positional
        # (:class:`Mention`), so every layer keeps the two occurrences on
        # distinct vertices.  What *is* malformed is the same ground-truth
        # identity listed twice: an author co-authors with themselves.
        if self.author_ids is not None and len(set(self.author_ids)) != len(
            self.author_ids
        ):
            raise ValueError(
                f"paper {self.pid}: duplicate author ids in co-author list"
            )

    @property
    def labelled(self) -> bool:
        """Whether ground-truth author identities are attached."""
        return self.author_ids is not None

    def author_ids_of(self, name: str) -> tuple[int, ...]:
        """All ground-truth ids behind ``name`` on this paper, in list order.

        Normally a single element; two for a paper listing homonymous
        co-authors (the same name twice).
        """
        if self.author_ids is None:
            raise ValueError(f"paper {self.pid} carries no ground-truth labels")
        return tuple(
            aid
            for n, aid in zip(self.authors, self.author_ids)
            if n == name
        )

    def author_id_of(self, name: str) -> int:
        """Return the ground-truth author id behind ``name`` on this paper.

        Raises for a name listed twice (two homonymous co-authors): the
        name alone cannot identify the mention — use :meth:`positions_of`
        with :meth:`author_id_at`, or :meth:`author_ids_of`, instead.
        """
        ids = self.author_ids_of(name)
        if not ids:
            raise ValueError(f"paper {self.pid}: no author named {name!r}")
        if len(ids) > 1:
            raise ValueError(
                f"paper {self.pid}: name {name!r} is listed more than once; "
                "mention identity is positional, not name-keyed"
            )
        return ids[0]

    def positions_of(self, name: str) -> tuple[int, ...]:
        """Co-author-list positions at which ``name`` appears.

        Normally a single position; two for a paper listing homonymous
        co-authors.  Positions are the identity axis of :class:`Mention`.
        """
        return tuple(i for i, n in enumerate(self.authors) if n == name)

    def author_id_at(self, position: int) -> int:
        """Ground-truth author id of the mention at ``position``."""
        if self.author_ids is None:
            raise ValueError(f"paper {self.pid} carries no ground-truth labels")
        if not 0 <= position < len(self.authors):
            raise ValueError(
                f"paper {self.pid}: position {position} out of range "
                f"(co-author list has {len(self.authors)} entries)"
            )
        return self.author_ids[position]

    def mentions(self) -> Iterator["Mention"]:
        """All author mentions of this paper, in co-author-list order."""
        for position, name in enumerate(self.authors):
            yield Mention(self.pid, name, position)

    def to_json(self) -> str:
        """Serialise to a single JSON line (see :meth:`from_json`)."""
        payload: dict[str, object] = {
            "pid": self.pid,
            "authors": list(self.authors),
            "title": self.title,
            "venue": self.venue,
            "year": self.year,
        }
        if self.author_ids is not None:
            payload["author_ids"] = list(self.author_ids)
        return json.dumps(payload, ensure_ascii=False)

    @classmethod
    def from_json(cls, line: str) -> "Paper":
        """Parse a paper from a JSON line produced by :meth:`to_json`."""
        raw = json.loads(line)
        ids = raw.get("author_ids")
        return cls(
            pid=int(raw["pid"]),
            authors=tuple(raw["authors"]),
            title=str(raw["title"]),
            venue=str(raw["venue"]),
            year=int(raw["year"]),
            author_ids=tuple(ids) if ids is not None else None,
        )


@dataclass(frozen=True, slots=True)
class Mention:
    """One author *occurrence*: a ``(paper, name, position)`` triple.

    A mention is the atomic unit of the bottom-up view: before any merging,
    every mention is presumed to be a distinct author (paper, Section I).
    ``position`` is the index into the paper's co-author list, which makes
    the identity robust to homonymous co-authors — a paper listing the same
    name twice yields two distinct mentions.

    >>> from repro.data.records import Mention
    >>> Mention(pid=7, name="Wei Wang", position=2)
    Mention(pid=7, name='Wei Wang', position=2)

    """

    pid: int
    name: str
    position: int


class Corpus:
    """An indexed collection of :class:`Paper` records.

    Builds the per-name inverted index, venue frequency table (``F_H`` in
    Eq. 9) and co-author transaction view (input of FP-growth) once, at
    construction time.
    """

    def __init__(self, papers: Iterable[Paper]):
        self._papers: dict[int, Paper] = {}
        self._by_name: dict[str, list[int]] = defaultdict(list)
        self._venue_freq: Counter[str] = Counter()
        for paper in papers:
            if paper.pid in self._papers:
                raise ValueError(f"duplicate paper id {paper.pid}")
            self._papers[paper.pid] = paper
            for name in paper.authors:
                self._by_name[name].append(paper.pid)
            self._venue_freq[paper.venue] += 1
        self._by_name = dict(self._by_name)

    # ------------------------------------------------------------------ #
    # container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._papers)

    def __iter__(self) -> Iterator[Paper]:
        return iter(self._papers.values())

    def __contains__(self, pid: int) -> bool:
        return pid in self._papers

    def __getitem__(self, pid: int) -> Paper:
        return self._papers[pid]

    def add(self, paper: Paper) -> None:
        """Append a newly published paper, updating all indexes.

        Used by the incremental disambiguation mode (Section V-E), where new
        papers stream into an already-built corpus one at a time.
        """
        if paper.pid in self._papers:
            raise ValueError(f"duplicate paper id {paper.pid}")
        self._papers[paper.pid] = paper
        for name in paper.authors:
            self._by_name.setdefault(name, []).append(paper.pid)
        self._venue_freq[paper.venue] += 1

    # ------------------------------------------------------------------ #
    # indexed views
    # ------------------------------------------------------------------ #
    @property
    def names(self) -> Sequence[str]:
        """All distinct author names appearing in the corpus."""
        return list(self._by_name)

    def papers_of_name(self, name: str) -> list[int]:
        """Paper ids on which ``name`` appears (empty list if unknown)."""
        return list(self._by_name.get(name, ()))

    def name_frequency(self, name: str) -> int:
        """Number of papers carrying ``name`` (``n_a`` in Section IV-A)."""
        return len(self._by_name.get(name, ()))

    def venue_frequency(self, venue: str) -> int:
        """Number of papers published in ``venue`` (``F_H(h)`` in Eq. 9)."""
        return self._venue_freq.get(venue, 0)

    @property
    def venue_frequencies(self) -> Mapping[str, int]:
        """The full venue frequency table."""
        return dict(self._venue_freq)

    def transactions(self) -> Iterator[tuple[str, ...]]:
        """Co-author lists as transactions for frequent-itemset mining."""
        for paper in self:
            yield paper.authors

    def mentions(self) -> Iterator[Mention]:
        """All author mentions in the corpus, per occurrence."""
        for paper in self:
            yield from paper.mentions()

    @property
    def num_author_paper_pairs(self) -> int:
        """Total author–paper pairs (2,393,969 in the paper's DBLP dump)."""
        return sum(len(p.authors) for p in self)

    # ------------------------------------------------------------------ #
    # slicing
    # ------------------------------------------------------------------ #
    def subset(self, fraction: float, seed: int = 0) -> "Corpus":
        """A random ``fraction`` of the corpus (used by the RQ3 data-scale
        experiments, Figure 5 / Table V)."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if fraction == 1.0:
            return self
        pids = sorted(self._papers)
        rng = random.Random(seed)
        keep = rng.sample(pids, k=max(1, int(round(fraction * len(pids)))))
        return Corpus(self._papers[pid] for pid in sorted(keep))

    def restrict_to_years(self, last_year: int) -> "Corpus":
        """Papers published up to and including ``last_year``.

        The incremental experiments (Table VI) split the corpus in time:
        old papers build the GCN, newer papers stream in one by one.
        """
        return Corpus(p for p in self if p.year <= last_year)

    def filter(self, predicate) -> "Corpus":
        """A new corpus containing the papers for which ``predicate`` holds."""
        return Corpus(p for p in self if predicate(p))

    # ------------------------------------------------------------------ #
    # ground truth helpers (evaluation only)
    # ------------------------------------------------------------------ #
    @property
    def labelled(self) -> bool:
        """Whether every paper carries ground-truth author ids."""
        return all(p.labelled for p in self)

    def true_author_of(self, mention: Mention) -> int:
        """Ground-truth author id of a mention (labelled corpora only).

        :class:`Mention` identity is positional, so a paper listing the
        same name twice resolves each occurrence to its own author.
        """
        paper = self[mention.pid]
        if (
            not 0 <= mention.position < len(paper.authors)
            or paper.authors[mention.position] != mention.name
        ):
            raise ValueError(
                f"paper {mention.pid}: no mention of {mention.name!r} "
                f"at position {mention.position}"
            )
        return paper.author_id_at(mention.position)

    def authors_of_name(self, name: str) -> set[int]:
        """Distinct ground-truth authors hiding behind ``name``."""
        out: set[int] = set()
        for pid in self.papers_of_name(name):
            out.update(self[pid].author_ids_of(name))
        return out

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_jsonl(self, path: str) -> None:
        """Write the corpus as one JSON line per paper."""
        with open(path, "w", encoding="utf-8") as fh:
            for paper in self:
                fh.write(paper.to_json() + "\n")

    @classmethod
    def load_jsonl(cls, path: str) -> "Corpus":
        """Load a corpus previously written by :meth:`save_jsonl`."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls(Paper.from_json(line) for line in fh if line.strip())


@dataclass(slots=True)
class CorpusStats:
    """Descriptive statistics of a corpus (paper, Section VI-A1)."""

    num_papers: int
    num_names: int
    num_author_paper_pairs: int
    num_venues: int
    year_range: tuple[int, int]
    num_true_authors: int | None = None
    extra: dict[str, float] = field(default_factory=dict)

    @classmethod
    def of(cls, corpus: Corpus) -> "CorpusStats":
        """Compute the statistics of ``corpus``."""
        years = [p.year for p in corpus]
        true_authors: set[int] | None = None
        if corpus.labelled and len(corpus) > 0:
            true_authors = set()
            for paper in corpus:
                true_authors.update(paper.author_ids or ())
        return cls(
            num_papers=len(corpus),
            num_names=len(corpus.names),
            num_author_paper_pairs=corpus.num_author_paper_pairs,
            num_venues=len(corpus.venue_frequencies),
            year_range=(min(years), max(years)) if years else (0, 0),
            num_true_authors=len(true_authors) if true_authors is not None else None,
        )
