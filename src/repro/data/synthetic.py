"""Calibrated synthetic DBLP generator with exact ground truth.

The paper evaluates IUAD on a DBLP dump (641,377 papers, 72,522 names).  We
cannot ship that dump, so this module builds a *collaboration world* that
reproduces the distributional facts IUAD's correctness rests on:

* power-law productivity — the number of papers per name follows a heavy
  tail (Figure 3a, log-log slope ≈ −1.68);
* power-law collaboration — the frequency of co-author name pairs follows a
  steeper heavy tail (Figure 3b, slope ≈ −3.17), produced here by
  preferential attachment inside research groups;
* homonymy — a name pool smaller than the author population, with Zipfian
  name popularity, so popular names are shared by many distinct authors;
* career phases — an author works with a stable collaborator circle for a
  few years, then moves on.  Within a phase, repeated collaboration creates
  η-SCRs (Stage 1 finds these); across phases the circles are disjoint, so
  Stage 2 must merge the author's phase-vertices using research-interest and
  venue coherence.  This is exactly the precision/recall structure of
  Table IV;
* topical coherence — every author has a home topic; titles draw from the
  topic vocabulary and venues concentrate on a community's favourite venues,
  feeding similarity functions γ3–γ6.

Ground truth is exact by construction: every author mention carries the id
of the author entity that produced it.
"""

from __future__ import annotations

import math
import random
from collections import defaultdict
from dataclasses import dataclass, field

from .records import Corpus, Paper

# Family names and given names are combined to form the ambiguous name pool.
_FAMILY = [
    "Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao", "Wu",
    "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Lin", "Gao",
    "Luo", "Zheng", "Liang", "Xie", "Tang", "Xiong", "Deng", "Feng",
    "Smith", "Johnson", "Brown", "Miller", "Davis", "Garcia", "Kim",
    "Lee", "Park", "Singh", "Kumar", "Patel", "Mueller", "Schmidt",
    "Rossi", "Silva", "Santos", "Ivanov", "Petrov", "Sato", "Suzuki",
    "Tanaka", "Yamamoto", "Nguyen", "Tran", "Pham", "Cohen", "Levi",
    "Novak", "Horvat", "Jensen", "Nielsen", "Larsen", "Berg",
]
_GIVEN = [
    "Wei", "Jing", "Min", "Lei", "Jun", "Yan", "Tao", "Hui", "Ping", "Bo",
    "Hong", "Jian", "Qiang", "Fang", "Na", "Xin", "Gang", "Chao", "Dan",
    "Feng", "Yu", "Lin", "Peng", "Rui", "Xiang", "Juan", "Ying", "Hao",
    "John", "Anna", "David", "Maria", "James", "Laura", "Peter", "Sara",
    "Thomas", "Emma", "Daniel", "Alice",
]

# Topic-specific vocabularies for paper titles.  Each topic reads like a
# research area; a global pool of generic words is mixed in.
_TOPIC_VOCAB: dict[str, list[str]] = {
    "databases": [
        "query", "index", "transaction", "storage", "relational", "join",
        "optimization", "concurrency", "btree", "columnar", "oltp", "olap",
        "sql", "recovery", "logging", "partitioning", "sharding", "caching",
        "materialized", "view", "schema", "tuning", "workload", "buffer",
    ],
    "machine_learning": [
        "learning", "neural", "network", "gradient", "training", "deep",
        "classification", "regression", "embedding", "representation",
        "supervised", "kernel", "bayesian", "inference", "generative",
        "adversarial", "attention", "transformer", "convolutional", "lstm",
        "regularization", "optimization", "stochastic", "latent",
    ],
    "data_mining": [
        "mining", "pattern", "clustering", "frequent", "itemset", "anomaly",
        "outlier", "association", "rule", "stream", "graph", "community",
        "detection", "similarity", "recommendation", "collaborative",
        "filtering", "matrix", "factorization", "temporal", "sequential",
        "episode", "subgraph", "dense",
    ],
    "networking": [
        "network", "routing", "protocol", "wireless", "sensor", "latency",
        "throughput", "congestion", "packet", "topology", "sdn", "overlay",
        "multicast", "bandwidth", "scheduling", "qos", "mobile", "adhoc",
        "spectrum", "mimo", "channel", "relay", "handover", "cellular",
    ],
    "security": [
        "security", "privacy", "encryption", "authentication", "attack",
        "defense", "malware", "intrusion", "detection", "cryptographic",
        "signature", "key", "protocol", "vulnerability", "adversary",
        "anonymity", "differential", "secure", "trust", "forensics",
        "obfuscation", "sandbox", "integrity", "audit",
    ],
    "systems": [
        "system", "distributed", "consensus", "replication", "fault",
        "tolerance", "scheduler", "virtualization", "container", "kernel",
        "filesystem", "memory", "allocation", "parallel", "concurrency",
        "lock", "scalability", "cluster", "cloud", "serverless",
        "checkpoint", "migration", "runtime", "microservice",
    ],
    "information_retrieval": [
        "retrieval", "ranking", "search", "relevance", "document", "query",
        "inverted", "term", "weighting", "feedback", "expansion", "corpus",
        "evaluation", "precision", "recall", "snippet", "crawler",
        "indexing", "semantic", "entity", "linking", "disambiguation",
        "citation", "bibliographic",
    ],
    "vision": [
        "image", "vision", "segmentation", "recognition", "detection",
        "object", "feature", "descriptor", "tracking", "pose", "stereo",
        "depth", "scene", "pixel", "saliency", "texture", "contour",
        "registration", "reconstruction", "optical", "flow", "superpixel",
        "keypoint", "annotation",
    ],
}

_COMMON_WORDS = [
    "approach", "method", "framework", "analysis", "model", "efficient",
    "novel", "study", "towards", "improved", "evaluation", "design",
    "application", "adaptive", "robust", "scalable", "dynamic", "hybrid",
    "based", "using",
]

_VENUE_STEMS = [
    "ICDE", "SIGMOD", "VLDB", "KDD", "ICDM", "CIKM", "WWW", "SIGIR",
    "NeurIPS", "ICML", "AAAI", "IJCAI", "INFOCOM", "MobiCom", "SIGCOMM",
    "CCS", "SP", "NDSS", "OSDI", "SOSP", "EuroSys", "ATC", "CVPR", "ICCV",
    "TKDE", "TODS", "TOIS", "TPAMI", "JMLR", "TON",
]


@dataclass(slots=True)
class SyntheticConfig:
    """Knobs of the synthetic collaboration world.

    The defaults produce a corpus of several thousand papers in around a
    second — big enough to exhibit the Figure 3 power laws and the two-stage
    precision/recall structure, small enough for CI.
    """

    n_authors: int = 3000
    n_papers: int = 6500
    name_pool_size: int = 4800
    n_communities: int = 220
    venues_per_topic: int = 14
    shared_venue_count: int = 24
    shared_venue_prob: float = 0.3
    lead_venue_prob: float = 0.45
    fav_word_count: int = 4
    same_topic_homonym_prob: float = 0.2
    year_start: int = 1995
    year_end: int = 2020
    productivity_exponent: float = 2.4
    productivity_cap: int = 120
    name_popularity_exponent: float = 0.55
    max_phases: int = 3
    phase_change_prob: float = 0.55
    multi_phase_min_quota: int = 6
    repeat_coauthor_prob: float = 0.65
    repeat_weight_exponent: float = 0.6
    coauthor_weight_exponent: float = 1.5
    lab_size: int = 5
    lab_pick_prob: float = 0.9
    external_coauthor_prob: float = 0.05
    transient_author_prob: float = 0.65
    primary_venue_prob: float = 0.62
    min_coauthors: int = 1
    max_coauthors: int = 4
    title_len_mean: float = 8.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.name_pool_size > 3 * len(_FAMILY) * len(_GIVEN):
            raise ValueError("name_pool_size exceeds available name combinations")
        if self.n_authors < self.n_communities:
            raise ValueError("need at least one author per community")
        if self.year_end <= self.year_start:
            raise ValueError("year_end must exceed year_start")


@dataclass(slots=True)
class SyntheticAuthor:
    """A ground-truth author entity.

    ``quota`` is the author's target number of lead-author papers, drawn
    from a Pareto-like heavy tail — the source of the Figure 3a power law.
    ``fav_venue`` and ``fav_words`` are the author's stable personal habits;
    they persist across career phases, which is precisely the
    interest/community coherence that similarity functions γ3–γ6 exploit
    (and that the paper assumes of real authors).
    """

    aid: int
    name: str
    topic: str
    quota: int
    fav_venue: str = ""
    fav_words: list[str] = field(default_factory=list)
    phases: list["CareerPhase"] = field(default_factory=list)


@dataclass(slots=True)
class CareerPhase:
    """A contiguous stretch of an author's career spent in one community."""

    community: int
    year_start: int
    year_end: int


@dataclass(slots=True)
class Community:
    """A research group: a topic, a favourite venue, and a time window.

    Members are further partitioned into *labs* — the small circles that
    actually co-sign papers together.  Labs are what make co-author pairs
    repeat (η-SCRs); the community level provides occasional cross-lab
    papers and shared venues/topics.
    """

    cid: int
    topic: str
    primary_venue: str
    minor_venues: list[str]
    year_start: int
    year_end: int
    members: list[int] = field(default_factory=list)
    labs: list[list[int]] = field(default_factory=list)
    vocab: list[str] = field(default_factory=list)

    def lab_of(self, aid: int) -> list[int]:
        """The lab containing ``aid`` (the full member list as fallback)."""
        for lab in self.labs:
            if aid in lab:
                return lab
        return self.members


@dataclass(slots=True)
class SyntheticWorld:
    """The generated corpus plus full ground-truth provenance."""

    corpus: Corpus
    authors: dict[int, SyntheticAuthor]
    communities: list[Community]
    config: SyntheticConfig

    def authors_sharing_name(self, name: str) -> list[int]:
        """Ids of the distinct authors hiding behind ``name``."""
        return [a.aid for a in self.authors.values() if a.name == name]


def _zipf_weights(n: int, exponent: float) -> list[float]:
    """Zipfian weights ``1/rank^exponent`` for ``n`` ranks."""
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


class SyntheticDBLP:
    """Generator for a DBLP-like labelled collaboration corpus."""

    def __init__(self, config: SyntheticConfig | None = None):
        self.config = config or SyntheticConfig()
        self._rng = random.Random(self.config.seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(self) -> Corpus:
        """Generate and return only the corpus."""
        return self.generate_world().corpus

    def generate_world(self) -> SyntheticWorld:
        """Generate the corpus together with its ground-truth provenance."""
        cfg = self.config
        names = self._make_name_pool()
        communities = self._make_communities()
        authors = self._make_authors(names, communities)
        papers, transients = self._make_papers(authors, communities, names)
        return SyntheticWorld(
            corpus=Corpus(papers),
            authors={a.aid: a for a in authors + transients},
            communities=communities,
            config=cfg,
        )

    # ------------------------------------------------------------------ #
    # world construction
    # ------------------------------------------------------------------ #
    def _make_name_pool(self) -> list[str]:
        combos = [f"{g} {f}" for f in _FAMILY for g in _GIVEN]
        # Middle-initial variants extend the pool when asked for more names
        # than plain given+family combinations provide.
        for initial in ("Q.", "X."):
            if len(combos) >= self.config.name_pool_size:
                break
            combos += [f"{g} {initial} {f}" for f in _FAMILY for g in _GIVEN]
        self._rng.shuffle(combos)
        return combos[: self.config.name_pool_size]

    def _make_communities(self) -> list[Community]:
        """Communities with topic venues plus cross-topic *shared* venues.

        Real venues are not topic-exclusive — AAAI takes ML, mining and
        vision papers alike.  A pool of general-purpose venues is mixed into
        every community's minor venues, so venue overlap alone cannot
        separate same-name authors of nearby fields (the noise that pushes
        content-only baselines below IUAD in Table III).
        """
        cfg, rng = self.config, self._rng
        topics = list(_TOPIC_VOCAB)
        shared_pool = [f"GEN-{k}" for k in range(cfg.shared_venue_count)]
        venues_by_topic: dict[str, list[str]] = {}
        stem_idx = 0
        for topic in topics:
            venues: list[str] = []
            for k in range(cfg.venues_per_topic):
                stem = _VENUE_STEMS[stem_idx % len(_VENUE_STEMS)]
                stem_idx += 1
                venues.append(f"{stem}-{topic[:4]}{k}")
            venues_by_topic[topic] = venues
        communities: list[Community] = []
        span = cfg.year_end - cfg.year_start
        for cid in range(cfg.n_communities):
            topic = topics[cid % len(topics)]
            venues = venues_by_topic[topic]
            primary = rng.choice(venues)
            minor = [v for v in venues if v != primary]
            minor += rng.sample(shared_pool, k=min(3, len(shared_pool)))
            start = cfg.year_start + rng.randrange(max(1, span - 8))
            full_vocab = _TOPIC_VOCAB[topic]
            communities.append(
                Community(
                    cid=cid,
                    topic=topic,
                    primary_venue=primary,
                    minor_venues=minor,
                    year_start=start,
                    year_end=min(cfg.year_end, start + rng.randrange(6, 14)),
                    # a community works on a sub-specialty: a 14-word slice
                    # of its topic's vocabulary
                    vocab=rng.sample(full_vocab, k=min(14, len(full_vocab))),
                )
            )
        return communities

    def _sample_quota(self) -> int:
        """Draw an author's lead-paper quota from a discrete Pareto tail.

        ``P(quota >= k) = k^(1 - exponent)`` (continuous Pareto floored to an
        integer), capped so a single author cannot swallow the corpus.  The
        resulting quota histogram is the power law behind Figure 3a.
        """
        cfg = self.config
        u = self._rng.random()
        quota = int(u ** (-1.0 / (cfg.productivity_exponent - 1.0)))
        return max(1, min(quota, cfg.productivity_cap))

    def _make_authors(
        self, names: list[str], communities: list[Community]
    ) -> list[SyntheticAuthor]:
        cfg, rng = self.config, self._rng
        name_weights = _zipf_weights(len(names), cfg.name_popularity_exponent)
        by_topic: dict[str, list[Community]] = defaultdict(list)
        for community in communities:
            by_topic[community.topic].append(community)

        authors: list[SyntheticAuthor] = []
        # Names already used per topic: homonyms concentrate inside a topic
        # (a hard, realistic regime — same-name authors in the same field
        # cannot be told apart by topic alone).  Within one *community*,
        # names stay unique: two same-name researchers in the same 10-person
        # group essentially never happens, and allowing it would poison the
        # η-SCR premise itself rather than make the task realistically hard.
        used_by_topic: dict[str, list[str]] = defaultdict(list)
        used_by_community: dict[int, set[str]] = defaultdict(set)
        for aid in range(cfg.n_authors):
            home = communities[aid % len(communities)]
            taken = used_by_community[home.cid]
            used = [n for n in used_by_topic[home.topic] if n not in taken]
            if used and rng.random() < cfg.same_topic_homonym_prob:
                name = rng.choice(used)
            else:
                name = rng.choices(names, weights=name_weights, k=1)[0]
                for _ in range(20):
                    if name not in taken:
                        break
                    name = rng.choices(names, weights=name_weights, k=1)[0]
            used_by_topic[home.topic].append(name)
            taken.add(name)
            vocab = _TOPIC_VOCAB[home.topic]
            author = SyntheticAuthor(
                aid=aid,
                name=name,
                topic=home.topic,
                quota=self._sample_quota(),
                fav_venue=rng.choice([home.primary_venue] + home.minor_venues),
                fav_words=rng.sample(vocab, k=min(cfg.fav_word_count, len(vocab))),
            )
            author.phases = self._make_phases(author, home, by_topic)
            for phase in author.phases:
                communities[phase.community].members.append(aid)
            authors.append(author)
        return authors

    def _make_phases(
        self,
        author: SyntheticAuthor,
        home: Community,
        by_topic: dict[str, list[Community]],
    ) -> list[CareerPhase]:
        cfg, rng = self.config, self._rng
        n_phases = 1
        # Only reasonably productive authors have careers long enough to span
        # several collaborator circles; this is what Stage 2 must stitch back
        # together.
        if author.quota >= cfg.multi_phase_min_quota:
            while n_phases < cfg.max_phases and rng.random() < cfg.phase_change_prob:
                n_phases += 1
        candidates = by_topic[home.topic]
        phases: list[CareerPhase] = []
        community = home
        year = community.year_start + rng.randrange(3)
        for _ in range(n_phases):
            length = rng.randrange(4, 9)
            end = min(cfg.year_end, year + length)
            phases.append(CareerPhase(community.cid, year, end))
            if end >= cfg.year_end:
                break
            # Stay in-topic with high probability so the author's interests
            # and venues remain coherent across the move (what γ3–γ6 detect).
            if rng.random() < 0.85:
                community = rng.choice(candidates)
            else:
                community = rng.choice(by_topic[rng.choice(list(by_topic))])
            year = max(community.year_start, end + 1)
            if year > community.year_end:
                year = community.year_start
        return phases

    # ------------------------------------------------------------------ #
    # paper sampling
    # ------------------------------------------------------------------ #
    def _make_papers(
        self,
        authors: list[SyntheticAuthor],
        communities: list[Community],
        names: list[str],
    ) -> tuple[list[Paper], list[SyntheticAuthor]]:
        """Sample papers lead-first.

        Every author leads ``quota`` papers (shuffled, truncated to
        ``n_papers``); one of the lead's career phases is drawn in proportion
        to its length, and the paper is anchored in that phase's community
        and years.  Repeat co-authors are picked by preferential attachment
        inside the phase circle, producing the η-SCRs of Stage 1 and the
        Figure 3b pair-frequency tail.  With probability
        ``transient_author_prob`` a paper also carries a brand-new one-shot
        author (a student who never publishes again) — the k=1 mass of the
        Figure 3a histogram.
        """
        cfg, rng = self.config, self._rng
        author_by_id = {a.aid: a for a in authors}
        name_weights = _zipf_weights(len(names), cfg.name_popularity_exponent)
        self._carve_labs(communities)
        roster: dict[int, list[int]] = {c.cid: list(c.members) for c in communities}
        roster_weights: dict[int, list[float]] = {
            c.cid: [
                author_by_id[m].quota ** cfg.coauthor_weight_exponent
                for m in roster[c.cid]
            ]
            for c in communities
        }
        # Every author leads exactly ``quota`` papers (cycled/truncated to hit
        # ``n_papers``), so one-paper authors exist in numbers — they are the
        # mass at the low end of the Figure 3a histogram.
        lead_slots: list[int] = []
        for author in authors:
            lead_slots.extend([author.aid] * author.quota)
        rng.shuffle(lead_slots)
        # circles[(aid, cid)] -> (collaborator ids, joint-paper counts): the
        # phase-local collaborator circle used for preferential repeats.
        circles: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        transients: list[SyntheticAuthor] = []
        next_aid = cfg.n_authors

        papers: list[Paper] = []
        n_papers = min(cfg.n_papers, len(lead_slots))
        for pid in range(n_papers):
            lead = author_by_id[lead_slots[pid]]
            phase = self._pick_phase(lead)
            community = communities[phase.community]
            team = self._sample_team(
                lead, community, author_by_id, roster, roster_weights, circles
            )
            year = rng.randint(phase.year_start, phase.year_end)
            # Circles record only regular members: transients must stay
            # one-shot (they are the k=1 mass of Figure 3a), so they never
            # enter anyone's repeat-collaborator pool.
            self._record_collaborations(team, community.cid, circles)
            if rng.random() < cfg.transient_author_prob:
                student = SyntheticAuthor(
                    aid=next_aid,
                    name=rng.choices(names, weights=name_weights, k=1)[0],
                    topic=community.topic,
                    quota=0,
                    phases=[CareerPhase(community.cid, year, year)],
                )
                next_aid += 1
                transients.append(student)
                author_by_id[student.aid] = student
                team.append(student.aid)
            team = self._dedupe_homonyms(team, author_by_id)
            team_names = tuple(author_by_id[aid].name for aid in team)
            papers.append(
                Paper(
                    pid=pid,
                    authors=team_names,
                    title=self._sample_title(community, lead),
                    venue=self._sample_venue(community, lead),
                    year=year,
                    author_ids=tuple(team),
                )
            )
        return papers, transients

    def _carve_labs(self, communities: list[Community]) -> None:
        """Partition each community's members into labs of ``lab_size``."""
        rng, size = self._rng, self.config.lab_size
        for community in communities:
            members = list(community.members)
            rng.shuffle(members)
            community.labs = [
                members[i : i + size] for i in range(0, len(members), size)
            ]

    def _pick_phase(self, author: SyntheticAuthor) -> CareerPhase:
        lengths = [p.year_end - p.year_start + 1 for p in author.phases]
        return self._rng.choices(author.phases, weights=lengths, k=1)[0]

    def _sample_team(
        self,
        lead: SyntheticAuthor,
        community: Community,
        author_by_id: dict[int, SyntheticAuthor],
        roster: dict[int, list[int]],
        roster_weights: dict[int, list[float]],
        circles: dict[tuple[int, int], tuple[list[int], list[int]]],
    ) -> list[int]:
        cfg, rng = self.config, self._rng
        sizes = range(cfg.min_coauthors, cfg.max_coauthors + 1)
        size_weights = [2.0 ** -(k - cfg.min_coauthors) for k in sizes]
        n_co = rng.choices(list(sizes), weights=size_weights, k=1)[0]
        team = [lead.aid]
        members = roster[community.cid]
        weights = roster_weights[community.cid]
        lab = community.lab_of(lead.aid)
        circle = circles.get((lead.aid, community.cid))
        for _ in range(n_co):
            pick: int | None = None
            if circle and circle[0] and rng.random() < cfg.repeat_coauthor_prob:
                # Preferential attachment: repeat collaborators are chosen in
                # proportion to (a damped power of) the number of joint
                # papers so far, which yields the Figure 3b heavy tail.
                damped = [w**cfg.repeat_weight_exponent for w in circle[1]]
                pick = rng.choices(circle[0], weights=damped, k=1)[0]
            elif rng.random() < cfg.external_coauthor_prob:
                other_cid = rng.randrange(len(roster))
                if roster[other_cid]:
                    pick = rng.choice(roster[other_cid])
            elif lab and rng.random() < cfg.lab_pick_prob:
                # Fresh collaborators come from the lead's own lab most of
                # the time — labs are the small circles that co-sign papers
                # again and again, which is what makes pairs η-stable.
                pick = rng.choice(lab)
            if pick is None and members:
                pick = rng.choices(members, weights=weights, k=1)[0]
            if pick is not None and pick not in team:
                team.append(pick)
        return team

    def _dedupe_homonyms(
        self, team: list[int], author_by_id: dict[int, SyntheticAuthor]
    ) -> list[int]:
        """Drop extra team members whose names collide.

        Two homonymous authors on one paper are extremely rare in real data,
        and co-author lists in this library are name-unique.
        """
        seen: set[str] = set()
        out: list[int] = []
        for aid in team:
            name = author_by_id[aid].name
            if name not in seen:
                seen.add(name)
                out.append(aid)
        return out

    def _record_collaborations(
        self,
        team: list[int],
        cid: int,
        circles: dict[tuple[int, int], tuple[list[int], list[int]]],
    ) -> None:
        for i, a in enumerate(team):
            for b in team[i + 1 :]:
                for me, other in ((a, b), (b, a)):
                    ids, counts = circles.setdefault((me, cid), ([], []))
                    try:
                        idx = ids.index(other)
                    except ValueError:
                        ids.append(other)
                        counts.append(1)
                    else:
                        counts[idx] += 1

    def _sample_title(self, community: Community, lead: SyntheticAuthor) -> str:
        """Title keywords: the community's working vocabulary + the lead's
        pet words.

        The pet words persist across the lead's career phases, giving γ3/γ4
        a per-author signal — real authors keep writing about their
        specialty even after moving labs.  Communities use sub-specialty
        vocabularies, so two same-topic homonyms do not share most keywords.
        """
        cfg, rng = self.config, self._rng
        vocab = _TOPIC_VOCAB[community.topic]
        weights = _zipf_weights(len(vocab), 1.05)
        n_words = max(4, int(rng.gauss(cfg.title_len_mean, 1.6)))
        n_fav = min(2, len(lead.fav_words))
        n_topic = max(2, n_words - 2 - n_fav)
        words = rng.choices(vocab, weights=weights, k=n_topic)
        if lead.fav_words:
            words += rng.sample(lead.fav_words, k=n_fav)
        words += rng.choices(_COMMON_WORDS, k=max(0, n_words - len(words)))
        rng.shuffle(words)
        return " ".join(words)

    def _sample_venue(self, community: Community, lead: SyntheticAuthor) -> str:
        """Venue: the lead's favourite, the community's primary, or a minor.

        The favourite-venue habit survives lab moves, which is the per-author
        community stability γ5/γ6 rely on (Dunbar-style stable communities,
        Section V-B3).
        """
        cfg, rng = self.config, self._rng
        if lead.fav_venue and rng.random() < cfg.lead_venue_prob:
            return lead.fav_venue
        if rng.random() < cfg.primary_venue_prob or not community.minor_venues:
            return community.primary_venue
        return rng.choice(community.minor_venues)


def generate_corpus(**overrides) -> Corpus:
    """Convenience one-liner: generate a corpus with config overrides."""
    return SyntheticDBLP(SyntheticConfig(**overrides)).generate()


def generate_world(**overrides) -> SyntheticWorld:
    """Convenience one-liner: generate a full world with config overrides."""
    return SyntheticDBLP(SyntheticConfig(**overrides)).generate_world()


def ambiguous_names(corpus: Corpus, min_authors: int = 2) -> list[str]:
    """Names carried by at least ``min_authors`` ground-truth authors."""
    out: list[str] = []
    for name in corpus.names:
        if len(corpus.authors_of_name(name)) >= min_authors:
            out.append(name)
    return out

def math_sanity() -> float:
    """Tail probability of Eq. 2 — kept here as the calibration touchstone.

    With ``n_a = n_b = 500`` and ``N = 5·10^5`` the probability that two
    independent names co-occur three or more times is ≈ 2.34·10⁻³; the
    generator's preferential attachment makes observed pair frequencies
    exceed this by orders of magnitude, which is the paper's Section IV-A
    argument for trusting η-SCRs.
    """
    mean = var = 0.5
    z = (3 - 0.5 - mean) / math.sqrt(var)
    return 0.5 * math.erfc(z / math.sqrt(2.0))
