"""Streaming parser for the real DBLP XML dump (optional real-data path).

The paper's corpus is the public dump from https://dblp.uni-trier.de/xml/.
This module lets a user with that file run the library on real data; all
experiments also run on the synthetic corpus (see :mod:`repro.data.synthetic`)
so the dump is never required.

The dump is a single huge ``<dblp>`` element whose children are publication
records (``article``, ``inproceedings``, ...).  We stream with
``xml.etree.ElementTree.iterparse`` and clear elements as we go, so memory
stays flat regardless of dump size.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import IO, Iterable, Iterator

from .records import Corpus, Paper

#: DBLP record tags that represent papers with a venue.
PAPER_TAGS = frozenset({"article", "inproceedings", "incollection"})


def _venue_of(elem: ET.Element) -> str | None:
    """Venue string of a record: journal for articles, booktitle otherwise."""
    for tag in ("journal", "booktitle"):
        node = elem.find(tag)
        if node is not None and node.text:
            return node.text.strip()
    return None


def iter_dblp_records(
    source: str | IO[bytes],
    tags: frozenset[str] = PAPER_TAGS,
) -> Iterator[dict[str, object]]:
    """Yield raw paper dicts from a DBLP XML file or file-like object.

    Each dict has keys ``authors`` (list of names), ``title``, ``venue`` and
    ``year``.  Records missing any of those fields are skipped, mirroring the
    paper's preprocessing (every paper must carry all four attributes).
    """
    for _event, elem in ET.iterparse(source, events=("end",)):
        if elem.tag not in tags:
            continue
        authors = [
            (node.text or "").strip()
            for node in elem.findall("author")
            if node.text and node.text.strip()
        ]
        title_node = elem.find("title")
        title = (title_node.text or "").strip() if title_node is not None else ""
        year_node = elem.find("year")
        venue = _venue_of(elem)
        if authors and title and venue and year_node is not None and year_node.text:
            try:
                year = int(year_node.text.strip())
            except ValueError:
                elem.clear()
                continue
            yield {"authors": authors, "title": title, "venue": venue, "year": year}
        elem.clear()


def load_dblp_xml(
    source: str | IO[bytes],
    max_papers: int | None = None,
    dedupe_names: bool = False,
) -> Corpus:
    """Parse a DBLP XML dump into a :class:`~repro.data.records.Corpus`.

    Args:
        source: Path to the (possibly truncated) ``dblp.xml`` file, or an
            open binary file object.
        max_papers: Optional cap on the number of papers to read, for
            sampled runs on the 641k-paper dump.
        dedupe_names: Drop repeated names from a record's author list.
            Off by default: a name listed twice is representable — two
            homonymous co-authors, kept apart by the positional mention
            model — and the default keeps ``dump_dblp_like_xml`` →
            ``load_dblp_xml`` a lossless round trip.  Turn it on to treat
            repeats as the data errors they usually are in the real dump.
    """
    papers: list[Paper] = []
    for pid, raw in enumerate(iter_dblp_records(source)):
        if max_papers is not None and pid >= max_papers:
            break
        authors = list(raw["authors"])  # type: ignore[arg-type]
        if dedupe_names:
            authors = _dedupe_names(authors)
        if not authors:
            continue
        papers.append(
            Paper(
                pid=pid,
                authors=tuple(authors),
                title=str(raw["title"]),
                venue=str(raw["venue"]),
                year=int(raw["year"]),  # type: ignore[arg-type]
            )
        )
    return Corpus(papers)


def _dedupe_names(names: Iterable[str]) -> list[str]:
    """Drop duplicate names while preserving list order."""
    seen: set[str] = set()
    out: list[str] = []
    for name in names:
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out


def dump_dblp_like_xml(corpus: Corpus, path: str) -> None:
    """Write a corpus back out in DBLP's XML shape (round-trip for tests)."""
    root = ET.Element("dblp")
    for paper in corpus:
        record = ET.SubElement(root, "inproceedings", key=f"conf/x/{paper.pid}")
        for name in paper.authors:
            ET.SubElement(record, "author").text = name
        ET.SubElement(record, "title").text = paper.title
        ET.SubElement(record, "booktitle").text = paper.venue
        ET.SubElement(record, "year").text = str(paper.year)
    ET.ElementTree(root).write(path, encoding="utf-8", xml_declaration=True)
