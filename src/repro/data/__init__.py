"""Data substrate: records, synthetic DBLP generator, real-dump parser.

Public entry points:

* :class:`~repro.data.records.Paper`, :class:`~repro.data.records.Corpus` —
  the record model every other subsystem consumes;
* :func:`~repro.data.synthetic.generate_corpus` /
  :func:`~repro.data.synthetic.generate_world` — calibrated synthetic DBLP
  with exact ground truth;
* :func:`~repro.data.dblp.load_dblp_xml` — streaming parser for the real
  DBLP dump;
* :func:`~repro.data.testing.build_testing_dataset` — Table-II-style
  labelled evaluation subset;
* :mod:`~repro.data.powerlaw` — Figure 3 descriptive analysis.
"""

from .dblp import load_dblp_xml
from .powerlaw import (
    PowerLawFit,
    fit_power_law,
    frequency_histogram,
    pair_frequency_distribution,
    papers_per_name_distribution,
)
from .records import Corpus, CorpusStats, Mention, Paper
from .synthetic import (
    SyntheticConfig,
    SyntheticDBLP,
    SyntheticWorld,
    ambiguous_names,
    generate_corpus,
    generate_world,
)
from .testing import (
    NameStats,
    TestingDataset,
    build_testing_dataset,
    render_table2,
    split_for_incremental,
)

__all__ = [
    "Corpus",
    "CorpusStats",
    "Mention",
    "NameStats",
    "Paper",
    "PowerLawFit",
    "SyntheticConfig",
    "SyntheticDBLP",
    "SyntheticWorld",
    "TestingDataset",
    "ambiguous_names",
    "build_testing_dataset",
    "fit_power_law",
    "frequency_histogram",
    "generate_corpus",
    "generate_world",
    "load_dblp_xml",
    "pair_frequency_distribution",
    "papers_per_name_distribution",
    "render_table2",
    "split_for_incremental",
]
