"""Labelled testing-dataset construction (Table II analogue).

The paper evaluates on the intersection of DBLP with the labelled DAminer
set: 50 ambiguous names covering 336 real authors, 1,529 papers inside the
testing set and 3,426 papers across the whole of DBLP.  On the synthetic
corpus we reproduce the same protocol: pick a set of genuinely ambiguous
names (≥2 ground-truth authors) whose per-name author counts resemble
Table II, and evaluate all pairwise metrics over the mentions of those
names.

Ground truth is *positional*: the unit being labelled is the
``(name, paper, position)`` mention, so a paper listing one name twice
(two homonymous co-authors) contributes two separately-labelled units and
a method is rewarded only for keeping them apart.  Evaluation-side
clusterings use the matching ``(pid, position)`` unit (see
``CollaborationNetwork.mention_clusters_of_name``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from .records import Corpus

#: Evaluation unit: ``(paper id, co-author position)``.
MentionUnit = tuple[int, int]


@dataclass(frozen=True, slots=True)
class NameStats:
    """Per-name row of Table II."""

    name: str
    num_authors: int
    num_papers: int

    def as_row(self) -> tuple[str, int, int]:
        return (self.name, self.num_authors, self.num_papers)


@dataclass(slots=True)
class TestingDataset:
    """A labelled evaluation subset: the target names plus ground truth.

    Attributes:
        names: The ambiguous names under evaluation.
        corpus: The full corpus (evaluation looks papers up here).
        truth: ``(name, pid, position) -> ground-truth author id`` for every
            occurrence of a target name.
    """

    names: list[str]
    corpus: Corpus
    truth: dict[tuple[str, int, int], int]

    @property
    def num_authors(self) -> int:
        """Distinct ground-truth authors across all target names."""
        return len(set(self.truth.values()))

    @property
    def num_papers(self) -> int:
        """Distinct papers mentioning at least one target name."""
        return len({pid for (_name, pid, _position) in self.truth})

    def papers_of(self, name: str) -> list[int]:
        """Paper ids on which ``name`` appears (one entry per occurrence)."""
        return self.corpus.papers_of_name(name)

    def true_clusters(self, name: str) -> dict[int, list[MentionUnit]]:
        """Ground-truth clustering of ``name``'s mentions: author id ->
        ``(pid, position)`` units."""
        clusters: dict[int, list[MentionUnit]] = {}
        for pid in dict.fromkeys(self.corpus.papers_of_name(name)):
            for position in self.corpus[pid].positions_of(name):
                aid = self.truth[(name, pid, position)]
                clusters.setdefault(aid, []).append((pid, position))
        return clusters

    def stats(self) -> list[NameStats]:
        """Table II rows for every target name.

        ``num_papers`` counts mentions — identical to the paper count except
        on homonym papers, where each occurrence is its own unit.
        """
        rows = []
        for name in self.names:
            clusters = self.true_clusters(name)
            rows.append(
                NameStats(
                    name=name,
                    num_authors=len(clusters),
                    num_papers=sum(len(v) for v in clusters.values()),
                )
            )
        return rows

    def totals(self) -> tuple[int, int]:
        """(total authors, total papers) across target names — the Table II
        footer (336 / 1,529 in the paper)."""
        return self.num_authors, self.num_papers


def build_testing_dataset(
    corpus: Corpus,
    n_names: int = 50,
    min_authors: int = 2,
    max_authors: int = 17,
    min_papers: int = 4,
    seed: int = 13,
) -> TestingDataset:
    """Select ambiguous names from a labelled corpus for evaluation.

    The paper's testing set (Table II) covers names shared by 2–17 real
    authors with 4–138 papers each; the same profile is enforced here:
    candidates must have ``min_authors``–``max_authors`` ground-truth
    authors and at least ``min_papers`` papers.  Among the qualifying names,
    the ones with the most papers are kept (more pairs, more signal), with a
    random tie-break.  Truth is keyed per positional mention, so homonym
    papers are labelled occurrence-by-occurrence.
    """
    if not corpus.labelled:
        raise ValueError("testing dataset requires a labelled corpus")
    rng = random.Random(seed)
    candidates: list[tuple[int, float, str]] = []
    for name in corpus.names:
        pids = corpus.papers_of_name(name)
        if len(pids) < min_papers:
            continue
        n_authors = len(corpus.authors_of_name(name))
        if not min_authors <= n_authors <= max_authors:
            continue
        candidates.append((len(pids), rng.random(), name))
    candidates.sort(reverse=True)
    chosen = [name for (_p, _r, name) in candidates[:n_names]]
    truth: dict[tuple[str, int, int], int] = {}
    for name in chosen:
        for pid in dict.fromkeys(corpus.papers_of_name(name)):
            paper = corpus[pid]
            for position in paper.positions_of(name):
                truth[(name, pid, position)] = paper.author_id_at(position)
    return TestingDataset(names=chosen, corpus=corpus, truth=truth)


def split_for_incremental(
    dataset: TestingDataset,
    n_new_papers: int,
    seed: int = 17,
) -> tuple[set[int], list[int]]:
    """Split the testing papers for the Table VI incremental experiment.

    Returns ``(base_pids, new_pids)`` where ``new_pids`` are ``n_new_papers``
    papers (the most recent ones, ties broken randomly) treated as the
    newly-published stream and ``base_pids`` is everything else.
    """
    pids = sorted({pid for (_n, pid, _position) in dataset.truth})
    if n_new_papers >= len(pids):
        raise ValueError(
            f"cannot hold out {n_new_papers} of {len(pids)} testing papers"
        )
    rng = random.Random(seed)
    ordered = sorted(pids, key=lambda pid: (dataset.corpus[pid].year, rng.random()))
    new = ordered[-n_new_papers:]
    base = set(ordered[:-n_new_papers])
    return base, new


def render_table2(rows: Sequence[NameStats], totals: tuple[int, int]) -> str:
    """Format Table II as fixed-width text."""
    lines = [f"{'Name':<22}{'#Authors':>10}{'#Papers':>10}"]
    lines += [f"{r.name:<22}{r.num_authors:>10}{r.num_papers:>10}" for r in rows]
    lines.append(f"{'Total':<22}{totals[0]:>10}{totals[1]:>10}")
    return "\n".join(lines)


def per_name_truth(
    dataset: TestingDataset,
) -> Mapping[str, dict[MentionUnit, int]]:
    """Per-name ground truth: name -> {(pid, position) -> author id}."""
    out: dict[str, dict[MentionUnit, int]] = {name: {} for name in dataset.names}
    for (name, pid, position), aid in dataset.truth.items():
        out[name][(pid, position)] = aid
    return out
