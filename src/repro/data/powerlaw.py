"""Power-law descriptive analysis (Figure 3 of the paper).

Figure 3 plots two log-log histograms over the DBLP corpus and annotates
each with the slope of a least-squares line fit in log-log space:

* Figure 3a — number of names publishing ``k`` papers vs ``k``
  (slope ≈ −1.68);
* Figure 3b — number of co-author name pairs co-occurring ``k`` times vs
  ``k`` (slope ≈ −3.17).

This module provides the histogram and the slope fit used by the
``benchmarks/test_fig3_descriptive.py`` bench and by the quickstart example.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from .records import Corpus


@dataclass(frozen=True, slots=True)
class PowerLawFit:
    """A least-squares line fit in log-log space.

    Attributes:
        slope: Fitted exponent (negative for decreasing heavy tails).
        intercept: Fitted log10 intercept.
        r_squared: Coefficient of determination of the fit.
        xs: Distinct frequency values (the histogram support).
        ys: Count of items at each frequency value.
    """

    slope: float
    intercept: float
    r_squared: float
    xs: tuple[int, ...]
    ys: tuple[int, ...]

    def predicted(self) -> np.ndarray:
        """Model counts at the histogram support (for plotting/inspection)."""
        return 10.0 ** (self.intercept + self.slope * np.log10(self.xs))


def frequency_histogram(frequencies: Iterable[int]) -> dict[int, int]:
    """Histogram of a frequency sequence: value -> how many items have it."""
    counts = Counter(int(f) for f in frequencies if f > 0)
    return dict(sorted(counts.items()))


def fit_power_law(
    histogram: Mapping[int, int],
    log_binned: bool = False,
    n_bins: int = 12,
) -> PowerLawFit:
    """Fit ``log10(count) = intercept + slope * log10(value)`` by least squares.

    Mirrors the slope annotation in Figure 3.  Requires at least two distinct
    frequency values.

    Args:
        histogram: frequency value -> number of items with that value.
        log_binned: When true, aggregate the histogram into logarithmically
            spaced bins and fit bin densities instead of raw counts.  Raw
            least squares is biased flat by the sparse tail (many frequency
            values with count 1); log-binning is the standard unbiased
            estimator for power-law exponents and is what the Figure 3 bench
            reports.
        n_bins: Number of logarithmic bins when ``log_binned``.
    """
    xs = np.array(sorted(histogram), dtype=float)
    if xs.size < 2:
        raise ValueError("power-law fit needs at least two distinct frequencies")
    ys = np.array([histogram[int(x)] for x in xs], dtype=float)
    if log_binned:
        fit_x, fit_y = _log_bin(xs, ys, n_bins)
    else:
        fit_x, fit_y = xs, ys
    log_x, log_y = np.log10(fit_x), np.log10(fit_y)
    slope, intercept = np.polyfit(log_x, log_y, deg=1)
    residual = log_y - (intercept + slope * log_x)
    total = log_y - log_y.mean()
    denom = float(total @ total)
    r_squared = 1.0 - float(residual @ residual) / denom if denom > 0 else 1.0
    return PowerLawFit(
        slope=float(slope),
        intercept=float(intercept),
        r_squared=r_squared,
        xs=tuple(int(x) for x in xs),
        ys=tuple(int(y) for y in ys),
    )


def _log_bin(
    xs: np.ndarray, ys: np.ndarray, n_bins: int
) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate a histogram into log-spaced bins, returning bin centres and
    densities (count mass divided by bin width)."""
    edges = np.logspace(0.0, np.log10(xs.max() + 1.0), n_bins)
    centers: list[float] = []
    densities: list[float] = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (xs >= lo) & (xs < hi)
        if mask.any():
            centers.append(float(np.sqrt(lo * hi)))
            densities.append(float(ys[mask].sum() / (hi - lo)))
    if len(centers) < 2:
        return xs, ys
    return np.array(centers), np.array(densities)


def papers_per_name_distribution(corpus: Corpus) -> dict[int, int]:
    """Figure 3a histogram: #papers-per-name value -> #names with that value."""
    return frequency_histogram(
        corpus.name_frequency(name) for name in corpus.names
    )


def pair_frequency_distribution(corpus: Corpus) -> dict[int, int]:
    """Figure 3b histogram: co-pair frequency -> #name-pairs with that value.

    Counts every unordered name pair over all co-author lists (support
    threshold 1), which is the population Figure 3b summarises.
    """
    pair_counts: Counter[tuple[str, str]] = Counter()
    for transaction in corpus.transactions():
        ordered = sorted(transaction)
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                pair_counts[(a, b)] += 1
    return frequency_histogram(pair_counts.values())


def ascii_loglog(histogram: Mapping[int, int], width: int = 48, height: int = 12) -> str:
    """Render a log-log scatter as ASCII art (for terminal reports)."""
    if not histogram:
        return "(empty)"
    xs = np.log10(np.array(sorted(histogram), dtype=float) + 1e-12)
    ys = np.log10(np.array([histogram[k] for k in sorted(histogram)], dtype=float))
    grid = [[" "] * width for _ in range(height)]
    x_span = max(xs.max() - xs.min(), 1e-9)
    y_span = max(ys.max() - ys.min(), 1e-9)
    for x, y in zip(xs, ys):
        col = int((x - xs.min()) / x_span * (width - 1))
        row = height - 1 - int((y - ys.min()) / y_span * (height - 1))
        grid[row][col] = "*"
    return "\n".join("".join(row) for row in grid)
