"""Stage 1 — Stable Collaboration Network construction (paper, Section IV).

The SCN preserves only η-stable collaborative relations (η-SCRs: name pairs
co-occurring in at least η co-author lists) and the stable triangles they
form.  Construction follows the insertion algorithm of Figure 4:

1. η-SCRs are mined with FP-growth and inserted one by one (most frequent
   first, for determinism).
2. When inserting SCR ``(a, b)``, an existing vertex named ``a`` absorbs the
   new relation only if a *stable triangle certifies it*: some neighbour of
   that vertex has a name ``c`` with ``(c, b)`` also an η-SCR.  Otherwise a
   fresh vertex is created — the bottom-up stance that same-name mentions
   are different authors until proven otherwise.
3. When a triangle certifies, its closing SCR edge is materialised at the
   same time (Figure 4, steps ii–iii).
4. Every author mention not covered by any SCR becomes an isolated
   singleton vertex (Figure 4, step v).

Mention assignment is *per occurrence*: the unit being attributed is the
``(paper, name, position)`` :class:`~repro.data.records.Mention`, not a
``(paper, name)`` pair.  A paper listing the same name twice (two
homonymous co-authors) therefore yields two mentions that always land on
two distinct vertices — each paper's occurrences are assigned to disjoint
vertices (see :meth:`SCNBuilder._assign_mentions`), which is what makes the
downstream cannot-link constraint of Stage 2 (two same-paper mentions never
merge) structurally checkable at the network layer.

The binomial tail argument of Section IV-A (why frequent co-occurrence is
never a coincidence) lives in :func:`independence_tail_probability`; the
support threshold η of Definition 2 is the knob the whole stage hangs off.
The similarity functions γ1–γ6 that Stage 2 computes *on top of* this
network are documented in :mod:`repro.similarity.profile`.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from ..data.records import Corpus
from ..fpm.fpgrowth import frequent_pairs
from .collab import CollaborationNetwork

NamePair = tuple[str, str]


@dataclass(frozen=True, slots=True)
class SCNBuildReport:
    """Bookkeeping of one SCN construction run.

    ``n_mentions`` counts author occurrences (the per-occurrence mention
    model): a paper listing one name twice contributes two mentions.  It
    always equals the corpus's author–paper-pair total and the sum of
    per-vertex mention payloads — the reconciliation the tests pin.
    """

    eta: int
    n_scrs: int
    n_vertices: int
    n_mentions: int
    n_edges: int
    n_isolated: int
    n_triangle_certifications: int


def independence_tail_probability(
    n_a: int, n_b: int, n_papers: int, x: int
) -> float:
    """``Pr(X >= x)`` under the independence null (paper, Eq. 1).

    ``X ~ Binom(N, n_a·n_b/N²)`` is the number of co-occurrences of two
    independent names; the normal approximation with continuity correction
    gives the tail.  With the paper's running numbers
    (``n_a = n_b = 500, N = 5·10⁵, x = 3``) this evaluates to
    ``2.3389·10⁻³`` (Eq. 2) — frequent co-occurrence is essentially never
    random, which is why η-SCRs can be trusted.
    """
    if min(n_a, n_b, n_papers, x) < 0 or n_papers == 0:
        raise ValueError("counts must be non-negative and N positive")
    p = (n_a / n_papers) * (n_b / n_papers)
    mean = n_papers * p
    var = n_papers * p * (1.0 - p)
    if var == 0.0:
        return 1.0 if mean >= x else 0.0
    z = ((x - 0.5) - mean) / math.sqrt(var)
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mine_scrs(corpus: Corpus, eta: int) -> dict[NamePair, set[int]]:
    """All η-SCRs with their supporting paper sets ``P_ab``.

    An η-SCR is a name pair co-occurring in at least η co-author lists
    (Definition 2).  The support set carries the actual paper ids because
    SCN edges are paper-annotated (Definition 1).
    """
    pairs = frequent_pairs(corpus.transactions(), eta)
    supports: dict[NamePair, set[int]] = {pair: set() for pair in pairs}
    for paper in corpus:
        ordered = sorted(set(paper.authors))
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if (a, b) in supports:
                    supports[(a, b)].add(paper.pid)
    return supports


class SCNBuilder:
    """Builds the stable collaboration network from a corpus."""

    def __init__(
        self,
        corpus: Corpus,
        eta: int = 2,
        certify_triangles: bool = True,
        require_triangle_instance: bool = True,
    ):
        """
        Args:
            corpus: The paper database.
            eta: Support threshold of stable collaborative relations.
            certify_triangles: When false, a new SCR endpoint is merged with
                *any* existing vertex of the same name (ablation switch; the
                paper's algorithm keeps this on).
            require_triangle_instance: Additionally require at least one
                paper whose co-author list contains all three names of a
                certifying triangle.  The paper states the triangle rule at
                the name level only, which is sound when homonyms are sparse
                (its own Figure 2/4 example does contain such a paper); with
                denser homonymy, a closing SCR formed by *unrelated* authors
                elsewhere in the corpus would falsely certify, so this check
                restores the rule's intended semantics.  Ablation bench
                ``test_ablations.py`` quantifies the effect.
        """
        if eta < 1:
            raise ValueError(f"eta must be >= 1, got {eta}")
        self.corpus = corpus
        self.eta = eta
        self.certify_triangles = certify_triangles
        self.require_triangle_instance = require_triangle_instance
        self._certifications = 0
        self._triples: frozenset[tuple[str, str, str]] = frozenset()
        if require_triangle_instance:
            self._triples = _cooccurring_triples(corpus)

    # ------------------------------------------------------------------ #
    def build(self) -> tuple[CollaborationNetwork, SCNBuildReport]:
        """Run the full Stage-1 construction."""
        scrs = mine_scrs(self.corpus, self.eta)
        net = CollaborationNetwork()
        scr_partners: dict[str, set[str]] = defaultdict(set)
        for a, b in scrs:
            scr_partners[a].add(b)
            scr_partners[b].add(a)

        # Deterministic insertion order: strongest relations first, then
        # lexicographic.  Stronger edges form the cores that later SCRs
        # certify against.
        ordered = sorted(scrs.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        for (a, b), papers in ordered:
            self._insert_scr(net, scrs, scr_partners, a, b, papers)

        self._assign_mentions(net)
        report = SCNBuildReport(
            eta=self.eta,
            n_scrs=len(scrs),
            n_vertices=len(net),
            n_mentions=net.n_mentions,
            n_edges=net.n_edges,
            n_isolated=len(net.isolated_vertices()),
            n_triangle_certifications=self._certifications,
        )
        return net, report

    # ------------------------------------------------------------------ #
    def _insert_scr(
        self,
        net: CollaborationNetwork,
        scrs: dict[NamePair, set[int]],
        scr_partners: dict[str, set[str]],
        a: str,
        b: str,
        papers: set[int],
    ) -> None:
        if self._edge_exists(net, a, b):
            # Already materialised as the closing edge of an earlier
            # triangle certification.
            return
        va = self._certified_vertex(net, scr_partners, a, partner=b)
        vb = self._certified_vertex(net, scr_partners, b, partner=a)
        if va is None:
            va = net.add_vertex(a)
        if vb is None:
            vb = net.add_vertex(b)
        net.add_edge(va, vb, papers)
        # Materialise the closing edges of every certifying triangle
        # (Figure 4 steps ii-iii: inserting (a,c) also creates edge (b,c)).
        for endpoint, anchor_name, other in ((va, a, b), (vb, b, a)):
            other_vid = vb if endpoint == va else va
            for nbr in list(net.neighbors(endpoint)):
                if nbr == other_vid:
                    continue
                nbr_name = net.name_of(nbr)
                closing = _ordered(nbr_name, other)
                if closing not in scrs or net.has_edge(nbr, other_vid):
                    continue
                if self.require_triangle_instance and (
                    _ordered_triple(anchor_name, nbr_name, other)
                    not in self._triples
                ):
                    continue
                net.add_edge(nbr, other_vid, scrs[closing])

    def _certified_vertex(
        self,
        net: CollaborationNetwork,
        scr_partners: dict[str, set[str]],
        name: str,
        partner: str,
    ) -> int | None:
        """Existing vertex of ``name`` certified to absorb SCR (name, partner).

        Certification = a neighbour of the vertex carries a name ``c`` such
        that ``(c, partner)`` is itself an η-SCR, i.e. the three relations
        close a stable collaborative triangle.  Returns the vertex with the
        most certifying neighbours (ties: oldest vertex).
        """
        candidates = net.vertices_of_name(name)
        if not candidates:
            return None
        if not self.certify_triangles:
            return candidates[0]
        partner_scrs = scr_partners.get(partner, set())
        best: int | None = None
        best_score = 0
        for vid in candidates:
            score = 0
            for nbr in net.neighbors(vid):
                nbr_name = net.name_of(nbr)
                if nbr_name not in partner_scrs:
                    continue
                if self.require_triangle_instance and (
                    _ordered_triple(name, nbr_name, partner) not in self._triples
                ):
                    continue
                score += 1
            if score > best_score:
                best, best_score = vid, score
        if best is not None:
            self._certifications += 1
        return best

    @staticmethod
    def _edge_exists(net: CollaborationNetwork, a: str, b: str) -> bool:
        for vid in net.vertices_of_name(a):
            for nbr in net.neighbors(vid):
                if net.name_of(nbr) == b:
                    return True
        return False

    # ------------------------------------------------------------------ #
    def _assign_mentions(self, net: CollaborationNetwork) -> None:
        """Uniquely attribute every author *occurrence* to one vertex.

        The unit is the positional mention ``(paper, name, position)``.
        Occurrences covered by an SCR edge go to the owning vertex (the one
        whose incident edge support contains the paper; ties resolved toward
        the vertex with more attributed papers, then the older vertex);
        uncovered occurrences become isolated singleton vertices (Figure 4,
        step v).

        Within one paper, occurrences are assigned to *disjoint* vertices:
        once a vertex owns an occurrence of the paper it is barred from the
        paper's later occurrences, so a name listed twice (two homonymous
        co-authors) always produces two vertices — the second occurrence
        takes the runner-up SCR vertex, or a fresh singleton when no other
        covering vertex exists.
        """
        # owner candidates: name -> pid -> [vid]
        owners: dict[str, dict[int, list[int]]] = defaultdict(lambda: defaultdict(list))
        for vertex in net:
            for pid in vertex.papers:
                owners[vertex.name][pid].append(vertex.vid)
        # vid -> [(pid, position)]
        assigned: dict[int, list[tuple[int, int]]] = defaultdict(list)
        for paper in self.corpus:
            used: set[int] = set()  # vertices already given an occurrence
            for position, name in enumerate(paper.authors):
                candidates = [
                    vid
                    for vid in owners.get(name, {}).get(paper.pid, [])
                    if vid not in used
                ]
                if not candidates:
                    vid = net.add_vertex(name)
                elif len(candidates) == 1:
                    vid = candidates[0]
                else:
                    vid = max(
                        candidates,
                        key=lambda v: (len(net.papers_of(v)), -v),
                    )
                used.add(vid)
                assigned[vid].append((paper.pid, position))
        for vertex in net:
            net.set_mentions(vertex.vid, assigned.get(vertex.vid, ()))


def build_scn(
    corpus: Corpus,
    eta: int = 2,
    certify_triangles: bool = True,
    require_triangle_instance: bool = True,
) -> tuple[CollaborationNetwork, SCNBuildReport]:
    """Convenience wrapper: build the SCN of ``corpus`` with threshold η."""
    return SCNBuilder(
        corpus, eta, certify_triangles, require_triangle_instance
    ).build()


def _ordered(a: str, b: str) -> NamePair:
    return (a, b) if a <= b else (b, a)


def _ordered_triple(a: str, b: str, c: str) -> tuple[str, str, str]:
    x, y, z = sorted((a, b, c))
    return (x, y, z)


def _cooccurring_triples(corpus: Corpus) -> frozenset[tuple[str, str, str]]:
    """All name triples appearing together on at least one paper."""
    triples: set[tuple[str, str, str]] = set()
    for paper in corpus:
        names = sorted(set(paper.authors))
        n = len(names)
        for i in range(n):
            for j in range(i + 1, n):
                for k in range(j + 1, n):
                    triples.add((names[i], names[j], names[k]))
    return frozenset(triples)
