"""Collaboration network: vertices are author-identity hypotheses.

Definition 1 of the paper: a collaboration network is a graph
``G = (V, E, P)`` where every vertex is an author (here: an author-identity
hypothesis carrying a *name*, a set of papers, and the per-occurrence
*mentions* it owns) and every edge ``(u, v)`` carries the set of papers
``P_uv`` co-authored by ``u`` and ``v``.

The same structure serves both stages: Stage 1 builds it from η-SCRs (high
precision, possibly several vertices per true author), Stage 2 merges
same-name vertices into the global collaboration network.

Mention payloads
----------------

A vertex's ``mentions`` map ``pid -> position`` records which occurrence of
the vertex's name on each paper the vertex owns (the
:class:`~repro.data.records.Mention` identity).  The structural invariant of
the whole pipeline lives here: **a vertex owns at most one mention per
paper** — a real author appears at most once on any co-author list.
:meth:`CollaborationNetwork.add_mention` enforces it on insertion, and
:meth:`CollaborationNetwork.merged` re-checks it when components collapse,
so two same-paper mentions (two homonymous co-authors) can never end up on
one vertex.  ``papers`` remains the plain paper-id view that the similarity
profiles consume; for pipeline-built networks it is exactly
``set(mentions)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from .unionfind import UnionFind

#: A mention unit as stored on vertices: ``(paper id, co-author position)``.
MentionKey = tuple[int, int]

#: The JSON-ready structural state of a network, as produced by
#: :meth:`CollaborationNetwork.export_parts` and consumed by
#: :meth:`CollaborationNetwork.from_parts`:
#: ``(vertices, edges, name_index, next_vid)``.
NetworkParts = tuple[
    list[tuple[int, str, list[int], list[MentionKey]]],
    list[tuple[int, int, list[int]]],
    list[tuple[str, list[int]]],
    int,
]


@dataclass(slots=True)
class Vertex:
    """An author-identity hypothesis: one name plus its attributed papers.

    ``mentions`` maps each attributed paper id to the co-author-list
    position of the occurrence this vertex owns.  At most one position per
    paper — an author never appears twice on one co-author list.
    """

    vid: int
    name: str
    papers: set[int] = field(default_factory=set)
    mentions: dict[int, int] = field(default_factory=dict)

    def __repr__(self) -> str:  # compact debugging output
        return f"Vertex({self.vid}, {self.name!r}, {sorted(self.papers)})"


class CollaborationNetwork:
    """Mutable collaboration network with paper-annotated edges.

    Vertices are addressed by integer ids; an index ``name -> [vid]`` makes
    same-name candidate enumeration (Stage 2) cheap.
    """

    def __init__(self) -> None:
        self._vertices: dict[int, Vertex] = {}
        self._by_name: dict[str, list[int]] = {}
        # adjacency: vid -> {other_vid: set of shared paper ids}
        self._adj: dict[int, dict[int, set[int]]] = {}
        self._next_vid = 0

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_vertex(
        self,
        name: str,
        papers: Iterable[int] = (),
        vid: int | None = None,
        mentions: Iterable[MentionKey] = (),
    ) -> int:
        """Create a vertex for ``name`` and return its id.

        ``vid`` pins an explicit id (used by ``merged(..., preserve_ids=True)``
        so surviving vertices keep their identity across merge rounds);
        fresh ids stay unique either way.  ``mentions`` seeds the
        per-occurrence payload — the mentioned paper ids are attributed
        automatically.
        """
        if vid is None:
            vid = self._next_vid
            self._next_vid += 1
        else:
            if vid in self._vertices:
                raise ValueError(f"vertex id {vid} already exists")
            self._next_vid = max(self._next_vid, vid + 1)
        mention_map = self._as_mention_map(vid, mentions)
        self._vertices[vid] = Vertex(
            vid=vid,
            name=name,
            papers=set(papers) | set(mention_map),
            mentions=mention_map,
        )
        self._by_name.setdefault(name, []).append(vid)
        self._adj[vid] = {}
        return vid

    def add_edge(self, u: int, v: int, papers: Iterable[int]) -> None:
        """Add (or extend) the edge ``(u, v)`` with ``papers``."""
        if u == v:
            raise ValueError(f"self-loop on vertex {u}")
        paper_set = set(papers)
        self._adj[u].setdefault(v, set()).update(paper_set)
        self._adj[v].setdefault(u, set()).update(paper_set)
        self._vertices[u].papers.update(paper_set)
        self._vertices[v].papers.update(paper_set)

    def add_papers(self, vid: int, papers: Iterable[int]) -> None:
        """Attribute extra papers to a vertex (no edge, no mention)."""
        self._vertices[vid].papers.update(papers)

    def set_papers(self, vid: int, papers: Iterable[int]) -> None:
        """Overwrite a vertex's paper attribution.

        The SCN builder uses this to make mention assignment unique when a
        paper's co-author list is covered by SCRs that landed on different
        vertices of the same name (edge paper sets are left untouched — they
        remain the collaboration evidence).
        """
        self._vertices[vid].papers = set(papers)

    # ------------------------------------------------------------------ #
    # mention payloads (per-occurrence identity)
    # ------------------------------------------------------------------ #
    def add_mention(self, vid: int, pid: int, position: int) -> None:
        """Attribute the mention ``(pid, position)`` to ``vid``.

        Enforces the one-mention-per-paper invariant: a vertex that already
        owns an occurrence of ``pid`` cannot absorb a second one — the two
        occurrences are two homonymous co-authors, provably distinct.
        """
        vertex = self._vertices[vid]
        if pid in vertex.mentions:
            raise ValueError(
                f"vertex {vid} already owns a mention of paper {pid} "
                f"(position {vertex.mentions[pid]}); same-paper mentions "
                "are distinct authors"
            )
        vertex.mentions[pid] = position
        vertex.papers.add(pid)

    def set_mentions(self, vid: int, mentions: Iterable[MentionKey]) -> None:
        """Overwrite a vertex's mention payload *and* paper attribution.

        The final step of Stage-1 mention assignment: after it, the vertex's
        attributed papers are exactly the papers of its mentions.
        """
        vertex = self._vertices[vid]
        vertex.mentions = self._as_mention_map(vid, mentions)
        vertex.papers = set(vertex.mentions)

    def mentions_of(self, vid: int) -> dict[int, int]:
        """``pid -> position`` of every mention owned by ``vid``."""
        return dict(self._vertices[vid].mentions)

    @property
    def n_mentions(self) -> int:
        """Total mentions attributed across all vertices (per occurrence)."""
        return sum(len(v.mentions) for v in self._vertices.values())

    @staticmethod
    def _as_mention_map(vid: int, mentions: Iterable[MentionKey]) -> dict[int, int]:
        out: dict[int, int] = {}
        for pid, position in mentions:
            if pid in out:
                raise ValueError(
                    f"vertex {vid}: two mentions of paper {pid} "
                    f"(positions {out[pid]} and {position})"
                )
            out[pid] = position
        return out

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._vertices)

    def __contains__(self, vid: int) -> bool:
        return vid in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex(self, vid: int) -> Vertex:
        return self._vertices[vid]

    def name_of(self, vid: int) -> str:
        return self._vertices[vid].name

    def papers_of(self, vid: int) -> set[int]:
        return self._vertices[vid].papers

    def vertices_of_name(self, name: str) -> list[int]:
        """Ids of all vertices carrying ``name`` (Stage-2 candidates)."""
        return list(self._by_name.get(name, ()))

    def owner_of(
        self, pid: int, position: int, name: str | None = None
    ) -> int | None:
        """The vertex owning mention ``(pid, position)`` — the who-is query.

        With ``name`` the search is confined to that name's vertices (the
        name index makes it cheap, and a mention can only ever be owned by
        a vertex of its own name); without it every vertex is scanned.
        Returns ``None`` when nobody owns the occurrence — possible for
        hand-built networks without mention payloads, or for a position
        that never existed.  This is the one query path shared by the
        incremental duplicate replay
        (:meth:`~repro.core.incremental.IncrementalDisambiguator.add_paper`
        under ``duplicate_paper_policy="return"``) and the serving layer's
        :class:`~repro.service.FittedView` projection builder.
        """
        vids: Iterable[int] = (
            self._by_name.get(name, ()) if name is not None else self._vertices
        )
        for vid in vids:
            if self._vertices[vid].mentions.get(pid) == position:
                return vid
        return None

    @property
    def names(self) -> list[str]:
        return list(self._by_name)

    def neighbors(self, vid: int) -> dict[int, set[int]]:
        """Adjacent vertices with the shared paper set of each edge."""
        return dict(self._adj[vid])

    def adjacency(self, vid: int) -> Mapping[int, set[int]]:
        """Read-only view of ``vid``'s adjacency — no defensive copy.

        The hot paths (WL feature maps, triangle enumeration, BFS
        invalidation balls) walk adjacencies millions of times; copying a
        dict per visit (:meth:`neighbors`) dominates their cost.  Callers
        must not mutate the returned mapping.
        """
        return self._adj[vid]

    def degree(self, vid: int) -> int:
        return len(self._adj[vid])

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, {})

    def edge_papers(self, u: int, v: int) -> set[int]:
        """``P_uv`` — papers of the edge (empty set if absent)."""
        return set(self._adj.get(u, {}).get(v, ()))

    @property
    def n_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> Iterator[tuple[int, int, set[int]]]:
        """All edges as ``(u, v, P_uv)`` with ``u < v``."""
        for u, nbrs in self._adj.items():
            for v, papers in nbrs.items():
                if u < v:
                    yield u, v, set(papers)

    def isolated_vertices(self) -> list[int]:
        """Vertices with no incident edge."""
        return [vid for vid, nbrs in self._adj.items() if not nbrs]

    def remove_isolated_vertex(self, vid: int) -> None:
        """Remove a vertex that has no incident edges.

        Used by the incremental mode to discard probe vertices once their
        mention has been attached elsewhere.  Vertices with edges cannot be
        removed (ids must stay stable for everything else).
        """
        if self._adj[vid]:
            raise ValueError(f"vertex {vid} has edges; only isolated vertices are removable")
        name = self._vertices[vid].name
        self._by_name[name].remove(vid)
        if not self._by_name[name]:
            del self._by_name[name]
        del self._vertices[vid]
        del self._adj[vid]

    # ------------------------------------------------------------------ #
    # persistence (exact structural round-trip)
    # ------------------------------------------------------------------ #
    def export_parts(self) -> "NetworkParts":
        """The complete structural state, in JSON-ready plain containers.

        The counterpart of :meth:`from_parts`: ``(vertices, edges,
        name_index, next_vid)`` where vertices ride in *insertion order*
        (the order ``_vertices`` iterates), ``name_index`` preserves the
        name-index key order and each name's vertex-list order (the order
        Stage-2 candidate enumeration walks — it must survive a save/load
        boundary for incremental decisions to stay deterministic), and
        ``next_vid`` is the id-allocation watermark.  Paper sets and
        mention maps are emitted sorted: they are consumed as sets/maps,
        so sorting costs nothing and keeps serialized snapshots diffable.
        """
        vertices = [
            (
                v.vid,
                v.name,
                sorted(v.papers),
                sorted(v.mentions.items()),
            )
            for v in self._vertices.values()
        ]
        edges = [(u, v, sorted(papers)) for u, v, papers in self.edges()]
        name_index = [
            (name, list(vids)) for name, vids in self._by_name.items()
        ]
        return vertices, edges, name_index, self._next_vid

    @classmethod
    def from_parts(
        cls,
        vertices: Sequence[tuple[int, str, Sequence[int], Sequence[MentionKey]]],
        edges: Sequence[tuple[int, int, Sequence[int]]],
        name_index: Sequence[tuple[str, Sequence[int]]],
        next_vid: int,
    ) -> "CollaborationNetwork":
        """Rebuild a network exactly as :meth:`export_parts` captured it.

        Unlike reconstruction through :meth:`add_vertex`/:meth:`add_edge`,
        this restores the *private* orders too: the name index is written
        verbatim (a network that lost and re-gained a name has an index
        order no insertion replay can reproduce), edge supports never
        leak into vertex paper attributions, and ``next_vid`` is restored
        explicitly — validated against the live ids so a restored network
        can never re-issue a vertex id that is still in use.
        """
        net = cls()
        for vid, name, papers, mentions in vertices:
            if vid in net._vertices:
                raise ValueError(f"duplicate vertex id {vid} in snapshot")
            mention_map = net._as_mention_map(vid, mentions)
            net._vertices[vid] = Vertex(
                vid=vid,
                name=name,
                papers=set(papers) | set(mention_map),
                mentions=mention_map,
            )
            net._adj[vid] = {}
        indexed: set[int] = set()
        for name, vids in name_index:
            if name in net._by_name:
                raise ValueError(
                    f"name index lists {name!r} twice; the second entry "
                    "would shadow the first's vertices"
                )
            for vid in vids:
                vertex = net._vertices.get(vid)
                if vertex is None or vertex.name != name:
                    raise ValueError(
                        f"name index maps {name!r} to vertex {vid}, which "
                        "is missing or carries a different name"
                    )
                if vid in indexed:
                    raise ValueError(f"vertex {vid} indexed twice")
                indexed.add(vid)
            net._by_name[name] = list(vids)
        if indexed != set(net._vertices):
            missing = sorted(set(net._vertices) - indexed)
            raise ValueError(f"vertices missing from name index: {missing[:5]}")
        for u, v, papers in edges:
            if u == v:
                raise ValueError(f"self-loop on vertex {u} in snapshot")
            if u not in net._vertices or v not in net._vertices:
                raise ValueError(f"edge ({u}, {v}) references unknown vertex")
            if v in net._adj[u]:
                raise ValueError(f"edge ({u}, {v}) listed twice in snapshot")
            net._adj[u][v] = set(papers)
            net._adj[v][u] = set(papers)
        if net._vertices and next_vid <= max(net._vertices):
            raise ValueError(
                f"next_vid {next_vid} would re-issue a live vertex id "
                f"(max existing id is {max(net._vertices)})"
            )
        net._next_vid = next_vid
        return net

    # ------------------------------------------------------------------ #
    # merging (Stage 2)
    # ------------------------------------------------------------------ #
    def merged(
        self, union: UnionFind, preserve_ids: bool = False
    ) -> "CollaborationNetwork":
        """A new network with vertices merged according to ``union``.

        Every union-find component becomes one vertex whose papers (and
        mentions) are the union of the members'; parallel edges accumulate
        their paper sets.  Two structural constraints are enforced here
        because the decision stage must never be able to violate them:

        * only same-name merges are legal;
        * no component may carry two mentions of one paper — two same-paper
          occurrences are two homonymous co-authors, provably distinct
          people (the decision loop refuses such unions up front via
          :meth:`UnionFind.forbid`; this re-check is the cheap assertion
          backing it).

        With ``preserve_ids=True`` each component keeps its union-find
        representative's vertex id, so vertices untouched by the round keep
        their identity — the contract that lets a
        :class:`~repro.similarity.profile.SimilarityComputer` carry its
        profile caches across merge rounds (see its ``rebind``).
        """
        out = CollaborationNetwork()
        rep_to_new: dict[int, int] = {}
        for vid, vertex in self._vertices.items():
            rep = union.find(vid) if vid in union else vid
            if rep not in rep_to_new:
                rep_to_new[rep] = out.add_vertex(
                    self._vertices[rep].name if rep in self._vertices else vertex.name,
                    vid=rep if preserve_ids else None,
                )
            new_vid = rep_to_new[rep]
            if out.name_of(new_vid) != vertex.name:
                raise ValueError(
                    f"illegal merge across names: {out.name_of(new_vid)!r} "
                    f"vs {vertex.name!r}"
                )
            out.add_papers(new_vid, vertex.papers)
        for u, v, papers in self.edges():
            nu = rep_to_new[union.find(u) if u in union else u]
            nv = rep_to_new[union.find(v) if v in union else v]
            if nu != nv:
                out.add_edge(nu, nv, papers)
        # add_edge grows vertex paper sets, but edge supports may contain
        # papers whose *mention* is attributed to a different same-name
        # vertex; restore the exact attribution (the union of the members'
        # attributed papers and mentions).
        attribution: dict[int, set[int]] = {}
        merged_mentions: dict[int, dict[int, int]] = {}
        for vid, vertex in self._vertices.items():
            new_vid = rep_to_new[union.find(vid) if vid in union else vid]
            attribution.setdefault(new_vid, set()).update(vertex.papers)
            target = merged_mentions.setdefault(new_vid, {})
            for pid, position in vertex.mentions.items():
                if pid in target and target[pid] != position:
                    raise ValueError(
                        f"illegal merge: component of vertex {new_vid} "
                        f"({vertex.name!r}) would own two mentions of paper "
                        f"{pid} (positions {target[pid]} and {position}) — "
                        "same-paper mentions are distinct authors"
                    )
                target[pid] = position
        for new_vid, papers in attribution.items():
            out.set_papers(new_vid, papers)
            out._vertices[new_vid].mentions = merged_mentions.get(new_vid, {})
        return out

    # ------------------------------------------------------------------ #
    # sharding (subgraph extraction + disjoint-union stitching)
    # ------------------------------------------------------------------ #
    def subnetwork(self, vids: Iterable[int]) -> "CollaborationNetwork":
        """The induced subgraph on ``vids``, with vertex ids preserved.

        Vertices are copied with their paper attribution and mention
        payloads; only edges with *both* endpoints in ``vids`` survive.
        Insertion happens in ascending-vid order, so repeated extractions
        are structurally identical (deterministic name index order).  The
        shard executor uses this twice: to cut a name block (plus its
        profile halo) out of the global SCN, and to drop the halo again
        before a fitted shard is shipped back.
        """
        keep = sorted(set(vids))
        missing = [vid for vid in keep if vid not in self._vertices]
        if missing:
            raise KeyError(f"unknown vertex ids: {missing[:5]}")
        out = CollaborationNetwork()
        for vid in keep:
            vertex = self._vertices[vid]
            out.add_vertex(
                vertex.name,
                papers=vertex.papers,
                vid=vid,
                mentions=[(pid, pos) for pid, pos in vertex.mentions.items()],
            )
        keep_set = set(keep)
        # Walk only the kept vertices' adjacency (not the global edge
        # list): extraction cost scales with the subgraph, which is what
        # keeps many small per-shard cuts cheap on a big network.
        for u in keep:
            for v, papers in self._adj[u].items():
                if u < v and v in keep_set:
                    out.add_edge(u, v, set(papers))
        # add_edge grows paper sets with edge supports; restore the exact
        # attribution copied from the source vertices.
        for vid in keep:
            out.set_papers(vid, self._vertices[vid].papers)
        return out

    # ------------------------------------------------------------------ #
    # evaluation view
    # ------------------------------------------------------------------ #
    def clusters_of_name(self, name: str) -> dict[int, set[int]]:
        """Predicted clustering for ``name``: vertex id -> paper ids."""
        return {
            vid: set(self._vertices[vid].papers)
            for vid in self.vertices_of_name(name)
        }

    def mention_clusters_of_name(self, name: str) -> dict[int, set[MentionKey]]:
        """Predicted clustering for ``name`` at mention granularity.

        Vertex id -> set of ``(pid, position)`` units — the view the
        positional evaluation protocol consumes.  Falls back to position 0
        for papers attributed without an explicit mention payload (networks
        built by hand), so homonym-free graphs behave identically to
        :meth:`clusters_of_name`.
        """
        out: dict[int, set[MentionKey]] = {}
        for vid in self.vertices_of_name(name):
            vertex = self._vertices[vid]
            units = {
                (pid, vertex.mentions.get(pid, 0)) for pid in vertex.papers
            }
            out[vid] = units
        return out


def combine_networks(
    nets: Sequence["CollaborationNetwork"],
) -> tuple["CollaborationNetwork", list[dict[int, int]]]:
    """Disjoint union of several networks under one fresh id space.

    The merge step of the sharded pipeline
    (:mod:`repro.core.sharding`): per-shard networks — whose vertex ids
    collide across shards, or are sparse after per-shard merging — are
    stitched into one global network.  Ids are remapped deterministically:
    networks in list order, vertices in ascending old-id order, new ids
    dense from 0.  Repeated stitches of the same shards therefore produce
    identical graphs.  Returns the combined network plus one
    ``old id -> new id`` mapping per input network.

    Mention payloads are preserved exactly, and two invariants are
    enforced during the stitch:

    * per vertex, at most one mention per paper (``add_vertex`` checks);
    * across *all* inputs, every ``(pid, position)`` occurrence is owned
      at most once — two shards claiming one mention means the partition
      was not a partition, and stitching would silently double-count an
      author occurrence.
    """
    out = CollaborationNetwork()
    mappings: list[dict[int, int]] = []
    owner_of: dict[MentionKey, int] = {}
    for net in nets:
        mapping: dict[int, int] = {}
        for old_vid in sorted(vertex.vid for vertex in net):
            vertex = net.vertex(old_vid)
            mentions = [(pid, pos) for pid, pos in vertex.mentions.items()]
            new_vid = out.add_vertex(vertex.name, mentions=mentions)
            mapping[old_vid] = new_vid
            for key in mentions:
                if key in owner_of:
                    raise ValueError(
                        f"mention {key} owned by two shards (vertices "
                        f"{owner_of[key]} and {new_vid}); the shard "
                        "partition must assign every occurrence once"
                    )
                owner_of[key] = new_vid
        for u, v, papers in net.edges():
            out.add_edge(mapping[u], mapping[v], papers)
        # Restore exact paper attribution: add_edge pushed edge supports
        # into vertex paper sets, but a support paper's mention may be
        # owned by a different same-name vertex (cf. merged()).
        for old_vid, new_vid in mapping.items():
            out.set_papers(new_vid, net.vertex(old_vid).papers)
        mappings.append(mapping)
    return out, mappings
