"""Collaboration-network substrate: graphs, SCN builder, triangles, WL kernel."""

from .collab import CollaborationNetwork, Vertex, combine_networks
from .scn import (
    SCNBuilder,
    SCNBuildReport,
    build_scn,
    independence_tail_probability,
    mine_scrs,
)
from .triangles import (
    coauthor_triangle_names,
    count_triangles,
    iter_triangles,
    maximal_cliques_of_vertex,
    triangles_of_vertex,
)
from .unionfind import UnionFind
from .wl import (
    ball,
    normalized_wl_kernel,
    wl_feature_map,
    wl_kernel,
    wl_similarity,
)

__all__ = [
    "CollaborationNetwork",
    "SCNBuildReport",
    "SCNBuilder",
    "UnionFind",
    "Vertex",
    "ball",
    "build_scn",
    "coauthor_triangle_names",
    "combine_networks",
    "count_triangles",
    "independence_tail_probability",
    "iter_triangles",
    "maximal_cliques_of_vertex",
    "mine_scrs",
    "normalized_wl_kernel",
    "triangles_of_vertex",
    "wl_feature_map",
    "wl_kernel",
    "wl_similarity",
]
