"""Triangle and clique enumeration over collaboration networks.

Triangles are the higher-order stable structures of Stage 1 (a triangle of
η-SCRs is "not a random event" in a scale-free network, Section IV-B), and
the co-author clique coincidence similarity γ2 compares the triangle sets
of two same-name vertices by the *names* of the other participants
(Section V-B1).  The paper restricts clique enumeration to triangles for
speed; we follow that but keep a general clique routine for ablations.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator

from .collab import CollaborationNetwork

NameClique = frozenset[str]


def triangles_of_vertex(net: CollaborationNetwork, vid: int) -> set[frozenset[int]]:
    """All triangles through ``vid`` as frozen vertex-id triples.

    Enumerated by neighbourhood intersection (``N(v) ∩ N(u)`` via C-level
    set ops) rather than per-pair ``has_edge`` probes — on vertices of
    degree ``d`` that turns ``O(d²)`` Python-level calls into ``d`` set
    intersections, the difference between profile construction being
    triangle-bound or not.
    """
    out: set[frozenset[int]] = set()
    nbr_keys = net.adjacency(vid).keys()
    for u in nbr_keys:
        for w in net.adjacency(u).keys() & nbr_keys:
            if u < w:
                out.add(frozenset((vid, u, w)))
    return out


def coauthor_triangle_names(net: CollaborationNetwork, vid: int) -> set[NameClique]:
    """Triangles through ``vid`` keyed by the *names* of the two co-authors.

    Two same-name vertices never share vertex ids, so γ2 compares cliques by
    participant names: ``L(v)`` in Eq. 5 is this set.  Same
    intersection-based enumeration as :func:`triangles_of_vertex`.
    """
    out: set[NameClique] = set()
    nbr_keys = net.adjacency(vid).keys()
    for u in nbr_keys:
        for w in net.adjacency(u).keys() & nbr_keys:
            if u < w:
                out.add(frozenset((net.name_of(u), net.name_of(w))))
    return out


def iter_triangles(net: CollaborationNetwork) -> Iterator[frozenset[int]]:
    """Every triangle in the network exactly once."""
    seen: set[frozenset[int]] = set()
    for vertex in net:
        for tri in triangles_of_vertex(net, vertex.vid):
            if tri not in seen:
                seen.add(tri)
                yield tri


def count_triangles(net: CollaborationNetwork) -> int:
    """Total number of distinct triangles."""
    return sum(1 for _ in iter_triangles(net))


def maximal_cliques_of_vertex(
    net: CollaborationNetwork, vid: int, max_size: int = 6
) -> set[frozenset[int]]:
    """Maximal cliques through ``vid`` up to ``max_size`` vertices.

    Bron–Kerbosch restricted to the closed neighbourhood of ``vid``; used by
    the γ2 ablation that replaces triangles with full cliques.
    """
    nbrs = set(net.neighbors(vid))
    cliques: set[frozenset[int]] = set()

    def expand(current: set[int], candidates: set[int]) -> None:
        if len(current) >= max_size or not candidates:
            if len(current) >= 3:
                cliques.add(frozenset(current))
            return
        extended = False
        for u in sorted(candidates):
            new_candidates = {
                w for w in candidates if w > u and net.has_edge(u, w)
            }
            if len(current) + 1 + len(new_candidates) >= 3:
                extended = True
                expand(current | {u}, new_candidates)
        if not extended and len(current) >= 3:
            cliques.add(frozenset(current))

    expand({vid}, nbrs)
    # Keep only maximal ones.
    maximal = {
        c for c in cliques if not any(c < other for other in cliques)
    }
    return maximal
