"""Weisfeiler–Lehman subgraph kernel (Shervashidze et al., JMLR 2011).

γ1 of the paper (Eq. 3–4) compares the h-hop neighbourhood structure of two
same-name vertices with a normalised WL sub-graph kernel.  The feature map
``φ⟨h⟩(v)`` counts label occurrences over ``h`` rounds of WL label
refinement inside the ball of radius ``h`` around ``v``; the initial vertex
labels are the *co-author names*, so the kernel measures how much the two
vertices' collaboration neighbourhoods look alike, name-wise and
structure-wise.

The normalisation of Eq. 4 (Ah-Pine, 2010) maps the kernel into ``[0, 1]``
so different sub-graph sizes do not distort the similarity.
"""

from __future__ import annotations

from collections import Counter, deque

from .collab import CollaborationNetwork

FeatureMap = Counter  # label -> occurrence count


def ball(net: CollaborationNetwork, vid: int, radius: int) -> set[int]:
    """Vertices within ``radius`` hops of ``vid`` (BFS ball, inclusive)."""
    seen = {vid}
    frontier = deque([(vid, 0)])
    while frontier:
        node, depth = frontier.popleft()
        if depth == radius:
            continue
        for nbr in net.adjacency(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append((nbr, depth + 1))
    return seen


def multi_source_ball(
    net: CollaborationNetwork, seeds, radius: int
) -> set[int]:
    """Vertices within ``radius`` hops of *any* seed (multi-source BFS).

    The shared traversal behind cache invalidation
    (``SimilarityComputer.invalidate_many``) and the streaming walk's
    value stains — one implementation, so the two can never drift apart
    (the parity contract of :mod:`repro.core.streaming` depends on their
    equivalence).  Unknown seeds are ignored by callers before calling.
    """
    seen = set(seeds)
    frontier = list(seen)
    for _ in range(radius):
        next_frontier: list[int] = []
        for vid in frontier:
            for nbr in net.adjacency(vid):
                if nbr not in seen:
                    seen.add(nbr)
                    next_frontier.append(nbr)
        frontier = next_frontier
    return seen


def wl_feature_map(
    net: CollaborationNetwork,
    vid: int,
    h: int = 2,
) -> FeatureMap:
    """``φ⟨h⟩(v)``: WL label histogram of the radius-``h`` ball around ``v``.

    Labels start as vertex names (iteration 0) and are refined ``h`` times
    by hashing each vertex's label together with the sorted multiset of its
    neighbours' labels.  The returned counter aggregates all iterations;
    the anchor vertex's own name is excluded at iteration 0 (two same-name
    vertices trivially share it).
    """
    if h < 0:
        raise ValueError(f"h must be >= 0, got {h}")
    nodes = ball(net, vid, h)
    labels: dict[int, str] = {u: net.name_of(u) for u in nodes}
    features: FeatureMap = Counter()
    for u in nodes:
        if u != vid:
            features[("0", labels[u])] += 1
    for iteration in range(1, h + 1):
        new_labels: dict[int, str] = {}
        for u in nodes:
            neighbour_labels = sorted(
                labels[w] for w in net.adjacency(u) if w in nodes
            )
            signature = labels[u] + "|" + ",".join(neighbour_labels)
            new_labels[u] = signature
        labels = new_labels
        for u in nodes:
            features[(str(iteration), labels[u])] += 1
    return features


def wl_kernel(phi_u: FeatureMap, phi_v: FeatureMap) -> float:
    """``K⟨h⟩(u, v) = <φ(u), φ(v)>`` (Eq. 3)."""
    if len(phi_v) < len(phi_u):
        phi_u, phi_v = phi_v, phi_u
    return float(sum(count * phi_v[label] for label, count in phi_u.items()))


def normalized_wl_kernel(phi_u: FeatureMap, phi_v: FeatureMap) -> float:
    """Cosine-normalised WL kernel (Eq. 4), in ``[0, 1]``.

    Returns 0 when either vertex has an empty feature map (isolated
    singleton vertices have no co-author neighbourhood to compare).
    """
    k_uu = wl_kernel(phi_u, phi_u)
    k_vv = wl_kernel(phi_v, phi_v)
    if k_uu == 0.0 or k_vv == 0.0:
        return 0.0
    return wl_kernel(phi_u, phi_v) / ((k_uu * k_vv) ** 0.5)


def wl_similarity(
    net: CollaborationNetwork, u: int, v: int, h: int = 2
) -> float:
    """One-shot normalised WL similarity between two vertices."""
    return normalized_wl_kernel(
        wl_feature_map(net, u, h), wl_feature_map(net, v, h)
    )
