"""Disjoint-set union (union-find) with path compression and union by size.

The GCN construction stage merges same-name SCN vertices whose matching
score clears the decision threshold δ; merges are transitive, so the final
vertex set is the set of union-find components.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Key = Hashable


class UnionFind:
    """Classic disjoint-set structure over arbitrary hashable keys."""

    def __init__(self, keys: Iterable[Key] = ()):
        self._parent: dict[Key, Key] = {}
        self._size: dict[Key, int] = {}
        for key in keys:
            self.add(key)

    def add(self, key: Key) -> None:
        """Register ``key`` as a singleton set (no-op if present)."""
        if key not in self._parent:
            self._parent[key] = key
            self._size[key] = 1

    def __contains__(self, key: Key) -> bool:
        return key in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, key: Key) -> Key:
        """Canonical representative of ``key``'s set (with path compression)."""
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def union(self, a: Key, b: Key) -> Key:
        """Merge the sets of ``a`` and ``b``; returns the surviving root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return ra

    def connected(self, a: Key, b: Key) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[Key, list[Key]]:
        """All sets: representative -> sorted member list."""
        out: dict[Key, list[Key]] = {}
        for key in self._parent:
            out.setdefault(self.find(key), []).append(key)
        for members in out.values():
            members.sort(key=repr)
        return out

    def __iter__(self) -> Iterator[Key]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets."""
        return sum(1 for key in self._parent if self._parent[key] == key)
