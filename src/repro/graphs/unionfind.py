"""Disjoint-set union (union-find) with path compression and union by size.

The GCN construction stage merges same-name SCN vertices whose matching
score clears the decision threshold δ; merges are transitive, so the final
vertex set is the set of union-find components.

Cannot-link constraints
-----------------------

Stage 2 must never merge two vertices owning mentions of the same paper —
two same-paper occurrences of a name are two homonymous co-authors,
provably distinct people.  Because merges are transitive, the constraint
has to hold at *component* level (``t1–x`` and ``t2–x`` must not chain
``t1`` and ``t2`` together), so it lives here rather than in the decision
loop: :meth:`UnionFind.forbid` registers a cannot-link between two
components, :meth:`UnionFind.allowed` asks whether a union would violate
one, and :meth:`UnionFind.union` raises on a forbidden merge (callers are
expected to check :meth:`allowed` first; the raise is the backstop
assertion).  Constraint sets ride along with the roots as components
merge, so transitive chains are covered for free.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

Key = Hashable


class UnionFind:
    """Classic disjoint-set structure over arbitrary hashable keys."""

    def __init__(self, keys: Iterable[Key] = ()):
        self._parent: dict[Key, Key] = {}
        self._size: dict[Key, int] = {}
        # root -> set of roots its component must never join.  Mirrored
        # symmetrically; empty for the (common) unconstrained case.
        self._forbidden: dict[Key, set[Key]] = {}
        for key in keys:
            self.add(key)

    def add(self, key: Key) -> None:
        """Register ``key`` as a singleton set (no-op if present)."""
        if key not in self._parent:
            self._parent[key] = key
            self._size[key] = 1

    def __contains__(self, key: Key) -> bool:
        return key in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, key: Key) -> Key:
        """Canonical representative of ``key``'s set (with path compression)."""
        root = key
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[key] != root:
            self._parent[key], key = root, self._parent[key]
        return root

    def forbid(self, a: Key, b: Key) -> None:
        """Register a cannot-link: the sets of ``a`` and ``b`` must never merge.

        Raises if the two keys are already in one set (the constraint is
        unenforceable after the fact).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            raise ValueError(
                f"cannot-link between {a!r} and {b!r}: already in one set"
            )
        self._forbidden.setdefault(ra, set()).add(rb)
        self._forbidden.setdefault(rb, set()).add(ra)

    def allowed(self, a: Key, b: Key) -> bool:
        """Whether merging the sets of ``a`` and ``b`` would violate a
        cannot-link (component-aware, so transitive chains are covered)."""
        if not self._forbidden:
            return True
        return self.find(b) not in self._forbidden.get(self.find(a), ())

    def union(self, a: Key, b: Key) -> Key:
        """Merge the sets of ``a`` and ``b``; returns the surviving root.

        Raises on a merge forbidden by :meth:`forbid` — check
        :meth:`allowed` first when skipping is the intended behaviour.
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if rb in self._forbidden.get(ra, ()):
            raise ValueError(
                f"cannot-link violated: union of {a!r} and {b!r}"
            )
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        if self._forbidden:
            absorbed = self._forbidden.pop(rb, None)
            if absorbed:
                mine = self._forbidden.setdefault(ra, set())
                for other in absorbed:
                    self._forbidden[other].discard(rb)
                    self._forbidden[other].add(ra)
                    mine.add(other)
        return ra

    def connected(self, a: Key, b: Key) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def groups(self) -> dict[Key, list[Key]]:
        """All sets: representative -> sorted member list."""
        out: dict[Key, list[Key]] = {}
        for key in self._parent:
            out.setdefault(self.find(key), []).append(key)
        for members in out.values():
            members.sort(key=repr)
        return out

    def __iter__(self) -> Iterator[Key]:
        return iter(self._parent)

    @property
    def n_components(self) -> int:
        """Number of disjoint sets."""
        return sum(1 for key in self._parent if self._parent[key] == key)
