"""Research-community similarities: γ5 (Eq. 8) and γ6 (Eq. 9).

Authors have stable research communities (the paper invokes Dunbar's
number); venues are the observable trace.  γ5 compares the two vertices'
*representative* (most frequent) venues; γ6 is an Adamic/Adar-weighted
overlap over all venues, emphasising small minority venues.  As with γ4,
the rarity weight ``1/log F_H(h)`` is implemented as ``1/log(1 + F_H(h))``
to stay finite for venues with a single paper.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping


def representative_community_similarity(
    venues_u: Counter[str],
    venues_v: Counter[str],
    top_venue_u: str | None,
    top_venue_v: str | None,
    tau: int,
) -> float:
    """γ5 (Eq. 8): cross-counts of each vertex's representative venue.

    ``γ5 = (cnt(H(v), h_u) + cnt(H(u), h_v)) / τ`` where ``h_u`` is the most
    frequent venue of ``u`` and ``cnt(H, h)`` the multiplicity of ``h`` in
    the venue multiset ``H``.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    total = 0
    if top_venue_u is not None:
        total += venues_v.get(top_venue_u, 0)
    if top_venue_v is not None:
        total += venues_u.get(top_venue_v, 0)
    return total / tau


def research_community_similarity(
    venues_u: Counter[str],
    venues_v: Counter[str],
    venue_frequencies: Mapping[str, int],
    tau: int,
) -> float:
    """γ6 (Eq. 9): Adamic/Adar overlap of the venue multisets.

    ``γ6 = (1/τ) Σ_{h ∈ H(u) ∩ H(v)} min(cnt_u(h), cnt_v(h)) / log(1+F_H(h))``

    The multiset intersection counts each common venue with multiplicity
    ``min`` of the two sides, so repeatedly co-publishing in the same small
    venue keeps adding evidence.
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    if len(venues_v) < len(venues_u):
        venues_u, venues_v = venues_v, venues_u
    total = 0.0
    for venue, count_u in venues_u.items():
        count_v = venues_v.get(venue)
        if count_v is None:
            continue
        freq = venue_frequencies.get(venue, 1)
        total += min(count_u, count_v) / math.log(1.0 + freq)
    return total / tau
