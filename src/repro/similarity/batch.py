"""Batched similarity engine: vectorised γ1–γ6 over whole pair lists.

The per-pair path in :mod:`.profile` walks Python dicts for every candidate
pair; with tens of thousands of same-name pairs (Table V scales) that loop
dominates Stage 2.  This module keeps a *columnar* mirror of the vertex
profiles — every per-vertex feature multiset (keywords, venues, WL labels,
triangles) is interned into a global column space and stored as aligned
``(column, value)`` arrays — and evaluates all six similarity functions for
an entire pair list with numpy/scipy sparse kernels:

======  =======  ============================  ===============================
γ       paper    per-pair form                 batched form
======  =======  ============================  ===============================
γ1      Eq. 3    WL feature-map dot product    CSR row slice · elementwise
                                               multiply
γ2      Eq. 5    triangle-set intersection     binary CSR multiply, row sums
γ3      Eq. 6    centroid / multiset cosine    dense einsum with
                                               sparse-cosine fallback
γ4      Eq. 7    shared-keyword year decay     aligned COO data arrays +
                                               ``bincount``
γ5      Eq. 8    representative-venue counts   vectorised CSR element lookup
γ6      Eq. 9    venue Adamic/Adar overlap     aligned COO minimum +
                                               ``bincount``
======  =======  ============================  ===============================

Identity model: profiles (and hence the columnar mirrors) are keyed by
*vertex id*, and a vertex's papers are derived from its per-occurrence
mention payload (``(paper, name, position)`` — see
:mod:`repro.graphs.collab`).  Two homonymous co-authors of one paper are
two vertices, so their mirrors never alias even though the underlying
paper and name coincide.

Cache semantics: the engine caches one :class:`VertexArrays` per vertex id,
derived from the corresponding :class:`~.profile.VertexProfile`.  The owner
(:class:`~.profile.SimilarityComputer`) invalidates both caches together —
see its ``invalidate``/``rebind`` docs for the hop-radius contract.  Interned
column ids are grow-only, so cached per-vertex column arrays stay valid as
the vocabulary expands (new papers, new venues).

Numerical contract: every γ matches the scalar path of :mod:`.profile` to
well below 1e-9 (the only differences are floating-point summation order);
``tests/test_batch_engine.py`` pins this down property-style.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np
from scipy import sparse

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # only for annotations — profile.py imports this module
    from .profile import VertexProfile

Pair = tuple[int, int]

#: Stored usage years are shifted by +1 so every stored LO/HI value is
#: strictly positive — scipy sparse ops may silently drop explicit zeros,
#: and a year-0 entry must survive the shared-support intersection.
_YEAR_SHIFT = 1.0


class FeatureInterner:
    """Grow-only mapping from hashable feature keys to dense column ids."""

    __slots__ = ("_index",)

    def __init__(self) -> None:
        self._index: dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self._index)

    def intern(self, key: Hashable) -> int:
        """Column id of ``key``, allocating the next id on first sight."""
        idx = self._index.get(key)
        if idx is None:
            idx = len(self._index)
            self._index[key] = idx
        return idx


@dataclass(slots=True)
class VertexArrays:
    """Columnar mirror of one :class:`VertexProfile`.

    All keyword-aligned arrays (``kw_cols``/``kw_counts``/``kw_lohi``)
    share one ordering, sorted by column id so CSR rows assembled from them
    are canonical without a per-call sort.
    """

    vid: int
    n_papers: int
    kw_cols: np.ndarray        # int64, sorted
    kw_counts: np.ndarray      # float64
    kw_lohi: np.ndarray        # complex128: (min year + i·max year) + _YEAR_SHIFT
    kw_norm: float             # ‖keyword multiset‖₂
    ven_cols: np.ndarray       # int64, sorted
    ven_counts: np.ndarray     # float64
    top_venue_col: int         # -1 when the vertex has no venues
    tri_cols: np.ndarray       # int64, sorted triangle ids
    wl_cols: np.ndarray        # int64, sorted WL label ids
    wl_counts: np.ndarray      # float64
    wl_norm: float             # sqrt(K⟨h⟩(v, v))
    centroid: np.ndarray | None
    centroid_norm: float
    cent_slot: int             # row in the engine's dense store, -1 if none


def _sorted_cols(cols: list[int], *data: list[float]) -> tuple[np.ndarray, ...]:
    """Sort aligned (cols, data...) lists by column id, as numpy arrays."""
    col_arr = np.asarray(cols, dtype=np.int64)
    data_arrs = [np.asarray(d, dtype=np.float64) for d in data]
    if len(col_arr) > 1:
        order = np.argsort(col_arr, kind="stable")
        col_arr = col_arr[order]
        data_arrs = [d[order] for d in data_arrs]
    return (col_arr, *data_arrs)


class BatchSimilarityEngine:
    """Round-persistent columnar profile store + vectorised γ evaluation.

    One engine lives inside each :class:`~.profile.SimilarityComputer`; the
    interners (and thus column ids) persist for the computer's lifetime, so
    per-vertex arrays survive merge rounds untouched unless explicitly
    invalidated.
    """

    def __init__(
        self,
        word_frequencies: Mapping[str, int],
        venue_frequencies: Mapping[str, int],
    ) -> None:
        self._word_frequencies = word_frequencies
        self._venue_frequencies = venue_frequencies
        self._kw = FeatureInterner()
        self._kw_weight: list[float] = []   # 1 / log(1 + F_B(word)), by col
        self._ven = FeatureInterner()
        self._ven_weight: list[float] = []  # 1 / log(1 + F_H(venue)), by col
        self._wl = FeatureInterner()
        self._tri = FeatureInterner()
        self._arrays: dict[int, VertexArrays] = {}
        self._kw_weight_arr = np.empty(0, dtype=np.float64)
        self._ven_weight_arr = np.empty(0, dtype=np.float64)
        # Contiguous centroid store: vertices with a γ3 centroid own a row
        # (``cent_slot``); freed slots are recycled on invalidation.
        self._cent_matrix: np.ndarray | None = None
        self._cent_free: list[int] = []
        self._cent_used = 0

    # ------------------------------------------------------------------ #
    # cache maintenance
    # ------------------------------------------------------------------ #
    def invalidate(self, vid: int) -> None:
        """Drop the cached columnar arrays of ``vid``."""
        arrays = self._arrays.pop(vid, None)
        if arrays is not None and arrays.cent_slot >= 0:
            self._cent_free.append(arrays.cent_slot)

    def clear(self) -> None:
        """Drop every cached per-vertex array (interners are kept)."""
        self._arrays.clear()
        self._cent_free.clear()
        self._cent_used = 0

    def __contains__(self, vid: int) -> bool:
        return vid in self._arrays

    # ------------------------------------------------------------------ #
    # interning
    # ------------------------------------------------------------------ #
    def _intern_keyword(self, word: str) -> int:
        before = len(self._kw)
        idx = self._kw.intern(word)
        if len(self._kw) != before:
            freq = self._word_frequencies.get(word, 1)
            self._kw_weight.append(1.0 / math.log(1.0 + freq))
        return idx

    def _intern_venue(self, venue: str) -> int:
        before = len(self._ven)
        idx = self._ven.intern(venue)
        if len(self._ven) != before:
            freq = self._venue_frequencies.get(venue, 1)
            self._ven_weight.append(1.0 / math.log(1.0 + freq))
        return idx

    def _kw_weights(self) -> np.ndarray:
        if self._kw_weight_arr.size != len(self._kw_weight):
            self._kw_weight_arr = np.asarray(self._kw_weight, dtype=np.float64)
        return self._kw_weight_arr

    def _ven_weights(self) -> np.ndarray:
        if self._ven_weight_arr.size != len(self._ven_weight):
            self._ven_weight_arr = np.asarray(
                self._ven_weight, dtype=np.float64
            )
        return self._ven_weight_arr

    # ------------------------------------------------------------------ #
    # per-vertex array construction
    # ------------------------------------------------------------------ #
    def arrays_of(self, profile: VertexProfile) -> VertexArrays:
        """The (cached) columnar arrays of ``profile``'s vertex."""
        cached = self._arrays.get(profile.vid)
        if cached is not None:
            return cached
        built = self._build(profile)
        self._arrays[profile.vid] = built
        return built

    def _build(self, profile: VertexProfile) -> VertexArrays:
        kw_cols: list[int] = []
        kw_counts: list[float] = []
        kw_lo: list[float] = []
        kw_hi: list[float] = []
        for word, count in profile.keywords.items():
            kw_cols.append(self._intern_keyword(word))
            kw_counts.append(float(count))
            lo, hi = profile.keyword_years[word]
            kw_lo.append(lo + _YEAR_SHIFT)
            kw_hi.append(hi + _YEAR_SHIFT)
        kw_cols_a, kw_counts_a, kw_lo_a, kw_hi_a = _sorted_cols(
            kw_cols, kw_counts, kw_lo, kw_hi
        )
        # Fuse the usage-year window into one complex layer (lo + i·hi): a
        # single sparse multiply restricts both endpoints to a pair's shared
        # keyword support at once.
        kw_lohi_a = kw_lo_a + 1j * kw_hi_a

        ven_cols: list[int] = []
        ven_counts: list[float] = []
        for venue, count in profile.venues.items():
            ven_cols.append(self._intern_venue(venue))
            ven_counts.append(float(count))
        ven_cols_a, ven_counts_a = _sorted_cols(ven_cols, ven_counts)
        top_col = (
            self._intern_venue(profile.top_venue)
            if profile.top_venue is not None
            else -1
        )

        tri_cols_a = np.sort(
            np.asarray(
                [self._tri.intern(t) for t in profile.triangles], dtype=np.int64
            )
        )

        wl_cols: list[int] = []
        wl_counts: list[float] = []
        for label, count in profile.wl_features.items():
            wl_cols.append(self._wl.intern(label))
            wl_counts.append(float(count))
        wl_cols_a, wl_counts_a = _sorted_cols(wl_cols, wl_counts)

        centroid = profile.centroid
        return VertexArrays(
            vid=profile.vid,
            n_papers=profile.n_papers,
            kw_cols=kw_cols_a,
            kw_counts=kw_counts_a,
            kw_lohi=kw_lohi_a,
            kw_norm=float(np.sqrt(np.sum(kw_counts_a * kw_counts_a))),
            ven_cols=ven_cols_a,
            ven_counts=ven_counts_a,
            top_venue_col=top_col,
            tri_cols=tri_cols_a,
            wl_cols=wl_cols_a,
            wl_counts=wl_counts_a,
            wl_norm=float(np.sqrt(np.sum(wl_counts_a * wl_counts_a))),
            centroid=centroid,
            centroid_norm=(
                float(np.linalg.norm(centroid)) if centroid is not None else 0.0
            ),
            cent_slot=self._store_centroid(centroid),
        )

    def _store_centroid(self, centroid: np.ndarray | None) -> int:
        """Copy ``centroid`` into the dense store; returns its slot (or -1)."""
        if centroid is None:
            return -1
        if self._cent_matrix is None:
            self._cent_matrix = np.zeros(
                (64, centroid.shape[0]), dtype=np.float64
            )
        if self._cent_free:
            slot = self._cent_free.pop()
        else:
            slot = self._cent_used
            self._cent_used += 1
            if slot >= self._cent_matrix.shape[0]:
                grown = np.zeros(
                    (2 * self._cent_matrix.shape[0], self._cent_matrix.shape[1]),
                    dtype=np.float64,
                )
                grown[: self._cent_matrix.shape[0]] = self._cent_matrix
                self._cent_matrix = grown
        self._cent_matrix[slot] = centroid
        return slot

    # ------------------------------------------------------------------ #
    # batched γ evaluation
    # ------------------------------------------------------------------ #
    def gamma_matrix(
        self,
        pairs: Sequence[Pair],
        profile_of: Callable[[int], VertexProfile],
        alpha: float,
        transient: frozenset[int] = frozenset(),
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """``(n_pairs, 6)`` γ matrix, numerically matching the scalar path.

        Args:
            pairs: Vertex-id pairs to score.
            profile_of: Profile accessor (normally the owning computer's
                cached ``profile`` method).
            alpha: Decay α of the time-consistency similarity (Eq. 7).
            transient: Vertex ids scored *once and discarded*: their
                columnar arrays are built for this call but never enter
                the per-vertex cache, and their centroid slots are
                released on return — the probe-vs-existing scoring mode
                for callers that score throwaway vertices and will not
                read them again (a caller that *will* re-read its probes,
                like the streaming walk's inline patching, should leave
                them cacheable instead).  A transient vid that happens to
                be cached already is served from (and left in) the cache.
            out: Optional preallocated ``(n_pairs, 6)`` float64 buffer
                the γ columns are written into (e.g. a shared-memory
                view of the sharded executor, whose workers then ship no
                result arrays at all).  Returned for convenience.
        """
        n = len(pairs)
        if out is None:
            out = np.empty((n, 6), dtype=np.float64)
        elif out.shape != (n, 6):
            raise ValueError(
                f"out buffer has shape {out.shape}, expected {(n, 6)}"
            )
        if n == 0:
            return out
        pairs_arr = np.asarray(pairs, dtype=np.int64).reshape(n, 2)
        vids = np.unique(pairs_arr)
        cached = self._arrays.get
        rows: list[VertexArrays] = []
        borrowed: list[VertexArrays] = []
        for vid in vids.tolist():
            arrays = cached(vid)
            if arrays is None:
                if vid in transient:
                    arrays = self._build(profile_of(vid))
                    borrowed.append(arrays)
                else:
                    arrays = self.arrays_of(profile_of(vid))
            rows.append(arrays)
        us = np.searchsorted(vids, pairs_arr[:, 0])
        vs = np.searchsorted(vids, pairs_arr[:, 1])

        # One pass over the per-vertex scalars; the keyword family is
        # assembled once and shared by γ3 (counts) and γ4 (year windows).
        scalars = np.array(
            [
                (
                    a.n_papers,
                    a.wl_norm,
                    a.kw_norm,
                    a.centroid_norm,
                    float(a.top_venue_col),
                    float(a.cent_slot),
                )
                for a in rows
            ],
            dtype=np.float64,
        )
        n_papers, wl_norms, kw_norms, cent_norms, top_cols, cent_slots = (
            scalars.T
        )
        tau = np.maximum(1.0, np.minimum(n_papers[us], n_papers[vs]))

        kw_counts, kw_ind, kw_lohi = self._family(
            [a.kw_cols for a in rows],
            [[a.kw_counts for a in rows], None, [a.kw_lohi for a in rows]],
            len(self._kw),
        )

        out[:, 0] = self._gamma1(rows, us, vs, wl_norms)
        out[:, 1] = self._gamma2(rows, us, vs) / tau
        out[:, 2] = self._gamma3(
            us, vs, kw_counts, kw_norms, cent_norms, cent_slots
        )
        out[:, 3] = self._gamma4(us, vs, kw_ind, kw_lohi, alpha) / tau
        gamma5, gamma6 = self._gamma56(rows, us, vs, top_cols)
        out[:, 4] = gamma5 / tau
        out[:, 5] = gamma6 / tau
        # Release transient centroid slots only now — γ3 read them above.
        for arrays in borrowed:
            if arrays.cent_slot >= 0:
                self._cent_free.append(arrays.cent_slot)
        return out

    # -- assembly helpers ---------------------------------------------- #
    @staticmethod
    def _family(
        cols: list[np.ndarray],
        data: Sequence[list[np.ndarray] | None],
        width: int,
    ) -> list[sparse.csr_matrix]:
        """CSR matrices (one row per vertex) sharing a sparsity structure.

        Every returned matrix reuses the same ``indptr``/``indices`` built
        from the per-vertex column arrays; each entry of ``data`` supplies
        one value layer (``None`` → binary indicator).  Column arrays are
        pre-sorted per vertex, so the results are canonical.
        """
        lengths = np.fromiter(
            (c.size for c in cols), dtype=np.int64, count=len(cols)
        )
        indptr = np.zeros(len(cols) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = (
            np.concatenate(cols) if cols else np.empty(0, dtype=np.int64)
        )
        shape = (len(cols), max(width, 1))
        out: list[sparse.csr_matrix] = []
        for layer in data:
            if layer is None:
                values = np.ones(indices.size, dtype=np.float64)
            elif layer:
                values = np.concatenate(layer)
            else:
                values = np.empty(0, dtype=np.float64)
            mat = sparse.csr_matrix(shape, dtype=values.dtype)
            mat.data, mat.indices, mat.indptr = values, indices, indptr
            mat.has_sorted_indices = True
            out.append(mat)
        return out

    @staticmethod
    def _row_sums(product: sparse.spmatrix, n: int) -> np.ndarray:
        return np.asarray(product.sum(axis=1), dtype=np.float64).reshape(n)

    @staticmethod
    def _aligned_data(mat: sparse.csr_matrix) -> sparse.csr_matrix:
        """Canonicalise so ``.data`` arrays of same-support matrices align."""
        if not mat.has_canonical_format:
            mat.sum_duplicates()
        if not mat.has_sorted_indices:
            mat.sort_indices()
        return mat

    # -- individual similarities --------------------------------------- #
    def _gamma1(
        self,
        rows: list[VertexArrays],
        us: np.ndarray,
        vs: np.ndarray,
        wl_norms: np.ndarray,
    ) -> np.ndarray:
        (wl,) = self._family(
            [a.wl_cols for a in rows],
            [[a.wl_counts for a in rows]],
            len(self._wl),
        )
        dots = self._row_sums(wl[us].multiply(wl[vs]), len(us))
        denom = wl_norms[us] * wl_norms[vs]
        return np.divide(
            dots, denom, out=np.zeros_like(dots), where=denom > 0.0
        )

    def _gamma2(
        self, rows: list[VertexArrays], us: np.ndarray, vs: np.ndarray
    ) -> np.ndarray:
        (tri,) = self._family(
            [a.tri_cols for a in rows], [None], len(self._tri)
        )
        return self._row_sums(tri[us].multiply(tri[vs]), len(us))

    def _gamma3(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        kw_counts: sparse.csr_matrix,
        kw_norms: np.ndarray,
        cent_norms: np.ndarray,
        cent_slots: np.ndarray,
    ) -> np.ndarray:
        n = len(us)
        dots = self._row_sums(kw_counts[us].multiply(kw_counts[vs]), n)
        denom = kw_norms[us] * kw_norms[vs]
        fallback = np.divide(
            dots, denom, out=np.zeros_like(dots), where=denom > 0.0
        )

        slots_u = cent_slots[us].astype(np.int64)
        slots_v = cent_slots[vs].astype(np.int64)
        pair_dense = (slots_u >= 0) & (slots_v >= 0)
        if self._cent_matrix is None or not pair_dense.any():
            return fallback
        # Slot -1 is clipped to row 0; those reads are garbage but are
        # masked out by ``pair_dense`` below.
        store = self._cent_matrix
        cdots = np.einsum(
            "ij,ij->i",
            store[np.maximum(slots_u, 0)],
            store[np.maximum(slots_v, 0)],
        )
        cdenom = cent_norms[us] * cent_norms[vs]
        dense = np.divide(
            cdots, cdenom, out=np.zeros_like(cdots), where=cdenom > 0.0
        )
        return np.where(pair_dense, dense, fallback)

    def _gamma4(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        kw_ind: sparse.csr_matrix,
        kw_lohi: sparse.csr_matrix,
        alpha: float,
    ) -> np.ndarray:
        """Σ over shared keywords of ``e^{-α·gap} / log(1+F_B)`` per pair.

        The complex year-window layer (lo + i·hi) is restricted to each
        pair's shared keyword support by one binary-indicator multiply per
        side; the two restrictions have identical canonical sparsity, so
        their ``.data`` arrays align element-for-element and the decayed
        sum reduces to one ``bincount``.
        """
        n = len(us)
        win_u = self._aligned_data(kw_lohi[us].multiply(kw_ind[vs]).tocsr())
        win_v = self._aligned_data(kw_lohi[vs].multiply(kw_ind[us]).tocsr())
        if win_u.nnz == 0:
            return np.zeros(n, dtype=np.float64)
        gap = np.maximum(
            np.maximum(win_u.data.real, win_v.data.real)
            - np.minimum(win_u.data.imag, win_v.data.imag),
            0.0,
        )
        weights = self._kw_weights()[win_u.indices]
        contrib = np.exp(-alpha * gap) * weights
        pair_rows = np.repeat(np.arange(n), np.diff(win_u.indptr))
        return np.bincount(pair_rows, weights=contrib, minlength=n)

    def _gamma56(
        self,
        rows: list[VertexArrays],
        us: np.ndarray,
        vs: np.ndarray,
        top_cols: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """γ5 (representative-venue cross counts) and γ6 (Adamic/Adar).

        Both read the venue-count family, so they share one assembly.
        Returned values are pre-``τ`` sums.
        """
        n = len(us)
        ven, ind = self._family(
            [a.ven_cols for a in rows],
            [[a.ven_counts for a in rows], None],
            len(self._ven),
        )
        # γ5 — vectorised element lookup of each side's representative venue
        top = top_cols.astype(np.int64)
        gamma5 = np.zeros(n, dtype=np.float64)
        mask_u = top[us] >= 0
        if mask_u.any():
            gamma5[mask_u] += np.asarray(
                ven[vs[mask_u], top[us][mask_u]], dtype=np.float64
            ).reshape(-1)
        mask_v = top[vs] >= 0
        if mask_v.any():
            gamma5[mask_v] += np.asarray(
                ven[us[mask_v], top[vs][mask_v]], dtype=np.float64
            ).reshape(-1)
        # γ6 — min-count overlap on the shared venue support
        cnt_u = self._aligned_data(ven[us].multiply(ind[vs]).tocsr())
        cnt_v = self._aligned_data(ven[vs].multiply(ind[us]).tocsr())
        if cnt_u.nnz == 0:
            return gamma5, np.zeros(n, dtype=np.float64)
        mins = np.minimum(cnt_u.data, cnt_v.data)
        weights = self._ven_weights()[cnt_u.indices]
        pair_rows = np.repeat(np.arange(n), np.diff(cnt_u.indptr))
        gamma6 = np.bincount(pair_rows, weights=mins * weights, minlength=n)
        return gamma5, gamma6
