"""The six similarity functions of Stage 2, the profile cache, and the
batched engine that evaluates all of them over whole pair lists."""

from .batch import BatchSimilarityEngine, FeatureInterner, VertexArrays
from .community import (
    representative_community_similarity,
    research_community_similarity,
)
from .interests import interest_cosine, min_year_difference, time_consistency
from .profile import (
    N_SIMILARITIES,
    SIMILARITY_NAMES,
    SimilarityComputer,
    VertexProfile,
)
from .structural import clique_coincidence

__all__ = [
    "BatchSimilarityEngine",
    "FeatureInterner",
    "N_SIMILARITIES",
    "SIMILARITY_NAMES",
    "SimilarityComputer",
    "VertexArrays",
    "VertexProfile",
    "clique_coincidence",
    "interest_cosine",
    "min_year_difference",
    "representative_community_similarity",
    "research_community_similarity",
    "time_consistency",
]
