"""The six similarity functions of Stage 2 and the profile cache."""

from .community import (
    representative_community_similarity,
    research_community_similarity,
)
from .interests import interest_cosine, min_year_difference, time_consistency
from .profile import (
    N_SIMILARITIES,
    SIMILARITY_NAMES,
    SimilarityComputer,
    VertexProfile,
)
from .structural import clique_coincidence

__all__ = [
    "N_SIMILARITIES",
    "SIMILARITY_NAMES",
    "SimilarityComputer",
    "VertexProfile",
    "clique_coincidence",
    "interest_cosine",
    "min_year_difference",
    "representative_community_similarity",
    "research_community_similarity",
    "time_consistency",
]
