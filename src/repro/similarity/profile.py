"""Vertex profiles and the six-dimensional similarity computer.

Stage 2 (Section V-B) scores every candidate pair of same-name SCN vertices
with a similarity vector ``γ = (γ1 … γ6)``:

======  =======  ===================================  =========================
γ       paper    What it measures                     Module
======  =======  ===================================  =========================
γ1      Eq. 3    normalised WL sub-graph kernel       :mod:`..graphs.wl`
γ2      Eq. 5    co-author clique coincidence ratio   :mod:`.structural`
γ3      Eq. 6    research-interest cosine             :mod:`.interests`
γ4      Eq. 7    time consistency of interests        :mod:`.interests`
γ5      Eq. 8    representative-community similarity  :mod:`.community`
γ6      Eq. 9    research-community (Adamic/Adar)     :mod:`.community`
======  =======  ===================================  =========================

Profiles are built from a vertex's attributed papers, which under the
per-occurrence mention model are exactly the papers of the mentions the
vertex owns — one occurrence per paper, so a homonym paper contributes its
title/venue/year evidence to *both* co-author vertices, once each.

A :class:`VertexProfile` caches everything a vertex contributes to those
functions (keywords, venues, years, triangles, WL features), so that the
O(candidate pairs) scoring loop never re-derives per-vertex state.

Scoring itself has two paths sharing those cached profiles:

* :meth:`SimilarityComputer.similarity_vector` — the scalar reference path,
  one pair at a time through the per-function modules above;
* :meth:`SimilarityComputer.pair_matrix` — the batched path, which mirrors
  profiles into the columnar store of :mod:`.batch` and evaluates all six
  γ's for a whole pair list with vectorised sparse kernels.  Small pair
  lists (below ``batch_threshold``) stay on the scalar path, where the
  fixed cost of assembling sparse operands is not worth paying.

Cache invalidation: profiles depend on the vertex's own papers *and* on
its radius-``wl_iterations`` neighbourhood (WL features span that ball;
triangles span 1 hop).  :meth:`SimilarityComputer.invalidate` therefore
drops the whole BFS ball around a touched vertex, and
:meth:`SimilarityComputer.rebind` retargets the computer at a merged
network while keeping every profile not reachable from a touched vertex.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..data.records import Corpus
from ..graphs.collab import CollaborationNetwork
from ..graphs.triangles import coauthor_triangle_names
from ..graphs.wl import multi_source_ball, wl_feature_map
from ..text.embeddings import WordEmbeddings, cosine
from ..text.tokenize import corpus_word_frequencies, extract_keywords
from .batch import BatchSimilarityEngine
from .community import representative_community_similarity, research_community_similarity
from .interests import interest_cosine, time_consistency
from .structural import clique_coincidence

#: Number of similarity functions (``m`` in Section V-C).
N_SIMILARITIES = 6

SIMILARITY_NAMES = (
    "wl_kernel",
    "clique_coincidence",
    "interest_cosine",
    "time_consistency",
    "representative_community",
    "research_community",
)


@dataclass(slots=True)
class VertexProfile:
    """Cached per-vertex state feeding the six similarity functions."""

    vid: int
    name: str
    n_papers: int
    keywords: Counter[str]
    keyword_years: dict[str, tuple[int, int]]  # word -> (min year, max year)
    centroid: np.ndarray | None
    venues: Counter[str]
    top_venue: str | None
    triangles: frozenset[frozenset[str]]
    wl_features: Counter = field(default_factory=Counter)


class SimilarityComputer:
    """Computes ``γ`` vectors for vertex pairs of a collaboration network."""

    def __init__(
        self,
        net: CollaborationNetwork,
        corpus: Corpus,
        embeddings: WordEmbeddings | None = None,
        word_frequencies: Mapping[str, int] | None = None,
        wl_iterations: int = 2,
        decay_alpha: float = 0.62,
        frequent_keywords: frozenset[str] = frozenset(),
        batch_threshold: int = 16,
        venue_frequencies: Mapping[str, int] | None = None,
    ):
        """
        Args:
            net: The (stable) collaboration network being scored.
            corpus: The underlying paper database.
            embeddings: Keyword vectors for γ3; when ``None``, γ3 falls back
                to keyword-multiset cosine (no semantic generalisation).
            word_frequencies: ``F_B`` of Eq. 7; computed from the corpus
                titles when omitted.
            wl_iterations: ``h`` of the WL kernel (Eq. 3).
            decay_alpha: α of Eq. 7 (0.62 in the paper, from FutureRank).
            frequent_keywords: Words excluded from keyword profiles.
            batch_threshold: Pair lists at least this long are scored by the
                vectorised :mod:`.batch` engine; shorter lists take the
                scalar path, whose per-pair cost undercuts the fixed
                sparse-assembly overhead.
            venue_frequencies: ``F_H`` of Eq. 9; taken from ``corpus`` when
                omitted.  Shard workers pass the *whole-corpus* tables here
                (and in ``word_frequencies``) while scoring against a
                sub-corpus, so γ4/γ6 match the single-process fit exactly.
        """
        self.net = net
        self.corpus = corpus
        self.embeddings = embeddings
        self.wl_iterations = wl_iterations
        self.decay_alpha = decay_alpha
        self.frequent_keywords = frequent_keywords
        self.batch_threshold = batch_threshold
        if word_frequencies is None:
            word_frequencies = corpus_word_frequencies(
                p.title for p in corpus
            )
        self.word_frequencies = word_frequencies
        if venue_frequencies is None:
            venue_frequencies = corpus.venue_frequencies
        self.venue_frequencies = venue_frequencies
        self._profiles: dict[int, VertexProfile] = {}
        # Papers are immutable, so their extracted keywords are memoised
        # across vertices (co-authors share papers) and across profile
        # rebuilds after invalidation — tokenising titles repeatedly was
        # a measurable slice of profile construction on hot paths.
        self._paper_keywords: dict[int, tuple[str, ...]] = {}
        self._engine = BatchSimilarityEngine(
            self.word_frequencies, self.venue_frequencies
        )

    # ------------------------------------------------------------------ #
    def profile(self, vid: int) -> VertexProfile:
        """The (cached) profile of vertex ``vid``."""
        cached = self._profiles.get(vid)
        if cached is not None:
            return cached
        profile = self._build_profile(vid)
        self._profiles[vid] = profile
        return profile

    def is_cached(self, vid: int) -> bool:
        """Whether ``vid``'s profile is currently cached (for tests/tools)."""
        return vid in self._profiles

    def _drop(self, vid: int) -> None:
        self._profiles.pop(vid, None)
        self._engine.invalidate(vid)

    def invalidate(self, vid: int) -> None:
        """Drop every cached profile ``vid``'s change can have stained.

        Incremental mode mutates GCN vertices when a new paper is attached;
        the stale profile must not survive.  WL features reach
        ``wl_iterations`` hops (Eq. 3's radius-``h`` ball), and triangle
        sets reach one hop, so every vertex within
        ``max(1, wl_iterations)`` hops of ``vid`` is dropped as well — a
        1-hop-only invalidation would leave 2-hop neighbours serving stale
        γ1 values after an edge insertion.
        """
        self.invalidate_many((vid,))

    def invalidate_many(self, vids: Iterable[int]) -> None:
        """Ball-invalidate several vertices with one multi-source BFS.

        Equivalent to calling :meth:`invalidate` per vertex but traverses
        the (largely overlapping) balls once — the per-paper hot path of
        incremental mode batches its edge endpoints through here.
        """
        present: list[int] = []
        for vid in vids:
            if vid in self.net:
                present.append(vid)
            else:
                self._drop(vid)
        for vid in multi_source_ball(
            self.net, present, max(1, self.wl_iterations)
        ):
            self._drop(vid)

    def invalidate_exact(self, vids: Iterable[int]) -> None:
        """Drop exactly the given cached profiles — no ball traversal.

        For callers that already computed the affected region themselves:
        the streaming walk derives each paper's invalidation set from the
        same multi-source BFS it runs for dependency staining, so
        re-walking the ball here (as :meth:`invalidate_many` would) would
        do the traversal twice.  The caller owns the correctness of the
        set; when in doubt use :meth:`invalidate` / :meth:`invalidate_many`.
        """
        for vid in vids:
            self._drop(vid)

    def attach_paper(self, vid: int, pid: int) -> None:
        """Fold one newly attributed paper into ``vid``'s cached profile.

        The incremental path's attach operation changes no adjacency, so
        the expensive profile ingredients — WL features and triangles —
        are reusable verbatim; only the keyword/venue/year state moves.
        Updating in place instead of dropping saves a full rebuild per
        later read of the vertex, the dominant cost of streaming into
        hot name blocks.  The engine's columnar mirror is still dropped
        (it is derived from the profile and rebuilt on demand).

        Equivalence: the updated profile matches a from-scratch rebuild
        up to dict insertion order (float-noise class, same as the
        batch-vs-scalar contract), except ``top_venue``, whose
        ``most_common`` tie-break *depends* on insertion order — venues
        are therefore re-derived in the canonical sorted-paper order a
        rebuild would use.
        """
        profile = self._profiles.get(vid)
        self._engine.invalidate(vid)
        if profile is None:
            return  # nothing cached; the next read rebuilds from scratch
        vertex = self.net.vertex(vid)
        paper = self.corpus[pid]
        profile.n_papers = len(vertex.papers)
        words = self._paper_keywords.get(pid)
        if words is None:
            words = tuple(
                extract_keywords(paper.title, self.frequent_keywords)
            )
            self._paper_keywords[pid] = words
        for word in words:
            profile.keywords[word] += 1
            lo, hi = profile.keyword_years.get(word, (paper.year, paper.year))
            profile.keyword_years[word] = (
                min(lo, paper.year), max(hi, paper.year)
            )
        venues: Counter[str] = Counter()
        for p in sorted(vertex.papers):
            venues[self.corpus[p].venue] += 1
        profile.venues = venues
        profile.top_venue = venues.most_common(1)[0][0] if venues else None
        profile.centroid = (
            self.embeddings.centroid(profile.keywords)
            if self.embeddings
            else None
        )

    def rebind(
        self,
        net: CollaborationNetwork,
        touched: Iterable[int] = (),
    ) -> None:
        """Retarget the computer at ``net``, keeping unaffected profiles.

        Used between Stage-2 merge rounds: ``net`` is the merged network
        (built with ``preserve_ids=True`` so surviving vertices keep their
        ids), and ``touched`` names the vertices whose neighbourhood
        changed — merge representatives, endpoints of recovered edges.
        Profiles of vertices that no longer exist are dropped, as is the
        BFS ball (radius ``max(1, wl_iterations)``) around every touched
        vertex; everything else persists, including the engine's interned
        feature columns.
        """
        self.net = net
        for vid in [v for v in self._profiles if v not in net]:
            self._drop(vid)
        # Touched sets can cover much of the network (e.g. relation
        # recovery), so their balls are unioned in one BFS.
        self.invalidate_many(touched)

    def _build_profile(self, vid: int) -> VertexProfile:
        vertex = self.net.vertex(vid)
        keywords: Counter[str] = Counter()
        keyword_years: dict[str, tuple[int, int]] = {}
        venues: Counter[str] = Counter()
        # Canonical paper order: set iteration order does not survive a
        # pickle round trip, and the insertion order of these counters
        # decides float accumulation order downstream (γ3 centroids, γ4/γ6
        # weighted sums).  Sorting keeps profiles bit-identical between a
        # parent process and a shard worker that received the network over
        # a pipe — the property the shard-vs-global parity tests pin.
        for pid in sorted(vertex.papers):
            paper = self.corpus[pid]
            venues[paper.venue] += 1
            words = self._paper_keywords.get(pid)
            if words is None:
                words = tuple(
                    extract_keywords(paper.title, self.frequent_keywords)
                )
                self._paper_keywords[pid] = words
            for word in words:
                keywords[word] += 1
                lo, hi = keyword_years.get(word, (paper.year, paper.year))
                keyword_years[word] = (min(lo, paper.year), max(hi, paper.year))
        centroid = (
            self.embeddings.centroid(keywords) if self.embeddings else None
        )
        return VertexProfile(
            vid=vid,
            name=vertex.name,
            n_papers=len(vertex.papers),
            keywords=keywords,
            keyword_years=keyword_years,
            centroid=centroid,
            venues=venues,
            top_venue=venues.most_common(1)[0][0] if venues else None,
            triangles=frozenset(coauthor_triangle_names(self.net, vid)),
            wl_features=wl_feature_map(self.net, vid, self.wl_iterations),
        )

    # ------------------------------------------------------------------ #
    def similarity_vector(self, u: int, v: int) -> np.ndarray:
        """``γ`` for the vertex pair ``(u, v)`` — six non-negative reals
        except γ3 which lives in ``[-1, 1]``."""
        pu, pv = self.profile(u), self.profile(v)
        tau = max(1, min(pu.n_papers, pv.n_papers))
        gamma = np.empty(N_SIMILARITIES, dtype=np.float64)
        gamma[0] = self._wl(pu, pv)
        gamma[1] = clique_coincidence(pu.triangles, pv.triangles, tau)
        gamma[2] = self._interest(pu, pv)
        gamma[3] = time_consistency(
            pu.keyword_years,
            pv.keyword_years,
            self.word_frequencies,
            tau,
            self.decay_alpha,
        )
        gamma[4] = representative_community_similarity(
            pu.venues, pv.venues, pu.top_venue, pv.top_venue, tau
        )
        gamma[5] = research_community_similarity(
            pu.venues, pv.venues, self.venue_frequencies, tau
        )
        return gamma

    def _wl(self, pu: VertexProfile, pv: VertexProfile) -> float:
        from ..graphs.wl import normalized_wl_kernel

        return normalized_wl_kernel(pu.wl_features, pv.wl_features)

    def _interest(self, pu: VertexProfile, pv: VertexProfile) -> float:
        if pu.centroid is not None and pv.centroid is not None:
            return cosine(pu.centroid, pv.centroid)
        return interest_cosine(pu.keywords, pv.keywords)

    # ------------------------------------------------------------------ #
    def pair_matrix(
        self,
        pairs: Sequence[tuple[int, int]],
        transient: frozenset[int] = frozenset(),
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Similarity vectors for many pairs, stacked into ``(n, 6)``.

        Dispatches to the vectorised :mod:`.batch` engine when the list is
        long enough to amortise its fixed assembly cost (see
        ``batch_threshold``); both paths agree to well below 1e-9.

        ``transient`` names score-once-and-discard vertices: their
        profiles and columnar arrays are built for this call but do not
        linger in either cache afterwards.  Use it when the vertices
        will never be scored again; callers that re-read their probes
        (the streaming walk patches stale pairs against the same probes
        later) deliberately leave them cacheable.

        ``out`` optionally supplies the ``(n, 6)`` float64 result buffer
        — the sharded executor's workers pass shared-memory views here
        so γ results never round-trip through pickle.
        """
        if len(pairs) >= self.batch_threshold:
            return self.pair_matrix_batched(pairs, transient=transient, out=out)
        return self.pair_matrix_perpair(pairs, transient=transient, out=out)

    def pair_matrix_perpair(
        self,
        pairs: Sequence[tuple[int, int]],
        transient: frozenset[int] = frozenset(),
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Reference scalar path: one :meth:`similarity_vector` per pair."""
        if out is None:
            out = np.empty((len(pairs), N_SIMILARITIES), dtype=np.float64)
        elif out.shape != (len(pairs), N_SIMILARITIES):
            raise ValueError(
                f"out buffer has shape {out.shape}, expected "
                f"{(len(pairs), N_SIMILARITIES)}"
            )
        for row, (u, v) in enumerate(pairs):
            out[row] = self.similarity_vector(u, v)
        for vid in transient:
            self._profiles.pop(vid, None)
        return out

    def pair_matrix_batched(
        self,
        pairs: Sequence[tuple[int, int]],
        transient: frozenset[int] = frozenset(),
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Vectorised path: all six γ's over the whole list at once."""
        gammas = self._engine.gamma_matrix(
            pairs, self.profile, self.decay_alpha, transient=transient, out=out
        )
        for vid in transient:
            self._profiles.pop(vid, None)
        return gammas
