"""Structural similarities: γ1 (WL kernel) lives in :mod:`repro.graphs.wl`;
this module holds γ2, the co-author clique coincidence ratio (Eq. 5).

Triangles (the cliques the paper actually enumerates, for speed) are keyed
by the *names* of the two co-authors, because two same-name vertices never
share vertex ids — what they can share is collaborators' names.
"""

from __future__ import annotations

from typing import AbstractSet

NameClique = frozenset[str]


def clique_coincidence(
    cliques_u: AbstractSet[NameClique],
    cliques_v: AbstractSet[NameClique],
    tau: int,
) -> float:
    """γ2 = ``|L(u) ∩ L(v)| / τ`` (Eq. 5).

    Args:
        cliques_u: Co-author cliques of the first vertex (name-keyed).
        cliques_v: Co-author cliques of the second vertex.
        tau: Productivity balance — the smaller paper count of the two
            vertices (same τ as Eqs. 7–9).
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    return len(cliques_u & cliques_v) / tau
