"""Research-interest similarities: γ3 (Eq. 6) and γ4 (Eq. 7).

γ3 compares the *semantic centres* of two vertices' title keywords (cosine
of embedding centroids — handled by the profile layer; the multiset-cosine
fallback here covers corpora too small to train embeddings on).

γ4 measures *time consistency*: shared keywords score higher when the two
vertices used them in nearby years and when the words are rare in the
corpus.  Eq. 7 writes the year factor as ``e^{α·min(b)}`` with α = 0.62
borrowed from FutureRank — in FutureRank α parameterises an exponential
*decay* ``e^{-α·Δt}``, and a growing exponential would reward *divergent*
years, contradicting the similarity's stated intent.  We therefore
implement the decay ``e^{-α·min(b)}`` (and note this as a corrected sign).
The rarity factor ``1/log F_B(b)`` is implemented as ``1/log(1 + F_B(b))``
to stay finite for hapax words (``F_B = 1``).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Mapping

YearRange = tuple[int, int]


def interest_cosine(keywords_u: Counter[str], keywords_v: Counter[str]) -> float:
    """Cosine similarity of keyword multisets (fallback for γ3).

    Equivalent to Eq. 6 with one-hot "embeddings"; used when no trained
    word vectors are available.
    """
    if not keywords_u or not keywords_v:
        return 0.0
    dot = sum(
        count * keywords_v[word]
        for word, count in keywords_u.items()
        if word in keywords_v
    )
    norm_u = math.sqrt(sum(c * c for c in keywords_u.values()))
    norm_v = math.sqrt(sum(c * c for c in keywords_v.values()))
    return dot / (norm_u * norm_v)


def min_year_difference(range_u: YearRange, range_v: YearRange) -> int:
    """``min(b)``: smallest |year gap| between two usage windows of a word.

    Each vertex contributes the (min, max) years it used the word; if the
    windows overlap the gap is 0, otherwise it is the distance between the
    nearer endpoints.
    """
    lo_u, hi_u = range_u
    lo_v, hi_v = range_v
    if hi_u < lo_v:
        return lo_v - hi_u
    if hi_v < lo_u:
        return lo_u - hi_v
    return 0


def time_consistency(
    keyword_years_u: Mapping[str, YearRange],
    keyword_years_v: Mapping[str, YearRange],
    word_frequencies: Mapping[str, int],
    tau: int,
    alpha: float = 0.62,
) -> float:
    """γ4 (Eq. 7): decayed, rarity-weighted overlap of keyword usage.

    ``γ4 = (1/τ) Σ_{b ∈ B(u) ∩ B(v)} e^{-α·min(b)} / log(1 + F_B(b))``
    """
    if tau < 1:
        raise ValueError(f"tau must be >= 1, got {tau}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if len(keyword_years_v) < len(keyword_years_u):
        keyword_years_u, keyword_years_v = keyword_years_v, keyword_years_u
    total = 0.0
    for word, range_u in keyword_years_u.items():
        range_v = keyword_years_v.get(word)
        if range_v is None:
            continue
        freq = word_frequencies.get(word, 1)
        gap = min_year_difference(range_u, range_v)
        total += math.exp(-alpha * gap) / math.log(1.0 + freq)
    return total / tau
