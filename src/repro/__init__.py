"""repro — reproduction of IUAD (ICDE 2021): incremental & unsupervised
author disambiguation via bottom-up collaboration network reconstruction.

Quickstart::

    from repro.data import generate_corpus
    from repro.core import IUAD

    corpus = generate_corpus()
    iuad = IUAD().fit(corpus)
    clusters = iuad.clusters_of_name("Wei Wang")
"""

from .core import (
    IUAD,
    IUADConfig,
    IncrementalDisambiguator,
    StreamingIngestor,
    disambiguate,
)
from .data import Corpus, Paper, generate_corpus, generate_world
from .io import Snapshot

__version__ = "1.0.0"

__all__ = [
    "Corpus",
    "IUAD",
    "IUADConfig",
    "IncrementalDisambiguator",
    "Paper",
    "Snapshot",
    "StreamingIngestor",
    "disambiguate",
    "generate_corpus",
    "generate_world",
    "__version__",
]
