"""FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).

IUAD's Stage 1 needs all frequent *2-itemsets* over co-author lists — the
η-stable collaborative relations (paper, Definition 2).  This module
implements general FP-growth (any itemset size) plus a fast specialised
pair miner, since η-SCRs only require size-2 itemsets.
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from .fptree import FPTree

Item = Hashable
Itemset = tuple[Item, ...]


def fpgrowth(
    transactions: Iterable[Sequence[Item]],
    min_support: int,
    max_size: int | None = None,
) -> dict[Itemset, int]:
    """Mine all frequent itemsets with support ≥ ``min_support``.

    Args:
        transactions: The transaction database (any iterable of item
            sequences; items must be hashable).
        min_support: Absolute support threshold (η in the paper).
        max_size: Optional cap on itemset size (2 for η-SCR mining).

    Returns:
        Mapping from itemset (sorted tuple) to its absolute support.
    """
    tree = FPTree(list(transactions), min_support)
    out: dict[Itemset, int] = {}
    for itemset, support in _mine(tree, suffix=(), max_size=max_size):
        out[itemset] = support
    return out


def _mine(
    tree: FPTree,
    suffix: Itemset,
    max_size: int | None,
) -> Iterator[tuple[Itemset, int]]:
    if tree.is_empty:
        return
    single = tree.single_path()
    if single is not None:
        # Single-path shortcut: every combination of path nodes joined with
        # the suffix is frequent, with support = min count on the path.
        for size in range(1, len(single) + 1):
            if max_size is not None and len(suffix) + size > max_size:
                break
            for combo in combinations(single, size):
                support = min(count for (_item, count) in combo)
                itemset = tuple(sorted((*suffix, *(i for (i, _c) in combo)), key=repr))
                yield itemset, support
        return
    # Process items in increasing support order (standard FP-growth order).
    items = sorted(tree.item_counts, key=lambda i: (tree.item_counts[i], repr(i)))
    for item in items:
        support = tree.item_counts[item]
        itemset = tuple(sorted((*suffix, item), key=repr))
        yield itemset, support
        if max_size is not None and len(itemset) >= max_size:
            continue
        conditional = tree.conditional_tree(item)
        yield from _mine(conditional, itemset, max_size)


def frequent_pairs(
    transactions: Iterable[Sequence[Item]],
    min_support: int,
) -> dict[tuple[Item, Item], int]:
    """All frequent 2-itemsets — the η-SCRs of IUAD's Stage 1.

    Counts every unordered item pair per transaction directly.  For the
    short transactions of co-author lists (2–10 names) this is the textbook
    special case of FP-growth's output restricted to pairs, at a fraction of
    the constant factor; a property test keeps it equivalent to
    :func:`fpgrowth` with ``max_size=2``.
    """
    counts: Counter[tuple[Item, Item]] = Counter()
    for transaction in transactions:
        unique = sorted(set(transaction), key=repr)
        for a, b in combinations(unique, 2):
            counts[(a, b)] += 1
    return {pair: c for pair, c in counts.items() if c >= min_support}


def pair_supports_by_item(
    pairs: Mapping[tuple[Item, Item], int],
) -> dict[Item, dict[Item, int]]:
    """Adjacency view of a frequent-pair table: item -> {partner: support}."""
    adj: dict[Item, dict[Item, int]] = {}
    for (a, b), support in pairs.items():
        adj.setdefault(a, {})[b] = support
        adj.setdefault(b, {})[a] = support
    return adj
