"""Apriori frequent-itemset mining (Agrawal & Srikant, 1994).

Kept as the *test oracle* for FP-growth: Apriori is short enough to verify
by eye, so property tests assert ``fpgrowth(db, s) == apriori(db, s)`` on
random databases.  It is also used by the ablation bench to show why IUAD
chose FP-growth (Apriori's candidate generation is slower on co-author
data).
"""

from __future__ import annotations

from collections import Counter
from itertools import combinations
from typing import Hashable, Iterable, Sequence

Item = Hashable
Itemset = tuple[Item, ...]


def apriori(
    transactions: Iterable[Sequence[Item]],
    min_support: int,
    max_size: int | None = None,
) -> dict[Itemset, int]:
    """Mine all frequent itemsets with support ≥ ``min_support``.

    Returns the same mapping as :func:`repro.fpm.fpgrowth.fpgrowth` —
    itemsets are sorted tuples (by ``repr`` for cross-type determinism).
    """
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    database = [frozenset(t) for t in transactions]
    out: dict[Itemset, int] = {}

    # L1
    counts: Counter[Item] = Counter()
    for transaction in database:
        counts.update(transaction)
    current: dict[Itemset, int] = {
        (item,): c for item, c in counts.items() if c >= min_support
    }
    size = 1
    while current:
        for itemset, support in current.items():
            out[tuple(sorted(itemset, key=repr))] = support
        if max_size is not None and size >= max_size:
            break
        candidates = _generate_candidates(list(current), size + 1)
        if not candidates:
            break
        next_counts: Counter[Itemset] = Counter()
        candidate_sets = {c: frozenset(c) for c in candidates}
        for transaction in database:
            for candidate, cset in candidate_sets.items():
                if cset <= transaction:
                    next_counts[candidate] += 1
        current = {
            c: n for c, n in next_counts.items() if n >= min_support
        }
        size += 1
    return out


def _generate_candidates(frequent: list[Itemset], size: int) -> list[Itemset]:
    """Join step + prune step of Apriori candidate generation."""
    frequent_set = set(frequent)
    ordered = sorted(frequent, key=lambda t: tuple(repr(x) for x in t))
    candidates: list[Itemset] = []
    seen: set[Itemset] = set()
    for i, a in enumerate(ordered):
        for b in ordered[i + 1 :]:
            if a[:-1] != b[:-1]:
                continue
            union = tuple(sorted(set(a) | set(b), key=repr))
            if len(union) != size or union in seen:
                continue
            seen.add(union)
            # Prune: every (size-1)-subset must be frequent.
            if all(
                tuple(sorted(sub, key=repr)) in frequent_set
                for sub in combinations(union, size - 1)
            ):
                candidates.append(union)
    return candidates
