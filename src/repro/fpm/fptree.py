"""FP-tree: the prefix-tree structure behind FP-growth (Han et al., 2000).

An FP-tree compresses a transaction database by storing each transaction as
a path of frequency-ordered items; transactions sharing a prefix share tree
nodes.  A *header table* threads together all nodes of each item so that
conditional pattern bases can be extracted without rescanning the database.

IUAD (paper, Section IV-C Step I) uses FP-growth with support threshold η
over paper co-author lists to mine the η-stable collaborative relations.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Sequence

Item = Hashable


@dataclass(slots=True)
class FPNode:
    """One node of an FP-tree: an item, its count, and tree links."""

    item: Item | None
    count: int = 0
    parent: "FPNode | None" = None
    children: dict[Item, "FPNode"] = field(default_factory=dict)
    next_same_item: "FPNode | None" = None  # header-table thread

    def path_to_root(self) -> list[Item]:
        """Items on the path from this node's parent up to (not incl.) root."""
        path: list[Item] = []
        node = self.parent
        while node is not None and node.item is not None:
            path.append(node.item)
            node = node.parent
        return path


class FPTree:
    """An FP-tree with header tables over a transaction multiset.

    Items inside each transaction are reordered by decreasing global support
    (ties broken by the item itself for determinism) and infrequent items are
    dropped before insertion, exactly as in the FP-growth paper.
    """

    def __init__(
        self,
        transactions: Iterable[Sequence[Item]],
        min_support: int,
        counts: Counter | None = None,
    ):
        if min_support < 1:
            raise ValueError(f"min_support must be >= 1, got {min_support}")
        self.min_support = min_support
        materialised = [tuple(t) for t in transactions]
        if counts is None:
            counts = Counter()
            for transaction in materialised:
                counts.update(set(transaction))
        self.item_counts: dict[Item, int] = {
            item: c for item, c in counts.items() if c >= min_support
        }
        self.root = FPNode(item=None)
        # header[item] -> first node of the item's thread.
        self.header: dict[Item, FPNode] = {}
        self._thread_tail: dict[Item, FPNode] = {}
        for transaction in materialised:
            self._insert(self._order(transaction), 1)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _order(self, transaction: Sequence[Item]) -> list[Item]:
        kept = {i for i in transaction if i in self.item_counts}
        return sorted(kept, key=lambda i: (-self.item_counts[i], repr(i)))

    def _insert(self, items: Sequence[Item], count: int) -> None:
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = FPNode(item=item, parent=node)
                node.children[item] = child
                self._thread(child)
            child.count += count
            node = child

    def _thread(self, node: FPNode) -> None:
        item = node.item
        if item in self._thread_tail:
            self._thread_tail[item].next_same_item = node
        else:
            self.header[item] = node
        self._thread_tail[item] = node

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def is_empty(self) -> bool:
        return not self.root.children

    def nodes_of(self, item: Item) -> Iterator[FPNode]:
        """All tree nodes holding ``item``, via the header thread."""
        node = self.header.get(item)
        while node is not None:
            yield node
            node = node.next_same_item

    def support_of(self, item: Item) -> int:
        """Global support of a single item (0 if infrequent)."""
        return self.item_counts.get(item, 0)

    def conditional_pattern_base(
        self, item: Item
    ) -> list[tuple[list[Item], int]]:
        """Prefix paths ending at ``item`` with their counts.

        The conditional pattern base of an item is the input from which
        FP-growth builds the item's conditional FP-tree.
        """
        base: list[tuple[list[Item], int]] = []
        for node in self.nodes_of(item):
            path = node.path_to_root()
            if path:
                base.append((path, node.count))
        return base

    def conditional_tree(self, item: Item) -> "FPTree":
        """The conditional FP-tree of ``item``."""
        base = self.conditional_pattern_base(item)
        counts: Counter = Counter()
        for path, count in base:
            for path_item in path:
                counts[path_item] += count
        tree = FPTree.__new__(FPTree)
        tree.min_support = self.min_support
        tree.item_counts = {
            i: c for i, c in counts.items() if c >= self.min_support
        }
        tree.root = FPNode(item=None)
        tree.header = {}
        tree._thread_tail = {}
        for path, count in base:
            kept = [i for i in path if i in tree.item_counts]
            kept.sort(key=lambda i: (-tree.item_counts[i], repr(i)))
            tree._insert(kept, count)
        return tree

    def single_path(self) -> list[tuple[Item, int]] | None:
        """If the tree is one straight path, return it ((item, count) list);
        otherwise ``None``.  Single-path trees admit the FP-growth shortcut
        of enumerating subsets directly."""
        path: list[tuple[Item, int]] = []
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return None
            (node,) = node.children.values()
            path.append((node.item, node.count))
        return path
