"""Frequent-pattern mining substrate (FP-growth + Apriori oracle).

η-stable collaborative relations (Definition 2 of the paper) are frequent
2-itemsets over paper co-author lists; :func:`frequent_pairs` mines them.
"""

from .apriori import apriori
from .fpgrowth import fpgrowth, frequent_pairs, pair_supports_by_item
from .fptree import FPNode, FPTree

__all__ = [
    "FPNode",
    "FPTree",
    "apriori",
    "fpgrowth",
    "frequent_pairs",
    "pair_supports_by_item",
]
