"""Title tokenisation and keyword extraction.

γ3/γ4 (Section V-B2) work on *keywords* from paper titles: stop words and
overly frequent generic words are excluded so that what remains carries the
author's research interests.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable

_TOKEN_RE = re.compile(r"[a-z][a-z0-9]+")

#: Standard English stop words plus title boilerplate.  The paper excludes
#: "the stop words or the frequent words in paper titles".
STOP_WORDS = frozenset(
    """
    a an and are as at be by for from has have in is it its of on or that
    the this to was were will with we you your our their i not no do does
    can could should would may might must about above after again against
    all am any because been before being below between both but did down
    during each few further here how if into more most much my nor off
    once only other out over own same so some such than then there these
    they those through too under until up very what when where which while
    who whom why
    toward towards using based via
    """.split()
)


def tokenize(text: str) -> list[str]:
    """Lower-case word tokens of ``text`` (alphanumeric, len >= 2)."""
    return _TOKEN_RE.findall(text.lower())


def extract_keywords(
    title: str,
    frequent_words: frozenset[str] | set[str] = frozenset(),
) -> list[str]:
    """Keywords of one title: tokens minus stop words and frequent words."""
    return [
        tok
        for tok in tokenize(title)
        if tok not in STOP_WORDS and tok not in frequent_words
    ]


def corpus_word_frequencies(titles: Iterable[str]) -> Counter[str]:
    """``F_B(b)``: occurrence count of every word over all titles (Eq. 7)."""
    counts: Counter[str] = Counter()
    for title in titles:
        counts.update(tokenize(title))
    return counts


def frequent_words(
    word_freq: Counter[str],
    top_fraction: float = 0.01,
    min_rank: int = 10,
) -> frozenset[str]:
    """The most frequent non-stop words, to be excluded from keywords.

    The paper excludes "the frequent words in paper titles"; we drop the top
    ``top_fraction`` of the vocabulary by frequency (at least ``min_rank``
    words), which removes corpus-generic terms like "approach"/"method".
    """
    if not 0.0 <= top_fraction < 1.0:
        raise ValueError(f"top_fraction must be in [0, 1), got {top_fraction}")
    vocab = [w for w in word_freq if w not in STOP_WORDS]
    vocab.sort(key=lambda w: (-word_freq[w], w))
    cutoff = max(min_rank, int(len(vocab) * top_fraction))
    return frozenset(vocab[:cutoff])
