"""Word embeddings from title co-occurrence: PPMI + truncated SVD.

The paper uses pretrained language-model vectors (Word2Vec/GloVe/BERT) for
the research-interest similarity γ3.  No pretrained vectors are available
offline, so we train our own on the corpus titles with the classic
matrix-factorisation equivalent of skip-gram (Levy & Goldberg, NeurIPS
2014): a positive pointwise-mutual-information co-occurrence matrix
factorised by truncated SVD.  What γ3 needs — keywords of similar research
areas landing near each other in cosine space — is exactly what PPMI-SVD
delivers.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import svds

from .tokenize import tokenize


class WordEmbeddings:
    """Dense word vectors with cosine utilities."""

    def __init__(self, vocabulary: list[str], matrix: np.ndarray):
        if len(vocabulary) != matrix.shape[0]:
            raise ValueError(
                f"vocabulary size {len(vocabulary)} != matrix rows {matrix.shape[0]}"
            )
        self._index: dict[str, int] = {w: i for i, w in enumerate(vocabulary)}
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        self._matrix = matrix / norms

    @property
    def dim(self) -> int:
        return self._matrix.shape[1]

    @property
    def vocabulary(self) -> list[str]:
        return list(self._index)

    def __contains__(self, word: str) -> bool:
        return word in self._index

    def __getitem__(self, word: str) -> np.ndarray:
        """Unit-norm vector of ``word`` (KeyError if OOV)."""
        return self._matrix[self._index[word]]

    def get(self, word: str) -> np.ndarray | None:
        """Unit-norm vector of ``word`` or ``None`` if out of vocabulary."""
        idx = self._index.get(word)
        return None if idx is None else self._matrix[idx]

    def centroid(self, words: Iterable[str]) -> np.ndarray | None:
        """Mean vector of the in-vocabulary ``words`` (``W(v)`` in Eq. 6)."""
        rows = [self._index[w] for w in words if w in self._index]
        if not rows:
            return None
        return self._matrix[rows].mean(axis=0)

    def similarity(self, a: str, b: str) -> float:
        """Cosine similarity of two words (0 if either is OOV)."""
        va, vb = self.get(a), self.get(b)
        if va is None or vb is None:
            return 0.0
        return float(va @ vb)

    def most_similar(self, word: str, k: int = 5) -> list[tuple[str, float]]:
        """``k`` nearest vocabulary words by cosine."""
        vec = self.get(word)
        if vec is None:
            return []
        scores = self._matrix @ vec
        order = np.argsort(-scores)
        vocab = self.vocabulary
        out: list[tuple[str, float]] = []
        for idx in order:
            if vocab[idx] != word:
                out.append((vocab[idx], float(scores[idx])))
            if len(out) == k:
                break
        return out


def cosine(u: np.ndarray, v: np.ndarray) -> float:
    """Cosine similarity of two dense vectors (Eq. 6)."""
    nu, nv = float(np.linalg.norm(u)), float(np.linalg.norm(v))
    if nu == 0.0 or nv == 0.0:
        return 0.0
    return float(u @ v) / (nu * nv)


def train_title_embeddings(
    titles: Iterable[str],
    dim: int = 64,
    window: int = 4,
    min_count: int = 2,
    seed: int = 0,
) -> WordEmbeddings:
    """Train PPMI-SVD word vectors on an iterable of titles.

    Args:
        titles: The corpus titles.
        dim: Embedding dimensionality (clamped to vocabulary size - 1).
        window: Symmetric co-occurrence window within a title.
        min_count: Minimum corpus frequency for a word to enter the
            vocabulary.
        seed: Seed for the SVD starting vector (determinism).
    """
    token_lists = [tokenize(t) for t in titles]
    counts: Counter[str] = Counter()
    for tokens in token_lists:
        counts.update(tokens)
    vocabulary = sorted(w for w, c in counts.items() if c >= min_count)
    if len(vocabulary) < 2:
        raise ValueError("vocabulary too small to train embeddings")
    index = {w: i for i, w in enumerate(vocabulary)}

    cooc = _cooccurrence_matrix(token_lists, index, window)
    ppmi = _ppmi(cooc)
    k = min(dim, ppmi.shape[0] - 1)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(min(ppmi.shape))
    u, s, _vt = svds(ppmi, k=k, v0=v0)
    # svds returns ascending singular values; order is irrelevant for cosine
    # but we keep the conventional descending layout.
    order = np.argsort(-s)
    vectors = u[:, order] * np.sqrt(s[order])
    return WordEmbeddings(vocabulary, vectors)


def _cooccurrence_matrix(
    token_lists: list[list[str]],
    index: Mapping[str, int],
    window: int,
) -> sparse.csr_matrix:
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for tokens in token_lists:
        ids = [index[t] for t in tokens if t in index]
        for i, wi in enumerate(ids):
            for j in range(max(0, i - window), min(len(ids), i + window + 1)):
                if i != j:
                    rows.append(wi)
                    cols.append(ids[j])
                    vals.append(1.0)
    n = len(index)
    return sparse.csr_matrix(
        (vals, (rows, cols)), shape=(n, n), dtype=np.float64
    )


def _ppmi(cooc: sparse.csr_matrix) -> sparse.csr_matrix:
    """Positive pointwise mutual information transform of a count matrix."""
    total = cooc.sum()
    if total == 0:
        return cooc
    row_sums = np.asarray(cooc.sum(axis=1)).ravel()
    col_sums = np.asarray(cooc.sum(axis=0)).ravel()
    coo = cooc.tocoo()
    with np.errstate(divide="ignore"):
        pmi = np.log(
            (coo.data * total)
            / (row_sums[coo.row] * col_sums[coo.col])
        )
    positive = np.maximum(pmi, 0.0)
    out = sparse.csr_matrix(
        (positive, (coo.row, coo.col)), shape=cooc.shape, dtype=np.float64
    )
    out.eliminate_zeros()
    return out
