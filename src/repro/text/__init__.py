"""Text substrate: tokenisation, keyword extraction, PPMI-SVD embeddings."""

from .embeddings import WordEmbeddings, cosine, train_title_embeddings
from .tokenize import (
    STOP_WORDS,
    corpus_word_frequencies,
    extract_keywords,
    frequent_words,
    tokenize,
)

__all__ = [
    "STOP_WORDS",
    "WordEmbeddings",
    "corpus_word_frequencies",
    "cosine",
    "extract_keywords",
    "frequent_words",
    "tokenize",
    "train_title_embeddings",
]
