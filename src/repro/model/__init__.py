"""Probabilistic generative model: exponential-family mixture + EM + scores."""

from .exponential_family import (
    DEFAULT_FAMILIES,
    Component,
    Exponential,
    Gaussian,
    Multinomial,
    ZeroInflatedExponential,
    make_component,
)
from .mixture import EMReport, MatchMixture
from .scoring import decide, match_score, match_scores

__all__ = [
    "Component",
    "DEFAULT_FAMILIES",
    "EMReport",
    "Exponential",
    "Gaussian",
    "MatchMixture",
    "Multinomial",
    "ZeroInflatedExponential",
    "decide",
    "make_component",
    "match_score",
    "match_scores",
]
