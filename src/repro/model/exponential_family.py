"""Exponential-family components for the matched/unmatched mixture.

Section V-C: the conditional densities ``P(γ⁽ⁱ⁾ | r ∈ M)`` and
``P(γ⁽ⁱ⁾ | r ∈ U)`` are modelled with exponential-family distributions so
the EM M-step has the closed-form MLEs of Table I.  Three families are
implemented — Gaussian, Exponential and Multinomial (over discretised
bins) — matching Table I row for row; every component supports *weighted*
MLE fitting because EM weights samples by their posterior responsibility.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

_EPS = 1e-12
_MIN_SIGMA = 1e-4
_MAX_RATE = 1e6


class Component(Protocol):
    """One per-feature conditional density in the mixture."""

    def fit(self, x: np.ndarray, weights: np.ndarray) -> None:
        """Weighted maximum-likelihood update (one Table I row)."""

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        """Element-wise log density of ``x``."""


@dataclass(slots=True)
class Gaussian:
    """Gaussian component; Table I's Gaussian row.

    ``μ = Σ w_j γ_j / Σ w_j`` and ``σ² = Σ w_j (γ_j − μ)² / Σ w_j``.
    """

    mu: float = 0.0
    sigma: float = 1.0

    def fit(self, x: np.ndarray, weights: np.ndarray) -> None:
        total = float(weights.sum())
        if total <= _EPS:
            return
        self.mu = float((weights @ x) / total)
        var = float((weights @ (x - self.mu) ** 2) / total)
        self.sigma = max(np.sqrt(var), _MIN_SIGMA)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        z = (x - self.mu) / self.sigma
        return -0.5 * z * z - np.log(self.sigma) - 0.5 * np.log(2.0 * np.pi)


@dataclass(slots=True)
class Exponential:
    """Exponential component; Table I's Exponential row.

    ``λ = Σ w_j / Σ w_j γ_j``.  Support is ``x ≥ 0``; the similarity
    functions feeding this family (γ1, γ2, γ4–γ6) are non-negative by
    construction.  The rate is capped so an all-zero feature cannot produce
    an infinite density spike.
    """

    rate: float = 1.0

    def fit(self, x: np.ndarray, weights: np.ndarray) -> None:
        total = float(weights.sum())
        if total <= _EPS:
            return
        mean = float((weights @ np.maximum(x, 0.0)) / total)
        self.rate = min(1.0 / max(mean, 1.0 / _MAX_RATE), _MAX_RATE)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        return np.log(self.rate) - self.rate * np.maximum(x, 0.0)


@dataclass(slots=True)
class ZeroInflatedExponential:
    """Point mass at zero mixed with an exponential tail.

    The similarity functions are *zero-inflated*: most unmatched pairs share
    no cliques/venues/keywords at all, so γ = 0 exactly.  A pure exponential
    fit to such data degenerates (rate → ∞, turning the density into a
    spike whose likelihood ratio explodes for any positive value); the
    textbook remedy is ``P(x) = π·δ₀(x) + (1−π)·Exp(λ)``:

    * ``π`` — weighted fraction of exact zeros,
    * ``λ`` — weighted MLE of the positive part (Table I's exponential row,
      applied to the positives).
    """

    zero_mass: float = 0.5
    rate: float = 1.0

    def fit(self, x: np.ndarray, weights: np.ndarray) -> None:
        total = float(weights.sum())
        if total <= _EPS:
            return
        positive = x > 0.0
        pos_weight = float(weights[positive].sum())
        self.zero_mass = float(
            np.clip(1.0 - pos_weight / total, 1e-4, 1.0 - 1e-4)
        )
        if pos_weight > _EPS:
            mean = float((weights[positive] @ x[positive]) / pos_weight)
            self.rate = min(1.0 / max(mean, 1.0 / _MAX_RATE), _MAX_RATE)

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        zero = x <= 0.0
        out = np.empty_like(x)
        out[zero] = np.log(self.zero_mass)
        out[~zero] = (
            np.log1p(-self.zero_mass)
            + np.log(self.rate)
            - self.rate * x[~zero]
        )
        return out


@dataclass(slots=True)
class Multinomial:
    """Multinomial component over discretised bins; Table I's first row.

    ``p_h = Σ w_j 1[γ_j = h] / Σ w_j`` with Laplace smoothing.  Continuous
    similarities are discretised into ``n_bins`` equal-width bins over
    ``[lo, hi]``.
    """

    n_bins: int = 10
    lo: float = 0.0
    hi: float = 1.0
    smoothing: float = 1.0
    probs: np.ndarray = field(default_factory=lambda: np.array([]))

    def __post_init__(self) -> None:
        if self.n_bins < 2:
            raise ValueError(f"n_bins must be >= 2, got {self.n_bins}")
        if self.hi <= self.lo:
            raise ValueError("hi must exceed lo")
        if self.probs.size == 0:
            self.probs = np.full(self.n_bins, 1.0 / self.n_bins)

    def bin_of(self, x: np.ndarray) -> np.ndarray:
        """Bin index of each value (clipped to the support)."""
        scaled = (np.asarray(x, dtype=float) - self.lo) / (self.hi - self.lo)
        return np.clip((scaled * self.n_bins).astype(int), 0, self.n_bins - 1)

    def fit(self, x: np.ndarray, weights: np.ndarray) -> None:
        total = float(weights.sum())
        if total <= _EPS:
            return
        bins = self.bin_of(x)
        mass = np.bincount(bins, weights=weights, minlength=self.n_bins)
        mass = mass + self.smoothing
        self.probs = mass / mass.sum()

    def log_pdf(self, x: np.ndarray) -> np.ndarray:
        return np.log(np.maximum(self.probs[self.bin_of(x)], _EPS))


#: Default family assignment for the six similarity functions: γ3 (cosine,
#: can be negative) is Gaussian; the non-negative, zero-heavy others are
#: zero-inflated Exponential.
DEFAULT_FAMILIES: tuple[str, ...] = (
    "zi_exponential",  # γ1 WL kernel
    "zi_exponential",  # γ2 clique coincidence
    "gaussian",        # γ3 interest cosine
    "zi_exponential",  # γ4 time consistency
    "zi_exponential",  # γ5 representative community
    "zi_exponential",  # γ6 research community
)


def make_component(family: str) -> Component:
    """Instantiate a fresh component of the given family name."""
    if family == "gaussian":
        return Gaussian()
    if family == "exponential":
        return Exponential()
    if family == "zi_exponential":
        return ZeroInflatedExponential()
    if family == "multinomial":
        return Multinomial()
    raise ValueError(f"unknown family {family!r}")


# --------------------------------------------------------------------- #
# persistence (exact parameter round-trip, JSON-ready)
# --------------------------------------------------------------------- #
def component_state(component: Component) -> dict:
    """The fitted parameters of a component as a plain JSON-ready dict.

    The inverse of :func:`component_from_state`.  Floats are emitted
    as-is — JSON round-trips Python floats bit-exactly (``repr``-based
    shortest representation), so a reloaded component scores pairs
    identically to the one that was saved.
    """
    if isinstance(component, Gaussian):
        return {"family": "gaussian", "mu": component.mu, "sigma": component.sigma}
    if isinstance(component, Exponential):
        return {"family": "exponential", "rate": component.rate}
    if isinstance(component, ZeroInflatedExponential):
        return {
            "family": "zi_exponential",
            "zero_mass": component.zero_mass,
            "rate": component.rate,
        }
    if isinstance(component, Multinomial):
        return {
            "family": "multinomial",
            "n_bins": component.n_bins,
            "lo": component.lo,
            "hi": component.hi,
            "smoothing": component.smoothing,
            "probs": [float(p) for p in component.probs],
        }
    raise TypeError(f"unknown component type {type(component).__name__}")


def component_from_state(state: dict) -> Component:
    """Rebuild a fitted component from :func:`component_state` output."""
    family = state["family"]
    if family == "gaussian":
        return Gaussian(mu=state["mu"], sigma=state["sigma"])
    if family == "exponential":
        return Exponential(rate=state["rate"])
    if family == "zi_exponential":
        return ZeroInflatedExponential(
            zero_mass=state["zero_mass"], rate=state["rate"]
        )
    if family == "multinomial":
        return Multinomial(
            n_bins=state["n_bins"],
            lo=state["lo"],
            hi=state["hi"],
            smoothing=state["smoothing"],
            probs=np.asarray(state["probs"], dtype=np.float64),
        )
    raise ValueError(f"unknown family {family!r}")
