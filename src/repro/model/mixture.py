"""Two-component (matched / unmatched) mixture fitted with EM.

Section V-C: candidate pairs ``r_j`` with similarity vectors ``γ_j`` are
generated either by the *matched* class M (two vertices of one author) with
prior ``p`` or the *unmatched* class U with prior ``1 − p``; features are
conditionally independent given the class, each following an
exponential-family density.  The latent labels make direct MLE impossible,
so the parameters are learned with EM — the M-step MLEs are exactly the
Table I updates implemented by the component classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .exponential_family import (
    DEFAULT_FAMILIES,
    Component,
    component_from_state,
    component_state,
    make_component,
)

_EPS = 1e-12


@dataclass(slots=True)
class EMReport:
    """Fit diagnostics: one log-likelihood per EM iteration."""

    log_likelihoods: list[float]
    converged: bool

    @property
    def n_iterations(self) -> int:
        return len(self.log_likelihoods)


class MatchMixture:
    """The matched/unmatched generative model of Stage 2.

    Attributes:
        prior_match: ``p = P(r ∈ M)``.
        matched: Per-feature conditional densities of class M.
        unmatched: Per-feature conditional densities of class U.
    """

    def __init__(self, families: Sequence[str] = DEFAULT_FAMILIES):
        self.families = tuple(families)
        self.prior_match = 0.2
        self.matched: list[Component] = [make_component(f) for f in families]
        self.unmatched: list[Component] = [make_component(f) for f in families]

    # ------------------------------------------------------------------ #
    # densities
    # ------------------------------------------------------------------ #
    def _check(self, gammas: np.ndarray) -> np.ndarray:
        gammas = np.atleast_2d(np.asarray(gammas, dtype=np.float64))
        if gammas.shape[1] != len(self.families):
            raise ValueError(
                f"expected {len(self.families)} features, got {gammas.shape[1]}"
            )
        return gammas

    def log_density(self, gammas: np.ndarray, matched: bool) -> np.ndarray:
        """``log P(γ | class)`` for every row (conditional independence)."""
        gammas = self._check(gammas)
        components = self.matched if matched else self.unmatched
        total = np.zeros(gammas.shape[0])
        for i, component in enumerate(components):
            total += component.log_pdf(gammas[:, i])
        return total

    def responsibilities(self, gammas: np.ndarray) -> np.ndarray:
        """``P(r ∈ M | γ, Θ)`` for every row (the E-step)."""
        gammas = self._check(gammas)
        log_m = self.log_density(gammas, matched=True) + np.log(
            max(self.prior_match, _EPS)
        )
        log_u = self.log_density(gammas, matched=False) + np.log(
            max(1.0 - self.prior_match, _EPS)
        )
        peak = np.maximum(log_m, log_u)
        em = np.exp(log_m - peak)
        eu = np.exp(log_u - peak)
        return em / (em + eu)

    def log_likelihood(self, gammas: np.ndarray) -> float:
        """Observed-data log-likelihood ``Σ_j log P(γ_j | Θ)``."""
        gammas = self._check(gammas)
        log_m = self.log_density(gammas, matched=True) + np.log(
            max(self.prior_match, _EPS)
        )
        log_u = self.log_density(gammas, matched=False) + np.log(
            max(1.0 - self.prior_match, _EPS)
        )
        peak = np.maximum(log_m, log_u)
        return float(
            (peak + np.log(np.exp(log_m - peak) + np.exp(log_u - peak))).sum()
        )

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """All learned parameters as a JSON-ready dict (see :meth:`from_state`).

        Note the per-slot ``family`` tags on the components rather than a
        single top-level list: :meth:`_orient` may have swapped the
        matched/unmatched component lists after EM, so the fitted
        parameters — not ``self.families`` — are the source of truth for
        what each slot holds.
        """
        return {
            "families": list(self.families),
            "prior_match": self.prior_match,
            "matched": [component_state(c) for c in self.matched],
            "unmatched": [component_state(c) for c in self.unmatched],
        }

    @classmethod
    def from_state(cls, state: dict) -> "MatchMixture":
        """Rebuild a fitted mixture from :meth:`state_dict` output.

        The reloaded model produces bit-identical densities and matching
        scores: every parameter round-trips exactly through JSON floats.
        """
        model = cls(tuple(state["families"]))
        model.prior_match = state["prior_match"]
        model.matched = [component_from_state(s) for s in state["matched"]]
        model.unmatched = [component_from_state(s) for s in state["unmatched"]]
        if len(model.matched) != len(model.families) or len(
            model.unmatched
        ) != len(model.families):
            raise ValueError(
                "mixture state holds "
                f"{len(model.matched)}/{len(model.unmatched)} components "
                f"for {len(model.families)} families"
            )
        return model

    # ------------------------------------------------------------------ #
    # fitting
    # ------------------------------------------------------------------ #
    def fit(
        self,
        gammas: np.ndarray,
        max_iterations: int = 200,
        tolerance: float = 1e-6,
        initial_responsibilities: np.ndarray | None = None,
    ) -> EMReport:
        """Fit by EM.

        Args:
            gammas: ``(n, m)`` similarity vectors of the training pairs.
            max_iterations: EM iteration cap.
            tolerance: Convergence threshold on the log-likelihood delta.
            initial_responsibilities: Optional warm start for the E-step
                (e.g. known matched pairs from the vertex-splitting balance
                strategy get responsibility ≈ 1).  When omitted, pairs are
                seeded by their total standardised similarity — higher
                overall similarity, more likely matched.
        """
        gammas = self._check(gammas)
        n = gammas.shape[0]
        if n == 0:
            raise ValueError("cannot fit on an empty pair set")
        if initial_responsibilities is None:
            resp = self._seed_responsibilities(gammas)
        else:
            resp = np.clip(
                np.asarray(initial_responsibilities, dtype=np.float64),
                1e-3,
                1.0 - 1e-3,
            )
            if resp.shape != (n,):
                raise ValueError(
                    f"initial responsibilities shape {resp.shape} != ({n},)"
                )

        history: list[float] = []
        converged = False
        self._m_step(gammas, resp)
        for _ in range(max_iterations):
            resp = self.responsibilities(gammas)
            self._m_step(gammas, resp)
            ll = self.log_likelihood(gammas)
            if history and abs(ll - history[-1]) < tolerance:
                history.append(ll)
                converged = True
                break
            history.append(ll)
        self._orient(gammas)
        return EMReport(log_likelihoods=history, converged=converged)

    def _seed_responsibilities(self, gammas: np.ndarray) -> np.ndarray:
        """Heuristic warm start: standardise each feature, rank pairs by the
        total, softly label the top quintile as matched."""
        std = gammas.std(axis=0)
        std[std == 0.0] = 1.0
        z = ((gammas - gammas.mean(axis=0)) / std).sum(axis=1)
        threshold = np.quantile(z, 0.8)
        return np.where(z >= threshold, 0.9, 0.1)

    def _m_step(self, gammas: np.ndarray, resp: np.ndarray) -> None:
        self.prior_match = float(np.clip(resp.mean(), 1e-4, 1.0 - 1e-4))
        inverse = 1.0 - resp
        for i in range(len(self.families)):
            self.matched[i].fit(gammas[:, i], resp)
            self.unmatched[i].fit(gammas[:, i], inverse)

    def _orient(self, gammas: np.ndarray) -> None:
        """Ensure the M component is the *high-similarity* one.

        EM is symmetric in its two components; if it converged with M and U
        swapped (matched pairs scoring low), swap them back.  Orientation is
        decided by the mean total similarity of the top-responsibility pairs.
        """
        resp = self.responsibilities(gammas)
        total = gammas.sum(axis=1)
        matched_mean = float((resp * total).sum() / max(resp.sum(), _EPS))
        unmatched_mean = float(
            ((1.0 - resp) * total).sum() / max((1.0 - resp).sum(), _EPS)
        )
        if matched_mean < unmatched_mean:
            self.matched, self.unmatched = self.unmatched, self.matched
            self.prior_match = 1.0 - self.prior_match
