"""Matching scores and the merge decision rule (Section V-D).

Given the learned parameters, every candidate pair gets the Fellegi–Sunter
style log-posterior-odds score of Eq. 11:

``sc_j = log( P(r_j ∈ M | γ_j, Θ̂) / P(r_j ∈ U | γ_j, Θ̂) )``

and the pair is merged when ``sc_j ≥ δ``.
"""

from __future__ import annotations

import numpy as np

from .mixture import MatchMixture

_EPS = 1e-12


def match_scores(model: MatchMixture, gammas: np.ndarray) -> np.ndarray:
    """Eq. 11 scores for each row of ``gammas``.

    Computed in log space: the posterior odds equal the prior odds times the
    likelihood ratio, so
    ``sc = log p − log(1−p) + log P(γ|M) − log P(γ|U)``.
    """
    gammas = np.atleast_2d(np.asarray(gammas, dtype=np.float64))
    prior = np.log(max(model.prior_match, _EPS)) - np.log(
        max(1.0 - model.prior_match, _EPS)
    )
    return (
        prior
        + model.log_density(gammas, matched=True)
        - model.log_density(gammas, matched=False)
    )


def match_score(model: MatchMixture, gamma: np.ndarray) -> float:
    """Eq. 11 score of a single pair."""
    return float(match_scores(model, np.atleast_2d(gamma))[0])


def decide(model: MatchMixture, gammas: np.ndarray, delta: float) -> np.ndarray:
    """Boolean merge decisions: ``sc_j ≥ δ`` (Algorithm 1, line 14)."""
    return match_scores(model, gammas) >= delta
