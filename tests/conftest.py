"""Shared fixtures: small synthetic worlds and the paper's running example."""

from __future__ import annotations

import pytest

from repro.data.records import Corpus, Paper
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP


@pytest.fixture(scope="session")
def small_config() -> SyntheticConfig:
    """A fast world: a few hundred papers, still ambiguous."""
    return SyntheticConfig(
        n_authors=500,
        n_papers=1200,
        name_pool_size=700,
        n_communities=40,
        seed=11,
    )


@pytest.fixture(scope="session")
def small_world(small_config):
    return SyntheticDBLP(small_config).generate_world()


@pytest.fixture(scope="session")
def small_corpus(small_world) -> Corpus:
    return small_world.corpus


@pytest.fixture()
def figure2_corpus() -> Corpus:
    """The paper's Figure 2 running example: 8 papers, names a–g."""
    rows = [
        ("a", "b", "c", "d"),
        ("a", "c", "d"),
        ("a", "b", "c"),
        ("a", "b", "c"),
        ("b", "e"),
        ("b", "e"),
        ("b", "f"),
        ("b", "g"),
    ]
    return Corpus(
        Paper(
            pid=i,
            authors=authors,
            title=f"paper {i} mining graphs",
            venue="VENUE-X" if i < 4 else "VENUE-Y",
            year=2000 + i,
        )
        for i, authors in enumerate(rows)
    )


@pytest.fixture()
def labelled_corpus() -> Corpus:
    """A tiny labelled corpus: two authors share the name 'X Y'."""
    papers = [
        # author 1 (id 100): works with P, Q at VLDB-ish venue
        Paper(0, ("X Y", "P A"), "query index join", "VLDB", 2001, (100, 1)),
        Paper(1, ("X Y", "P A"), "index storage btree", "VLDB", 2002, (100, 1)),
        Paper(2, ("X Y", "Q B"), "query optimization", "VLDB", 2003, (100, 2)),
        Paper(3, ("X Y", "P A", "Q B"), "transaction recovery", "VLDB", 2004, (100, 1, 2)),
        # author 2 (id 200): works with R, S at CVPR-ish venue
        Paper(4, ("X Y", "R C"), "image segmentation", "CVPR", 2001, (200, 3)),
        Paper(5, ("X Y", "R C"), "object detection scene", "CVPR", 2002, (200, 3)),
        Paper(6, ("X Y", "S D"), "stereo depth tracking", "CVPR", 2003, (200, 4)),
        Paper(7, ("X Y", "R C", "S D"), "pose recognition", "CVPR", 2005, (200, 3, 4)),
    ]
    return Corpus(papers)
