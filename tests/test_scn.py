"""Tests for Stage 1 — SCN construction (the Figure 2/4 running example)."""

import pytest

from repro.data.records import Corpus, Paper
from repro.graphs.scn import (
    SCNBuilder,
    build_scn,
    independence_tail_probability,
    mine_scrs,
)


class TestIndependenceTail:
    def test_paper_equation_2(self):
        """Eq. 2: Pr(X >= 3) = 2.3389e-3 with the paper's numbers."""
        p = independence_tail_probability(500, 500, 500_000, 3)
        assert p == pytest.approx(2.3389e-3, rel=1e-3)

    def test_monotone_in_x(self):
        p2 = independence_tail_probability(500, 500, 500_000, 2)
        p3 = independence_tail_probability(500, 500, 500_000, 3)
        p5 = independence_tail_probability(500, 500, 500_000, 5)
        assert p2 > p3 > p5

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            independence_tail_probability(-1, 5, 100, 2)
        with pytest.raises(ValueError):
            independence_tail_probability(1, 5, 0, 2)


class TestMineSCRs:
    def test_supports_carry_paper_ids(self, figure2_corpus):
        scrs = mine_scrs(figure2_corpus, 2)
        assert scrs[("a", "c")] == {0, 1, 2, 3}
        assert scrs[("b", "e")] == {4, 5}
        assert ("b", "f") not in scrs


class TestFigure2Construction:
    """The full running example: expected vertices, edges, papers."""

    @pytest.fixture()
    def scn(self, figure2_corpus):
        net, report = build_scn(figure2_corpus, eta=2)
        return net, report

    def test_report_counts(self, scn):
        _net, report = scn
        assert report.eta == 2
        assert report.n_scrs == 6
        assert report.n_vertices == 10
        assert report.n_isolated == 4

    def test_cluster_abcd(self, scn):
        net, _ = scn
        # one vertex per name in the stable cluster
        for name, papers in [
            ("a", {0, 1, 2, 3}),
            ("c", {0, 1, 2, 3}),
            ("d", {0, 1}),
        ]:
            (vid,) = [
                v for v in net.vertices_of_name(name) if len(net.papers_of(v)) > 1
            ]
            assert net.papers_of(vid) == papers

    def test_name_b_splits_into_four_vertices(self, scn):
        net, _ = scn
        b_vertices = net.vertices_of_name("b")
        assert len(b_vertices) == 4
        paper_sets = sorted(
            (sorted(net.papers_of(v)) for v in b_vertices), key=lambda s: (len(s), s)
        )
        assert paper_sets == [[6], [7], [4, 5], [0, 2, 3]]

    def test_isolated_vertices_have_no_edges(self, scn):
        net, _ = scn
        for name in ("f", "g"):
            (vid,) = net.vertices_of_name(name)
            assert net.degree(vid) == 0

    def test_triangle_edges_materialised(self, scn):
        net, _ = scn
        (a,) = [
            v for v in net.vertices_of_name("a") if len(net.papers_of(v)) > 1
        ]
        neighbor_names = {net.name_of(n) for n in net.neighbors(a)}
        assert neighbor_names == {"b", "c", "d"}


class TestMentionAssignment:
    def test_every_occurrence_assigned_exactly_once(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        seen: dict[tuple[int, int], int] = {}
        for vertex in net:
            for pid, position in vertex.mentions.items():
                key = (pid, position)
                assert key not in seen, f"mention {key} owned twice"
                seen[key] = vertex.vid
        total_mentions = small_corpus.num_author_paper_pairs
        assert len(seen) == total_mentions

    def test_vertex_papers_match_mentions(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        for vertex in net:
            assert vertex.papers == set(vertex.mentions)
            for pid, position in vertex.mentions.items():
                assert small_corpus[pid].authors[position] == vertex.name


class TestHomonymAssignment:
    """Per-occurrence mention model: a paper listing one name twice."""

    @pytest.fixture()
    def homonym_corpus(self) -> Corpus:
        # Name "x" has two SCR-covered vertices (via partners p and q);
        # paper 4 lists "x" twice — two homonymous co-authors.
        rows = [
            ("x", "p"),
            ("x", "p"),
            ("x", "q"),
            ("x", "q"),
            ("x", "x", "p", "q"),
        ]
        return Corpus(
            Paper(
                pid=i,
                authors=authors,
                title=f"paper {i}",
                venue="V",
                year=2000 + i,
            )
            for i, authors in enumerate(rows)
        )

    def test_occurrences_land_on_distinct_scr_vertices(self, homonym_corpus):
        """Regression for the (name, paper) conflation: when the duplicated
        name is covered by η-SCRs, the two occurrences must land on two
        distinct vertices, not be folded onto one."""
        net, _ = build_scn(homonym_corpus, eta=2)
        owners = [
            vid for vid in net.vertices_of_name("x") if 4 in net.papers_of(vid)
        ]
        assert len(owners) == 2
        positions = sorted(net.mentions_of(vid)[4] for vid in owners)
        assert positions == [0, 1]
        # The first occurrence goes to the preferred (older, equal-paper)
        # SCR vertex, the second to the runner-up — never a fresh singleton
        # while a covering vertex is free.
        for vid in owners:
            assert len(net.papers_of(vid)) == 3

    def test_second_occurrence_falls_back_to_singleton(self):
        """With a single covering vertex, the later occurrence opens a
        fresh singleton instead of double-attributing the paper."""
        corpus = Corpus(
            [
                Paper(0, ("x", "p"), "t0", "V", 2000),
                Paper(1, ("x", "p"), "t1", "V", 2001),
                Paper(2, ("x", "x", "p"), "t2", "V", 2002),
            ]
        )
        net, _ = build_scn(corpus, eta=2)
        owners = {
            vid: net.mentions_of(vid)[2]
            for vid in net.vertices_of_name("x")
            if 2 in net.papers_of(vid)
        }
        assert len(owners) == 2
        assert sorted(owners.values()) == [0, 1]
        singleton = next(
            vid for vid, pos in owners.items() if len(net.papers_of(vid)) == 1
        )
        assert owners[singleton] == 1  # the *second* occurrence split off

    def test_report_counts_mentions_per_occurrence(self, homonym_corpus):
        """Satellite: SCNBuildReport totals must reconcile with the
        per-occurrence model on a homonym corpus."""
        net, report = build_scn(homonym_corpus, eta=2)
        # 2+2+2+2+4 author-paper pairs, the duplicate name counted twice.
        assert report.n_mentions == 12
        assert report.n_mentions == homonym_corpus.num_author_paper_pairs
        assert report.n_mentions == net.n_mentions
        assert report.n_mentions == sum(len(v.mentions) for v in net)
        assert report.n_vertices == len(net) == 4


class TestKnobs:
    def test_eta_validation(self, figure2_corpus):
        with pytest.raises(ValueError):
            SCNBuilder(figure2_corpus, eta=0)

    def test_higher_eta_is_stricter(self, small_corpus):
        _net2, rep2 = build_scn(small_corpus, eta=2)
        _net3, rep3 = build_scn(small_corpus, eta=3)
        assert rep3.n_scrs <= rep2.n_scrs
        assert rep3.n_isolated >= rep2.n_isolated

    def test_certification_off_merges_more(self, small_corpus):
        net_on, _ = build_scn(small_corpus, eta=2, certify_triangles=True)
        net_off, _ = build_scn(small_corpus, eta=2, certify_triangles=False)
        assert len(net_off) <= len(net_on)

    def test_triangle_instance_flag(self, small_corpus):
        net_strict, rep_strict = build_scn(
            small_corpus, eta=2, require_triangle_instance=True
        )
        net_loose, rep_loose = build_scn(
            small_corpus, eta=2, require_triangle_instance=False
        )
        # the strict rule certifies a subset of what the loose rule does
        assert (
            rep_strict.n_triangle_certifications
            <= rep_loose.n_triangle_certifications
        )
