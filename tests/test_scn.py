"""Tests for Stage 1 — SCN construction (the Figure 2/4 running example)."""

import pytest

from repro.data.records import Corpus, Paper
from repro.graphs.scn import (
    SCNBuilder,
    build_scn,
    independence_tail_probability,
    mine_scrs,
)


class TestIndependenceTail:
    def test_paper_equation_2(self):
        """Eq. 2: Pr(X >= 3) = 2.3389e-3 with the paper's numbers."""
        p = independence_tail_probability(500, 500, 500_000, 3)
        assert p == pytest.approx(2.3389e-3, rel=1e-3)

    def test_monotone_in_x(self):
        p2 = independence_tail_probability(500, 500, 500_000, 2)
        p3 = independence_tail_probability(500, 500, 500_000, 3)
        p5 = independence_tail_probability(500, 500, 500_000, 5)
        assert p2 > p3 > p5

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            independence_tail_probability(-1, 5, 100, 2)
        with pytest.raises(ValueError):
            independence_tail_probability(1, 5, 0, 2)


class TestMineSCRs:
    def test_supports_carry_paper_ids(self, figure2_corpus):
        scrs = mine_scrs(figure2_corpus, 2)
        assert scrs[("a", "c")] == {0, 1, 2, 3}
        assert scrs[("b", "e")] == {4, 5}
        assert ("b", "f") not in scrs


class TestFigure2Construction:
    """The full running example: expected vertices, edges, papers."""

    @pytest.fixture()
    def scn(self, figure2_corpus):
        net, report = build_scn(figure2_corpus, eta=2)
        return net, report

    def test_report_counts(self, scn):
        _net, report = scn
        assert report.eta == 2
        assert report.n_scrs == 6
        assert report.n_vertices == 10
        assert report.n_isolated == 4

    def test_cluster_abcd(self, scn):
        net, _ = scn
        # one vertex per name in the stable cluster
        for name, papers in [
            ("a", {0, 1, 2, 3}),
            ("c", {0, 1, 2, 3}),
            ("d", {0, 1}),
        ]:
            (vid,) = [
                v for v in net.vertices_of_name(name) if len(net.papers_of(v)) > 1
            ]
            assert net.papers_of(vid) == papers

    def test_name_b_splits_into_four_vertices(self, scn):
        net, _ = scn
        b_vertices = net.vertices_of_name("b")
        assert len(b_vertices) == 4
        paper_sets = sorted(
            (sorted(net.papers_of(v)) for v in b_vertices), key=lambda s: (len(s), s)
        )
        assert paper_sets == [[6], [7], [4, 5], [0, 2, 3]]

    def test_isolated_vertices_have_no_edges(self, scn):
        net, _ = scn
        for name in ("f", "g"):
            (vid,) = net.vertices_of_name(name)
            assert net.degree(vid) == 0

    def test_triangle_edges_materialised(self, scn):
        net, _ = scn
        (a,) = [
            v for v in net.vertices_of_name("a") if len(net.papers_of(v)) > 1
        ]
        neighbor_names = {net.name_of(n) for n in net.neighbors(a)}
        assert neighbor_names == {"b", "c", "d"}


class TestMentionAssignment:
    def test_every_mention_assigned_exactly_once(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        seen: dict[tuple[str, int], int] = {}
        for vertex in net:
            for pid in vertex.papers:
                key = (vertex.name, pid)
                assert key not in seen, f"mention {key} owned twice"
                seen[key] = vertex.vid
        total_mentions = small_corpus.num_author_paper_pairs
        assert len(seen) == total_mentions

    def test_vertex_papers_contain_vertex_name(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        for vertex in net:
            for pid in vertex.papers:
                assert vertex.name in small_corpus[pid].authors


class TestKnobs:
    def test_eta_validation(self, figure2_corpus):
        with pytest.raises(ValueError):
            SCNBuilder(figure2_corpus, eta=0)

    def test_higher_eta_is_stricter(self, small_corpus):
        _net2, rep2 = build_scn(small_corpus, eta=2)
        _net3, rep3 = build_scn(small_corpus, eta=3)
        assert rep3.n_scrs <= rep2.n_scrs
        assert rep3.n_isolated >= rep2.n_isolated

    def test_certification_off_merges_more(self, small_corpus):
        net_on, _ = build_scn(small_corpus, eta=2, certify_triangles=True)
        net_off, _ = build_scn(small_corpus, eta=2, certify_triangles=False)
        assert len(net_off) <= len(net_on)

    def test_triangle_instance_flag(self, small_corpus):
        net_strict, rep_strict = build_scn(
            small_corpus, eta=2, require_triangle_instance=True
        )
        net_loose, rep_loose = build_scn(
            small_corpus, eta=2, require_triangle_instance=False
        )
        # the strict rule certifies a subset of what the loose rule does
        assert (
            rep_strict.n_triangle_certifications
            <= rep_loose.n_triangle_certifications
        )
