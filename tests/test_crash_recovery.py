"""Crash recovery: a kill mid-checkpoint never corrupts the last snapshot.

The atomicity contract of :mod:`repro.io.backends`: checkpoints are
written to a ``.tmp`` sibling, fsynced, then renamed over the
destination.  These tests simulate the two crash windows — a truncated
tmp file (killed mid-write) and an interrupt *before* the rename — and
assert, for both backends, that the previous snapshot stays loadable and
that resuming from it reproduces the uninterrupted run exactly (at worst
the papers since the last checkpoint are re-streamed, never lost state).
"""

from __future__ import annotations

import copy
import os

import pytest

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.data.records import Corpus, Paper
from repro.io import Snapshot
from repro.io import backends as io_backends

BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(scope="module")
def fitted():
    papers = [
        Paper(0, ("X Y", "P A"), "query index join", "VLDB", 2001),
        Paper(1, ("X Y", "P A"), "index storage btree", "VLDB", 2002),
        Paper(2, ("X Y", "Q B"), "query optimization", "VLDB", 2003),
        Paper(3, ("X Y", "P A", "Q B"), "transaction recovery", "VLDB", 2004),
        Paper(4, ("X Y", "R C"), "image segmentation", "CVPR", 2001),
        Paper(5, ("X Y", "R C"), "object detection scene", "CVPR", 2002),
        Paper(6, ("X Y", "S D"), "stereo depth tracking", "CVPR", 2003),
        Paper(7, ("X Y", "R C", "S D"), "pose recognition", "CVPR", 2005),
    ]
    return IUAD(IUADConfig()).fit(Corpus(papers))


PAPER_A = Paper(100, ("X Y", "P A"), "first streamed paper", "VLDB", 2006)
PAPER_B = Paper(101, ("X Y", "Q B"), "second streamed paper", "VLDB", 2007)


def checkpoint_path(tmp_path, backend):
    return tmp_path / ("ck.sqlite" if backend == "sqlite" else "ck.jsonl")


def exact_state(net):
    vertices, edges, name_index, next_vid = net.export_parts()
    return vertices, sorted(edges), name_index, next_vid


def uninterrupted_reference(fitted):
    reference = copy.deepcopy(fitted)
    stream = StreamingIngestor(reference)
    stream.add_paper(PAPER_A)
    stream.add_paper(PAPER_B)
    return reference, stream


@pytest.mark.parametrize("backend", BACKENDS)
def test_truncated_tmp_leaves_previous_snapshot_loadable(
    fitted, backend, tmp_path
):
    """Killed mid-write: a partial ``.tmp`` exists next to the snapshot."""
    path = checkpoint_path(tmp_path, backend)
    stream = StreamingIngestor(
        copy.deepcopy(fitted), checkpoint_path=path, checkpoint_backend=backend
    )
    stream.add_paper(PAPER_A)
    stream.checkpoint()
    good_bytes = path.read_bytes()

    # simulate the next checkpoint dying mid-write: a truncated tmp file
    tmp_file = path.with_name(path.name + ".tmp")
    tmp_file.write_bytes(good_bytes[: len(good_bytes) // 3])

    # the previous snapshot is untouched and fully loadable
    assert path.read_bytes() == good_bytes
    resumed = StreamingIngestor.resume(path)
    assert resumed.report.n_papers == 1

    # resume parity from the surviving snapshot: re-streaming the lost
    # paper reproduces the uninterrupted run exactly
    resumed.add_paper(PAPER_B)
    reference, reference_stream = uninterrupted_reference(fitted)
    assert exact_state(resumed.iuad.gcn_) == exact_state(reference.gcn_)
    assert resumed.report.n_papers == reference_stream.report.n_papers

    # and the next successful checkpoint cleanly replaces the garbage tmp
    resumed.checkpoint()
    assert not tmp_file.exists()
    assert Snapshot.load(path).stream.n_papers == 2


@pytest.mark.parametrize("backend", BACKENDS)
def test_interrupt_before_rename_keeps_previous_snapshot(
    fitted, backend, tmp_path, monkeypatch
):
    """Killed after the tmp write but before ``os.replace``."""
    path = checkpoint_path(tmp_path, backend)
    stream = StreamingIngestor(
        copy.deepcopy(fitted), checkpoint_path=path, checkpoint_backend=backend
    )
    stream.add_paper(PAPER_A)
    stream.checkpoint()
    good_bytes = path.read_bytes()

    stream.add_paper(PAPER_B)
    real_replace = os.replace

    def crash_on_replace(src, dst, *args, **kwargs):
        if str(dst) == str(path):
            raise OSError("simulated crash before rename")
        return real_replace(src, dst, *args, **kwargs)

    monkeypatch.setattr(io_backends.os, "replace", crash_on_replace)
    with pytest.raises(OSError, match="simulated crash"):
        stream.checkpoint()
    monkeypatch.undo()

    # the crash window left the previous snapshot byte-identical
    assert path.read_bytes() == good_bytes
    resumed = StreamingIngestor.resume(path)
    assert resumed.report.n_papers == 1
    resumed.add_paper(PAPER_B)
    reference, reference_stream = uninterrupted_reference(fitted)
    assert exact_state(resumed.iuad.gcn_) == exact_state(reference.gcn_)
    assert resumed.report.n_papers == reference_stream.report.n_papers
