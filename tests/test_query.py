"""In-place snapshot queries (``repro.io.query``) and the lite view.

Pins the no-full-decode query path against the fully materialised
reference: ``SnapshotQuery.who_is`` / ``owner_of`` — indexed SQL on a
SQLite snapshot, filtered row scans on JSONL, pre-index SQLite files
falling back to payload scans — must return exactly what a full
:class:`~repro.service.FittedView` returns, delta-chain overlay
included.  ``FittedView.from_snapshot(..., full_load=False)`` must be
fingerprint-identical to the full load.
"""

from __future__ import annotations

import copy
import json
import shutil
import sqlite3
import sys
from pathlib import Path

import pytest

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.data.records import Corpus
from repro.io import SnapshotQuery
from repro.io.query import owner_of as owner_of_oneshot
from repro.io.query import who_is as who_is_oneshot
from repro.service.view import FittedView

from test_delta_checkpoint import FIT_PAPERS, STREAM_PAPERS

REPO_ROOT = Path(__file__).resolve().parents[1]

BACKENDS = ("jsonl", "sqlite")
SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite"}

ALL_PAPERS = FIT_PAPERS + STREAM_PAPERS
ALL_NAMES = sorted({name for p in ALL_PAPERS for name in p.authors})


@pytest.fixture(scope="module", params=BACKENDS)
def chained_snapshot(request, tmp_path_factory):
    """One snapshot per backend with a 1-record delta chain riding on
    it: pids 0–7 live in the base, 8–9 only in the chain log."""
    backend = request.param
    tmp = tmp_path_factory.mktemp(f"query_{backend}")
    config = IUADConfig(checkpoint_mode="delta", use_embeddings=False)
    estimator = IUAD(config).fit(Corpus(FIT_PAPERS))
    base = tmp / ("fitted" + SUFFIX[backend])
    ingestor = StreamingIngestor(
        estimator, checkpoint_path=base, checkpoint_backend=backend
    )
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()  # base covers pids 0–7
    ingestor.add_papers(STREAM_PAPERS[2:])
    ingestor.checkpoint()  # pids 8–9 exist only as a delta record
    return backend, base


@pytest.fixture(scope="module")
def reference(chained_snapshot):
    backend, base = chained_snapshot
    return FittedView.from_snapshot(base, backend=backend)


@pytest.fixture()
def cli():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    import importlib

    module = importlib.import_module("snapshot")
    yield module
    sys.path.remove(str(REPO_ROOT / "tools"))


def normalised(clusters):
    return {vid: sorted(map(tuple, m)) for vid, m in clusters.items()}


# --------------------------------------------------------------------- #
# SnapshotQuery vs the fully materialised view
# --------------------------------------------------------------------- #
def test_owner_of_matches_full_view(chained_snapshot, reference):
    backend, base = chained_snapshot
    with SnapshotQuery(base, backend=backend) as query:
        for paper in ALL_PAPERS:
            for position, name in enumerate(paper.authors):
                owner = query.owner_of(paper.pid, position)
                hit = reference.who_is(name, paper.pid, position)
                assert hit is not None
                assert owner == (hit["vid"], name), (paper.pid, position)


def test_who_is_matches_full_view(chained_snapshot, reference):
    backend, base = chained_snapshot
    with SnapshotQuery(base, backend=backend) as query:
        for name in ALL_NAMES:
            assert normalised(query.who_is(name)) == normalised(
                reference.cluster_of(name)
            ), name


def test_chain_only_papers_are_visible(chained_snapshot):
    """Pids 8–9 never made it into the base — the overlay answers."""
    backend, base = chained_snapshot
    with SnapshotQuery(base, backend=backend) as query:
        owner = query.owner_of(9, 0)
        assert owner is not None and owner[1] == "T E"
        assert any(
            (9, 0) in [tuple(m) for m in mentions]
            for mentions in query.who_is("T E").values()
        )


def test_unknowns_answer_empty(chained_snapshot):
    backend, base = chained_snapshot
    with SnapshotQuery(base, backend=backend) as query:
        assert query.who_is("nobody at all") == {}
        assert query.owner_of(9999, 0) is None


def test_oneshot_helpers(chained_snapshot, reference):
    backend, base = chained_snapshot
    hit = reference.who_is("X Y", 0, 0)
    assert owner_of_oneshot(base, 0, 0, backend=backend) == (
        hit["vid"], "X Y"
    )
    assert normalised(who_is_oneshot(base, "X Y", backend=backend)) == (
        normalised(reference.cluster_of("X Y"))
    )


def test_sqlite_pre_index_fallback(chained_snapshot, reference, tmp_path):
    """Snapshots written before the mentions table existed still answer
    (payload scan), just without the index."""
    backend, base = chained_snapshot
    if backend != "sqlite":
        pytest.skip("sqlite-only fallback")
    legacy = tmp_path / "legacy.sqlite"
    shutil.copy(base, legacy)
    shutil.copy(
        base.with_name(base.name + ".delta"),
        legacy.with_name(legacy.name + ".delta"),
    )
    with sqlite3.connect(legacy) as conn:
        conn.execute("DROP TABLE mentions")
    with SnapshotQuery(legacy) as query:
        for name in ALL_NAMES:
            assert normalised(query.who_is(name)) == normalised(
                reference.cluster_of(name)
            ), name
        hit = reference.who_is("X Y", 0, 0)
        assert query.owner_of(0, 0) == (hit["vid"], "X Y")


# --------------------------------------------------------------------- #
# the lite FittedView
# --------------------------------------------------------------------- #
def test_lite_view_is_fingerprint_identical(chained_snapshot, reference):
    backend, base = chained_snapshot
    lite = FittedView.from_snapshot(base, backend=backend, full_load=False)
    assert lite.fingerprint == reference.fingerprint
    assert lite.n_papers == reference.n_papers
    assert lite.n_edges == reference.n_edges
    assert lite.n_mentions == reference.n_mentions
    for name in ALL_NAMES:
        assert normalised(lite.cluster_of(name)) == normalised(
            reference.cluster_of(name)
        ), name


# --------------------------------------------------------------------- #
# the CLI
# --------------------------------------------------------------------- #
def test_cli_who_is_full_and_lite_agree(
    chained_snapshot, cli, capsys
):
    backend, base = chained_snapshot
    assert cli.main(["who-is", str(base), "X Y"]) == 0
    full_out = json.loads(capsys.readouterr().out)
    assert cli.main(["who-is", str(base), "X Y", "--no-full-load"]) == 0
    lite_out = json.loads(capsys.readouterr().out)
    assert full_out == lite_out
    assert full_out["name"] == "X Y" and full_out["clusters"]

    assert cli.main(["who-is", str(base), "T E", "--pid", "9"]) == 0
    full_owner = json.loads(capsys.readouterr().out)
    assert cli.main(
        ["who-is", str(base), "T E", "--pid", "9", "--no-full-load"]
    ) == 0
    lite_owner = json.loads(capsys.readouterr().out)
    assert full_owner == lite_owner
    assert full_owner["owner"] is not None


def test_cli_who_is_missing_file_is_one_line(cli, capsys, tmp_path):
    assert cli.main(["who-is", str(tmp_path / "gone.jsonl"), "x"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("who-is:") and "Traceback" not in err
