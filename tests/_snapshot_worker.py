"""Subprocess worker for the snapshot resume-parity suite.

``tests/test_snapshot_parity.py`` launches this in a **fresh Python
process** to prove that warm-start resume does not lean on any state of
the process that wrote the checkpoint:

    python tests/_snapshot_worker.py <snapshot_in> <papers.jsonl> \
        <batch|scalar> <snapshot_out> <assignments.json>

The worker resumes an ingestor from ``snapshot_in``, streams the papers
(one ``add_papers`` burst or a scalar ``add_paper`` loop), checkpoints
the final state to ``snapshot_out`` and dumps the assignments as JSON.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def main(argv: list[str]) -> int:
    snapshot_in, papers_path, mode, snapshot_out, assignments_out = argv

    from repro.core import StreamingIngestor
    from repro.data.records import Paper

    ingestor = StreamingIngestor.resume(snapshot_in)
    papers = [
        Paper.from_json(line)
        for line in Path(papers_path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if mode == "batch":
        batches = ingestor.add_papers(papers)
    elif mode == "scalar":
        batches = [ingestor.add_paper(paper) for paper in papers]
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    ingestor.checkpoint(snapshot_out)
    payload = [
        [[a.name, a.position, a.vid, a.created, a.score] for a in batch]
        for batch in batches
    ]
    Path(assignments_out).write_text(json.dumps(payload), encoding="utf-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
