"""Parity and cache tests for the batched similarity engine.

The engine's contract: ``pair_matrix_batched`` equals the scalar
``similarity_vector`` path to (well below) 1e-9 for any pair list, in both
the embedding-centroid and the no-embeddings fallback branches of γ3.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import candidate_pairs_of_name
from repro.data.records import Corpus, Paper
from repro.graphs import build_scn
from repro.graphs.collab import CollaborationNetwork
from repro.similarity import SimilarityComputer
from repro.text.embeddings import train_title_embeddings

ATOL = 1e-9


def _all_pairs(net):
    pairs = []
    for name in net.names:
        pairs.extend(candidate_pairs_of_name(net, name))
    return pairs


@pytest.fixture(scope="module")
def scn(small_corpus):
    net, _ = build_scn(small_corpus, eta=2)
    return net


@pytest.fixture(scope="module")
def embeddings(small_corpus):
    return train_title_embeddings(p.title for p in small_corpus)


@pytest.fixture(scope="module")
def computers(scn, small_corpus, embeddings):
    """One computer per γ3 branch (fallback / centroid)."""
    return {
        "fallback": SimilarityComputer(scn, small_corpus, embeddings=None),
        "centroid": SimilarityComputer(scn, small_corpus, embeddings=embeddings),
    }


class TestParity:
    @pytest.mark.parametrize("branch", ["fallback", "centroid"])
    def test_full_candidate_set(self, computers, scn, branch):
        computer = computers[branch]
        pairs = _all_pairs(scn)
        assert len(pairs) > 100
        reference = computer.pair_matrix_perpair(pairs)
        batched = computer.pair_matrix_batched(pairs)
        np.testing.assert_allclose(batched, reference, rtol=0.0, atol=ATOL)

    @pytest.mark.parametrize("branch", ["fallback", "centroid"])
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_random_sublists(self, computers, scn, branch, data):
        """Property: any sublist — repeats, flipped orders, self-pairs —
        scores identically on both paths."""
        computer = computers[branch]
        pairs = _all_pairs(scn)
        idx = data.draw(
            st.lists(
                st.integers(0, len(pairs) - 1), min_size=1, max_size=40
            )
        )
        flips = data.draw(
            st.lists(st.booleans(), min_size=len(idx), max_size=len(idx))
        )
        sub = [
            (pairs[i][1], pairs[i][0]) if flip else pairs[i]
            for i, flip in zip(idx, flips)
        ]
        if data.draw(st.booleans()):
            u = pairs[idx[0]][0]
            sub.append((u, u))  # self-pair: both paths must handle it
        np.testing.assert_allclose(
            computer.pair_matrix_batched(sub),
            computer.pair_matrix_perpair(sub),
            rtol=0.0,
            atol=ATOL,
        )

    def test_empty_pair_list(self, computers):
        for computer in computers.values():
            assert computer.pair_matrix_batched([]).shape == (0, 6)
            assert computer.pair_matrix([]).shape == (0, 6)

    def test_mixed_centroid_and_fallback_pairs(self, small_corpus, embeddings):
        """A vertex with no keywords has no centroid: pairs touching it take
        the multiset-cosine fallback even when embeddings exist, on both
        paths."""
        corpus = Corpus(
            [
                Paper(0, ("A A", "B B"), "query index join", "V1", 2001),
                Paper(1, ("A A", "B B"), "query index store", "V1", 2002),
                Paper(2, ("A A", "C C"), "", "V2", 2003),  # no keywords
                Paper(3, ("A A", "C C"), "", "V2", 2004),
            ]
        )
        net = CollaborationNetwork()
        a1 = net.add_vertex("A A", papers=(0, 1))
        a2 = net.add_vertex("A A", papers=(2, 3))
        b = net.add_vertex("B B", papers=(0, 1))
        c = net.add_vertex("C C", papers=(2, 3))
        net.add_edge(a1, b, (0, 1))
        net.add_edge(a2, c, (2, 3))
        computer = SimilarityComputer(net, corpus, embeddings=embeddings)
        assert computer.profile(a2).centroid is None
        pairs = [(a1, a2), (a2, a1), (a1, a1)]
        np.testing.assert_allclose(
            computer.pair_matrix_batched(pairs),
            computer.pair_matrix_perpair(pairs),
            rtol=0.0,
            atol=ATOL,
        )


class TestDispatch:
    def test_threshold_routes_small_lists_to_scalar_path(
        self, scn, small_corpus
    ):
        pairs = _all_pairs(scn)[:4]
        low = SimilarityComputer(
            scn, small_corpus, embeddings=None, batch_threshold=1
        )
        high = SimilarityComputer(
            scn, small_corpus, embeddings=None, batch_threshold=100
        )
        np.testing.assert_allclose(
            low.pair_matrix(pairs), high.pair_matrix(pairs), rtol=0.0, atol=ATOL
        )


class TestEngineCache:
    def test_invalidate_drops_profile_and_arrays(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        computer = SimilarityComputer(net, small_corpus, embeddings=None)
        pairs = _all_pairs(net)[:20]
        before = computer.pair_matrix_batched(pairs)
        vid = pairs[0][0]
        assert computer.is_cached(vid)
        assert vid in computer._engine
        computer.invalidate(vid)
        assert not computer.is_cached(vid)
        assert vid not in computer._engine
        # Rebuild from unchanged state reproduces the identical matrix.
        np.testing.assert_allclose(
            computer.pair_matrix_batched(pairs), before, rtol=0.0, atol=0.0
        )

    def test_interners_survive_invalidation(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        computer = SimilarityComputer(net, small_corpus, embeddings=None)
        pairs = _all_pairs(net)[:20]
        computer.pair_matrix_batched(pairs)
        engine = computer._engine
        n_kw, n_ven = len(engine._kw), len(engine._ven)
        for u, v in pairs:
            computer.invalidate(u)
            computer.invalidate(v)
        computer.pair_matrix_batched(pairs)
        # Grow-only column spaces: rebuilt vertices reuse their old ids.
        assert len(engine._kw) == n_kw
        assert len(engine._ven) == n_ven

    def test_transient_vertices_bypass_caches(self, small_corpus, embeddings):
        """The probe-scoring path: transient vids are scored once and
        leave neither profile nor columnar arrays (nor leaked centroid
        slots) behind."""
        net, _ = build_scn(small_corpus, eta=2)
        computer = SimilarityComputer(
            net, small_corpus, embeddings=embeddings
        )
        pairs = _all_pairs(net)[:24]
        probes = sorted({u for u, _v in pairs})
        plain = computer.pair_matrix_batched(pairs)
        for vid in probes:
            computer.invalidate(vid)
        engine = computer._engine
        used_before = engine._cent_used - len(engine._cent_free)
        transient = computer.pair_matrix_batched(
            pairs, transient=frozenset(probes)
        )
        np.testing.assert_allclose(transient, plain, rtol=0.0, atol=ATOL)
        for vid in probes:
            assert not computer.is_cached(vid)
            assert vid not in engine
        # Centroid slots borrowed for the transient rows were released.
        assert engine._cent_used - len(engine._cent_free) <= used_before

    def test_transient_scalar_path_drops_profiles(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        computer = SimilarityComputer(
            net, small_corpus, embeddings=None, batch_threshold=10**9
        )
        pairs = _all_pairs(net)[:4]
        probes = frozenset(u for u, _v in pairs)
        computer.pair_matrix(pairs, transient=probes)
        for vid in probes:
            assert not computer.is_cached(vid)

    def test_invalidate_exact_drops_only_given_vids(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        computer = SimilarityComputer(net, small_corpus, embeddings=None)
        pairs = _all_pairs(net)[:20]
        computer.pair_matrix_batched(pairs)
        (u0, v0) = pairs[0]
        others = [v for pair in pairs[1:] for v in pair if v not in (u0, v0)]
        computer.invalidate_exact([u0, v0])
        assert not computer.is_cached(u0) and not computer.is_cached(v0)
        assert u0 not in computer._engine and v0 not in computer._engine
        assert any(computer.is_cached(v) for v in others)


class TestAttachPaper:
    def test_in_place_update_matches_rebuild(self, small_corpus, embeddings):
        """`attach_paper` must be value-equivalent to dropping the profile
        and rebuilding it after the mention landed."""
        corpus = Corpus(list(small_corpus))  # session fixture stays pristine
        net, _ = build_scn(corpus, eta=2)
        computer = SimilarityComputer(net, corpus, embeddings=embeddings)
        target = next(
            v.vid
            for v in net
            if v.papers and len(net.vertices_of_name(v.name)) >= 1
        )
        new_pid = max(p.pid for p in corpus) + 1
        paper = Paper(
            pid=new_pid,
            authors=(net.name_of(target),),
            title="streaming attachment of shared venue work",
            venue=next(iter(corpus)).venue,
            year=2021,
        )
        corpus.add(paper)
        computer.profile(target)  # warm the cache
        net.add_mention(target, new_pid, 0)
        computer.attach_paper(target, new_pid)
        updated = computer.profile(target)
        rebuilt = computer._build_profile(target)
        assert updated.n_papers == rebuilt.n_papers
        assert updated.keywords == rebuilt.keywords
        assert updated.keyword_years == rebuilt.keyword_years
        assert updated.venues == rebuilt.venues
        assert updated.top_venue == rebuilt.top_venue
        assert updated.wl_features == rebuilt.wl_features
        assert updated.triangles == rebuilt.triangles
        if updated.centroid is None:
            assert rebuilt.centroid is None
        else:
            np.testing.assert_allclose(
                updated.centroid, rebuilt.centroid, rtol=0.0, atol=1e-12
            )

    def test_attach_on_cold_cache_is_noop(self, small_corpus):
        corpus = Corpus(list(small_corpus))
        net, _ = build_scn(corpus, eta=2)
        computer = SimilarityComputer(net, corpus, embeddings=None)
        target = next(v.vid for v in net if v.papers)
        new_pid = max(p.pid for p in corpus) + 2
        corpus.add(Paper(new_pid, (net.name_of(target),), "cold", "V", 2021))
        net.add_mention(target, new_pid, 0)
        computer.attach_paper(target, new_pid)  # nothing cached: no-op
        assert not computer.is_cached(target)
        profile = computer.profile(target)
        assert new_pid in net.papers_of(target)
        assert profile.n_papers == len(net.papers_of(target))
