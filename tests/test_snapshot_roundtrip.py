"""Structural round-trips of the persistence layer (``repro.io``).

Pins the id-space survival contract (a restored network never re-issues
a live vertex id, even across explicit-vid gaps), the exact name-index
order across a save/load boundary (incremental candidate enumeration
walks it), bit-exact model/embedding parameters, shard-index state, the
v1 fixture backward-compat load, and the ``tools/snapshot.py`` CLI.
"""

from __future__ import annotations

import copy
import json
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.graphs.collab import CollaborationNetwork, combine_networks
from repro.io import Snapshot, snapshot_of, verify_snapshot
from repro.io.schema import (
    decode_config,
    decode_network,
    encode_config,
    encode_network,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE = Path(__file__).with_name("fixtures") / "snapshot_v1.jsonl"

BACKENDS = ("jsonl", "sqlite")


@pytest.fixture(scope="module")
def fitted(labelled_corpus_module):
    return IUAD(IUADConfig()).fit(labelled_corpus_module)


@pytest.fixture(scope="module")
def labelled_corpus_module():
    # module-scoped twin of conftest's function-scoped labelled_corpus
    from repro.data.records import Corpus, Paper

    papers = [
        Paper(0, ("X Y", "P A"), "query index join", "VLDB", 2001, (100, 1)),
        Paper(1, ("X Y", "P A"), "index storage btree", "VLDB", 2002, (100, 1)),
        Paper(2, ("X Y", "Q B"), "query optimization", "VLDB", 2003, (100, 2)),
        Paper(3, ("X Y", "P A", "Q B"), "transaction recovery", "VLDB", 2004,
              (100, 1, 2)),
        Paper(4, ("X Y", "R C"), "image segmentation", "CVPR", 2001, (200, 3)),
        Paper(5, ("X Y", "R C"), "object detection scene", "CVPR", 2002,
              (200, 3)),
        Paper(6, ("X Y", "S D"), "stereo depth tracking", "CVPR", 2003,
              (200, 4)),
        Paper(7, ("X Y", "R C", "S D"), "pose recognition", "CVPR", 2005,
              (200, 3, 4)),
    ]
    return Corpus(papers)


# --------------------------------------------------------------------- #
# id-space survival (satellite: _next_vid restoration audit)
# --------------------------------------------------------------------- #
def gapped_network() -> CollaborationNetwork:
    """A network whose id space has an explicit-vid gap (0, 7) and whose
    name index order cannot be reproduced by insertion replay."""
    net = CollaborationNetwork()
    net.add_vertex("a", vid=0, mentions=((10, 0),))
    net.add_vertex("b", vid=7, mentions=((10, 1),))
    net.add_edge(0, 7, (10,))
    return net


@pytest.mark.parametrize("backend", BACKENDS)
def test_next_vid_survives_gap(backend, tmp_path):
    net = gapped_network()
    assert net._next_vid == 8
    vertices, edges, meta = encode_network(net)
    restored = decode_network(vertices, edges, meta)
    assert restored._next_vid == 8
    # The restored network must never re-issue a live id: the next fresh
    # vertex lands above the gap, not inside it.
    assert restored.add_vertex("c") == 8
    assert sorted(v.vid for v in restored) == [0, 7, 8]


def test_from_parts_rejects_duplicate_name_index_keys():
    """A name listed twice in the index would shadow the first entry's
    vertices — candidate enumeration would silently skip them."""
    with pytest.raises(ValueError, match="twice"):
        CollaborationNetwork.from_parts(
            [(0, "a", [], []), (1, "a", [], [])],
            [],
            [("a", [0]), ("a", [1])],
            2,
        )


def test_from_parts_rejects_id_reissue():
    """A snapshot claiming a watermark at or below a live id is corrupt —
    loading it must fail loudly, not re-issue ids later."""
    vertices, edges, name_index, _next_vid = gapped_network().export_parts()
    with pytest.raises(ValueError, match="re-issue"):
        CollaborationNetwork.from_parts(vertices, edges, name_index, 7)


def test_name_index_order_survives_reload():
    """A lost-and-regained name sits at the *end* of the name index; a
    reload must preserve that order, not replay insertion order."""
    net = CollaborationNetwork()
    net.add_vertex("a", vid=0)          # name index: [a]
    net.add_vertex("b", vid=1)          # name index: [a, b]
    net.remove_isolated_vertex(0)       # name index: [b]
    net.add_vertex("a", vid=2)          # name index: [b, a] — not [a, b]!
    assert net.names == ["b", "a"]
    vertices, edges, meta = encode_network(net)
    restored = decode_network(vertices, edges, meta)
    assert restored.names == ["b", "a"]
    assert restored.vertices_of_name("a") == [2]
    assert restored._next_vid == 3


def test_combine_networks_and_subnetwork_keep_watermark():
    """The other two reconstruction paths of the audit: extraction keeps
    explicit ids (watermark above the kept maximum), stitching re-issues
    a dense fresh id space with a consistent watermark."""
    net = gapped_network()
    sub = net.subnetwork([0, 7])
    assert sub._next_vid == 8
    assert sub.add_vertex("fresh") == 8

    combined, mappings = combine_networks([gapped_network()])
    assert sorted(v.vid for v in combined) == [0, 1]
    assert combined._next_vid == 2
    assert combined.add_vertex("fresh") == 2
    assert mappings == [{0: 0, 7: 1}]


# --------------------------------------------------------------------- #
# exactness of the payload sections
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_full_roundtrip_is_bit_exact(fitted, backend, tmp_path):
    path = tmp_path / f"snap.{'sqlite' if backend == 'sqlite' else 'jsonl'}"
    fitted.save(path, backend=backend)
    loaded = IUAD.load(path)
    assert loaded.gcn_.export_parts() == fitted.gcn_.export_parts()
    assert loaded.scn_.export_parts() == fitted.scn_.export_parts()
    assert loaded.model_.state_dict() == fitted.model_.state_dict()
    assert loaded.config == fitted.config
    assert loaded.computer_.word_frequencies == dict(
        fitted.computer_.word_frequencies
    )
    assert loaded.computer_.venue_frequencies == dict(
        fitted.computer_.venue_frequencies
    )
    # papers + insertion order
    assert [p.pid for p in loaded.corpus_] == [p.pid for p in fitted.corpus_]
    assert all(
        loaded.corpus_[p.pid] == p for p in fitted.corpus_
    )
    # embeddings: identical bits, no re-normalization drift
    if fitted.embeddings_ is not None:
        assert loaded.embeddings_ is not None
        assert loaded.embeddings_.vocabulary == fitted.embeddings_.vocabulary
        assert np.array_equal(
            loaded.embeddings_._matrix, fitted.embeddings_._matrix
        )
    assert verify_snapshot(Snapshot.load(path)) == []


def test_frequency_tables_are_fit_time_not_corpus_derived(fitted, tmp_path):
    """Streamed papers grow the corpus past the fit-time frequency
    tables; a snapshot must restore the *fit-time* tables (γ4/γ6 inputs),
    not re-derive them from the grown corpus."""
    from repro.data.records import Paper

    estimator = copy.deepcopy(fitted)
    StreamingIngestor(estimator).add_papers(
        [Paper(900, ("X Y", "P A"), "novel topic words", "NEWVENUE", 2010)]
    )
    path = tmp_path / "grown.jsonl"
    estimator.save(path)
    loaded = IUAD.load(path)
    # the fit-time tables do not know the streamed venue/words…
    assert "NEWVENUE" not in loaded.computer_.venue_frequencies
    assert loaded.computer_.venue_frequencies == dict(
        estimator.computer_.venue_frequencies
    )
    # …while the corpus (and its own live tables) do.
    assert loaded.corpus_.venue_frequency("NEWVENUE") == 1


def test_config_roundtrip_tolerates_drift():
    config = IUADConfig(eta=3, merge_rounds=2, seed=7)
    payload = encode_config(config)
    assert decode_config(payload) == config
    # unknown keys from a newer build are ignored; missing keys default
    payload["knob_from_the_future"] = 42
    del payload["seed"]
    decoded = decode_config(payload)
    assert decoded.eta == 3 and decoded.seed == IUADConfig().seed


def test_stream_counters_roundtrip(fitted, tmp_path):
    from repro.data.records import Paper

    estimator = copy.deepcopy(fitted)
    stream = StreamingIngestor(estimator, checkpoint_path=tmp_path / "c.jsonl")
    stream.add_papers(
        [Paper(901, ("X Y", "Q B"), "resumable streams", "VLDB", 2011)]
    )
    stream.checkpoint()
    resumed = StreamingIngestor.resume(tmp_path / "c.jsonl")
    assert resumed.report.n_papers == stream.report.n_papers == 1
    assert resumed.report.n_mentions == stream.report.n_mentions
    assert resumed.report.n_attached == stream.report.n_attached
    assert resumed.report.n_created == stream.report.n_created
    assert resumed.report.seconds == stream.report.seconds
    assert resumed.report.per_paper_seconds == stream.report.per_paper_seconds
    assert resumed.report.timing_window == stream.report.timing_window


def test_auto_checkpoint_every_n_papers(labelled_corpus_module, tmp_path):
    from repro.data.records import Paper

    estimator = IUAD(
        IUADConfig(checkpoint_every_n_papers=2)
    ).fit(labelled_corpus_module)
    path = tmp_path / "auto.jsonl"
    stream = StreamingIngestor(estimator, checkpoint_path=path)
    stream.add_paper(Paper(910, ("X Y", "P A"), "one", "VLDB", 2012))
    assert not path.exists()  # below the threshold
    stream.add_paper(Paper(911, ("X Y", "P A"), "two", "VLDB", 2012))
    assert path.exists()      # threshold reached → auto-checkpoint
    first = Snapshot.load(path)
    assert first.stream is not None and first.stream.n_papers == 2
    stream.add_papers(
        [
            Paper(912, ("X Y", "Q B"), "three", "VLDB", 2013),
            Paper(913, ("X Y", "Q B"), "four", "VLDB", 2013),
        ]
    )
    assert Snapshot.load(path).stream.n_papers == 4


def test_snapshot_rejects_unfitted():
    with pytest.raises(ValueError, match="unfitted"):
        snapshot_of(IUAD())


def test_load_rejects_non_snapshot_files(tmp_path):
    bogus = tmp_path / "not_a_snapshot.jsonl"
    bogus.write_text('{"hello": "world"}\n', encoding="utf-8")
    with pytest.raises(ValueError):
        Snapshot.load(bogus)


# --------------------------------------------------------------------- #
# backward compatibility: the committed v1 fixture
# --------------------------------------------------------------------- #
def test_v1_fixture_still_loads_and_serves():
    """The committed v1 snapshot (see ``fixtures/make_snapshot_fixture.py``)
    must keep loading verbatim in every future build."""
    from repro.data.records import Paper

    snapshot = Snapshot.load(FIXTURE)
    assert snapshot.version == 1
    assert verify_snapshot(snapshot) == []
    resumed = StreamingIngestor.resume(FIXTURE)
    assert resumed.report.n_papers >= 1
    before = len(resumed.iuad.gcn_)
    pid = max(p.pid for p in resumed.iuad.corpus_) + 1
    assignments = resumed.add_paper(
        Paper(pid, ("X Y", "Someone New"), "compat continuation", "VLDB", 2020)
    )
    assert len(assignments) == 2
    assert len(resumed.iuad.gcn_) >= before


# --------------------------------------------------------------------- #
# the CLI (tools/snapshot.py)
# --------------------------------------------------------------------- #
@pytest.fixture()
def cli(monkeypatch):
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    import importlib

    module = importlib.import_module("snapshot")
    yield module
    sys.path.remove(str(REPO_ROOT / "tools"))


def test_cli_inspect_convert_verify(fitted, tmp_path, cli, capsys):
    src = tmp_path / "cli.jsonl"
    fitted.save(src)
    assert cli.main(["inspect", str(src)]) == 0
    out = capsys.readouterr().out
    assert "repro-snapshot v1" in out and "papers" in out

    dst = tmp_path / "cli.sqlite"
    assert cli.main(["convert", str(src), str(dst)]) == 0
    assert cli.main(["verify", str(dst)]) == 0
    assert "OK" in capsys.readouterr().out
    # lossless: converting back reproduces the exact JSONL document
    back = tmp_path / "back.jsonl"
    assert cli.main(["convert", str(dst), str(back)]) == 0
    from repro.io import read_document

    assert read_document(back) == read_document(src)


def test_cli_inspect_rejects_foreign_files(tmp_path, cli, capsys):
    foreign = tmp_path / "other_tool.jsonl"
    foreign.write_text('{"meta": {"foo": 1}}\n', encoding="utf-8")
    assert cli.main(["inspect", str(foreign)]) == 1
    assert "not a repro snapshot" in capsys.readouterr().err


def test_cli_verify_flags_corruption(fitted, tmp_path, cli, capsys):
    path = tmp_path / "corrupt.jsonl"
    fitted.save(path)
    lines = path.read_text(encoding="utf-8").splitlines(keepends=True)
    # double-assign one mention: give a second vertex the first one's
    # (pid, position) — the verify sweep must flag the double ownership.
    doctored: list[str] = []
    stolen = None
    planted = False
    for line in lines:
        obj = json.loads(line)
        if obj.get("table") == "gcn_vertices":
            if stolen is None and obj["row"]["mentions"]:
                stolen = obj["row"]["mentions"][0]
            elif stolen is not None and not planted:
                obj["row"]["mentions"] = [stolen]
                obj["row"]["papers"] = [stolen[0]]
                planted = True
                doctored.append(json.dumps(obj) + "\n")
                continue
        doctored.append(line)
    assert planted
    path.write_text("".join(doctored), encoding="utf-8")
    assert cli.main(["verify", str(path)]) == 1
    assert "owned by" in capsys.readouterr().err
