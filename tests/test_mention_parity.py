"""Batch-vs-incremental parity on a corpus with a duplicate-name paper.

The per-occurrence mention model makes the two execution modes agree: a
paper listing one name twice (two homonymous co-authors) is handled
identically whether it is present at ``IUAD.fit`` time (batch Stage 1
assigns each occurrence to its own vertex; Stage 2's cannot-link refuses to
merge them) or streamed through :class:`IncrementalDisambiguator` (the
one-mention-per-paper invariant bars the second occurrence from the first
occurrence's vertex).  End-to-end: same clusters, same eval metrics.
"""

import pytest

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator
from repro.data.records import Corpus, Paper
from repro.eval import micro_metrics

#: Swallows every score: all candidate pairs merge except cannot-links, so
#: the merge outcome is independent of the learned model's exact numbers
#: and the two paths (whose training corpora differ by the one streamed
#: paper) are exactly comparable.
MERGE_ALL = float("-1e9")

HOMONYM_PID = 999


def _base_papers() -> list[Paper]:
    """Two well-separated communities sharing the ambiguous name 'X Y'."""
    vldb = [
        ("P A", "query index join", 2000),
        ("P A", "index storage btree", 2001),
        ("P A", "query plan cache", 2002),
        ("Q B", "transaction recovery log", 2001),
        ("Q B", "query optimization cost", 2002),
        ("Q B", "storage engine design", 2003),
    ]
    cvpr = [
        ("R C", "image segmentation", 2000),
        ("R C", "object detection scene", 2001),
        ("R C", "image feature matching", 2002),
        ("S D", "stereo depth tracking", 2001),
        ("S D", "pose recognition video", 2002),
        ("S D", "scene flow estimation", 2003),
    ]
    papers = []
    pid = 0
    for coauthor, title, year in vldb:
        papers.append(
            Paper(pid, ("X Y", coauthor), title, "VLDB", year, (100, {"P A": 1, "Q B": 2}[coauthor]))
        )
        pid += 1
    for coauthor, title, year in cvpr:
        papers.append(
            Paper(pid, ("X Y", coauthor), title, "CVPR", year, (200, {"R C": 3, "S D": 4}[coauthor]))
        )
        pid += 1
    return papers


def _homonym_paper() -> Paper:
    """A brand-new name listed twice: two homonymous co-authors."""
    return Paper(
        pid=HOMONYM_PID,
        authors=("Zz Dup", "Zz Dup"),
        title="joint homonym manifesto",
        venue="NEWV",
        year=2010,
        author_ids=(900, 901),
    )


def _config() -> IUADConfig:
    return IUADConfig(
        delta=MERGE_ALL,
        incremental_delta=MERGE_ALL,
        merge_rounds=1,
        use_embeddings=False,
        balance_split=False,
        sample_rate=1.0,
    )


def _truth(corpus: Corpus) -> dict[str, dict[tuple[int, int], int]]:
    out: dict[str, dict[tuple[int, int], int]] = {}
    for paper in corpus:
        for position, name in enumerate(paper.authors):
            out.setdefault(name, {})[(paper.pid, position)] = paper.author_id_at(
                position
            )
    return out


def _clusterings(iuad: IUAD, names) -> dict[str, frozenset[frozenset]]:
    return {
        name: frozenset(
            frozenset(units)
            for units in iuad.mention_clusters_of_name(name).values()
        )
        for name in names
    }


@pytest.fixture(scope="module")
def parity():
    full_corpus = Corpus(_base_papers() + [_homonym_paper()])
    batch = IUAD(_config()).fit(full_corpus)

    base_corpus = Corpus(_base_papers())
    streamed = IUAD(_config()).fit(base_corpus)
    inc = IncrementalDisambiguator(streamed)
    inc.add_paper(_homonym_paper())
    return batch, streamed, full_corpus


class TestBatchIncrementalParity:
    def test_identical_clusterings(self, parity):
        batch, streamed, full_corpus = parity
        names = sorted(full_corpus.names)
        assert _clusterings(batch, names) == _clusterings(streamed, names)

    def test_homonym_occurrences_on_distinct_vertices(self, parity):
        batch, streamed, _full = parity
        for iuad in (batch, streamed):
            clusters = iuad.mention_clusters_of_name("Zz Dup")
            assert len(clusters) == 2
            assert sorted(clusters.values(), key=sorted) == [
                {(HOMONYM_PID, 0)},
                {(HOMONYM_PID, 1)},
            ]
            # ... and their collaboration on the paper is an edge.
            u, v = clusters
            assert iuad.gcn_.has_edge(u, v)

    def test_identical_eval_metrics(self, parity):
        batch, streamed, full_corpus = parity
        truth = _truth(full_corpus)
        names = sorted(truth)
        batch_m = micro_metrics(
            {n: batch.mention_clusters_of_name(n) for n in names}, truth
        )
        inc_m = micro_metrics(
            {n: streamed.mention_clusters_of_name(n) for n in names}, truth
        )
        assert (batch_m.tp, batch_m.fp, batch_m.fn, batch_m.tn) == (
            inc_m.tp,
            inc_m.fp,
            inc_m.fn,
            inc_m.tn,
        )

    def test_merge_pressure_collapses_everything_but_homonyms(self, parity):
        """MERGE_ALL merges every same-name pair it is allowed to — only
        the cannot-linked homonym pair survives as two clusters."""
        batch, _streamed, _full = parity
        assert len(batch.mention_clusters_of_name("X Y")) == 1
        assert len(batch.mention_clusters_of_name("Zz Dup")) == 2

    def test_mention_totals_match_corpus(self, parity):
        batch, streamed, full_corpus = parity
        expected = full_corpus.num_author_paper_pairs
        assert batch.report_.scn.n_mentions == expected
        assert batch.report_.gcn_mentions == expected
        assert batch.gcn_.n_mentions == expected
        # The streamed path reaches the same total after the stream.
        assert streamed.gcn_.n_mentions == expected
