"""Provenance of committed benchmark records.

``BENCH_sharding.quick.json`` was once committed carrying
``"quick": false`` — a full-mode stamp inside the quick-mode file, so the
recorded 0.36× slowdown masqueraded as the honest full-mode measurement.
:func:`repro.eval.timing.write_benchmark_json` now refuses any record
whose ``quick`` flag disagrees with the path convention (quick records
live in ``*.quick.json``), and this suite pins the guard in both
directions plus scans every committed record for consistency.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.eval.timing import write_benchmark_json

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestQuickPathGuard:
    def test_full_mode_record_refused_on_quick_path(self, tmp_path):
        with pytest.raises(ValueError, match="full-mode record"):
            write_benchmark_json(
                tmp_path / "BENCH_x.quick.json", "x", {"fit": 1.0}, quick=False
            )

    def test_quick_mode_record_refused_on_full_path(self, tmp_path):
        with pytest.raises(ValueError, match="quick-mode record"):
            write_benchmark_json(
                tmp_path / "BENCH_x.json", "x", {"fit": 1.0}, quick=True
            )

    def test_matching_stamps_write_fine(self, tmp_path):
        quick = write_benchmark_json(
            tmp_path / "BENCH_x.quick.json", "x", {"fit": 1.0}, quick=True
        )
        full = write_benchmark_json(
            tmp_path / "BENCH_x.json", "x", {"fit": 1.0}, quick=False
        )
        assert quick["quick"] is True and full["quick"] is False
        assert json.loads(
            (tmp_path / "BENCH_x.quick.json").read_text()
        )["quick"] is True

    def test_records_without_quick_stamp_are_untouched(self, tmp_path):
        # Benchmarks that have no quick mode (similarity, snapshot, ...)
        # keep writing stamp-free records to any path.
        payload = write_benchmark_json(
            tmp_path / "BENCH_y.quick.json", "y", {"fit": 1.0}
        )
        assert "quick" not in payload

    def test_refusal_leaves_no_file_behind(self, tmp_path):
        target = tmp_path / "BENCH_z.quick.json"
        with pytest.raises(ValueError):
            write_benchmark_json(target, "z", {"fit": 1.0}, quick=False)
        assert not target.exists()


class TestCommittedRecords:
    def test_committed_records_stamp_their_mode_honestly(self):
        records = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert records, "no committed benchmark records found"
        for path in records:
            payload = json.loads(path.read_text())
            quick = payload.get("quick")
            if quick is None:
                continue
            assert quick == path.name.endswith(".quick.json"), (
                f"{path.name} stamps quick={quick}, contradicting its path"
            )

    def test_sharding_record_carries_pipeline_counters(self):
        paths = sorted(REPO_ROOT.glob("BENCH_sharding*.json"))
        assert paths, "no sharding benchmark record committed"
        for path in paths:
            shards = json.loads(path.read_text())["shards"]
            for key in (
                "pipeline_seconds",
                "gamma_wall_seconds",
                "em_seconds",
                "decide_wall_seconds",
                "overlap_seconds",
                "n_gamma_chunks",
                "ipc_task_bytes",
                "shm_bytes",
            ):
                assert key in shards, f"{path.name} lacks {key}"
