"""Tests for the remaining data modules: power law, DBLP XML, testing sets."""

import pytest

from repro.data import (
    build_testing_dataset,
    fit_power_law,
    frequency_histogram,
    load_dblp_xml,
    render_table2,
    split_for_incremental,
)
from repro.data.dblp import dump_dblp_like_xml
from repro.data.powerlaw import ascii_loglog
from repro.data.records import Corpus, Paper
from repro.data.testing import per_name_truth


class TestPowerLaw:
    def test_frequency_histogram(self):
        assert frequency_histogram([1, 1, 2, 5, 5, 5]) == {1: 2, 2: 1, 5: 3}

    def test_ignores_nonpositive(self):
        assert frequency_histogram([0, -1, 3]) == {3: 1}

    def test_fit_exact_power_law(self):
        # counts = 1000 * k^-2 for k = 1..10
        histogram = {k: round(1000 * k**-2.0) for k in range(1, 11)}
        fit = fit_power_law(histogram)
        assert fit.slope == pytest.approx(-2.0, abs=0.05)
        assert fit.r_squared > 0.99

    def test_fit_log_binned(self):
        histogram = {k: max(1, round(5000 * k**-2.5)) for k in range(1, 60)}
        fit = fit_power_law(histogram, log_binned=True)
        assert fit.slope == pytest.approx(-2.5, abs=0.5)

    def test_fit_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law({3: 10})

    def test_predicted_matches_support(self):
        histogram = {1: 100, 2: 25, 4: 6}
        fit = fit_power_law(histogram)
        assert fit.predicted().shape == (3,)

    def test_ascii_render(self):
        art = ascii_loglog({1: 100, 2: 25, 4: 6, 8: 2})
        assert "*" in art
        assert ascii_loglog({}) == "(empty)"


class TestDBLPXml:
    def test_roundtrip(self, tmp_path, figure2_corpus):
        path = str(tmp_path / "dump.xml")
        dump_dblp_like_xml(figure2_corpus, path)
        restored = load_dblp_xml(path)
        assert len(restored) == len(figure2_corpus)
        assert sorted(restored.names) == sorted(figure2_corpus.names)
        for paper in figure2_corpus:
            match = [p for p in restored if p.title == paper.title]
            assert match and match[0].authors == paper.authors

    def test_max_papers_cap(self, tmp_path, figure2_corpus):
        path = str(tmp_path / "dump.xml")
        dump_dblp_like_xml(figure2_corpus, path)
        restored = load_dblp_xml(path, max_papers=3)
        assert len(restored) == 3

    def test_skips_incomplete_records(self, tmp_path):
        path = tmp_path / "partial.xml"
        path.write_text(
            "<dblp>"
            "<article><author>A</author><title>no venue or year</title></article>"
            "<article><author>B</author><title>ok</title>"
            "<journal>J</journal><year>2001</year></article>"
            "<article><author>C</author><title>bad year</title>"
            "<journal>J</journal><year>MMXX</year></article>"
            "</dblp>"
        )
        corpus = load_dblp_xml(str(path))
        assert len(corpus) == 1
        assert corpus[0].authors == ("B",)

    def test_repeated_author_preserved_by_default(self, tmp_path):
        # A name listed twice is two homonymous co-authors under the
        # positional mention model — the load path must not conflate them.
        path = tmp_path / "dup.xml"
        path.write_text(
            "<dblp><article><author>A</author><author>A</author>"
            "<author>B</author><title>t</title><journal>J</journal>"
            "<year>2001</year></article></dblp>"
        )
        corpus = load_dblp_xml(str(path))
        assert corpus[0].authors == ("A", "A", "B")

    def test_dedupes_repeated_author_on_request(self, tmp_path):
        path = tmp_path / "dup.xml"
        path.write_text(
            "<dblp><article><author>A</author><author>A</author>"
            "<author>B</author><title>t</title><journal>J</journal>"
            "<year>2001</year></article></dblp>"
        )
        corpus = load_dblp_xml(str(path), dedupe_names=True)
        assert corpus[0].authors == ("A", "B")

    def test_roundtrip_preserves_order_venues_and_duplicate_names(
        self, tmp_path
    ):
        # dump -> load must be lossless: paper order, venues, years and
        # full author lists — including a duplicate-name list (two
        # homonymous co-authors on one paper).
        papers = [
            Paper(0, ("X Y", "P A"), "query index", "VLDB", 2001),
            Paper(1, ("X Y", "X Y", "Q B"), "homonym paper", "ICDE", 2002),
            Paper(2, ("Q B",), "solo paper", "KDD", 2003),
        ]
        corpus = Corpus(papers)
        path = str(tmp_path / "dump.xml")
        dump_dblp_like_xml(corpus, path)
        restored = load_dblp_xml(path)
        assert len(restored) == len(corpus)
        for original, loaded in zip(corpus, restored):
            assert loaded.authors == original.authors
            assert loaded.title == original.title
            assert loaded.venue == original.venue
            assert loaded.year == original.year


class TestTestingDataset:
    def test_profile_bounds(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=10)
        for row in td.stats():
            assert 2 <= row.num_authors <= 17
            assert row.num_papers >= 4

    def test_requires_labels(self, figure2_corpus):
        with pytest.raises(ValueError):
            build_testing_dataset(figure2_corpus)

    def test_truth_covers_all_testing_mentions(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=10)
        for name in td.names:
            for pid in small_corpus.papers_of_name(name):
                for position in small_corpus[pid].positions_of(name):
                    assert (name, pid, position) in td.truth

    def test_true_clusters_partition_mentions(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=5)
        for name in td.names:
            clusters = td.true_clusters(name)
            flat = [unit for units in clusters.values() for unit in units]
            assert len(flat) == len(set(flat))  # units are disjoint
            # One unit per occurrence: the pid multiset matches the
            # (per-occurrence) name index of the corpus.
            assert sorted(pid for pid, _pos in flat) == sorted(td.papers_of(name))

    def test_split_for_incremental(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=10)
        base, new = split_for_incremental(td, 20)
        assert len(new) == 20
        assert base.isdisjoint(new)
        # the held-out papers are the most recent ones
        newest_base = max(small_corpus[p].year for p in base)
        oldest_new = min(small_corpus[p].year for p in new)
        assert oldest_new >= newest_base - 25  # sanity: years comparable

    def test_split_rejects_oversized_holdout(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=3)
        with pytest.raises(ValueError):
            split_for_incremental(td, 10**6)

    def test_render_table2(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=5)
        text = render_table2(td.stats(), td.totals())
        assert "Total" in text
        assert len(text.splitlines()) == 7

    def test_per_name_truth_shape(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=5)
        truth = per_name_truth(td)
        assert set(truth) == set(td.names)
