"""Tests for the from-scratch ML substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.spatial.distance import cdist

from repro.ml import (
    AdaBoostClassifier,
    AffinityPropagation,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    RandomForestClassifier,
    XGBoostClassifier,
    hac_cluster,
    hdbscan_lite,
)


def blobs(n=150, gap=3.0, d=4, seed=0):
    rng = np.random.default_rng(seed)
    X = np.vstack([rng.normal(0, 1, (n, d)), rng.normal(gap, 1, (n, d))])
    y = np.array([0] * n + [1] * n)
    idx = rng.permutation(2 * n)
    return X[idx], y[idx]


ALL_CLASSIFIERS = [
    lambda: DecisionTreeClassifier(max_depth=5),
    lambda: RandomForestClassifier(n_estimators=15),
    lambda: AdaBoostClassifier(n_estimators=25),
    lambda: GradientBoostingClassifier(n_estimators=25),
    lambda: XGBoostClassifier(n_estimators=25),
]


class TestClassifiers:
    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_separable_blobs(self, factory):
        X, y = blobs()
        model = factory().fit(X[:200], y[:200])
        assert (model.predict(X[200:]) == y[200:]).mean() >= 0.9

    @pytest.mark.parametrize("factory", ALL_CLASSIFIERS)
    def test_proba_shape_and_range(self, factory):
        X, y = blobs(n=60)
        model = factory().fit(X, y)
        proba = model.predict_proba(X[:10])
        assert proba.shape == (10, 2)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        np.testing.assert_allclose(proba.sum(axis=1), 1.0, atol=1e-9)

    def test_tree_constant_labels(self):
        X = np.zeros((10, 3))
        y = np.ones(10, dtype=int)
        tree = DecisionTreeClassifier().fit(X, y)
        assert (tree.predict(X) == 1).all()

    def test_tree_respects_max_depth(self):
        X, y = blobs(n=100)
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=8).fit(X, y)
        assert (deep.predict(X) == y).mean() >= (stump.predict(X) == y).mean()

    def test_tree_sample_weights_shift_prediction(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        w = np.array([100.0, 1.0])
        tree = DecisionTreeClassifier(max_depth=0)
        tree.fit(X, y, sample_weight=w)
        assert tree.predict_proba(np.array([[0.5]]))[0, 0] > 0.9

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_binary_validation(self):
        X, y = blobs(n=20)
        with pytest.raises(ValueError):
            GradientBoostingClassifier().fit(X, y + 5)
        with pytest.raises(ValueError):
            XGBoostClassifier().fit(X, y + 5)

    def test_xor_needs_depth(self):
        """Depth-2 trees solve XOR; stumps cannot."""
        rng = np.random.default_rng(0)
        X = rng.uniform(-1, 1, (400, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(int)
        deep = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert (deep.predict(X) == y).mean() > 0.95
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        assert (stump.predict(X) == y).mean() < 0.7


class TestRegressor:
    def test_fits_step_function(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = (X[:, 0] > 0.5).astype(float) * 3.0
        reg = DecisionTreeRegressor(max_depth=2).fit(X, y)
        pred = reg.predict(X)
        assert abs(pred[10] - 0.0) < 0.2
        assert abs(pred[90] - 3.0) < 0.2

    @given(seed=st.integers(0, 20))
    @settings(max_examples=10, deadline=None)
    def test_prediction_within_label_range(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(40, 3))
        y = rng.normal(size=40)
        reg = DecisionTreeRegressor(max_depth=3).fit(X, y)
        pred = reg.predict(X)
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestClustering:
    def test_hac_two_blobs(self):
        rng = np.random.default_rng(1)
        pts = np.vstack([rng.normal(0, 0.2, (15, 2)), rng.normal(4, 0.2, (15, 2))])
        labels = hac_cluster(cdist(pts, pts), threshold=1.5)
        assert len(set(labels)) == 2
        assert len(set(labels[:15])) == 1

    def test_hac_single_point(self):
        assert hac_cluster(np.zeros((1, 1)), 1.0).tolist() == [0]

    def test_ap_two_blobs(self):
        rng = np.random.default_rng(2)
        pts = np.vstack([rng.normal(0, 0.2, (12, 2)), rng.normal(5, 0.2, (12, 2))])
        labels = AffinityPropagation().fit_predict(-cdist(pts, pts))
        assert len(set(labels[:12])) == 1
        assert set(labels[:12]) != set(labels[12:])

    def test_ap_damping_validation(self):
        with pytest.raises(ValueError):
            AffinityPropagation(damping=0.3)

    def test_hdbscan_lite_separates_blobs(self):
        rng = np.random.default_rng(3)
        pts = np.vstack([rng.normal(0, 0.2, (20, 2)), rng.normal(6, 0.2, (20, 2))])
        labels = hdbscan_lite(cdist(pts, pts), min_cluster_size=3, cut_quantile=0.95)
        # each blob has one dominant cluster (a stray noise singleton is
        # fine), and the dominant clusters differ
        top_a = np.bincount(labels[:20]).argmax()
        top_b = np.bincount(labels[20:]).argmax()
        assert (labels[:20] == top_a).sum() >= 18
        assert (labels[20:] == top_b).sum() >= 18
        assert top_a != top_b

    def test_hdbscan_lite_single_point(self):
        assert hdbscan_lite(np.zeros((1, 1))).tolist() == [0]

    def test_hdbscan_small_groups_become_noise_singletons(self):
        rng = np.random.default_rng(4)
        pts = np.vstack(
            [rng.normal(0, 0.1, (10, 2)), np.array([[50.0, 50.0]])]
        )
        labels = hdbscan_lite(cdist(pts, pts), min_cluster_size=3)
        assert labels[-1] not in set(labels[:10])
