"""Tests for incremental single-paper disambiguation (Section V-E)."""

import copy

import numpy as np
import pytest

from repro.core import (
    IUAD,
    IUADConfig,
    IncrementalDisambiguator,
    IncrementalReport,
)
from repro.data import Corpus, Paper, build_testing_dataset
from repro.data.testing import per_name_truth, split_for_incremental
from repro.eval import micro_metrics
from repro.graphs.wl import ball


@pytest.fixture(scope="module")
def base_setup(small_corpus):
    td = build_testing_dataset(small_corpus, n_names=12)
    base_pids, new_pids = split_for_incremental(td, 40)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
    iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
    return iuad, td, new_pids, small_corpus


class TestIncremental:
    def test_requires_fitted_iuad(self):
        with pytest.raises(ValueError):
            IncrementalDisambiguator(IUAD())

    def test_streaming_assigns_every_mention(self, base_setup):
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = full_corpus[new_pids[0]]
        assignments = inc.add_paper(paper)
        assert len(assignments) == len(paper.authors)
        for assignment in assignments:
            assert paper.pid in iuad.gcn_.papers_of(assignment.vid)
            assert iuad.gcn_.name_of(assignment.vid) == assignment.name

    def test_new_name_creates_vertex(self, base_setup):
        iuad, _td, _new_pids, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7,
            authors=("Brand New Person",),
            title="entirely new topic",
            venue="NEW-VENUE",
            year=2021,
        )
        (assignment,) = inc.add_paper(paper)
        assert assignment.created
        assert assignment.score == float("-inf")

    def test_collaborative_relations_recovered(self, base_setup):
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7 + 1,
            authors=("New A", "New B"),
            title="joint work",
            venue="NEW-VENUE",
            year=2021,
        )
        a, b = inc.add_paper(paper)
        assert iuad.gcn_.has_edge(a.vid, b.vid)

    def test_streaming_drops_stale_wl_ball(self, base_setup):
        """Regression: after a streamed paper inserts an edge, every vertex
        within ``wl_iterations`` hops of the touched endpoints must lose its
        cached profile (2-hop neighbours kept stale γ1 caches before)."""
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        gcn, computer = iuad.gcn_, iuad.computer_
        # Walk from the end so this test never races the other tests of
        # this shared fixture for a paper id (they stream from the front).
        paper = next(
            full_corpus[pid]
            for pid in reversed(new_pids)
            if pid not in iuad.corpus_
            and len(full_corpus[pid].authors) >= 2
        )
        for vertex in gcn:
            computer.profile(vertex.vid)
        assignments = inc.add_paper(paper)
        assert len(assignments) >= 2  # an edge was recovered
        radius = max(1, iuad.config.wl_iterations)
        for assignment in assignments:
            for vid in ball(gcn, assignment.vid, radius):
                assert not computer.is_cached(vid), (
                    f"vertex {vid} within {radius} hops of touched vertex "
                    f"{assignment.vid} kept a stale profile"
                )

    def test_duplicate_name_mentions_do_not_self_attach(self, base_setup):
        """Regression: a paper listing one name twice means two homonymous
        people; the second mention must not attach to the vertex the first
        mention just created on the evidence of this very paper."""
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7 + 99,
            authors=("Zz Dupname", "Zz Dupname"),
            title="joint homonym work on graphs",
            venue="DUP-VENUE",
            year=2021,
        )
        first, second = inc.add_paper(paper)
        assert first.vid != second.vid
        assert first.created and second.created
        assert len(iuad.gcn_.vertices_of_name("Zz Dupname")) == 2
        # The two homonyms still collaborated on the paper.
        assert iuad.gcn_.has_edge(first.vid, second.vid)

    def test_report_accumulates(self, base_setup):
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids[1:6]:
            inc.add_paper(full_corpus[pid])
        assert inc.report.n_papers == 5
        assert inc.report.n_mentions >= 5
        assert inc.report.avg_ms_per_paper > 0.0
        assert inc.report.n_attached + inc.report.n_created == inc.report.n_mentions

    def test_empty_report_average_is_zero(self):
        # Regression: a report that has processed no papers must answer
        # 0.0 instead of dividing by n_papers == 0.
        report = IncrementalReport()
        assert report.n_papers == 0
        assert report.avg_ms_per_paper == 0.0


class TestDuplicatePaperPolicy:
    def test_default_policy_raises_and_mutates_nothing(self, base_setup):
        """Regression: re-ingesting a pid must never append the paper a
        second time — a double-attached mention would violate the
        one-mention-per-paper invariant."""
        iuad, _td, _new, full_corpus = base_setup
        inc = IncrementalDisambiguator(copy.deepcopy(iuad))
        paper = next(iter(inc.iuad.corpus_))
        n_before = inc.iuad.gcn_.n_mentions
        with pytest.raises(ValueError, match="already"):
            inc.add_paper(paper)
        assert inc.report.n_papers == 0
        assert inc.iuad.gcn_.n_mentions == n_before

    def test_return_policy_is_idempotent(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=8)
        _base, new_pids = split_for_incremental(td, 10)
        new_set = set(new_pids)
        base = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(
            IUADConfig(duplicate_paper_policy="return")
        ).fit(base, names=td.names)
        inc = IncrementalDisambiguator(iuad)
        paper = small_corpus[new_pids[0]]
        first = inc.add_paper(paper)
        state = sorted(
            (v.vid, tuple(sorted(v.mentions.items()))) for v in iuad.gcn_
        )
        replay = inc.add_paper(paper)
        # Same owners, nothing mutated, counted as a duplicate.
        assert [a.vid for a in replay] == [a.vid for a in first]
        assert all(not a.created and np.isnan(a.score) for a in replay)
        assert (
            sorted(
                (v.vid, tuple(sorted(v.mentions.items()))) for v in iuad.gcn_
            )
            == state
        )
        assert inc.report.n_papers == 1
        assert inc.report.n_duplicates == 1

    def test_return_policy_answers_for_base_corpus_papers(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=8)
        _base, new_pids = split_for_incremental(td, 10)
        new_set = set(new_pids)
        base = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(
            IUADConfig(duplicate_paper_policy="return")
        ).fit(base, names=td.names)
        inc = IncrementalDisambiguator(iuad)
        paper = next(iter(base))
        replay = inc.add_paper(paper)
        assert len(replay) == len(paper.authors)
        for position, assignment in enumerate(replay):
            assert assignment.vid >= 0
            mentions = iuad.gcn_.mentions_of(assignment.vid)
            assert mentions.get(paper.pid) == position

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="duplicate_paper_policy"):
            IUADConfig(duplicate_paper_policy="explode")


class TestBoundedTimingWindow:
    def test_window_is_bounded_but_average_exact(self, base_setup):
        """Regression: per_paper_seconds must not grow without bound; the
        Table-VI average stays exact via running sums."""
        iuad, _td, _new, _full = base_setup
        fitted = copy.deepcopy(iuad)
        fitted.config.incremental_timing_window = 4
        inc = IncrementalDisambiguator(fitted)
        next_pid = max(p.pid for p in fitted.corpus_) + 1
        for i in range(11):
            inc.add_paper(
                Paper(next_pid + i, (f"Window Person {i}",), "t", "V", 2021)
            )
        report = inc.report
        assert report.n_papers == 11
        assert len(report.per_paper_seconds) == 4  # bounded window
        assert report.seconds >= sum(report.per_paper_seconds)
        assert report.avg_ms_per_paper == pytest.approx(
            1000.0 * report.seconds / 11
        )
        assert report.recent_avg_ms_per_paper == pytest.approx(
            1000.0 * sum(report.per_paper_seconds) / 4
        )

    def test_window_validation(self):
        with pytest.raises(ValueError, match="timing_window"):
            IncrementalReport(timing_window=0)
        with pytest.raises(ValueError, match="incremental_timing_window"):
            IUADConfig(incremental_timing_window=0)


class TestTieBreak:
    def test_equal_scores_attach_to_lowest_vid(self, base_setup):
        """Regression: the argmax tie-break is the lowest vertex id, not
        candidate enumeration order — equal-score candidates must attach
        identically after a shard stitch and a whole-corpus fit, whose
        name-index orders differ."""
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        fresh_pid = 10**8 + 7
        scores = np.array([1.5, 1.5, 0.5])
        # Enumeration order lists the higher vid first: the old
        # np.argmax picked index 0; the contract demands the lowest vid.
        a, b, c = sorted(v.vid for v in iuad.gcn_)[:3]
        idx, best = inc._select_candidate([b, a, c], scores, fresh_pid)
        assert (idx, best) == (1, 1.5)  # a < b, same score
        idx, best = inc._select_candidate([a, b, c], scores, fresh_pid)
        assert (idx, best) == (0, 1.5)

    def test_pid_owners_are_skipped_at_apply_time(self, base_setup):
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        vertex = next(iter(iuad.gcn_))
        owned_pid = next(iter(vertex.papers))
        other = next(
            v.vid for v in iuad.gcn_ if owned_pid not in v.papers
        )
        idx, best = inc._select_candidate(
            [vertex.vid, other], np.array([9.0, 1.0]), owned_pid
        )
        # the higher-scoring candidate already owns the paper: barred
        assert idx == 1 and best == 1.0


class TestIncrementalQuality:
    def test_streaming_does_not_collapse_quality(self, small_corpus):
        """Table VI shape: metrics after streaming stay near the base run."""
        td = build_testing_dataset(small_corpus, n_names=12)
        truth = per_name_truth(td)
        _base, new_pids = split_for_incremental(td, 30)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
        base_truth = {
            n: {pid: a for pid, a in t.items() if pid not in new_set}
            for n, t in truth.items()
        }
        before = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in td.names}, base_truth
        )
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(small_corpus[pid])
        after = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in td.names}, truth
        )
        assert after.f1 >= before.f1 - 0.1

    def test_incremental_is_fast(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=12)
        _base, new_pids = split_for_incremental(td, 20)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(small_corpus[pid])
        # paper reports < 50 ms/paper on full DBLP; our corpus is far smaller
        assert inc.report.avg_ms_per_paper < 200.0
