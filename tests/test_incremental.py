"""Tests for incremental single-paper disambiguation (Section V-E)."""

import pytest

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator
from repro.data import Corpus, Paper, build_testing_dataset
from repro.data.testing import per_name_truth, split_for_incremental
from repro.eval import micro_metrics


@pytest.fixture(scope="module")
def base_setup(small_corpus):
    td = build_testing_dataset(small_corpus, n_names=12)
    base_pids, new_pids = split_for_incremental(td, 40)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
    iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
    return iuad, td, new_pids, small_corpus


class TestIncremental:
    def test_requires_fitted_iuad(self):
        with pytest.raises(ValueError):
            IncrementalDisambiguator(IUAD())

    def test_streaming_assigns_every_mention(self, base_setup):
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = full_corpus[new_pids[0]]
        assignments = inc.add_paper(paper)
        assert len(assignments) == len(paper.authors)
        for assignment in assignments:
            assert paper.pid in iuad.gcn_.papers_of(assignment.vid)
            assert iuad.gcn_.name_of(assignment.vid) == assignment.name

    def test_new_name_creates_vertex(self, base_setup):
        iuad, _td, _new_pids, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7,
            authors=("Brand New Person",),
            title="entirely new topic",
            venue="NEW-VENUE",
            year=2021,
        )
        (assignment,) = inc.add_paper(paper)
        assert assignment.created
        assert assignment.score == float("-inf")

    def test_collaborative_relations_recovered(self, base_setup):
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7 + 1,
            authors=("New A", "New B"),
            title="joint work",
            venue="NEW-VENUE",
            year=2021,
        )
        a, b = inc.add_paper(paper)
        assert iuad.gcn_.has_edge(a.vid, b.vid)

    def test_report_accumulates(self, base_setup):
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids[1:6]:
            inc.add_paper(full_corpus[pid])
        assert inc.report.n_papers == 5
        assert inc.report.n_mentions >= 5
        assert inc.report.avg_ms_per_paper > 0.0
        assert inc.report.n_attached + inc.report.n_created == inc.report.n_mentions


class TestIncrementalQuality:
    def test_streaming_does_not_collapse_quality(self, small_corpus):
        """Table VI shape: metrics after streaming stay near the base run."""
        td = build_testing_dataset(small_corpus, n_names=12)
        truth = per_name_truth(td)
        _base, new_pids = split_for_incremental(td, 30)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
        base_truth = {
            n: {pid: a for pid, a in t.items() if pid not in new_set}
            for n, t in truth.items()
        }
        before = micro_metrics(
            {n: iuad.clusters_of_name(n) for n in td.names}, base_truth
        )
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(small_corpus[pid])
        after = micro_metrics(
            {n: iuad.clusters_of_name(n) for n in td.names}, truth
        )
        assert after.f1 >= before.f1 - 0.1

    def test_incremental_is_fast(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=12)
        _base, new_pids = split_for_incremental(td, 20)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(small_corpus[pid])
        # paper reports < 50 ms/paper on full DBLP; our corpus is far smaller
        assert inc.report.avg_ms_per_paper < 200.0
