"""Tests for incremental single-paper disambiguation (Section V-E)."""

import pytest

from repro.core import (
    IUAD,
    IUADConfig,
    IncrementalDisambiguator,
    IncrementalReport,
)
from repro.data import Corpus, Paper, build_testing_dataset
from repro.data.testing import per_name_truth, split_for_incremental
from repro.eval import micro_metrics
from repro.graphs.wl import ball


@pytest.fixture(scope="module")
def base_setup(small_corpus):
    td = build_testing_dataset(small_corpus, n_names=12)
    base_pids, new_pids = split_for_incremental(td, 40)
    new_set = set(new_pids)
    base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
    iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
    return iuad, td, new_pids, small_corpus


class TestIncremental:
    def test_requires_fitted_iuad(self):
        with pytest.raises(ValueError):
            IncrementalDisambiguator(IUAD())

    def test_streaming_assigns_every_mention(self, base_setup):
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = full_corpus[new_pids[0]]
        assignments = inc.add_paper(paper)
        assert len(assignments) == len(paper.authors)
        for assignment in assignments:
            assert paper.pid in iuad.gcn_.papers_of(assignment.vid)
            assert iuad.gcn_.name_of(assignment.vid) == assignment.name

    def test_new_name_creates_vertex(self, base_setup):
        iuad, _td, _new_pids, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7,
            authors=("Brand New Person",),
            title="entirely new topic",
            venue="NEW-VENUE",
            year=2021,
        )
        (assignment,) = inc.add_paper(paper)
        assert assignment.created
        assert assignment.score == float("-inf")

    def test_collaborative_relations_recovered(self, base_setup):
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7 + 1,
            authors=("New A", "New B"),
            title="joint work",
            venue="NEW-VENUE",
            year=2021,
        )
        a, b = inc.add_paper(paper)
        assert iuad.gcn_.has_edge(a.vid, b.vid)

    def test_streaming_drops_stale_wl_ball(self, base_setup):
        """Regression: after a streamed paper inserts an edge, every vertex
        within ``wl_iterations`` hops of the touched endpoints must lose its
        cached profile (2-hop neighbours kept stale γ1 caches before)."""
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        gcn, computer = iuad.gcn_, iuad.computer_
        # Walk from the end so this test never races the other tests of
        # this shared fixture for a paper id (they stream from the front).
        paper = next(
            full_corpus[pid]
            for pid in reversed(new_pids)
            if pid not in iuad.corpus_
            and len(full_corpus[pid].authors) >= 2
        )
        for vertex in gcn:
            computer.profile(vertex.vid)
        assignments = inc.add_paper(paper)
        assert len(assignments) >= 2  # an edge was recovered
        radius = max(1, iuad.config.wl_iterations)
        for assignment in assignments:
            for vid in ball(gcn, assignment.vid, radius):
                assert not computer.is_cached(vid), (
                    f"vertex {vid} within {radius} hops of touched vertex "
                    f"{assignment.vid} kept a stale profile"
                )

    def test_duplicate_name_mentions_do_not_self_attach(self, base_setup):
        """Regression: a paper listing one name twice means two homonymous
        people; the second mention must not attach to the vertex the first
        mention just created on the evidence of this very paper."""
        iuad, _td, _new, _full = base_setup
        inc = IncrementalDisambiguator(iuad)
        paper = Paper(
            pid=10**7 + 99,
            authors=("Zz Dupname", "Zz Dupname"),
            title="joint homonym work on graphs",
            venue="DUP-VENUE",
            year=2021,
        )
        first, second = inc.add_paper(paper)
        assert first.vid != second.vid
        assert first.created and second.created
        assert len(iuad.gcn_.vertices_of_name("Zz Dupname")) == 2
        # The two homonyms still collaborated on the paper.
        assert iuad.gcn_.has_edge(first.vid, second.vid)

    def test_report_accumulates(self, base_setup):
        iuad, _td, new_pids, full_corpus = base_setup
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids[1:6]:
            inc.add_paper(full_corpus[pid])
        assert inc.report.n_papers == 5
        assert inc.report.n_mentions >= 5
        assert inc.report.avg_ms_per_paper > 0.0
        assert inc.report.n_attached + inc.report.n_created == inc.report.n_mentions

    def test_empty_report_average_is_zero(self):
        # Regression: a report that has processed no papers must answer
        # 0.0 instead of dividing by n_papers == 0.
        report = IncrementalReport()
        assert report.n_papers == 0
        assert report.avg_ms_per_paper == 0.0


class TestIncrementalQuality:
    def test_streaming_does_not_collapse_quality(self, small_corpus):
        """Table VI shape: metrics after streaming stay near the base run."""
        td = build_testing_dataset(small_corpus, n_names=12)
        truth = per_name_truth(td)
        _base, new_pids = split_for_incremental(td, 30)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
        base_truth = {
            n: {pid: a for pid, a in t.items() if pid not in new_set}
            for n, t in truth.items()
        }
        before = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in td.names}, base_truth
        )
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(small_corpus[pid])
        after = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in td.names}, truth
        )
        assert after.f1 >= before.f1 - 0.1

    def test_incremental_is_fast(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=12)
        _base, new_pids = split_for_incremental(td, 20)
        new_set = set(new_pids)
        base_corpus = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(IUADConfig()).fit(base_corpus, names=td.names)
        inc = IncrementalDisambiguator(iuad)
        for pid in new_pids:
            inc.add_paper(small_corpus[pid])
        # paper reports < 50 ms/paper on full DBLP; our corpus is far smaller
        assert inc.report.avg_ms_per_paper < 200.0
