"""Cross-module invariants: determinism, kernel bounds, merge algebra,
and the seed-swept shard-merge structural guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IUAD, IUADConfig, ShardedIUAD
from repro.data import build_testing_dataset
from repro.data.records import Corpus, Paper
from repro.data.synthetic import SyntheticConfig, SyntheticDBLP, ambiguous_names
from repro.graphs import CollaborationNetwork, UnionFind, wl_feature_map, wl_kernel
from repro.model import MatchMixture, match_scores


class TestDeterminism:
    def test_iuad_is_deterministic(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=5)
        a = IUAD(IUADConfig()).fit(small_corpus, names=td.names)
        b = IUAD(IUADConfig()).fit(small_corpus, names=td.names)
        for name in td.names:
            clusters_a = sorted(map(sorted, a.clusters_of_name(name).values()))
            clusters_b = sorted(map(sorted, b.clusters_of_name(name).values()))
            assert clusters_a == clusters_b


@st.composite
def random_networks(draw):
    n = draw(st.integers(2, 10))
    net = CollaborationNetwork()
    names = [f"n{draw(st.integers(0, 4))}" for _ in range(n)]
    for name in names:
        net.add_vertex(name)
    n_edges = draw(st.integers(0, 2 * n))
    pid = 0
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            net.add_edge(u, v, {pid})
            pid += 1
    return net


class TestWLKernelProperties:
    @given(net=random_networks(), h=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_cauchy_schwarz(self, net, h):
        """K(u,v)^2 <= K(u,u) * K(v,v) for every vertex pair."""
        phis = {v.vid: wl_feature_map(net, v.vid, h) for v in net}
        vids = list(phis)
        for u in vids[:4]:
            for v in vids[:4]:
                kuv = wl_kernel(phis[u], phis[v])
                assert kuv**2 <= wl_kernel(phis[u], phis[u]) * wl_kernel(
                    phis[v], phis[v]
                ) + 1e-9

    @given(net=random_networks())
    @settings(max_examples=30, deadline=None)
    def test_kernel_symmetry(self, net):
        phis = {v.vid: wl_feature_map(net, v.vid, 2) for v in net}
        vids = list(phis)[:5]
        for u in vids:
            for v in vids:
                assert wl_kernel(phis[u], phis[v]) == wl_kernel(phis[v], phis[u])


class TestMergeAlgebra:
    def test_merged_with_identity_union_preserves_structure(self):
        net = CollaborationNetwork()
        a = net.add_vertex("a", papers=(0,))
        b = net.add_vertex("b", papers=(0,))
        net.add_edge(a, b, {0})
        out = net.merged(UnionFind([a, b]))
        assert len(out) == 2
        assert out.n_edges == 1
        assert out.papers_of(0) == {0}

    def test_merged_is_idempotent(self):
        net = CollaborationNetwork()
        x1 = net.add_vertex("x", papers=(0,))
        x2 = net.add_vertex("x", papers=(1,))
        y = net.add_vertex("y", papers=(0, 1))
        net.add_edge(x1, y, {0})
        net.add_edge(x2, y, {1})
        uf = UnionFind([x1, x2, y])
        uf.union(x1, x2)
        once = net.merged(uf)
        twice = once.merged(UnionFind(v.vid for v in once))
        assert len(once) == len(twice)
        assert once.n_edges == twice.n_edges


def _homonym_world(seed: int) -> Corpus:
    """A small ambiguous corpus with two injected duplicate-name papers.

    The synthetic generator never emits a paper listing one name twice
    (real data almost never does), so the cannot-link machinery is
    exercised by appending hand-made homonym papers: an ambiguous name
    appears at two positions of one co-author list — two provably
    distinct people.
    """
    corpus = SyntheticDBLP(
        SyntheticConfig(
            n_authors=120,
            n_papers=260,
            name_pool_size=90,
            n_communities=12,
            seed=seed,
        )
    ).generate()
    names = ambiguous_names(corpus)
    assert names, "sweep corpus must contain duplicate names"
    next_pid = max(p.pid for p in corpus) + 1
    fresh_aid = 10_000_000
    papers = list(corpus)
    for offset, name in enumerate(names[:2]):
        papers.append(
            Paper(
                pid=next_pid + offset,
                authors=(name, name, names[-1]),
                title="homonym collision paper",
                venue="GEN-0",
                year=2019,
                author_ids=(
                    fresh_aid + 3 * offset,
                    fresh_aid + 3 * offset + 1,
                    fresh_aid + 3 * offset + 2,
                ),
            )
        )
    return Corpus(papers)


@pytest.mark.parametrize("seed", range(20))
class TestShardMergeInvariants:
    """Seed-swept structural guarantees of the sharded fit.

    Fitting is sharded aggressively (tiny pair budget, so blocks split
    and pack) and every invariant is checked on the *stitched* network —
    the id-remapped merge is exactly where a partition bug would surface.
    """

    CONFIG = dict(
        use_embeddings=False,
        min_training_pairs=40,
        max_shard_size=60,
    )

    @pytest.fixture()
    def fitted(self, seed):
        corpus = _homonym_world(seed)
        sharded = ShardedIUAD(IUADConfig(**self.CONFIG)).fit(corpus)
        return corpus, sharded

    def test_one_mention_per_paper_per_vertex(self, seed, fitted):
        corpus, sharded = fitted
        gcn = sharded.gcn_
        for vertex in gcn:
            # the payload is one position per paper, and the attribution
            # view agrees with it exactly
            assert set(vertex.papers) == set(vertex.mentions)
            for pid, position in vertex.mentions.items():
                assert corpus[pid].authors[position] == vertex.name

    def test_cannot_links_survive_remapping(self, seed, fitted):
        corpus, sharded = fitted
        gcn = sharded.gcn_
        assert sharded.cannot_links_, "homonym papers must induce links"
        for u, v in sharded.cannot_links_:
            assert u != v  # the pair was never merged
            assert gcn.name_of(u) == gcn.name_of(v)
            shared = gcn.papers_of(u) & gcn.papers_of(v)
            assert shared  # still anchored on a shared paper
            for pid in shared:
                assert gcn.mentions_of(u)[pid] != gcn.mentions_of(v)[pid]
        # and the homonym papers' occurrences really sit in different
        # clusters of their name
        for paper in corpus:
            for name in set(paper.authors):
                positions = paper.positions_of(name)
                if len(positions) < 2:
                    continue
                clusters = sharded.mention_clusters_of_name(name)
                owners = [
                    vid
                    for position in positions
                    for vid, units in clusters.items()
                    if (paper.pid, position) in units
                ]
                assert len(owners) == len(positions)
                assert len(set(owners)) == len(positions)

    def test_mention_clusters_partition_corpus_occurrences(
        self, seed, fitted
    ):
        corpus, sharded = fitted
        assert sharded.gcn_.n_mentions == corpus.num_author_paper_pairs
        for name in corpus.names:
            expected = {
                (pid, position)
                for pid in set(corpus.papers_of_name(name))
                for position in corpus[pid].positions_of(name)
            }
            clusters = sharded.mention_clusters_of_name(name)
            units = [u for us in clusters.values() for u in us]
            assert len(units) == len(set(units))  # pairwise disjoint
            assert set(units) == expected  # exactly the occurrences


class TestScoreProperties:
    def test_scores_shift_with_prior(self):
        rng = np.random.default_rng(0)
        X = np.abs(rng.normal(0.3, 0.2, (50, 6)))
        model = MatchMixture()
        model.fit(X, max_iterations=5)
        base = match_scores(model, X)
        model.prior_match = min(model.prior_match * 2, 0.99)
        higher = match_scores(model, X)
        assert np.all(higher >= base - 1e-9)

    def test_scores_finite_on_extreme_inputs(self):
        rng = np.random.default_rng(1)
        X = np.abs(rng.normal(0.3, 0.2, (50, 6)))
        model = MatchMixture()
        model.fit(X, max_iterations=5)
        extreme = np.array(
            [[0.0] * 6, [1e6] * 6, [0.0, 1e6, -1.0, 0.0, 1e6, 0.0]]
        )
        scores = match_scores(model, extreme)
        assert np.all(np.isfinite(scores))
