"""Cross-module invariants: determinism, kernel bounds, merge algebra."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import IUAD, IUADConfig
from repro.data import build_testing_dataset
from repro.graphs import CollaborationNetwork, UnionFind, wl_feature_map, wl_kernel
from repro.model import MatchMixture, match_scores


class TestDeterminism:
    def test_iuad_is_deterministic(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=5)
        a = IUAD(IUADConfig()).fit(small_corpus, names=td.names)
        b = IUAD(IUADConfig()).fit(small_corpus, names=td.names)
        for name in td.names:
            clusters_a = sorted(map(sorted, a.clusters_of_name(name).values()))
            clusters_b = sorted(map(sorted, b.clusters_of_name(name).values()))
            assert clusters_a == clusters_b


@st.composite
def random_networks(draw):
    n = draw(st.integers(2, 10))
    net = CollaborationNetwork()
    names = [f"n{draw(st.integers(0, 4))}" for _ in range(n)]
    for name in names:
        net.add_vertex(name)
    n_edges = draw(st.integers(0, 2 * n))
    pid = 0
    for _ in range(n_edges):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v:
            net.add_edge(u, v, {pid})
            pid += 1
    return net


class TestWLKernelProperties:
    @given(net=random_networks(), h=st.integers(0, 3))
    @settings(max_examples=40, deadline=None)
    def test_cauchy_schwarz(self, net, h):
        """K(u,v)^2 <= K(u,u) * K(v,v) for every vertex pair."""
        phis = {v.vid: wl_feature_map(net, v.vid, h) for v in net}
        vids = list(phis)
        for u in vids[:4]:
            for v in vids[:4]:
                kuv = wl_kernel(phis[u], phis[v])
                assert kuv**2 <= wl_kernel(phis[u], phis[u]) * wl_kernel(
                    phis[v], phis[v]
                ) + 1e-9

    @given(net=random_networks())
    @settings(max_examples=30, deadline=None)
    def test_kernel_symmetry(self, net):
        phis = {v.vid: wl_feature_map(net, v.vid, 2) for v in net}
        vids = list(phis)[:5]
        for u in vids:
            for v in vids:
                assert wl_kernel(phis[u], phis[v]) == wl_kernel(phis[v], phis[u])


class TestMergeAlgebra:
    def test_merged_with_identity_union_preserves_structure(self):
        net = CollaborationNetwork()
        a = net.add_vertex("a", papers=(0,))
        b = net.add_vertex("b", papers=(0,))
        net.add_edge(a, b, {0})
        out = net.merged(UnionFind([a, b]))
        assert len(out) == 2
        assert out.n_edges == 1
        assert out.papers_of(0) == {0}

    def test_merged_is_idempotent(self):
        net = CollaborationNetwork()
        x1 = net.add_vertex("x", papers=(0,))
        x2 = net.add_vertex("x", papers=(1,))
        y = net.add_vertex("y", papers=(0, 1))
        net.add_edge(x1, y, {0})
        net.add_edge(x2, y, {1})
        uf = UnionFind([x1, x2, y])
        uf.union(x1, x2)
        once = net.merged(uf)
        twice = once.merged(UnionFind(v.vid for v in once))
        assert len(once) == len(twice)
        assert once.n_edges == twice.n_edges


class TestScoreProperties:
    def test_scores_shift_with_prior(self):
        rng = np.random.default_rng(0)
        X = np.abs(rng.normal(0.3, 0.2, (50, 6)))
        model = MatchMixture()
        model.fit(X, max_iterations=5)
        base = match_scores(model, X)
        model.prior_match = min(model.prior_match * 2, 0.99)
        higher = match_scores(model, X)
        assert np.all(higher >= base - 1e-9)

    def test_scores_finite_on_extreme_inputs(self):
        rng = np.random.default_rng(1)
        X = np.abs(rng.normal(0.3, 0.2, (50, 6)))
        model = MatchMixture()
        model.fit(X, max_iterations=5)
        extreme = np.array(
            [[0.0] * 6, [1e6] * 6, [0.0, 1e6, -1.0, 0.0, 1e6, 0.0]]
        )
        scores = match_scores(model, extreme)
        assert np.all(np.isfinite(scores))
