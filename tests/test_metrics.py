"""Tests for pairwise micro metrics (+ hypothesis invariants)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import PairwiseCounts, micro_metrics, pairwise_counts


class TestPairwiseCounts:
    def test_perfect_clustering(self):
        truth = {0: 1, 1: 1, 2: 2}
        predicted = {10: [0, 1], 20: [2]}
        c = pairwise_counts(predicted, truth)
        assert (c.tp, c.fp, c.fn, c.tn) == (1, 0, 0, 2)
        assert c.precision == c.recall == c.f1 == c.accuracy == 1.0

    def test_everything_in_one_cluster(self):
        truth = {0: 1, 1: 1, 2: 2}
        c = pairwise_counts({0: [0, 1, 2]}, truth)
        assert c.tp == 1 and c.fp == 2 and c.fn == 0 and c.tn == 0
        assert c.recall == 1.0
        assert c.precision == pytest.approx(1 / 3)

    def test_all_singletons(self):
        truth = {0: 1, 1: 1, 2: 2}
        c = pairwise_counts({i: [pid] for i, pid in enumerate(truth)}, truth)
        assert c.tp == 0 and c.fn == 1 and c.fp == 0 and c.tn == 2
        assert c.recall == 0.0

    def test_missing_papers_count_as_singletons(self):
        truth = {0: 1, 1: 1}
        c = pairwise_counts({}, truth)
        assert c.fn == 1 and c.tp == 0

    def test_extra_papers_ignored(self):
        truth = {0: 1}
        c = pairwise_counts({0: [0, 99]}, truth)
        assert c.total == 0  # a single paper has no pairs

    def test_addition(self):
        a = PairwiseCounts(1, 2, 3, 4)
        b = PairwiseCounts(10, 20, 30, 40)
        s = a + b
        assert (s.tp, s.fp, s.fn, s.tn) == (11, 22, 33, 44)

    def test_empty_counts_are_zero(self):
        c = PairwiseCounts()
        assert c.accuracy == c.precision == c.recall == c.f1 == 0.0

    def test_as_row(self):
        c = PairwiseCounts(1, 1, 1, 1)
        a, p, r, f = c.as_row()
        assert a == 0.5 and p == 0.5 and r == 0.5 and f == 0.5


class TestMicroMetrics:
    def test_accumulates_across_names(self):
        truth = {
            "x": {0: 1, 1: 1},
            "y": {2: 5, 3: 6},
        }
        predicted = {
            "x": {0: [0, 1]},
            "y": {0: [2, 3]},
        }
        c = micro_metrics(predicted, truth)
        assert c.tp == 1 and c.fp == 1

    def test_missing_name_prediction(self):
        truth = {"x": {0: 1, 1: 1}}
        c = micro_metrics({}, truth)
        assert c.fn == 1


@st.composite
def labelled_clusterings(draw):
    n = draw(st.integers(2, 20))
    truth = {pid: draw(st.integers(0, 4)) for pid in range(n)}
    labels = {pid: draw(st.integers(0, 4)) for pid in range(n)}
    predicted: dict[int, list[int]] = {}
    for pid, lab in labels.items():
        predicted.setdefault(lab, []).append(pid)
    return predicted, truth


class TestProperties:
    @given(data=labelled_clusterings())
    @settings(max_examples=80, deadline=None)
    def test_counts_partition_all_pairs(self, data):
        predicted, truth = data
        c = pairwise_counts(predicted, truth)
        n = len(truth)
        assert c.total == n * (n - 1) // 2
        assert min(c.tp, c.fp, c.fn, c.tn) >= 0

    @given(data=labelled_clusterings())
    @settings(max_examples=80, deadline=None)
    def test_metrics_bounded(self, data):
        predicted, truth = data
        c = pairwise_counts(predicted, truth)
        for value in c.as_row():
            assert 0.0 <= value <= 1.0

    @given(data=labelled_clusterings())
    @settings(max_examples=50, deadline=None)
    def test_truth_as_prediction_is_perfect(self, data):
        _predicted, truth = data
        perfect: dict[int, list[int]] = {}
        for pid, author in truth.items():
            perfect.setdefault(author, []).append(pid)
        c = pairwise_counts(perfect, truth)
        assert c.fp == 0 and c.fn == 0
