"""Tests for the text substrate: tokenisation and PPMI-SVD embeddings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import (
    STOP_WORDS,
    WordEmbeddings,
    corpus_word_frequencies,
    cosine,
    extract_keywords,
    frequent_words,
    tokenize,
    train_title_embeddings,
)


class TestTokenize:
    def test_lowercases_and_splits(self):
        assert tokenize("Deep Learning for Graphs") == [
            "deep",
            "learning",
            "for",
            "graphs",
        ]

    def test_drops_single_chars_and_symbols(self):
        assert tokenize("a b: c-d (e)") == []

    def test_keeps_alphanumerics(self):
        assert tokenize("word2vec embeddings") == ["word2vec", "embeddings"]

    @given(st.text(max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_never_raises(self, text):
        tokens = tokenize(text)
        assert all(t == t.lower() for t in tokens)


class TestKeywords:
    def test_stop_words_removed(self):
        kws = extract_keywords("the index of the query")
        assert kws == ["index", "query"]

    def test_frequent_words_removed(self):
        kws = extract_keywords("novel query index", frozenset({"novel"}))
        assert kws == ["query", "index"]

    def test_corpus_frequencies(self):
        freq = corpus_word_frequencies(["query index", "query join"])
        assert freq["query"] == 2
        assert freq["join"] == 1

    def test_frequent_words_selection(self):
        freq = corpus_word_frequencies(["query"] * 50 + ["join"] * 2)
        top = frequent_words(freq, top_fraction=0.5, min_rank=1)
        assert "query" in top

    def test_frequent_words_validation(self):
        with pytest.raises(ValueError):
            frequent_words({}, top_fraction=1.5)


class TestEmbeddings:
    @pytest.fixture(scope="class")
    def emb(self):
        titles = (
            ["query index join database storage"] * 30
            + ["neural network learning gradient deep"] * 30
            + ["query database index"] * 10
            + ["learning deep gradient"] * 10
        )
        return train_title_embeddings(titles, dim=8, min_count=2)

    def test_in_topic_closer_than_cross_topic(self, emb):
        assert emb.similarity("query", "index") > emb.similarity("query", "neural")

    def test_vectors_unit_norm(self, emb):
        for word in emb.vocabulary[:5]:
            assert np.linalg.norm(emb[word]) == pytest.approx(1.0)

    def test_oov_handling(self, emb):
        assert emb.get("zzzznope") is None
        assert "zzzznope" not in emb
        assert emb.similarity("query", "zzzznope") == 0.0

    def test_centroid(self, emb):
        c = emb.centroid(["query", "index"])
        assert c is not None and c.shape == (emb.dim,)
        assert emb.centroid(["zzzznope"]) is None

    def test_most_similar_excludes_self(self, emb):
        top = emb.most_similar("query", k=3)
        assert len(top) == 3
        assert all(w != "query" for w, _s in top)

    def test_too_small_corpus_raises(self):
        with pytest.raises(ValueError):
            train_title_embeddings(["lone"], dim=4)

    def test_mismatched_matrix_rejected(self):
        with pytest.raises(ValueError):
            WordEmbeddings(["a", "b"], np.zeros((3, 4)))


class TestCosine:
    def test_parallel(self):
        v = np.array([1.0, 2.0])
        assert cosine(v, 2 * v) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == 0.0

    def test_zero_vector(self):
        assert cosine(np.zeros(3), np.ones(3)) == 0.0
