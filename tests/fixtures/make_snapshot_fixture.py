#!/usr/bin/env python3
"""Regenerate the committed v1 snapshot fixture (``snapshot_v1.jsonl``).

The fixture pins **backward compatibility**: every future build must keep
loading this exact file (``tests/test_snapshot_roundtrip.py::
test_v1_fixture_still_loads_and_serves``), so the file is committed and
this script is only ever re-run when the schema version itself bumps —
in which case a *new* fixture is added next to the old one, never over
it.

The content is deliberately small but exercises every optional section:
a sharded fit (``sharding`` section with plan + routing index), one
streamed paper (``stream`` counters), homonym-bearing ground truth
(mention payloads beyond position 0).

Run:  PYTHONPATH=src python tests/fixtures/make_snapshot_fixture.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from repro.core import IUADConfig, ShardedIUAD, StreamingIngestor  # noqa: E402
from repro.data.records import Corpus, Paper  # noqa: E402

OUT = Path(__file__).with_name("snapshot_v1.jsonl")


def main() -> None:
    papers = [
        Paper(0, ("X Y", "P A"), "query index join", "VLDB", 2001, (100, 1)),
        Paper(1, ("X Y", "P A"), "index storage btree", "VLDB", 2002, (100, 1)),
        Paper(2, ("X Y", "Q B"), "query optimization", "VLDB", 2003, (100, 2)),
        Paper(3, ("X Y", "P A", "Q B"), "transaction recovery", "VLDB", 2004,
              (100, 1, 2)),
        Paper(4, ("X Y", "R C"), "image segmentation", "CVPR", 2001, (200, 3)),
        Paper(5, ("X Y", "R C"), "object detection scene", "CVPR", 2002,
              (200, 3)),
        Paper(6, ("X Y", "S D"), "stereo depth tracking", "CVPR", 2003,
              (200, 4)),
        Paper(7, ("X Y", "R C", "S D"), "pose recognition", "CVPR", 2005,
              (200, 3, 4)),
    ]
    estimator = ShardedIUAD(IUADConfig(max_shard_size=10)).fit(Corpus(papers))
    stream = StreamingIngestor(estimator, checkpoint_path=OUT)
    stream.add_paper(
        Paper(8, ("X Y", "P A"), "btree query plans", "VLDB", 2006)
    )
    stream.checkpoint()
    print(f"wrote {OUT} ({OUT.stat().st_size} bytes)")


if __name__ == "__main__":
    main()
