"""Batch-vs-sequential streaming parity (``StreamingIngestor.add_papers``).

The contract pinned here: ingesting a burst through
:meth:`repro.core.streaming.StreamingIngestor.add_papers` produces the
same GCN (vertex ids, names, paper attributions, mention payloads,
edges), the same assignments and the same report counters as looping
:meth:`~repro.core.incremental.IncrementalDisambiguator.add_paper` over
the burst in the same order — over shuffled bursts, including same-paper
homonyms, cross-shard bridging papers, and duplicate pids.
"""

from __future__ import annotations

import copy
import random

import numpy as np
import pytest

from repro.core import (
    IUAD,
    IUADConfig,
    IncrementalDisambiguator,
    ShardedIUAD,
    StreamingIngestor,
)
from repro.data import Corpus, Paper, build_testing_dataset
from repro.data.testing import split_for_incremental


def network_state(gcn):
    """A fully comparable snapshot of a collaboration network."""
    vertices = sorted(
        (
            v.vid,
            v.name,
            tuple(sorted(v.papers)),
            tuple(sorted(v.mentions.items())),
        )
        for v in gcn
    )
    edges = sorted(
        (u, v, tuple(sorted(papers))) for u, v, papers in gcn.edges()
    )
    return vertices, edges


def assignment_keys(batches):
    """Assignments minus the float scores (compared separately)."""
    return [
        [(a.name, a.position, a.vid, a.created) for a in batch]
        for batch in batches
    ]


def flat_scores(batches):
    return np.array([a.score for batch in batches for a in batch])


def counter_state(report):
    return (
        report.n_papers,
        report.n_mentions,
        report.n_attached,
        report.n_created,
        report.n_duplicates,
        dict(report.per_shard_papers),
    )


def assert_burst_parity(fitted, burst):
    """Run both paths on deep copies and compare everything."""
    seq = copy.deepcopy(fitted)
    seq_stream = IncrementalDisambiguator(seq)
    seq_assignments = [seq_stream.add_paper(paper) for paper in burst]

    bat = copy.deepcopy(fitted)
    ingestor = StreamingIngestor(bat)
    bat_assignments = ingestor.add_papers(burst)

    assert network_state(seq.gcn_) == network_state(bat.gcn_)
    assert assignment_keys(seq_assignments) == assignment_keys(bat_assignments)
    seq_scores = flat_scores(seq_assignments)
    bat_scores = flat_scores(bat_assignments)
    assert np.array_equal(np.isfinite(seq_scores), np.isfinite(bat_scores))
    finite = np.isfinite(seq_scores)
    assert np.allclose(seq_scores[finite], bat_scores[finite], atol=1e-9)
    assert counter_state(seq_stream.report) == counter_state(ingestor.report)
    # One-mention-per-paper invariant and unique occurrence ownership.
    owners: dict[tuple[int, int], int] = {}
    for vertex in bat.gcn_:
        for pid, position in vertex.mentions.items():
            key = (pid, position)
            assert key not in owners, f"mention {key} owned twice"
            owners[key] = vertex.vid
    return seq_stream, ingestor


@pytest.fixture(scope="module")
def fitted_and_burst(small_corpus):
    td = build_testing_dataset(small_corpus, n_names=12)
    _base_pids, new_pids = split_for_incremental(td, 60)
    new_set = set(new_pids)
    base = Corpus(p for p in small_corpus if p.pid not in new_set)
    iuad = IUAD(IUADConfig()).fit(base, names=td.names)
    burst = [small_corpus[pid] for pid in new_pids]
    return iuad, burst


class TestBurstParity:
    def test_burst_matches_sequential_loop(self, fitted_and_burst):
        fitted, burst = fitted_and_burst
        _seq, ingestor = assert_burst_parity(fitted, burst)
        stats = ingestor.last_batch
        assert stats is not None
        assert stats.n_fresh == len(burst)
        assert stats.n_scored_pairs >= stats.n_patched_pairs >= 0
        assert ingestor.report.n_batches == 1
        assert ingestor.report.n_waves == 1

    @pytest.mark.parametrize("seed", [3, 17])
    def test_shuffled_bursts(self, fitted_and_burst, seed):
        fitted, burst = fitted_and_burst
        shuffled = list(burst)
        random.Random(seed).shuffle(shuffled)
        assert_burst_parity(fitted, shuffled)

    def test_homonym_and_new_name_papers(self, fitted_and_burst):
        """Same-paper homonyms and brand-new names inside a burst."""
        fitted, burst = fitted_and_burst
        known = next(
            name
            for name in fitted.corpus_.names
            if len(fitted.gcn_.vertices_of_name(name)) >= 2
        )
        next_pid = max(p.pid for p in fitted.corpus_) + 10**6
        extras = [
            # one name listed twice: two homonymous co-authors
            Paper(next_pid, (known, known), "twin homonym graphs", "V-X", 2021),
            # a brand-new collaboration pair
            Paper(next_pid + 1, ("Aa New", "Bb New"), "fresh pair", "V-Y", 2021),
            # a follow-up touching both worlds
            Paper(next_pid + 2, ("Aa New", known), "bridge work", "V-X", 2022),
        ]
        mixed = burst[:10] + extras + burst[10:20]
        assert_burst_parity(fitted, mixed)

    def test_empty_batch(self, fitted_and_burst):
        fitted, _burst = fitted_and_burst
        bat = copy.deepcopy(fitted)
        ingestor = StreamingIngestor(bat)
        before = network_state(bat.gcn_)
        assert ingestor.add_papers([]) == []
        assert ingestor.report.n_papers == 0
        assert ingestor.report.n_batches == 0
        assert network_state(bat.gcn_) == before

    def test_multiple_batches_accumulate(self, fitted_and_burst):
        fitted, burst = fitted_and_burst
        bat = copy.deepcopy(fitted)
        ingestor = StreamingIngestor(bat)
        ingestor.add_papers(burst[:20])
        ingestor.add_papers(burst[20:40])
        seq = copy.deepcopy(fitted)
        stream = IncrementalDisambiguator(seq)
        for paper in burst[:40]:
            stream.add_paper(paper)
        assert network_state(seq.gcn_) == network_state(bat.gcn_)
        assert ingestor.report.n_batches == 2
        assert ingestor.report.n_papers == 40


class TestDuplicatesInBatch:
    def test_raise_policy_rejects_before_mutating(self, fitted_and_burst):
        fitted, burst = fitted_and_burst
        bat = copy.deepcopy(fitted)
        ingestor = StreamingIngestor(bat)
        before = network_state(bat.gcn_)
        known_pid = next(iter(bat.corpus_)).pid
        with pytest.raises(ValueError, match="already ingested"):
            ingestor.add_papers(
                [burst[0], bat.corpus_[known_pid], burst[1]]
            )
        # Atomic validation: nothing was ingested, not even burst[0].
        assert network_state(bat.gcn_) == before
        assert ingestor.report.n_papers == 0

    def test_return_policy_replays_duplicates(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=8)
        _base, new_pids = split_for_incremental(td, 20)
        new_set = set(new_pids)
        base = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(
            IUADConfig(duplicate_paper_policy="return")
        ).fit(base, names=td.names)
        burst = [small_corpus[pid] for pid in new_pids]
        # the same paper twice within one batch
        doubled = burst + [burst[0]]
        seq_stream, ingestor = assert_burst_parity(iuad, doubled)
        assert ingestor.report.n_duplicates == 1
        replay = ingestor.add_papers([burst[0]])[0]
        assert all(not a.created for a in replay)
        assert all(np.isnan(a.score) for a in replay)


class TestDuplicatesAcrossRestart:
    """``duplicate_paper_policy="return"`` must replay identically when
    the duplicate arrives *after* a checkpoint restore — the owners are
    then reconstructed from deserialized mention payloads, not from any
    in-memory state of the process that ingested the paper."""

    @pytest.fixture()
    def fitted_return_policy(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=8)
        _base, new_pids = split_for_incremental(td, 20)
        new_set = set(new_pids)
        base = Corpus(p for p in small_corpus if p.pid not in new_set)
        iuad = IUAD(
            IUADConfig(duplicate_paper_policy="return")
        ).fit(base, names=td.names)
        return iuad, [small_corpus[pid] for pid in new_pids]

    def test_duplicate_replay_survives_restart(
        self, fitted_return_policy, tmp_path
    ):
        from repro.core import StreamingIngestor as Ingestor

        fitted, burst = fitted_return_policy
        # live reference: ingest, then replay a duplicate (no restart)
        live = Ingestor(copy.deepcopy(fitted))
        live.add_papers(burst)
        expected = live.add_papers([burst[0]])[0]
        assert all(np.isnan(a.score) for a in expected)

        # restart path: ingest, checkpoint, resume from disk, replay
        saver = Ingestor(copy.deepcopy(fitted), checkpoint_path=tmp_path / "ck.jsonl")
        saver.add_papers(burst)
        saver.checkpoint()
        resumed = Ingestor.resume(tmp_path / "ck.jsonl")
        replay = resumed.add_papers([burst[0]])[0]
        assert [(a.name, a.position, a.vid, a.created) for a in replay] == [
            (a.name, a.position, a.vid, a.created) for a in expected
        ]
        assert all(np.isnan(a.score) for a in replay)
        assert resumed.report.n_duplicates == live.report.n_duplicates == 1
        # the scalar path agrees after the restore too
        scalar = resumed.add_paper(burst[1])
        assert [(a.name, a.position, a.vid, a.created) for a in scalar] == [
            (a.name, a.position, a.vid, a.created)
            for a in live.add_paper(burst[1])
        ]
        # nothing was mutated by either replay
        assert network_state(resumed.iuad.gcn_) == network_state(
            live.iuad.gcn_
        )


class TestShardedStreamingParity:
    def test_cross_shard_bridging_burst(self, small_corpus):
        """Sharded fit: bursts route, bridge and stay in parity."""
        td = build_testing_dataset(small_corpus, n_names=10)
        _base, new_pids = split_for_incremental(td, 30)
        new_set = set(new_pids)
        base = Corpus(p for p in small_corpus if p.pid not in new_set)
        sharded = ShardedIUAD(IUADConfig(max_shard_size=300)).fit(
            base, names=td.names
        )
        burst = [small_corpus[pid] for pid in new_pids]
        # A paper spanning two different shards bridges them; a paper of
        # unknown names opens a fresh block.
        index = sharded.shard_index_
        by_shard: dict[int, str] = {}
        for name in base.names:
            sid = index.shard_of_name(name)
            if sid is not None and sid not in by_shard:
                by_shard[sid] = name
            if len(by_shard) >= 2:
                break
        name_a, name_b = list(by_shard.values())[:2]
        next_pid = max(p.pid for p in small_corpus) + 10**6
        burst = burst[:15] + [
            Paper(next_pid, (name_a, name_b), "bridging work", "V-B", 2021),
            Paper(
                next_pid + 1,
                ("Unknown Zz One", "Unknown Zz Two"),
                "new block",
                "V-C",
                2021,
            ),
        ] + burst[15:]
        seq_stream, ingestor = assert_burst_parity(sharded, burst)
        assert sum(ingestor.report.per_shard_papers.values()) == len(burst)
        assert ingestor.shard_index.n_bridges >= 1

    def test_bulk_routing_matches_scalar_routing(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=10)
        _base, new_pids = split_for_incremental(td, 20)
        new_set = set(new_pids)
        base = Corpus(p for p in small_corpus if p.pid not in new_set)
        sharded = ShardedIUAD(IUADConfig(max_shard_size=300)).fit(base)
        burst = [small_corpus[pid] for pid in new_pids]
        a = copy.deepcopy(sharded.shard_index_)
        b = copy.deepcopy(sharded.shard_index_)
        bulk = a.route_papers(p.authors for p in burst)
        scalar = [b.route_paper(p.authors) for p in burst]
        assert bulk == scalar
        assert a.n_shards == b.n_shards
        assert a.n_bridges == b.n_bridges
