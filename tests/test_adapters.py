"""The persistence adapter registry (``repro.io.adapters``).

Pins the pluggable-driver contract: registration (duplicates refused,
``replace=True`` swaps), the resolution order (explicit name > byte
sniff > path suffix > jsonl default), lossless conversion across every
registered adapter pair — including a riding delta-chain log, whose
base fingerprint is canonical and therefore adapter-independent — and
the v1 fixture still loading unchanged through the registry.
"""

from __future__ import annotations

import copy
import sys
from pathlib import Path
from typing import Any

import pytest

from repro.core import IUAD, IUADConfig, StreamingIngestor
from repro.io import (
    ADAPTERS,
    Snapshot,
    list_adapters,
    read_document,
    register_adapter,
    resolve_adapter,
    snapshot_of,
    verify_snapshot,
    write_document,
)
from repro.io import adapters as adapters_module
from repro.io.adapters.base import SnapshotAdapter
from repro.io.delta import document_fingerprint

from test_delta_checkpoint import FIT_PAPERS, STREAM_PAPERS

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE = Path(__file__).with_name("fixtures") / "snapshot_v1.jsonl"

BACKENDS = ("jsonl", "sqlite")
SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite"}


@pytest.fixture(scope="module")
def fitted():
    from repro.data.records import Corpus

    config = IUADConfig(checkpoint_mode="delta", use_embeddings=False)
    return IUAD(config).fit(Corpus(FIT_PAPERS))


@pytest.fixture()
def cli():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    import importlib

    module = importlib.import_module("snapshot")
    yield module
    sys.path.remove(str(REPO_ROOT / "tools"))


# --------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------- #
def test_builtin_adapters_are_registered():
    names = list(list_adapters())
    assert names[0] == "jsonl"  # the default — first, and the fallback
    assert "sqlite" in names
    with pytest.raises(TypeError):
        ADAPTERS["rogue"] = object()  # read-only view


class ToyAdapter(SnapshotAdapter):
    """Minimal third-party driver: magic-prefixed single-blob file."""

    name = "toy"
    suffixes = (".toy",)
    MAGIC = b"TOY1\n"

    def sniff(self, prefix: bytes) -> bool:
        return prefix.startswith(self.MAGIC)

    def write(self, document: dict[str, Any], path: Path) -> None:
        import json

        path.write_bytes(self.MAGIC + json.dumps(document).encode("utf-8"))

    def read(self, path: Path) -> dict[str, Any]:
        import json

        return json.loads(path.read_bytes()[len(self.MAGIC):])


@pytest.fixture()
def toy_adapter():
    adapter = ToyAdapter()
    register_adapter(adapter)
    yield adapter
    adapters_module._REGISTRY.pop("toy", None)


def test_register_custom_adapter(toy_adapter, fitted, tmp_path):
    assert "toy" in list_adapters()
    with pytest.raises(ValueError, match="already registered"):
        register_adapter(ToyAdapter())
    register_adapter(ToyAdapter(), replace=True)  # explicit swap is fine

    # a snapshot round-trips through the third-party driver untouched
    path = tmp_path / "snap.toy"
    snapshot = snapshot_of(fitted)
    snapshot.save(path)  # resolved by suffix
    assert resolve_adapter(path).name == "toy"  # sniffed once written
    loaded = Snapshot.load(path)
    assert document_fingerprint(loaded.to_document()) == (
        document_fingerprint(snapshot.to_document())
    )


def test_resolution_order(toy_adapter, tmp_path):
    jsonl_file = tmp_path / "data.weird"
    jsonl_file.write_text('{"k": 1}\n', encoding="utf-8")
    toy_file = tmp_path / "mislabelled.jsonl"
    toy_file.write_bytes(ToyAdapter.MAGIC + b"{}")

    # explicit name beats everything
    assert resolve_adapter(toy_file, "sqlite").name == "sqlite"
    # a recognisable byte prefix beats the (default) suffix
    assert resolve_adapter(toy_file).name == "toy"
    # nothing sniffs → non-default suffix decides…
    assert resolve_adapter(tmp_path / "missing.toy").name == "toy"
    assert resolve_adapter(tmp_path / "missing.sqlite").name == "sqlite"
    # …and everything else falls back to the jsonl default
    assert resolve_adapter(jsonl_file).name == "jsonl"
    assert resolve_adapter(tmp_path / "missing.weird").name == "jsonl"
    with pytest.raises(ValueError, match="unknown"):
        resolve_adapter(jsonl_file, "no-such-adapter")


def test_v1_fixture_loads_through_the_registry():
    assert resolve_adapter(FIXTURE).name == "jsonl"
    snapshot = Snapshot.load(FIXTURE)
    assert verify_snapshot(snapshot) == []
    assert snapshot.delta_seq == 0  # pre-delta snapshots have no watermark


# --------------------------------------------------------------------- #
# conversion across adapter pairs
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("src_backend", BACKENDS)
@pytest.mark.parametrize("dst_backend", BACKENDS)
def test_convert_round_trip_parity(
    fitted, src_backend, dst_backend, tmp_path, cli
):
    if src_backend == dst_backend:
        pytest.skip("identity conversion")
    src = tmp_path / ("src" + SUFFIX[src_backend])
    dst = tmp_path / ("dst" + SUFFIX[dst_backend])
    back = tmp_path / ("back" + SUFFIX[src_backend])
    snapshot_of(fitted).save(src, backend=src_backend)

    assert cli.main(["convert", str(src), str(dst)]) == 0
    assert resolve_adapter(dst).name == dst_backend
    assert document_fingerprint(read_document(src)) == (
        document_fingerprint(read_document(dst))
    )
    # …and back, bit-for-bit in canonical form
    assert cli.main(["convert", str(dst), str(back)]) == 0
    assert document_fingerprint(read_document(back)) == (
        document_fingerprint(read_document(src))
    )


@pytest.mark.parametrize("dst_backend", ("sqlite", "jsonl"))
def test_convert_carries_the_delta_chain(
    fitted, dst_backend, tmp_path, cli, capsys
):
    """The chain log rides along and stays valid: the base fingerprint
    is computed over the canonical document, not the stored bytes."""
    src_backend = "jsonl" if dst_backend == "sqlite" else "sqlite"
    base = tmp_path / ("chained" + SUFFIX[src_backend])
    ingestor = StreamingIngestor(
        copy.deepcopy(fitted), checkpoint_path=base,
        checkpoint_backend=src_backend,
    )
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()

    dst = tmp_path / ("converted" + SUFFIX[dst_backend])
    assert cli.main(["convert", str(base), str(dst)]) == 0
    assert "+ delta chain log" in capsys.readouterr().out
    restored, info = Snapshot.load_chain(dst)
    assert info["chain_length"] == 1
    original, _ = Snapshot.load_chain(base)
    assert document_fingerprint(restored.to_document()) == (
        document_fingerprint(original.to_document())
    )
    assert cli.main(["verify", str(dst)]) == 0


def test_write_document_rejects_unknown_adapter(fitted, tmp_path):
    document = snapshot_of(fitted).to_document()
    with pytest.raises(ValueError, match="unknown"):
        write_document(document, tmp_path / "x.jsonl", "no-such-adapter")


def test_cli_list_backends(cli, capsys):
    assert cli.main(["--list-backends"]) == 0
    out = capsys.readouterr().out
    assert "jsonl" in out and "sqlite" in out
    assert "indexed-query" in out  # sqlite advertises its capability
