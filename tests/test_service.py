"""Serving layer: FittedView, Engine swaps, HTTP API, checkpoint safety.

Four contracts are pinned here:

* **Frozen views** — a :class:`~repro.service.FittedView` is an
  immutable, content-hashable projection; its queries agree with the
  live network (:meth:`CollaborationNetwork.owner_of
  <repro.graphs.collab.CollaborationNetwork.owner_of>`) and with the
  incremental duplicate replay, and never see later writes.
* **Atomic swaps** — readers hammering ``Engine.view`` from other
  threads while the writer publishes ≥10 generations observe a monotone
  generation sequence and only views that exactly match a serial replay
  at some burst boundary — never a torn state.
* **Checkpoint between bursts** — ``StreamingIngestor.checkpoint`` is
  safe while ingest requests are queued (engine queue or plain
  threads): it captures a consistent post-burst state, and resuming it
  then replaying the still-pending papers lands on exactly the
  drain-then-checkpoint clustering.
* **HTTP surface** — every endpooint of the async server answers JSON
  with correct status codes, and malformed input gets 400/404/405,
  never a dropped connection.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core import (
    IUAD,
    IUADConfig,
    IncrementalDisambiguator,
    StreamingIngestor,
)
from repro.data import Corpus, Paper
from repro.io import Snapshot, snapshot_header, snapshot_of, verify_snapshot
from repro.service import (
    Engine,
    FittedView,
    ServiceServer,
    prior_assignments_in,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "snapshot_v1.jsonl"

#: Names the fixture snapshot knows (see make_snapshot_fixture.py).
FIXTURE_NAMES = ("X Y", "P A", "Q B", "R C", "S D")


def probe_papers(n, start_pid=100, seed=3):
    """Fresh papers reusing fixture names (real attach-vs-create work)."""
    import random

    rng = random.Random(seed)
    return [
        Paper(
            pid=start_pid + i,
            authors=tuple(rng.sample(FIXTURE_NAMES, rng.randint(1, 2))),
            title=f"probe {i} streaming serving index",
            venue=rng.choice(("VLDB", "CVPR")),
            year=2010 + (i % 10),
        )
        for i in range(n)
    ]


def restored_ingestor() -> StreamingIngestor:
    """Warm-start from the fixture; never auto-checkpoint over it."""
    ingestor = StreamingIngestor.resume(FIXTURE)
    ingestor.checkpoint_path = None
    return ingestor


def serial_view(papers) -> FittedView:
    """The reference: sequential add_paper over a fresh restore."""
    estimator = Snapshot.load(FIXTURE).restore()
    stream = IncrementalDisambiguator(estimator)
    for paper in papers:
        stream.add_paper(paper)
    return FittedView.of(estimator)


# ===================================================================== #
# FittedView
# ===================================================================== #
class TestFittedView:
    def test_queries_against_fixture(self):
        view = FittedView.from_snapshot(FIXTURE)
        assert view.check_consistency() == []
        hit = view.who_is("X Y", 0, 0)
        assert hit is not None and hit["name"] == "X Y"
        assert hit["vid"] in view.cluster_of("X Y")
        # wrong position / unknown pid / name mismatch -> None
        assert view.who_is("X Y", 0, 7) is None
        assert view.who_is("X Y", 424242, 0) is None
        assert view.who_is("P A", 0, 0) is None
        matches = view.resolve("X Y", 0)
        assert len(matches) == 1 and matches[0]["vid"] == hit["vid"]
        assert view.resolve("X Y", 424242) == ()
        assert view.cluster_of("No Such Name") == {}
        assert set(view.names()) == set(FIXTURE_NAMES)
        assert view.n_vertices == sum(
            len(v) for v in view.clusters.values()
        )

    def test_matches_live_network_owner_of(self):
        snapshot = Snapshot.load(FIXTURE)
        view = FittedView.from_snapshot(FIXTURE)
        for vertex in snapshot.gcn:
            for pid, position in vertex.mentions.items():
                assert (
                    snapshot.gcn.owner_of(pid, position, vertex.name)
                    == vertex.vid
                )
                hit = view.who_is(vertex.name, pid, position)
                assert hit is not None and hit["vid"] == vertex.vid
        assert snapshot.gcn.owner_of(424242, 0) is None

    def test_prior_assignments_match_duplicate_replay(self):
        estimator = Snapshot.load(FIXTURE).restore()
        estimator.config.duplicate_paper_policy = "return"
        stream = IncrementalDisambiguator(estimator)
        view = FittedView.of(estimator)
        for paper in estimator.corpus_:
            replay = [a.vid for a in stream.add_paper(paper)]
            assert (
                prior_assignments_in(view, paper.authors, paper.pid)
                == replay
            )

    def test_content_equality_and_hash(self):
        one = FittedView.from_snapshot(FIXTURE, generation=0)
        two = FittedView.from_snapshot(FIXTURE, generation=9)
        # generation and timestamps are excluded from identity
        assert one == two and hash(one) == hash(two)
        assert one.fingerprint == two.fingerprint

        ingestor = restored_ingestor()
        ingestor.add_papers(probe_papers(3))
        three = FittedView.of(ingestor.iuad)
        assert three != one and three.fingerprint != one.fingerprint

    def test_views_are_frozen(self):
        view = FittedView.from_snapshot(FIXTURE)
        with pytest.raises(TypeError):
            view.clusters["X Y"] = {}
        with pytest.raises(TypeError):
            view.clusters["X Y"][0] = ()

    def test_view_never_sees_later_writes(self):
        ingestor = restored_ingestor()
        before = FittedView.of(ingestor.iuad)
        fingerprint = before.fingerprint
        n_mentions = before.n_mentions
        ingestor.add_papers(probe_papers(5))
        assert before.fingerprint == fingerprint
        assert before.n_mentions == n_mentions
        assert before.who_is("X Y", 100, 0) is None or True  # no KeyError
        after = FittedView.of(ingestor.iuad)
        assert after != before

    def test_of_unfitted_raises(self):
        with pytest.raises(ValueError, match="unfitted"):
            FittedView.of(IUAD(IUADConfig()))


# ===================================================================== #
# Engine: the writer + atomic swaps
# ===================================================================== #
class TestEngine:
    def test_ingest_publishes_new_generation(self):
        async def scenario():
            ingestor = restored_ingestor()
            async with Engine(ingestor) as engine:
                base = engine.view
                assert base.generation == 0
                papers = probe_papers(4)
                result = await engine.ingest(papers)
                view = engine.view
                assert result.generation == view.generation == 1
                assert result.n_papers == 4
                assert result.n_attached + result.n_created == sum(
                    len(p.authors) for p in papers
                )
                assert len(result.assignments) == 4
                # the published view answers for the new papers...
                for paper, batch in zip(papers, result.assignments):
                    for position, (vid, _created) in enumerate(batch):
                        hit = view.who_is(
                            paper.authors[position], paper.pid, position
                        )
                        assert hit is not None and hit["vid"] == vid
                # ...while the pre-burst view still does not
                assert base.who_is(
                    papers[0].authors[0], papers[0].pid, 0
                ) is None
            stats = engine.stats()
            assert stats.n_swaps == 1 and stats.n_papers_ingested == 4

        asyncio.run(scenario())

    def test_coalesced_bursts_match_serial_replay(self):
        papers = probe_papers(12)

        async def scenario():
            ingestor = restored_ingestor()
            async with Engine(ingestor, max_batch=64) as engine:
                futures = [
                    await engine.ingest([paper], wait=False)
                    for paper in papers
                ]
                results = await asyncio.gather(*futures)
            return engine, results

        engine, results = asyncio.run(scenario())
        # every request resolved, in order, each with its own slice
        assert all(r.n_papers == 1 for r in results)
        generations = [r.generation for r in results]
        assert generations == sorted(generations)
        # coalescing happened (12 requests, fewer swaps) yet the outcome
        # is exactly the serial replay — burst boundaries don't matter
        assert engine.n_swaps <= len(papers)
        assert engine.view == serial_view(papers)

    def test_failed_burst_keeps_serving(self):
        async def scenario():
            ingestor = restored_ingestor()
            # default duplicate policy is "raise": re-ingesting pid 0
            # must reject the burst but leave the engine alive
            assert ingestor.iuad.config.duplicate_paper_policy == "raise"
            duplicate = ingestor.iuad.corpus_[0]
            async with Engine(ingestor) as engine:
                before = engine.view
                with pytest.raises(ValueError, match="duplicate"):
                    await engine.ingest([duplicate])
                assert engine.view is before  # no swap published
                result = await engine.ingest(probe_papers(2))
                assert result.generation == 1

        asyncio.run(scenario())

    def test_checkpoint_mid_queue_equals_drain_then_checkpoint(
        self, tmp_path
    ):
        """The satellite regression: checkpoint with requests queued.

        Five writer-queue items are enqueued back-to-back — two bursts,
        a checkpoint, two more bursts — so the checkpoint runs while the
        tail bursts are already queued behind it.  The checkpoint must
        capture exactly the post-A state, and resuming it + replaying
        the tail must equal draining everything first (which itself
        equals the serial replay).
        """
        papers = probe_papers(12)
        batch_a = [papers[0:3], papers[3:6]]
        batch_b = [papers[6:9], papers[9:12]]
        mid_ck = tmp_path / "mid_queue.jsonl"
        drain_ck = tmp_path / "drained.jsonl"

        async def scenario():
            ingestor = restored_ingestor()
            async with Engine(ingestor, max_batch=64) as engine:
                tasks = [
                    *(asyncio.create_task(engine.ingest(b))
                      for b in batch_a),
                    asyncio.create_task(engine.checkpoint(mid_ck)),
                    *(asyncio.create_task(engine.ingest(b))
                      for b in batch_b),
                ]
                await asyncio.gather(*tasks)
                await engine.checkpoint(drain_ck)
            return FittedView.of(engine.ingestor.iuad)

        final = asyncio.run(scenario())

        mid = Snapshot.load(mid_ck)
        # the mid-queue checkpoint holds exactly the A-prefix...
        assert len(mid.corpus) == 9 + sum(len(b) for b in batch_a)
        assert verify_snapshot(mid) == []
        expected_mid = serial_view(papers[:6])
        assert FittedView._from_network(
            mid.gcn, n_papers=len(mid.corpus)
        ) == expected_mid
        # ...and replaying the still-queued tail from it reproduces the
        # drain-then-checkpoint clustering exactly
        resumed = StreamingIngestor.resume(mid_ck)
        resumed.checkpoint_path = None
        for burst in batch_b:
            resumed.add_papers(burst)
        replayed = FittedView.of(resumed.iuad)
        drained = Snapshot.load(drain_ck)
        assert verify_snapshot(drained) == []
        drained_view = FittedView._from_network(
            drained.gcn, n_papers=len(drained.corpus)
        )
        assert replayed == drained_view == final == serial_view(papers)
        assert resumed.iuad.gcn_.n_edges == drained.gcn.n_edges

    def test_out_of_band_checkpoint_is_post_burst(self, tmp_path):
        """A thread checkpointing against live bursts never tears state.

        The writer loops ``add_papers`` bursts of 3 while another thread
        checkpoints out-of-band (no engine queue — the raw writer-lock
        path).  Every captured snapshot must hold a whole number of
        bursts, pass the invariant sweep, and replaying the remaining
        bursts from it must land on the final clustering.
        """
        papers = probe_papers(18, seed=5)
        bursts = [papers[i: i + 3] for i in range(0, len(papers), 3)]
        ingestor = restored_ingestor()
        base_papers = ingestor.report.n_papers
        started = threading.Event()
        targets = [tmp_path / f"oob_{k}.jsonl" for k in range(3)]

        def writer():
            for burst in bursts:
                ingestor.add_papers(burst)
                started.set()

        thread = threading.Thread(target=writer)
        thread.start()
        started.wait(timeout=30)
        for target in targets:
            ingestor.checkpoint(target)
        thread.join(timeout=60)
        assert not thread.is_alive()

        final = FittedView.of(ingestor.iuad)
        for target in targets:
            snapshot = Snapshot.load(target)
            ingested = snapshot.stream.n_papers - base_papers
            assert ingested % 3 == 0, (
                f"checkpoint {target.name} caught a mid-burst state "
                f"({ingested} papers past the base)"
            )
            assert verify_snapshot(snapshot) == []
            resumed = StreamingIngestor.resume(target)
            resumed.checkpoint_path = None
            for burst in bursts[ingested // 3:]:
                resumed.add_papers(burst)
            assert FittedView.of(resumed.iuad) == final


# ===================================================================== #
# concurrent readers during swaps
# ===================================================================== #
def test_readers_never_observe_torn_views():
    """Reader threads sample ``engine.view`` across ≥10 generations.

    Asserted per reader: the generation sequence is monotone
    non-decreasing, every sampled view passes its internal consistency
    sweep, and every (generation, fingerprint) pair matches the serial
    replay of exactly the bursts published up to that generation — i.e.
    each observed view IS a pre-/post-burst fit, nothing in between.
    """
    n_generations = 12
    papers = probe_papers(n_generations, seed=9)
    ingestor = restored_ingestor()
    engine = Engine(ingestor, max_batch=1, record_bursts=True)
    stop = threading.Event()
    observed: list[list[tuple[int, str]]] = [[] for _ in range(3)]
    violations: list[str] = []

    def reader(slot: int):
        mentions = [("X Y", 0, 0), ("P A", 0, 1), ("R C", 4, 1)]
        i = 0
        while not stop.is_set():
            view = engine.view  # the atomic read under test
            violations.extend(view.check_consistency())
            hit = view.who_is(*mentions[i % len(mentions)])
            if hit is not None and hit["generation"] != view.generation:
                violations.append("answer from a different view")
            observed[slot].append((view.generation, view.fingerprint))
            i += 1

    threads = [
        threading.Thread(target=reader, args=(slot,), daemon=True)
        for slot in range(len(observed))
    ]

    async def scenario():
        async with engine:
            for thread in threads:
                thread.start()
            for paper in papers:  # max_batch=1 -> one swap per paper
                await engine.ingest([paper])

    asyncio.run(scenario())
    stop.set()
    for thread in threads:
        thread.join(timeout=30)

    assert engine.n_swaps >= 10
    assert violations == []
    # expected fingerprint at every burst boundary, by serial replay
    estimator = Snapshot.load(FIXTURE).restore()
    stream = IncrementalDisambiguator(estimator)
    boundary = {0: FittedView.of(estimator).fingerprint}
    by_pid = {p.pid: p for p in papers}
    for generation, pids in enumerate(engine.burst_log, start=1):
        for pid in pids:
            stream.add_paper(by_pid[pid])
        boundary[generation] = FittedView.of(estimator).fingerprint
    for samples in observed:
        assert samples, "a reader thread recorded nothing"
        generations = [g for g, _ in samples]
        assert generations == sorted(generations), "generation went back"
        for generation, fingerprint in samples:
            assert boundary[generation] == fingerprint, (
                f"generation {generation} showed a fingerprint matching "
                "no pre-/post-burst fit (torn view)"
            )
    assert max(g for s in observed for g, _ in s) >= 1


# ===================================================================== #
# HTTP surface
# ===================================================================== #
class _Service:
    """Engine + ServiceServer on a background event loop thread."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, daemon=True
        )
        self.thread.start()

        async def boot():
            self.engine = Engine(restored_ingestor())
            await self.engine.start()
            self.server = ServiceServer(self.engine)
            await self.server.start()
            return self.server.port

        self.port = asyncio.run_coroutine_threadsafe(
            boot(), self.loop
        ).result(timeout=60)

    def close(self) -> None:
        async def teardown():
            await self.server.stop()
            await self.engine.stop()

        asyncio.run_coroutine_threadsafe(
            teardown(), self.loop
        ).result(timeout=60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=30)

    def request(self, method, path, body=None, raw: bytes | None = None):
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=30
        )
        try:
            payload = raw if raw is not None else (
                json.dumps(body).encode() if body is not None else None
            )
            conn.request(method, path, body=payload)
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()


@pytest.fixture()
def service():
    harness = _Service()
    yield harness
    harness.close()


class TestHTTP:
    def test_read_endpoints(self, service):
        status, health = service.request("GET", "/healthz")
        assert status == 200 and health["status"] == "ok"
        assert health["generation"] == 0

        status, stats = service.request("GET", "/stats")
        assert status == 200 and stats["n_swaps"] == 0
        assert stats["n_papers"] == 9

        status, hit = service.request(
            "GET", "/who-is?name=X%20Y&pid=0&position=0"
        )
        assert status == 200 and hit["name"] == "X Y"
        status, miss = service.request(
            "GET", "/who-is?name=X%20Y&pid=424242"
        )
        assert status == 404 and "error" in miss

        status, resolved = service.request(
            "GET", "/resolve?name=X%20Y&pid=0"
        )
        assert status == 200 and len(resolved["matches"]) == 1

        status, cluster = service.request(
            "GET", "/cluster-of?name=P%20A"
        )
        assert status == 200 and cluster["clusters"]
        status, _ = service.request("GET", "/cluster-of?name=Nobody")
        assert status == 404

        status, dump = service.request("GET", "/clusters")
        assert status == 200
        assert dump["fingerprint"] == service.engine.view.fingerprint

    def test_ingest_roundtrip(self, service):
        from repro.io.schema import encode_paper

        papers = [encode_paper(p) for p in probe_papers(3)]
        status, summary = service.request(
            "POST", "/ingest", {"papers": papers}
        )
        assert status == 200 and summary["generation"] == 1
        assert summary["n_papers"] == 3
        # the ingested mention is immediately readable
        record = papers[0]
        status, hit = service.request(
            "GET",
            f"/who-is?name={record['authors'][0].replace(' ', '%20')}"
            f"&pid={record['pid']}&position=0",
        )
        assert status == 200 and hit["generation"] >= 1

        # wait=false is accepted, not yet necessarily published
        more = [encode_paper(p) for p in probe_papers(2, start_pid=300)]
        status, queued = service.request(
            "POST", "/ingest", {"papers": more, "wait": False}
        )
        assert status == 202 and queued["queued"] == 2

    def test_checkpoint_endpoint(self, service, tmp_path):
        target = tmp_path / "http_ck.jsonl"
        status, answer = service.request(
            "POST", "/checkpoint", {"path": str(target)}
        )
        assert status == 200 and answer["path"] == str(target)
        snapshot = Snapshot.load(target)
        assert verify_snapshot(snapshot) == []

    def test_checkpoint_endpoint_delta_mode(self, service, tmp_path):
        """The delta wiring: mode rides the request, the chain length
        rides /stats and the checkpoint response."""
        target = tmp_path / "http_delta.jsonl"
        status, answer = service.request(
            "POST", "/checkpoint", {"path": str(target), "mode": "delta"}
        )
        # first delta checkpoint writes the base
        assert status == 200 and answer["delta_chain_length"] == 0
        status, answer = service.request(
            "POST", "/checkpoint", {"path": str(target), "mode": "delta"}
        )
        assert status == 200 and answer["delta_chain_length"] == 1
        status, stats = service.request("GET", "/stats")
        assert status == 200 and stats["delta_chain_length"] == 1
        restored, info = Snapshot.load_chain(target)
        assert info["chain_length"] == 1
        assert verify_snapshot(restored) == []
        # a bogus mode is a request error, not a dead writer
        status, error = service.request(
            "POST", "/checkpoint", {"path": str(target), "mode": "nope"}
        )
        assert status == 400 and "mode" in error["error"]

    def test_error_surfaces(self, service):
        status, error = service.request("GET", "/who-is?pid=0")
        assert status == 400 and "name" in error["error"]
        status, error = service.request(
            "GET", "/who-is?name=X%20Y&pid=abc"
        )
        assert status == 400 and "integer" in error["error"]
        status, _ = service.request(
            "POST", "/ingest", raw=b"this is not json"
        )
        assert status == 400
        status, _ = service.request("POST", "/ingest", {"nope": 1})
        assert status == 400
        status, _ = service.request(
            "POST", "/ingest", {"papers": [{"pid": 1}]}
        )
        assert status == 400
        status, _ = service.request("POST", "/healthz")
        assert status == 405
        status, _ = service.request("GET", "/no-such-route")
        assert status == 404
        # the server is still alive after every one of those
        status, health = service.request("GET", "/healthz")
        assert status == 200 and health["status"] == "ok"


# ===================================================================== #
# snapshot_header + CLI surfaces
# ===================================================================== #
class TestSnapshotHeader:
    def test_fixture_header(self):
        header = snapshot_header(FIXTURE)
        assert header["format"] == "repro-snapshot"
        assert header["kind"] == "sharded"
        assert header["n_papers"] == 9
        assert header["n_vertices"] == 10
        assert header["backend"] == "jsonl"
        assert header["sharding"]["n_shards"] == 1
        assert header["stream"]["n_papers"] == 1
        json.dumps(header)  # machine-readable by contract

    def test_round_trips_a_fresh_snapshot(self, tmp_path, figure2_corpus):
        estimator = IUAD(IUADConfig(wl_iterations=1)).fit(figure2_corpus)
        target = tmp_path / "fresh.jsonl"
        snapshot_of(estimator).save(target)
        header = snapshot_header(target)
        assert header["n_papers"] == len(figure2_corpus)
        assert header["sharding"] is None and header["stream"] is None

    @pytest.mark.parametrize(
        "content",
        [
            b"",
            b"garbage, not json\n",
            b'{"valid": "json", "wrong": "shape"}\n',
        ],
        ids=["empty", "garbage", "wrong-shape"],
    )
    def test_corrupt_files_raise_value_error(self, tmp_path, content):
        bad = tmp_path / "bad.jsonl"
        bad.write_bytes(content)
        with pytest.raises(ValueError):
            snapshot_header(bad)

    def test_missing_file_raises_value_error(self, tmp_path):
        with pytest.raises(ValueError, match="no such"):
            snapshot_header(tmp_path / "nope.jsonl")

    def test_truncated_table_raises(self, tmp_path):
        from repro.io import read_document, write_document

        document = read_document(FIXTURE)
        document["meta"]["n_papers"] = 99  # declared != stored
        bad = tmp_path / "truncated.jsonl"
        write_document(document, bad)
        with pytest.raises(ValueError, match="claims 99"):
            snapshot_header(bad)


class TestCLI:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, *argv],
            capture_output=True, text=True, cwd=REPO_ROOT, timeout=120,
        )

    def test_inspect_json(self):
        proc = self._run("tools/snapshot.py", "inspect", str(FIXTURE),
                         "--json")
        assert proc.returncode == 0, proc.stderr
        header = json.loads(proc.stdout)
        assert header["format"] == "repro-snapshot"
        assert header["n_papers"] == 9

    def test_inspect_corrupt_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a snapshot\n")
        for extra in ([], ["--json"]):
            proc = self._run(
                "tools/snapshot.py", "inspect", str(bad), *extra
            )
            assert proc.returncode == 1
            assert "Traceback" not in proc.stderr
            assert proc.stderr.strip().startswith("inspect:")

    def test_verify_corrupt_exits_nonzero(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a snapshot\n")
        proc = self._run("tools/snapshot.py", "verify", str(bad))
        assert proc.returncode == 1
        assert "Traceback" not in proc.stderr

    def test_serve_corrupt_snapshot_exits_2(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not a snapshot\n")
        proc = self._run("tools/serve.py", "--snapshot", str(bad))
        assert proc.returncode == 2
        assert "Traceback" not in proc.stderr
        assert proc.stderr.strip().startswith("serve:")
