"""Subprocess worker for the delta-chain resume-parity suite.

``tests/test_delta_checkpoint.py`` launches this in a **fresh Python
process** to prove that base + delta-chain replay reconstructs the exact
writer state without any help from the process that wrote the chain:

    python tests/_delta_worker.py <base_snapshot> <papers.jsonl> \
        <batch|scalar> <document_out.json> <assignments.json>

The worker resumes an ingestor from ``base_snapshot`` (replaying its
delta chain), streams the papers, appends one more delta checkpoint to
the same chain, and dumps both its final state's canonical document and
the assignments as JSON for the parent to compare against.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))


def main(argv: list[str]) -> int:
    base_in, papers_path, mode, document_out, assignments_out = argv

    from repro.core import StreamingIngestor
    from repro.data.records import Paper
    from repro.io.snapshot import snapshot_of

    ingestor = StreamingIngestor.resume(base_in)
    papers = [
        Paper.from_json(line)
        for line in Path(papers_path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if mode == "batch":
        batches = ingestor.add_papers(papers)
    elif mode == "scalar":
        batches = [ingestor.add_paper(paper) for paper in papers]
    else:
        raise SystemExit(f"unknown mode {mode!r}")
    ingestor.checkpoint(mode="delta")
    document = snapshot_of(ingestor.iuad, stream=ingestor.report).to_document()
    Path(document_out).write_text(
        json.dumps(document, sort_keys=True), encoding="utf-8"
    )
    payload = [
        [[a.name, a.position, a.vid, a.created] for a in batch]
        for batch in batches
    ]
    Path(assignments_out).write_text(json.dumps(payload), encoding="utf-8")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
