"""Delta-chain checkpoints (``repro.io.delta``): parity and crash windows.

Pins the central contract of the append-only checkpoint format: a base
snapshot plus replayed delta chain is **byte-identical** (canonical
document encoding) to a full snapshot taken at the same moment — next
vid watermark, name-index order, stream counters, shard routing and all
— in-process, across :meth:`StreamingIngestor.resume`, and in a fresh
interpreter (``tests/_delta_worker.py``).  Every damage mode of the
append crash window (torn tail, checksum failure, seq gap, foreign
base) must raise a one-line error, never replay silently; records a
crashed compaction left behind must be skipped as stale.
"""

from __future__ import annotations

import copy
import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.core import IUAD, IUADConfig, ShardedIUAD, StreamingIngestor
from repro.data.records import Corpus, Paper
from repro.io import Snapshot, delta_log_path, snapshot_of
from repro.io.delta import document_fingerprint

REPO_ROOT = Path(__file__).resolve().parents[1]
WORKER = Path(__file__).with_name("_delta_worker.py")

BACKENDS = ("jsonl", "sqlite")
SUFFIX = {"jsonl": ".jsonl", "sqlite": ".sqlite"}

FIT_PAPERS = [
    Paper(0, ("X Y", "P A"), "query index join", "VLDB", 2001, (100, 1)),
    Paper(1, ("X Y", "P A"), "index storage btree", "VLDB", 2002, (100, 1)),
    Paper(2, ("X Y", "Q B"), "query optimization", "VLDB", 2003, (100, 2)),
    Paper(3, ("X Y", "P A", "Q B"), "transaction recovery", "VLDB", 2004,
          (100, 1, 2)),
    Paper(4, ("X Y", "R C"), "image segmentation", "CVPR", 2001, (200, 3)),
    Paper(5, ("X Y", "R C"), "object detection scene", "CVPR", 2002,
          (200, 3)),
]
STREAM_PAPERS = [
    Paper(6, ("X Y", "S D"), "stereo depth tracking", "CVPR", 2003, (200, 4)),
    Paper(7, ("X Y", "R C", "S D"), "pose recognition", "CVPR", 2005,
          (200, 3, 4)),
    Paper(8, ("X Y", "P A"), "join ordering", "VLDB", 2006, (100, 1)),
    Paper(9, ("T E", "Q B"), "graph mining", "KDD", 2007, (300, 2)),
]


@pytest.fixture(scope="module")
def fitted():
    config = IUADConfig(checkpoint_mode="delta", use_embeddings=False)
    return IUAD(config).fit(Corpus(FIT_PAPERS))


@pytest.fixture()
def cli():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    import importlib

    module = importlib.import_module("snapshot")
    yield module
    sys.path.remove(str(REPO_ROOT / "tools"))


def make_ingestor(fitted, tmp_path, backend, **config_overrides):
    estimator = copy.deepcopy(fitted)
    for key, value in config_overrides.items():
        setattr(estimator.config, key, value)
    base = tmp_path / ("ckpt" + SUFFIX[backend])
    ingestor = StreamingIngestor(
        estimator, checkpoint_path=base, checkpoint_backend=backend
    )
    return ingestor, base


def live_fingerprint(ingestor, delta_seq=0):
    snapshot = snapshot_of(ingestor.iuad, stream=ingestor.report)
    snapshot.delta_seq = delta_seq  # a compacted base carries a watermark
    return document_fingerprint(snapshot.to_document())


def chained(base, backend=None):
    return Snapshot.load_chain(base, backend=backend)


# --------------------------------------------------------------------- #
# byte parity: base + chain == full snapshot of the same moment
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_delta_restore_byte_parity(fitted, backend, tmp_path):
    ingestor, base = make_ingestor(fitted, tmp_path, backend)
    ingestor.checkpoint()  # writes the base
    assert ingestor.delta_chain_length == 0
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()  # delta 1
    ingestor.add_paper(STREAM_PAPERS[2])
    ingestor.add_paper(STREAM_PAPERS[3])
    ingestor.checkpoint()  # delta 2
    assert ingestor.delta_chain_length == 2

    restored, info = chained(base, backend)
    assert info["chain_length"] == 2 and info["n_papers"] == 4
    live = snapshot_of(ingestor.iuad, stream=ingestor.report)
    # exact network state, including next_vid and name-index order
    assert restored.gcn.export_parts() == live.gcn.export_parts()
    assert [p.pid for p in restored.corpus] == [p.pid for p in live.corpus]
    assert restored.model.state_dict() == live.model.state_dict()
    assert restored.stream is not None
    assert restored.stream.n_papers == live.stream.n_papers
    assert restored.stream.per_paper_seconds == live.stream.per_paper_seconds
    # …and canonical-document byte parity against a real full snapshot
    full = tmp_path / ("full" + SUFFIX[backend])
    live.save(full, backend=backend)
    assert document_fingerprint(restored.to_document()) == (
        document_fingerprint(Snapshot.load(full, backend=backend).to_document())
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_continues_the_chain(fitted, backend, tmp_path):
    ingestor, base = make_ingestor(fitted, tmp_path, backend)
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()

    resumed = StreamingIngestor.resume(base, backend=backend)
    assert resumed.delta_chain_length == 1
    resumed.add_paper(STREAM_PAPERS[2])
    resumed.checkpoint()
    assert resumed.delta_chain_length == 2
    restored, info = chained(base, backend)
    assert info["chain_length"] == 2 and info["last_seq"] == 2
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(resumed)
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mode", ("batch", "scalar"))
def test_resume_replay_parity_in_subprocess(
    fitted, backend, mode, tmp_path
):
    """A fresh interpreter resumes base + chain, streams and appends."""
    ingestor, base = make_ingestor(fitted, tmp_path, backend)
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()  # the worker starts from a 1-record chain

    burst = STREAM_PAPERS[2:]
    papers_file = tmp_path / "burst.jsonl"
    papers_file.write_text(
        "".join(p.to_json() + "\n" for p in burst), encoding="utf-8"
    )
    document_out = tmp_path / "final.json"
    assignments_out = tmp_path / "assignments.json"
    result = subprocess.run(
        [sys.executable, str(WORKER), str(base), str(papers_file), mode,
         str(document_out), str(assignments_out)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr

    # the continuation in this process is the reference
    if mode == "batch":
        expected = ingestor.add_papers(burst)
    else:
        expected = [ingestor.add_paper(p) for p in burst]
    got = json.loads(assignments_out.read_text(encoding="utf-8"))
    assert [
        [(n, p, v, c) for n, p, v, c in batch] for batch in got
    ] == [
        [(a.name, a.position, a.vid, a.created) for a in batch]
        for batch in expected
    ]
    # the chain the worker extended replays to the worker's exact state
    restored, info = chained(base, backend)
    assert info["chain_length"] == 2
    assert json.dumps(restored.to_document(), sort_keys=True) == (
        document_out.read_text(encoding="utf-8")
    )
    # …which is also this process's state, up to wall-clock stream
    # timing (seconds are facts of whichever process ingested)
    def structural(document):
        document = json.loads(json.dumps(document))
        document["sections"].pop("stream", None)
        return document_fingerprint(document)

    assert structural(restored.to_document()) == structural(
        snapshot_of(ingestor.iuad, stream=ingestor.report).to_document()
    )


def test_sharded_delta_chain_parity(tmp_path):
    """Replay routes chain papers through the shard index too."""
    config = IUADConfig(
        max_shard_size=50, use_embeddings=False, checkpoint_mode="delta"
    )
    estimator = ShardedIUAD(config).fit(Corpus(FIT_PAPERS))
    base = tmp_path / "sharded.jsonl"
    ingestor = StreamingIngestor(estimator, checkpoint_path=base)
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS)
    ingestor.checkpoint()

    restored, info = chained(base)
    assert info["chain_length"] == 1
    live = snapshot_of(ingestor.iuad, stream=ingestor.report)
    assert restored.sharding is not None and live.sharding is not None
    assert restored.sharding.index._name_to_shard == (
        live.sharding.index._name_to_shard
    )
    assert restored.sharding.index.n_bridges == live.sharding.index.n_bridges
    assert restored.sharding.cannot_links == live.sharding.cannot_links
    assert document_fingerprint(restored.to_document()) == (
        document_fingerprint(live.to_document())
    )


# --------------------------------------------------------------------- #
# crash windows: every damage mode is a loud one-line refusal
# --------------------------------------------------------------------- #
def damaged_chain(fitted, tmp_path, backend="jsonl"):
    ingestor, base = make_ingestor(fitted, tmp_path, backend)
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()
    ingestor.add_paper(STREAM_PAPERS[2])
    ingestor.checkpoint()
    return base, delta_log_path(base)


def test_torn_tail_is_detected(fitted, tmp_path, cli, capsys):
    base, log = damaged_chain(fitted, tmp_path)
    lines = log.read_text(encoding="utf-8").splitlines(keepends=True)
    # the crash window of an append: the last record half-written
    log.write_text(
        "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2],
        encoding="utf-8",
    )
    with pytest.raises(ValueError, match="torn or truncated"):
        chained(base)
    assert cli.main(["verify", str(base)]) == 1
    err = capsys.readouterr().err
    assert "torn or truncated" in err and "Traceback" not in err
    # inspection refuses too — a damaged chain is never summarised away
    assert cli.main(["inspect", str(base)]) == 1


def test_checksum_corruption_is_detected(fitted, tmp_path):
    base, log = damaged_chain(fitted, tmp_path)
    lines = log.read_text(encoding="utf-8").splitlines(keepends=True)
    # valid JSON, wrong bytes: flip a title character inside record 1
    lines[0] = lines[0].replace("stereo", "sterio", 1)
    log.write_text("".join(lines), encoding="utf-8")
    with pytest.raises(ValueError, match="checksum"):
        chained(base)


def test_seq_gap_is_detected(fitted, tmp_path):
    base, log = damaged_chain(fitted, tmp_path)
    lines = log.read_text(encoding="utf-8").splitlines(keepends=True)
    log.write_text(lines[1], encoding="utf-8")  # record 1 lost, 2 kept
    with pytest.raises(ValueError, match="gap"):
        chained(base)


def test_foreign_base_is_detected(fitted, tmp_path):
    base, log = damaged_chain(fitted, tmp_path)
    # overwrite the base with a different (chainless) snapshot: the log
    # now extends a fingerprint that no longer exists
    other = copy.deepcopy(fitted)
    StreamingIngestor(other).add_paper(STREAM_PAPERS[3])
    snapshot_of(other).save(base)
    with pytest.raises(ValueError, match="mismatched chain"):
        chained(base)


def test_stale_records_skipped_after_compaction_crash(fitted, tmp_path):
    """Crash between the compacted base landing and the log truncate:
    every log record is already folded in and must be skipped."""
    ingestor, base = make_ingestor(fitted, tmp_path, "jsonl")
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()
    log = delta_log_path(base)
    stale = log.read_bytes()
    ingestor.checkpoint(mode="full")  # compaction truncates the log…
    log.write_bytes(stale)  # …but "the crash" resurrects the old log
    restored, info = chained(base)
    assert info["chain_length"] == 0 and restored.delta_seq == 1
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor, delta_seq=1)
    )


# --------------------------------------------------------------------- #
# compaction & mode interplay
# --------------------------------------------------------------------- #
def test_auto_compaction_folds_the_chain(fitted, tmp_path):
    ingestor, base = make_ingestor(
        fitted, tmp_path, "jsonl", compact_every_n_deltas=2
    )
    ingestor.checkpoint()
    ingestor.add_paper(STREAM_PAPERS[0])
    ingestor.checkpoint()
    assert ingestor.delta_chain_length == 1
    ingestor.add_paper(STREAM_PAPERS[1])
    ingestor.checkpoint()  # second append trips the compaction
    assert ingestor.delta_chain_length == 0
    assert delta_log_path(base).stat().st_size == 0
    restored, info = chained(base)
    assert info["chain_length"] == 0 and restored.delta_seq == 2
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor, delta_seq=2)
    )


def test_full_checkpoint_compacts_side_snapshot_does_not(fitted, tmp_path):
    ingestor, base = make_ingestor(fitted, tmp_path, "jsonl")
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()
    # a full checkpoint to a *different* path is a side snapshot: the
    # live chain is untouched
    side = tmp_path / "side.jsonl"
    ingestor.checkpoint(side, mode="full")
    assert ingestor.delta_chain_length == 1
    assert not delta_log_path(side).exists()
    assert document_fingerprint(Snapshot.load(side).to_document()) == (
        live_fingerprint(ingestor)
    )
    # a full checkpoint to the *base* path is an explicit compaction
    ingestor.checkpoint(mode="full")
    assert ingestor.delta_chain_length == 0
    assert delta_log_path(base).stat().st_size == 0
    restored, info = chained(base)
    assert info["chain_length"] == 0 and restored.delta_seq == 1
    # …and the chain keeps extending afterwards
    ingestor.add_paper(STREAM_PAPERS[2])
    ingestor.checkpoint()
    restored, info = chained(base)
    assert info["chain_length"] == 1 and info["last_seq"] == 2
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor, delta_seq=1)
    )


def test_delta_checkpoint_is_pinned_to_the_base_path(fitted, tmp_path):
    ingestor, base = make_ingestor(fitted, tmp_path, "jsonl")
    ingestor.checkpoint()
    ingestor.add_paper(STREAM_PAPERS[0])
    with pytest.raises(ValueError, match="cannot append"):
        ingestor.checkpoint(tmp_path / "elsewhere.jsonl", mode="delta")


def test_duplicates_are_not_journaled(fitted, tmp_path):
    ingestor, base = make_ingestor(
        fitted, tmp_path, "jsonl", duplicate_paper_policy="return"
    )
    ingestor.checkpoint()
    ingestor.add_paper(STREAM_PAPERS[0])
    ingestor.add_paper(FIT_PAPERS[0])  # duplicate: mutates nothing
    ingestor.checkpoint()
    restored, info = chained(base)
    assert info["chain_length"] == 1 and info["n_papers"] == 1
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor)
    )


# --------------------------------------------------------------------- #
# checkpoint_every_n_papers × writer lock, in delta mode
# --------------------------------------------------------------------- #
def test_auto_checkpoints_append_deltas_on_burst_boundaries(
    fitted, tmp_path
):
    ingestor, base = make_ingestor(
        fitted, tmp_path, "jsonl", checkpoint_every_n_papers=2
    )
    ingestor.add_paper(STREAM_PAPERS[0])
    assert not base.exists()  # below the threshold
    ingestor.add_paper(STREAM_PAPERS[1])
    assert base.exists()  # first auto-checkpoint writes the base
    assert ingestor.delta_chain_length == 0
    # a whole burst past the threshold → exactly one post-burst delta
    ingestor.add_papers(STREAM_PAPERS[2:])
    assert ingestor.delta_chain_length == 1
    restored, info = chained(base)
    assert info["chain_length"] == 1 and info["n_papers"] == 2
    assert restored.stream.n_papers == 4
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor)
    )


def test_checkpoint_thread_never_sees_a_half_applied_burst(fitted, tmp_path):
    """Delta checkpoints requested from another thread while bursts run
    land on whole-burst boundaries: every intermediate chain replays to
    a consistent prefix, and the final chain replays to the final state."""
    ingestor, base = make_ingestor(fitted, tmp_path, "jsonl")
    ingestor.checkpoint()
    stop = threading.Event()
    errors: list[BaseException] = []

    def keep_checkpointing():
        try:
            while not stop.is_set():
                ingestor.checkpoint()
                restored, _info = chained(base)
                n = restored.stream.n_papers
                # always a whole-burst prefix of the scalar stream
                assert n in range(len(STREAM_PAPERS) + 1)
                assert [p.pid for p in restored.corpus][6:] == [
                    p.pid for p in STREAM_PAPERS[:n]
                ]
        except BaseException as exc:  # surface into the main thread
            errors.append(exc)

    thread = threading.Thread(target=keep_checkpointing)
    thread.start()
    try:
        for paper in STREAM_PAPERS:
            ingestor.add_paper(paper)
    finally:
        stop.set()
        thread.join(timeout=60)
    assert not errors, errors
    ingestor.checkpoint()
    restored, _info = chained(base)
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor)
    )


# --------------------------------------------------------------------- #
# the CLI: compact + chain-aware inspect
# --------------------------------------------------------------------- #
def test_cli_compact_and_chain_aware_inspect(fitted, tmp_path, cli, capsys):
    ingestor, base = make_ingestor(fitted, tmp_path, "jsonl")
    ingestor.checkpoint()
    ingestor.add_papers(STREAM_PAPERS[:2])
    ingestor.checkpoint()

    assert cli.main(["inspect", str(base)]) == 0
    out = capsys.readouterr().out
    assert "delta" in out and "1 records" in out
    assert cli.main(["inspect", str(base), "--json"]) == 0
    header = json.loads(capsys.readouterr().out)
    assert header["adapter"] == "jsonl"
    assert header["delta"]["chain_length"] == 1
    assert header["delta"]["base_fingerprint"]

    assert cli.main(["verify", str(base)]) == 0
    assert "+1 delta records" in capsys.readouterr().out

    assert cli.main(["compact", str(base)]) == 0
    assert "folded 1" in capsys.readouterr().out
    assert delta_log_path(base).stat().st_size == 0
    restored, info = chained(base)
    assert info["chain_length"] == 0 and restored.delta_seq == 1
    assert document_fingerprint(restored.to_document()) == (
        live_fingerprint(ingestor, delta_seq=1)
    )
    # compacting an absent chain is a loud no-op
    assert cli.main(["compact", str(tmp_path / "nochain.jsonl")]) == 1
    assert "no delta chain log" in capsys.readouterr().err
