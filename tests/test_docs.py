"""Docs contract: intra-repo markdown links resolve, doctest examples pass.

The same checks gate CI via the ``docs`` job (``python tools/check_docs.py``);
running them in the tier-1 suite keeps local development honest too.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_docs  # noqa: E402


def test_no_broken_markdown_links():
    assert check_docs.check_markdown_links() == []


def test_doctest_examples_pass():
    assert check_docs.run_doctests() == []


def test_no_references_to_missing_files():
    """Inline-code spans naming repo files must point at real files (the
    `BENCH_sharding.json` drift class)."""
    assert check_docs.check_file_references() == []


def test_reference_check_catches_missing_files(tmp_path, monkeypatch):
    """The checker itself must flag a reference to a file that is gone —
    otherwise the gate silently stops gating."""
    doc = tmp_path / "drifted.md"
    doc.write_text(
        "See `BENCH_gone.json` and [link](nowhere.md).\n", encoding="utf-8"
    )
    monkeypatch.setattr(check_docs, "REPO_ROOT", tmp_path)
    monkeypatch.setattr(check_docs, "iter_markdown_files", lambda: [doc])
    ref_errors = check_docs.check_file_references()
    assert len(ref_errors) == 1 and "BENCH_gone.json" in ref_errors[0]
    link_errors = check_docs.check_markdown_links()
    assert len(link_errors) == 1 and "nowhere.md" in link_errors[0]


def test_architecture_doc_exists_and_is_linked():
    """The pipeline architecture doc must exist and be reachable from the
    README (the acceptance criterion of the docs satellite)."""
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme
