"""Tests for the graph substrate: union-find, network, triangles, WL."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    CollaborationNetwork,
    UnionFind,
    ball,
    coauthor_triangle_names,
    count_triangles,
    maximal_cliques_of_vertex,
    normalized_wl_kernel,
    triangles_of_vertex,
    wl_feature_map,
    wl_similarity,
)


class TestUnionFind:
    def test_basic_union(self):
        uf = UnionFind(range(5))
        uf.union(0, 1)
        uf.union(3, 4)
        assert uf.connected(0, 1)
        assert not uf.connected(1, 2)
        assert uf.n_components == 3

    def test_groups(self):
        uf = UnionFind(range(4))
        uf.union(0, 2)
        groups = uf.groups()
        assert sorted(map(sorted, groups.values())) == [[0, 2], [1], [3]]

    def test_add_idempotent(self):
        uf = UnionFind()
        uf.add("x")
        uf.add("x")
        assert len(uf) == 1

    def test_forbid_blocks_direct_union(self):
        uf = UnionFind(range(4))
        uf.forbid(0, 1)
        assert not uf.allowed(0, 1)
        assert uf.allowed(0, 2)
        with pytest.raises(ValueError, match="cannot-link"):
            uf.union(0, 1)

    def test_forbid_is_component_aware(self):
        """t1–x then t2–x must not chain t1 and t2 past their cannot-link."""
        uf = UnionFind([0, 1, 2])
        uf.forbid(0, 1)
        uf.union(0, 2)
        assert not uf.allowed(1, 2)  # 2 is now in 0's component
        with pytest.raises(ValueError, match="cannot-link"):
            uf.union(1, 2)
        assert not uf.connected(0, 1)

    def test_forbid_survives_third_party_unions(self):
        uf = UnionFind(range(6))
        uf.forbid(0, 1)
        uf.union(2, 3)
        uf.union(0, 3)   # grows 0's component through 2–3
        uf.union(1, 5)
        assert not uf.allowed(5, 2)
        assert uf.allowed(4, 2)

    def test_forbid_rejects_already_joined(self):
        uf = UnionFind([0, 1])
        uf.union(0, 1)
        with pytest.raises(ValueError, match="already in one set"):
            uf.forbid(0, 1)

    def test_union_of_same_component_is_noop_with_constraints(self):
        uf = UnionFind(range(3))
        uf.forbid(0, 2)
        uf.union(0, 1)
        assert uf.union(1, 0) == uf.find(0)

    @given(
        edges=st.lists(
            st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_transitivity_and_symmetry(self, edges):
        uf = UnionFind(range(16))
        for a, b in edges:
            uf.union(a, b)
        for a, b in edges:
            assert uf.connected(a, b)
            assert uf.connected(b, a)
        # components partition the elements
        groups = uf.groups()
        members = sorted(x for g in groups.values() for x in g)
        assert members == list(range(16))


def triangle_net() -> CollaborationNetwork:
    net = CollaborationNetwork()
    a = net.add_vertex("a")
    b = net.add_vertex("b")
    c = net.add_vertex("c")
    d = net.add_vertex("d")
    net.add_edge(a, b, {0})
    net.add_edge(a, c, {0})
    net.add_edge(b, c, {0})
    net.add_edge(c, d, {1})
    return net


class TestCollaborationNetwork:
    def test_vertices_and_edges(self):
        net = triangle_net()
        assert len(net) == 4
        assert net.n_edges == 4
        assert net.degree(2) == 3
        assert net.edge_papers(0, 1) == {0}
        assert net.edge_papers(0, 3) == set()

    def test_vertex_papers_accumulate(self):
        net = triangle_net()
        assert net.papers_of(2) == {0, 1}

    def test_self_loop_rejected(self):
        net = triangle_net()
        with pytest.raises(ValueError):
            net.add_edge(0, 0, {9})

    def test_name_index(self):
        net = CollaborationNetwork()
        v1 = net.add_vertex("x")
        v2 = net.add_vertex("x")
        assert net.vertices_of_name("x") == [v1, v2]
        assert net.vertices_of_name("missing") == []

    def test_isolated_vertices(self):
        net = triangle_net()
        v = net.add_vertex("lonely")
        assert net.isolated_vertices() == [v]

    def test_remove_isolated_vertex(self):
        net = triangle_net()
        v = net.add_vertex("lonely")
        net.remove_isolated_vertex(v)
        assert v not in net
        assert net.vertices_of_name("lonely") == []

    def test_remove_connected_vertex_rejected(self):
        net = triangle_net()
        with pytest.raises(ValueError):
            net.remove_isolated_vertex(0)

    def test_merged_same_name(self):
        net = CollaborationNetwork()
        x1 = net.add_vertex("x", papers=(0,))
        x2 = net.add_vertex("x", papers=(1,))
        y = net.add_vertex("y", papers=(0, 1))
        net.add_edge(x1, y, {0})
        net.add_edge(x2, y, {1})
        uf = UnionFind([x1, x2, y])
        uf.union(x1, x2)
        merged = net.merged(uf)
        assert len(merged) == 2
        xm = merged.vertices_of_name("x")[0]
        assert merged.papers_of(xm) == {0, 1}
        assert merged.n_edges == 1
        ym = merged.vertices_of_name("y")[0]
        assert merged.edge_papers(xm, ym) == {0, 1}

    def test_merged_cross_name_rejected(self):
        net = CollaborationNetwork()
        a = net.add_vertex("a")
        b = net.add_vertex("b")
        uf = UnionFind([a, b])
        uf.union(a, b)
        with pytest.raises(ValueError, match="illegal merge"):
            net.merged(uf)

    def test_merged_preserve_ids(self):
        """preserve_ids keeps every surviving vertex's id: the contract the
        round-persistent profile caches rely on."""
        net = CollaborationNetwork()
        x1 = net.add_vertex("x", papers=(0,))
        x2 = net.add_vertex("x", papers=(1,))
        y = net.add_vertex("y", papers=(0, 1))
        z = net.add_vertex("z", papers=(2,))
        net.add_edge(x1, y, {0})
        net.add_edge(x2, y, {1})
        uf = UnionFind([x1, x2, y, z])
        uf.union(x1, x2)
        merged = net.merged(uf, preserve_ids=True)
        rep = uf.find(x1)
        assert merged.vertices_of_name("x") == [rep]
        assert merged.papers_of(rep) == {0, 1}
        # Untouched vertices keep their exact ids.
        assert y in merged and merged.name_of(y) == "y"
        assert z in merged and merged.name_of(z) == "z"
        assert merged.edge_papers(rep, y) == {0, 1}
        # Fresh ids never collide with preserved ones.
        fresh = merged.add_vertex("w")
        assert fresh not in (x1, x2, y, z)

    def test_add_vertex_with_explicit_id(self):
        net = CollaborationNetwork()
        vid = net.add_vertex("a", vid=7)
        assert vid == 7
        assert net.add_vertex("b") == 8
        with pytest.raises(ValueError, match="already exists"):
            net.add_vertex("c", vid=7)


class TestMentionPayloads:
    def test_add_vertex_with_mentions_attributes_papers(self):
        net = CollaborationNetwork()
        v = net.add_vertex("a", mentions=((0, 1), (3, 0)))
        assert net.papers_of(v) == {0, 3}
        assert net.mentions_of(v) == {0: 1, 3: 0}
        assert net.n_mentions == 2

    def test_one_mention_per_paper_invariant(self):
        net = CollaborationNetwork()
        v = net.add_vertex("a", mentions=((0, 0),))
        with pytest.raises(ValueError, match="already owns a mention"):
            net.add_mention(v, 0, 1)
        with pytest.raises(ValueError, match="two mentions of paper"):
            net.add_vertex("b", mentions=((5, 0), (5, 1)))

    def test_set_mentions_resets_attribution(self):
        net = CollaborationNetwork()
        v = net.add_vertex("a", papers=(9,))
        net.set_mentions(v, ((1, 0), (2, 1)))
        assert net.papers_of(v) == {1, 2}
        net.set_mentions(v, ())
        assert net.papers_of(v) == set()
        assert net.mentions_of(v) == {}

    def test_merged_propagates_mentions(self):
        net = CollaborationNetwork()
        x1 = net.add_vertex("x", mentions=((0, 0),))
        x2 = net.add_vertex("x", mentions=((1, 2),))
        uf = UnionFind([x1, x2])
        uf.union(x1, x2)
        merged = net.merged(uf)
        (xm,) = merged.vertices_of_name("x")
        assert merged.mentions_of(xm) == {0: 0, 1: 2}

    def test_merged_rejects_same_paper_mentions(self):
        """The cheap assertion backing the Stage-2 cannot-link: a component
        holding two occurrences of one paper can never materialise."""
        net = CollaborationNetwork()
        t1 = net.add_vertex("x", mentions=((0, 0),))
        t2 = net.add_vertex("x", mentions=((0, 1),))
        uf = UnionFind([t1, t2])
        uf.union(t1, t2)
        with pytest.raises(ValueError, match="two mentions of paper"):
            net.merged(uf)

    def test_mention_clusters_fall_back_to_position_zero(self):
        net = CollaborationNetwork()
        v = net.add_vertex("a", papers=(4,))  # hand-built: no payload
        w = net.add_vertex("a", mentions=((7, 1),))
        clusters = net.mention_clusters_of_name("a")
        assert clusters[v] == {(4, 0)}
        assert clusters[w] == {(7, 1)}


class TestTriangles:
    def test_triangle_enumeration(self):
        net = triangle_net()
        assert count_triangles(net) == 1
        assert triangles_of_vertex(net, 0) == {frozenset({0, 1, 2})}
        assert triangles_of_vertex(net, 3) == set()

    def test_coauthor_triangle_names(self):
        net = triangle_net()
        assert coauthor_triangle_names(net, 0) == {frozenset({"b", "c"})}

    def test_maximal_cliques(self):
        net = triangle_net()
        cliques = maximal_cliques_of_vertex(net, 0)
        assert frozenset({0, 1, 2}) in cliques


class TestWLKernel:
    def test_ball_radius(self):
        net = triangle_net()
        assert ball(net, 3, 0) == {3}
        assert ball(net, 3, 1) == {2, 3}
        assert ball(net, 3, 2) == {0, 1, 2, 3}

    def test_normalized_kernel_bounds(self):
        net = triangle_net()
        for u in range(4):
            for v in range(4):
                k = wl_similarity(net, u, v)
                assert 0.0 <= k <= 1.0 + 1e-9

    def test_self_similarity_is_one(self):
        net = triangle_net()
        phi = wl_feature_map(net, 0, h=2)
        assert normalized_wl_kernel(phi, phi) == pytest.approx(1.0)

    def test_isolated_vertex_similarity_zero(self):
        net = triangle_net()
        v = net.add_vertex("lonely")
        assert wl_similarity(net, v, 0) == 0.0

    def test_identical_neighbourhoods_score_high(self):
        net = CollaborationNetwork()
        # two 'x' vertices with identical co-author names p, q
        x1 = net.add_vertex("x")
        x2 = net.add_vertex("x")
        for other in ("p", "q"):
            o1 = net.add_vertex(other)
            o2 = net.add_vertex(other)
            net.add_edge(x1, o1, {0})
            net.add_edge(x2, o2, {1})
        assert wl_similarity(net, x1, x2, h=1) == pytest.approx(1.0)

    def test_disjoint_neighbourhoods_score_low(self):
        net = CollaborationNetwork()
        x1 = net.add_vertex("x")
        x2 = net.add_vertex("x")
        p = net.add_vertex("p")
        q = net.add_vertex("q")
        net.add_edge(x1, p, {0})
        net.add_edge(x2, q, {1})
        assert wl_similarity(net, x1, x2, h=1) < 0.5

    def test_h_zero_counts_names_only(self):
        net = triangle_net()
        phi = wl_feature_map(net, 0, h=0)
        assert phi == {}  # radius-0 ball has only the anchor, excluded

    def test_negative_h_rejected(self):
        net = triangle_net()
        with pytest.raises(ValueError):
            wl_feature_map(net, 0, h=-1)
