"""Tests for the synthetic DBLP generator (structure + calibration)."""

import pytest

from repro.data.powerlaw import (
    fit_power_law,
    pair_frequency_distribution,
    papers_per_name_distribution,
)
from repro.data.synthetic import (
    SyntheticConfig,
    SyntheticDBLP,
    ambiguous_names,
    generate_corpus,
    generate_world,
)


class TestConfigValidation:
    def test_name_pool_cap(self):
        with pytest.raises(ValueError, match="name_pool_size"):
            SyntheticConfig(name_pool_size=10**6)

    def test_community_floor(self):
        with pytest.raises(ValueError, match="per community"):
            SyntheticConfig(n_authors=5, n_communities=10)

    def test_year_order(self):
        with pytest.raises(ValueError, match="year_end"):
            SyntheticConfig(year_start=2020, year_end=2020)


class TestWorldStructure:
    def test_every_paper_is_labelled(self, small_corpus):
        assert small_corpus.labelled

    def test_labels_consistent_with_world(self, small_world):
        corpus = small_world.corpus
        for paper in corpus:
            for name, aid in zip(paper.authors, paper.author_ids):
                assert small_world.authors[aid].name == name

    def test_years_within_config(self, small_world):
        cfg = small_world.config
        for paper in small_world.corpus:
            assert cfg.year_start <= paper.year <= cfg.year_end

    def test_deterministic_given_seed(self, small_config):
        c1 = SyntheticDBLP(small_config).generate()
        c2 = SyntheticDBLP(small_config).generate()
        assert len(c1) == len(c2)
        assert all(c1[p.pid] == p for p in c2)

    def test_different_seed_differs(self, small_config, small_corpus):
        import dataclasses

        other_cfg = dataclasses.replace(small_config, seed=99)
        other = SyntheticDBLP(other_cfg).generate()
        assert any(other[p.pid] != p for p in small_corpus if p.pid in other)

    def test_homonyms_exist(self, small_corpus):
        assert len(ambiguous_names(small_corpus)) >= 10

    def test_no_same_paper_homonyms(self, small_corpus):
        for paper in small_corpus:
            assert len(set(paper.authors)) == len(paper.authors)

    def test_community_has_no_internal_homonyms(self, small_world):
        for community in small_world.communities:
            names = [small_world.authors[aid].name for aid in community.members]
            # phase moves can introduce collisions; the home assignment
            # must keep collisions well below random
            assert len(set(names)) >= 0.75 * len(names)

    def test_multi_phase_authors_exist(self, small_world):
        multi = [a for a in small_world.authors.values() if len(a.phases) > 1]
        assert multi, "career phases are the recall structure Stage 2 needs"

    def test_transient_authors_have_single_paper(self, small_world):
        corpus = small_world.corpus
        counts: dict[int, int] = {}
        for paper in corpus:
            for aid in paper.author_ids:
                counts[aid] = counts.get(aid, 0) + 1
        transients = [
            a.aid for a in small_world.authors.values() if a.quota == 0
        ]
        assert transients
        # a transient deduped off a team (name collision) owns 0 papers
        assert all(counts.get(aid, 0) <= 1 for aid in transients)


class TestCalibration:
    """The Figure 3 shape facts the generator must reproduce."""

    @pytest.fixture(scope="class")
    def default_corpus(self):
        return generate_corpus()

    def test_fig3a_power_law(self, default_corpus):
        fit = fit_power_law(
            papers_per_name_distribution(default_corpus), log_binned=True
        )
        assert -3.2 <= fit.slope <= -1.2
        assert fit.r_squared >= 0.85

    def test_fig3b_power_law(self, default_corpus):
        fit = fit_power_law(
            pair_frequency_distribution(default_corpus), log_binned=True
        )
        assert -4.8 <= fit.slope <= -2.2
        assert fit.r_squared >= 0.85

    def test_fig3b_steeper_than_fig3a(self, default_corpus):
        fa = fit_power_law(
            papers_per_name_distribution(default_corpus), log_binned=True
        )
        fb = fit_power_law(
            pair_frequency_distribution(default_corpus), log_binned=True
        )
        assert fb.slope < fa.slope - 0.5


class TestConvenience:
    def test_generate_world_overrides(self):
        world = generate_world(
            n_authors=300, n_papers=400, name_pool_size=400, n_communities=30, seed=3
        )
        assert len(world.corpus) <= 400
        assert world.config.seed == 3

    def test_authors_sharing_name(self, small_world):
        name = next(iter(ambiguous_names(small_world.corpus)))
        sharing = small_world.authors_sharing_name(name)
        assert len(sharing) >= 2
