"""Exact resume parity: fit → save → load in a subprocess → continue.

The acceptance contract of the persistence subsystem (``repro.io``): a
stream that is checkpointed, reloaded in a **fresh process** and
continued produces the *identical* network (vertex ids, ``next_vid``,
mention payloads, edge paper sets, name-index order), assignments,
report counters and cannot-link state as an uninterrupted run — for both
backends (JSONL, SQLite) and for both estimators (``IUAD``,
``ShardedIUAD``).  Model parameters round-trip bit-exactly; assignment
scores match to the batch-engine tolerance (1e-9), the same equivalence
class every other parity suite in this repo pins.
"""

from __future__ import annotations

import copy
import json
import math
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core import IUAD, IUADConfig, ShardedIUAD, StreamingIngestor
from repro.core.candidates import cannot_link_pairs
from repro.data import Corpus, build_testing_dataset
from repro.data.testing import split_for_incremental
from repro.io import Snapshot

REPO_ROOT = Path(__file__).resolve().parents[1]
WORKER = Path(__file__).with_name("_snapshot_worker.py")

BACKENDS = ("jsonl", "sqlite")


# --------------------------------------------------------------------- #
# fixtures: one fitted world per estimator kind, one held-out burst
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def world(small_corpus):
    dataset = build_testing_dataset(small_corpus, n_names=10)
    _base_pids, new_pids = split_for_incremental(dataset, 16)
    new_set = set(new_pids)
    base = Corpus(p for p in small_corpus if p.pid not in new_set)
    burst = [small_corpus[pid] for pid in new_pids]
    return base, burst, dataset.names


@pytest.fixture(scope="module")
def fitted_iuad(world):
    base, _burst, names = world
    return IUAD(IUADConfig()).fit(base, names=names)


@pytest.fixture(scope="module")
def fitted_sharded(world):
    base, _burst, names = world
    return ShardedIUAD(IUADConfig(max_shard_size=300)).fit(base, names=names)


# --------------------------------------------------------------------- #
# comparison helpers
# --------------------------------------------------------------------- #
def exact_state(net):
    """Vertex rows + name index + next_vid exactly; edges as a set.

    Vertex insertion order and name-index order are part of the resume
    contract (candidate enumeration walks them); adjacency-dict order is
    not — every consumer reads edges as sets — so edges compare sorted.
    """
    vertices, edges, name_index, next_vid = net.export_parts()
    return vertices, sorted(edges), name_index, next_vid


def counter_state(report):
    return (
        report.n_papers,
        report.n_mentions,
        report.n_attached,
        report.n_created,
        report.n_duplicates,
        dict(report.per_shard_papers),
    )


def assert_assignments_match(got, expected):
    """``got`` is the worker's JSON; ``expected`` live Assignment lists."""
    assert len(got) == len(expected)
    for got_batch, exp_batch in zip(got, expected):
        assert [(n, p, v, c) for n, p, v, c, _s in got_batch] == [
            (a.name, a.position, a.vid, a.created) for a in exp_batch
        ]
        for (_n, _p, _v, _c, score), assignment in zip(got_batch, exp_batch):
            if math.isnan(assignment.score):
                assert math.isnan(score)
            elif math.isinf(assignment.score):
                assert score == assignment.score
            else:
                assert abs(score - assignment.score) <= 1e-9


def run_resumed_in_subprocess(snapshot_path, papers, mode, tmp_path):
    """Continue a checkpoint in a fresh interpreter; return its outputs."""
    papers_file = tmp_path / "burst.jsonl"
    papers_file.write_text(
        "".join(p.to_json() + "\n" for p in papers), encoding="utf-8"
    )
    snapshot_out = tmp_path / ("final" + snapshot_path.suffix)
    assignments_out = tmp_path / "assignments.json"
    result = subprocess.run(
        [
            sys.executable,
            str(WORKER),
            str(snapshot_path),
            str(papers_file),
            mode,
            str(snapshot_out),
            str(assignments_out),
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONHASHSEED": "0"},
    )
    assert result.returncode == 0, result.stderr
    final = Snapshot.load(snapshot_out)
    assignments = json.loads(assignments_out.read_text(encoding="utf-8"))
    return final, assignments


def assert_resume_parity(fitted, burst, backend, tmp_path, mode="batch"):
    cut = len(burst) // 2

    # The uninterrupted reference: one process, no snapshot boundary.
    # ``expected_tail`` is one assignment list per worker "batch": the
    # whole burst for batch mode, one list per paper for the scalar loop.
    reference = copy.deepcopy(fitted)
    reference_stream = StreamingIngestor(reference)
    if mode == "batch":
        reference_stream.add_papers(burst[:cut])
        expected_tail = reference_stream.add_papers(burst[cut:])
    else:
        for paper in burst[:cut]:
            reference_stream.add_paper(paper)
        expected_tail = [
            reference_stream.add_paper(paper) for paper in burst[cut:]
        ]

    # The interrupted run: ingest half, checkpoint, continue elsewhere.
    interrupted = copy.deepcopy(fitted)
    stream = StreamingIngestor(interrupted)
    if mode == "batch":
        stream.add_papers(burst[:cut])
    else:
        for paper in burst[:cut]:
            stream.add_paper(paper)
    suffix = ".sqlite" if backend == "sqlite" else ".jsonl"
    checkpoint = tmp_path / f"checkpoint{suffix}"
    stream.checkpoint(checkpoint, backend=backend)

    final, assignments = run_resumed_in_subprocess(
        checkpoint, burst[cut:], mode, tmp_path
    )

    assert_assignments_match(assignments, expected_tail)

    # Structural parity: bit-exact ids, payloads, watermark, name order.
    assert exact_state(final.gcn) == exact_state(reference.gcn_)
    assert final.model.state_dict() == reference.model_.state_dict()
    assert sorted(cannot_link_pairs(final.gcn)) == sorted(
        cannot_link_pairs(reference.gcn_)
    )
    assert final.stream is not None
    assert counter_state(final.stream) == counter_state(
        reference_stream.report
    )
    return final, reference, reference_stream


# --------------------------------------------------------------------- #
# the acceptance matrix
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", BACKENDS)
def test_iuad_resume_parity(fitted_iuad, world, backend, tmp_path):
    _base, burst, _names = world
    assert_resume_parity(fitted_iuad, burst, backend, tmp_path)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sharded_resume_parity(fitted_sharded, world, backend, tmp_path):
    _base, burst, _names = world
    final, reference, _stream = assert_resume_parity(
        fitted_sharded, burst, backend, tmp_path
    )
    # The shard-routing state must survive the boundary too: same name
    # ownership, same bridge count, same canonical resolution.
    assert final.sharding is not None
    live = reference.shard_index_
    restored = final.sharding.index
    assert restored._name_to_shard == live._name_to_shard
    assert restored.n_bridges == live.n_bridges
    assert restored.n_shards == live.n_shards
    for name in live._name_to_shard:
        assert restored.shard_of_name(name) == live.shard_of_name(name)


def test_scalar_loop_resume_parity(fitted_iuad, world, tmp_path):
    """The per-paper ``add_paper`` path obeys the same contract."""
    _base, burst, _names = world
    assert_resume_parity(fitted_iuad, burst, "jsonl", tmp_path, mode="scalar")


def test_double_resume_is_stable(fitted_iuad, world, tmp_path):
    """save → load → save round-trips to an identical document."""
    _base, burst, _names = world
    estimator = copy.deepcopy(fitted_iuad)
    StreamingIngestor(estimator).add_papers(burst[:4])
    first = tmp_path / "first.jsonl"
    estimator.save(first)
    second = tmp_path / "second.jsonl"
    IUAD.load(first).save(second)
    assert first.read_text(encoding="utf-8") == second.read_text(
        encoding="utf-8"
    )
