"""Smoke tests for the experiment drivers and reporting (small configs)."""

import pytest

from repro.data.synthetic import SyntheticConfig
from repro.eval.experiments import (
    make_context,
    run_fig3,
    run_fig5,
    run_table2,
    run_table4,
    run_table6,
)
from repro.eval.reporting import (
    render_fig3,
    render_fig5,
    render_metrics_table,
    render_table4,
    render_table6,
)
from repro.eval.metrics import PairwiseCounts

SMALL = SyntheticConfig(
    n_authors=500, n_papers=1200, name_pool_size=700, n_communities=40, seed=11
)


@pytest.fixture(scope="module")
def ctx():
    return make_context(n_names=10, config=SMALL)


class TestDrivers:
    def test_fig3(self, ctx):
        result = run_fig3(ctx.corpus)
        assert result.papers_per_name.slope < 0
        assert result.pair_frequency.slope < 0
        assert "slope" in render_fig3(result)

    def test_table2(self, ctx):
        result = run_table2(ctx.testing)
        assert len(result.rows) == 10
        assert result.total_authors >= 20

    def test_table4(self, ctx):
        result = run_table4(ctx)
        assert result.gcn.recall >= result.scn.recall
        rendered = render_table4(result)
        assert "MicroF" in rendered

    def test_table6(self, ctx):
        rows = run_table6(ctx, stream_sizes=(20,))
        assert rows[0].n_new_papers == 20
        assert rows[0].avg_ms_per_paper > 0
        assert "ms/paper" in render_table6(rows)

    def test_fig5_small(self):
        out = run_fig5(fractions=(0.5, 1.0), n_names=8, config=SMALL)
        assert set(out) == {0.5, 1.0}
        assert "Scale" in render_fig5(out)

    def test_context_scale(self):
        ctx_half = make_context(scale=0.5, n_names=5, config=SMALL)
        assert len(ctx_half.corpus) < SMALL.n_papers


class TestReporting:
    def test_metrics_table(self):
        table = {"A": PairwiseCounts(1, 1, 1, 1), "B": PairwiseCounts(2, 0, 0, 2)}
        text = render_metrics_table(table)
        assert "MicroF" in text and "A" in text and "B" in text
        assert len(text.splitlines()) == 3
