"""Tests for frequent-pattern mining: FP-growth vs the Apriori oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fpm import FPTree, apriori, fpgrowth, frequent_pairs, pair_supports_by_item

PAPER_DB = [
    ("a", "b", "c", "d"),
    ("a", "c", "d"),
    ("a", "b", "c"),
    ("a", "b", "c"),
    ("b", "e"),
    ("b", "e"),
    ("b", "f"),
    ("b", "g"),
]


class TestPaperExample:
    """Figure 2's frequent 2-itemsets, verbatim."""

    def test_pairs_match_figure2(self):
        pairs = frequent_pairs(PAPER_DB, 2)
        assert pairs == {
            ("a", "b"): 3,
            ("a", "c"): 4,
            ("a", "d"): 2,
            ("b", "c"): 3,
            ("b", "e"): 2,
            ("c", "d"): 2,
        }

    def test_fpgrowth_agrees_with_apriori(self):
        assert fpgrowth(PAPER_DB, 2) == apriori(PAPER_DB, 2)

    def test_max_size_truncation(self):
        full = fpgrowth(PAPER_DB, 2)
        pairs_only = fpgrowth(PAPER_DB, 2, max_size=2)
        assert set(pairs_only) == {k for k in full if len(k) <= 2}

    def test_triangle_abc_is_frequent(self):
        triples = {k: v for k, v in fpgrowth(PAPER_DB, 2).items() if len(k) == 3}
        assert triples[("a", "b", "c")] == 3


class TestFPTree:
    def test_empty_tree(self):
        tree = FPTree([], min_support=1)
        assert tree.is_empty

    def test_min_support_validation(self):
        with pytest.raises(ValueError):
            FPTree([("a",)], min_support=0)

    def test_support_of(self):
        tree = FPTree(PAPER_DB, 2)
        assert tree.support_of("b") == 7
        assert tree.support_of("g") == 0  # below threshold

    def test_single_path_detection(self):
        tree = FPTree([("a", "b"), ("a", "b"), ("a",)], 1)
        path = tree.single_path()
        assert path is not None
        assert [item for item, _count in path] == ["a", "b"]

    def test_conditional_tree_counts(self):
        tree = FPTree(PAPER_DB, 2)
        cond = tree.conditional_tree("d")
        # d occurs with {a,c} twice
        assert cond.support_of("a") == 2
        assert cond.support_of("c") == 2

    def test_header_threads_cover_all_nodes(self):
        tree = FPTree(PAPER_DB, 2)
        total = sum(n.count for n in tree.nodes_of("b"))
        assert total == 7


class TestFrequentPairs:
    def test_duplicates_in_transaction_counted_once(self):
        pairs = frequent_pairs([("a", "b", "a")], 1)
        assert pairs == {("a", "b"): 1}

    def test_support_threshold(self):
        assert frequent_pairs(PAPER_DB, 5) == {}
        assert ("a", "c") in frequent_pairs(PAPER_DB, 4)

    def test_adjacency_view(self):
        adj = pair_supports_by_item(frequent_pairs(PAPER_DB, 2))
        assert adj["a"] == {"b": 3, "c": 4, "d": 2}
        assert adj["e"] == {"b": 2}


@st.composite
def transaction_dbs(draw):
    n_items = draw(st.integers(2, 7))
    n_transactions = draw(st.integers(1, 25))
    return [
        tuple(
            draw(
                st.lists(
                    st.integers(0, n_items - 1),
                    min_size=1,
                    max_size=min(5, n_items),
                    unique=True,
                )
            )
        )
        for _ in range(n_transactions)
    ]


class TestProperties:
    @given(db=transaction_dbs(), support=st.integers(1, 5))
    @settings(max_examples=60, deadline=None)
    def test_fpgrowth_equals_apriori(self, db, support):
        assert fpgrowth(db, support) == apriori(db, support)

    @given(db=transaction_dbs(), support=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_support_antimonotone(self, db, support):
        """Every subset of a frequent itemset is at least as frequent."""
        frequent = fpgrowth(db, support)
        for itemset, count in frequent.items():
            for drop in range(len(itemset)):
                subset = tuple(
                    sorted(
                        (x for i, x in enumerate(itemset) if i != drop),
                        key=repr,
                    )
                )
                if subset:
                    assert frequent[subset] >= count

    @given(db=transaction_dbs())
    @settings(max_examples=40, deadline=None)
    def test_pairs_agree_with_general_miner(self, db):
        pairs = frequent_pairs(db, 2)
        general = {
            k: v for k, v in fpgrowth(db, 2, max_size=2).items() if len(k) == 2
        }
        assert pairs == general

    @given(db=transaction_dbs(), support=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_supports_are_true_counts(self, db, support):
        frequent = fpgrowth(db, support)
        for itemset, count in frequent.items():
            actual = sum(1 for t in db if set(itemset) <= set(t))
            assert actual == count
