"""Tests for the eight baseline re-implementations."""

import numpy as np
import pytest

from repro.baselines import (
    ANON,
    Aminer,
    GHOST,
    NetE,
    PaperView,
    SupervisedPairwise,
    pair_features,
    predict_all,
    predict_all_mentions,
    training_pairs_from_names,
    views_of_name,
)
from repro.baselines.ghost import coauthor_graph, path_similarity_matrix
from repro.data import build_testing_dataset
from repro.data.synthetic import ambiguous_names
from repro.data.testing import per_name_truth
from repro.eval import micro_metrics

UNSUPERVISED = [ANON, NetE, Aminer, GHOST]


class TestPaperView:
    def test_excludes_target_name(self, labelled_corpus):
        views = views_of_name(labelled_corpus, "X Y")
        assert len(views) == 8
        for view in views:
            assert "X Y" not in view.coauthors

    def test_pair_features_shape(self, labelled_corpus):
        views = views_of_name(labelled_corpus, "X Y")
        f = pair_features(views[0], views[1], labelled_corpus.venue_frequencies)
        assert f.shape == (10,)
        assert np.all(np.isfinite(f))

    def test_pair_features_symmetry(self, labelled_corpus):
        views = views_of_name(labelled_corpus, "X Y")
        vf = labelled_corpus.venue_frequencies
        np.testing.assert_allclose(
            pair_features(views[0], views[1], vf),
            pair_features(views[1], views[0], vf),
        )


class TestUnsupervisedBaselines:
    @pytest.mark.parametrize("factory", UNSUPERVISED)
    def test_clusters_cover_all_papers(self, factory, labelled_corpus):
        clusters = factory().cluster_name(labelled_corpus, "X Y")
        covered = set().union(*clusters.values()) if clusters else set()
        assert covered == set(labelled_corpus.papers_of_name("X Y"))

    @pytest.mark.parametrize("factory", UNSUPERVISED)
    def test_unknown_name_empty(self, factory, labelled_corpus):
        assert factory().cluster_name(labelled_corpus, "Nobody") == {}

    @pytest.mark.parametrize("factory", UNSUPERVISED)
    def test_single_paper_name(self, factory, small_corpus):
        name = next(
            n for n in small_corpus.names if len(small_corpus.papers_of_name(n)) == 1
        )
        clusters = factory().cluster_name(small_corpus, name)
        assert len(clusters) == 1

    def test_separable_homonym_split(self, labelled_corpus):
        """The labelled fixture has two cleanly separated authors — every
        coauthor-aware baseline must produce at least two clusters."""
        for factory in (ANON, NetE, GHOST):
            clusters = factory().cluster_name(labelled_corpus, "X Y")
            assert len(clusters) >= 2, factory.__name__

    def test_ghost_path_similarity(self, labelled_corpus):
        views = views_of_name(labelled_corpus, "X Y")
        S = path_similarity_matrix(views)
        assert S.shape == (8, 8)
        # papers 0,1 share coauthor 'P A' -> strong; papers 0,4 cross-author
        assert S[0, 1] > S[0, 4]

    def test_ghost_coauthor_graph(self, labelled_corpus):
        adj = coauthor_graph(views_of_name(labelled_corpus, "X Y"))
        assert "Q B" in adj["P A"]  # co-signed paper 3
        assert "R C" not in adj["P A"]


class TestSupervised:
    @pytest.fixture(scope="class")
    def trained(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=8)
        train_names = [
            n for n in ambiguous_names(small_corpus) if n not in set(td.names)
        ][:20]
        model = SupervisedPairwise("rf", seed=1).fit_names(small_corpus, train_names)
        return model, td

    def test_training_pairs_labelled(self, small_corpus):
        names = ambiguous_names(small_corpus)[:5]
        X, y = training_pairs_from_names(small_corpus, names)
        assert X.shape[1] == 10
        assert set(np.unique(y)) <= {0, 1}

    def test_requires_fit(self, small_corpus):
        with pytest.raises(RuntimeError):
            SupervisedPairwise("rf").cluster_name(small_corpus, "x")

    def test_unknown_kind(self):
        from repro.baselines import make_classifier

        with pytest.raises(ValueError):
            make_classifier("svm")

    def test_clusters_cover_papers(self, trained, small_corpus):
        model, td = trained
        name = td.names[0]
        clusters = model.cluster_name(small_corpus, name)
        covered = set().union(*clusters.values())
        assert covered == set(small_corpus.papers_of_name(name))

    def test_beats_random_on_testing_names(self, trained, small_corpus):
        model, td = trained
        truth = per_name_truth(td)
        m = micro_metrics(
            predict_all_mentions(model, small_corpus, td.names), truth
        )
        assert m.f1 > 0.4


class TestPredictAll:
    def test_runs_over_names(self, labelled_corpus):
        out = predict_all(ANON(), labelled_corpus, ["X Y"])
        assert set(out) == {"X Y"}
