"""Tests for the six similarity functions and the profile computer."""

import numpy as np
import pytest
from collections import Counter
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.records import Corpus, Paper
from repro.graphs import build_scn
from repro.graphs.collab import CollaborationNetwork
from repro.similarity import (
    N_SIMILARITIES,
    SIMILARITY_NAMES,
    SimilarityComputer,
    clique_coincidence,
    interest_cosine,
    min_year_difference,
    representative_community_similarity,
    research_community_similarity,
    time_consistency,
)


class TestCliqueCoincidence:
    def test_overlap(self):
        l1 = {frozenset({"p", "q"}), frozenset({"p", "r"})}
        l2 = {frozenset({"p", "q"})}
        assert clique_coincidence(l1, l2, tau=2) == 0.5

    def test_disjoint_is_zero(self):
        assert clique_coincidence({frozenset({"a", "b"})}, set(), 1) == 0.0

    def test_tau_validation(self):
        with pytest.raises(ValueError):
            clique_coincidence(set(), set(), 0)


class TestInterestCosine:
    def test_identical(self):
        kw = Counter({"query": 2, "index": 1})
        assert interest_cosine(kw, kw) == pytest.approx(1.0)

    def test_disjoint(self):
        assert interest_cosine(Counter({"a": 1}), Counter({"b": 1})) == 0.0

    def test_empty(self):
        assert interest_cosine(Counter(), Counter({"a": 1})) == 0.0


class TestMinYearDifference:
    def test_overlapping_windows(self):
        assert min_year_difference((2000, 2005), (2003, 2008)) == 0

    def test_disjoint_windows(self):
        assert min_year_difference((2000, 2002), (2006, 2008)) == 4
        assert min_year_difference((2006, 2008), (2000, 2002)) == 4

    @given(
        a=st.tuples(st.integers(1990, 2020), st.integers(0, 10)),
        b=st.tuples(st.integers(1990, 2020), st.integers(0, 10)),
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_nonnegative(self, a, b):
        ra = (a[0], a[0] + a[1])
        rb = (b[0], b[0] + b[1])
        assert min_year_difference(ra, rb) == min_year_difference(rb, ra) >= 0


class TestTimeConsistency:
    def test_rare_shared_word_scores_higher(self):
        rare = time_consistency(
            {"obscure": (2000, 2000)},
            {"obscure": (2000, 2000)},
            {"obscure": 2},
            tau=1,
        )
        common = time_consistency(
            {"popular": (2000, 2000)},
            {"popular": (2000, 2000)},
            {"popular": 500},
            tau=1,
        )
        assert rare > common > 0

    def test_year_gap_decays(self):
        near = time_consistency(
            {"w": (2000, 2000)}, {"w": (2001, 2001)}, {"w": 10}, tau=1
        )
        far = time_consistency(
            {"w": (2000, 2000)}, {"w": (2010, 2010)}, {"w": 10}, tau=1
        )
        assert near > far

    def test_validations(self):
        with pytest.raises(ValueError):
            time_consistency({}, {}, {}, tau=0)
        with pytest.raises(ValueError):
            time_consistency({}, {}, {}, tau=1, alpha=-1.0)


class TestCommunitySimilarities:
    def test_representative_cross_counts(self):
        hu = Counter({"VLDB": 3, "KDD": 1})
        hv = Counter({"VLDB": 2})
        got = representative_community_similarity(hu, hv, "VLDB", "VLDB", tau=2)
        assert got == (2 + 3) / 2

    def test_representative_handles_none(self):
        assert (
            representative_community_similarity(Counter(), Counter(), None, None, 1)
            == 0.0
        )

    def test_research_community_emphasises_rare_venues(self):
        rare = research_community_similarity(
            Counter({"W": 1}), Counter({"W": 1}), {"W": 3}, tau=1
        )
        common = research_community_similarity(
            Counter({"V": 1}), Counter({"V": 1}), {"V": 300}, tau=1
        )
        assert rare > common > 0

    def test_research_community_multiset_multiplicity(self):
        one = research_community_similarity(
            Counter({"V": 1}), Counter({"V": 5}), {"V": 10}, tau=1
        )
        three = research_community_similarity(
            Counter({"V": 3}), Counter({"V": 5}), {"V": 10}, tau=1
        )
        assert three == pytest.approx(3 * one)


class TestSimilarityComputer:
    @pytest.fixture()
    def setup(self, labelled_corpus):
        net, _ = build_scn(labelled_corpus, eta=2)
        computer = SimilarityComputer(net, labelled_corpus)
        return net, computer

    def test_vector_shape_and_names(self, setup):
        net, computer = setup
        x_vertices = net.vertices_of_name("X Y")
        assert len(x_vertices) >= 2
        gamma = computer.similarity_vector(x_vertices[0], x_vertices[1])
        assert gamma.shape == (N_SIMILARITIES,)
        assert len(SIMILARITY_NAMES) == N_SIMILARITIES

    def test_symmetry(self, setup):
        net, computer = setup
        u, v = net.vertices_of_name("X Y")[:2]
        np.testing.assert_allclose(
            computer.similarity_vector(u, v), computer.similarity_vector(v, u)
        )

    def test_nonnegative_except_cosine(self, setup):
        net, computer = setup
        u, v = net.vertices_of_name("X Y")[:2]
        gamma = computer.similarity_vector(u, v)
        for i in (0, 1, 3, 4, 5):
            assert gamma[i] >= 0.0
        assert -1.0 <= gamma[2] <= 1.0

    def test_same_author_vertices_more_similar(self, labelled_corpus):
        """The two VLDB-vertices (same author split) must beat a
        VLDB-vs-CVPR (different authors) pair on content features."""
        net, _ = build_scn(labelled_corpus, eta=2)
        computer = SimilarityComputer(net, labelled_corpus)
        by_venue = {}
        for vid in net.vertices_of_name("X Y"):
            pids = net.papers_of(vid)
            venue = labelled_corpus[next(iter(pids))].venue
            by_venue.setdefault(venue, []).append(vid)
        if len(by_venue.get("VLDB", [])) >= 2:
            u, v = by_venue["VLDB"][:2]
            w = by_venue["CVPR"][0]
            same = computer.similarity_vector(u, v)
            cross = computer.similarity_vector(u, w)
            assert same[4] + same[5] > cross[4] + cross[5]

    def test_pair_matrix(self, setup):
        net, computer = setup
        vs = net.vertices_of_name("X Y")
        pairs = [(vs[0], vs[1])]
        M = computer.pair_matrix(pairs)
        assert M.shape == (1, N_SIMILARITIES)

    def test_invalidate_reaches_wl_radius(self):
        """Regression: invalidation must extend to ``wl_iterations`` hops.

        Topology x–w, w–u, w–v puts u and v two hops from x, so a new edge
        u–v lies inside x's radius-2 WL ball.  A 1-hop-only invalidation
        (the old behaviour) left x serving its stale γ1 feature map.
        """
        corpus = Corpus(
            Paper(pid, ("A",), f"paper {pid} topic", "V", 2000 + pid)
            for pid in range(4)
        )
        net = CollaborationNetwork()
        x = net.add_vertex("X", papers=(0,))
        w = net.add_vertex("W", papers=(0, 1, 2))
        u = net.add_vertex("U", papers=(1, 3))
        v = net.add_vertex("V", papers=(2, 3))
        net.add_edge(x, w, (0,))
        net.add_edge(w, u, (1,))
        net.add_edge(w, v, (2,))
        computer = SimilarityComputer(net, corpus)
        stale = computer.profile(x).wl_features.copy()
        assert computer.is_cached(x)

        net.add_edge(u, v, (3,))  # the incremental-mode edge insertion
        computer.invalidate(u)
        computer.invalidate(v)
        assert not computer.is_cached(x), "2-hop neighbour kept a stale cache"
        fresh = computer.profile(x).wl_features
        assert fresh != stale, "recomputed WL features should see the edge"

    def test_invalidate_refreshes_profile(self, setup):
        net, computer = setup
        vid = net.vertices_of_name("X Y")[0]
        before = computer.profile(vid).n_papers
        net.add_papers(vid, {999_999})
        computer.invalidate(vid)
        # profile rebuild must not crash on a paper id missing from the
        # corpus? -> it should: vertices only ever hold corpus papers.
        net.set_papers(vid, set(p for p in net.papers_of(vid) if p != 999_999))
        computer.invalidate(vid)
        assert computer.profile(vid).n_papers == before
