"""Unit tests for the record model (Paper, Corpus, CorpusStats)."""

import pytest

from repro.data.records import Corpus, CorpusStats, Mention, Paper


def make_paper(pid=0, authors=("A", "B"), ids=None):
    return Paper(
        pid=pid,
        authors=tuple(authors),
        title="a title",
        venue="V",
        year=2000,
        author_ids=ids,
    )


class TestPaper:
    def test_accepts_duplicate_names_as_homonyms(self):
        # Two homonymous co-authors on one paper are representable; the
        # incremental disambiguator is responsible for keeping them apart.
        paper = make_paper(authors=("A", "A"), ids=(1, 2))
        assert paper.authors == ("A", "A")

    def test_rejects_duplicate_author_ids(self):
        with pytest.raises(ValueError, match="duplicate author ids"):
            make_paper(authors=("A", "A"), ids=(1, 1))

    def test_rejects_mismatched_label_length(self):
        with pytest.raises(ValueError, match="author_ids length"):
            make_paper(ids=(1,))

    def test_labelled_flag(self):
        assert not make_paper().labelled
        assert make_paper(ids=(1, 2)).labelled

    def test_author_id_of(self):
        paper = make_paper(ids=(7, 9))
        assert paper.author_id_of("A") == 7
        assert paper.author_id_of("B") == 9

    def test_author_id_of_duplicated_name_raises(self):
        # A twice-listed name cannot be resolved by name — silently
        # returning the first twin's id would corrupt evaluation.
        paper = make_paper(authors=("A", "A"), ids=(1, 2))
        with pytest.raises(ValueError, match="more than once"):
            paper.author_id_of("A")

    def test_author_ids_of_returns_all_twins(self):
        paper = make_paper(authors=("A", "A"), ids=(1, 2))
        assert paper.author_ids_of("A") == (1, 2)
        assert paper.author_ids_of("missing") == ()

    def test_true_author_of_handles_homonym_papers(self):
        paper = make_paper(authors=("A", "A"), ids=(1, 2))
        corpus = Corpus([paper])
        mentions = list(corpus.mentions())
        # Mention identity is positional: each occurrence resolves to its
        # own ground-truth author.
        assert [corpus.true_author_of(m) for m in mentions] == [1, 2]

    def test_true_author_of_rejects_mismatched_mention(self):
        paper = make_paper(ids=(7, 9))
        corpus = Corpus([paper])
        with pytest.raises(ValueError, match="no mention"):
            corpus.true_author_of(Mention(0, "A", 1))  # position 1 is "B"
        with pytest.raises(ValueError, match="no mention"):
            corpus.true_author_of(Mention(0, "A", 5))

    def test_positions_of_and_author_id_at(self):
        paper = make_paper(authors=("A", "B", "A"), ids=(1, 2, 3))
        assert paper.positions_of("A") == (0, 2)
        assert paper.positions_of("B") == (1,)
        assert paper.positions_of("missing") == ()
        assert [paper.author_id_at(p) for p in paper.positions_of("A")] == [1, 3]
        with pytest.raises(ValueError, match="out of range"):
            paper.author_id_at(3)

    def test_paper_mentions_are_positional(self):
        paper = make_paper(authors=("A", "A"))
        assert list(paper.mentions()) == [
            Mention(0, "A", 0),
            Mention(0, "A", 1),
        ]

    def test_author_id_of_unlabelled_raises(self):
        with pytest.raises(ValueError, match="no ground-truth"):
            make_paper().author_id_of("A")

    def test_json_roundtrip(self):
        paper = make_paper(ids=(1, 2))
        assert Paper.from_json(paper.to_json()) == paper

    def test_json_roundtrip_unlabelled(self):
        paper = make_paper()
        restored = Paper.from_json(paper.to_json())
        assert restored == paper
        assert restored.author_ids is None


class TestCorpus:
    def test_indexes(self):
        corpus = Corpus([make_paper(0), make_paper(1, authors=("A", "C"))])
        assert len(corpus) == 2
        assert sorted(corpus.names) == ["A", "B", "C"]
        assert corpus.papers_of_name("A") == [0, 1]
        assert corpus.name_frequency("A") == 2
        assert corpus.name_frequency("missing") == 0
        assert corpus.venue_frequency("V") == 2
        assert corpus.num_author_paper_pairs == 4

    def test_rejects_duplicate_pids(self):
        with pytest.raises(ValueError, match="duplicate paper id"):
            Corpus([make_paper(0), make_paper(0)])

    def test_contains_and_getitem(self):
        corpus = Corpus([make_paper(3)])
        assert 3 in corpus
        assert 4 not in corpus
        assert corpus[3].pid == 3

    def test_transactions_and_mentions(self):
        corpus = Corpus([make_paper(0)])
        assert list(corpus.transactions()) == [("A", "B")]
        assert list(corpus.mentions()) == [Mention(0, "A", 0), Mention(0, "B", 1)]

    def test_subset_fraction(self, small_corpus):
        half = small_corpus.subset(0.5, seed=1)
        assert 0 < len(half) < len(small_corpus)
        assert all(p.pid in small_corpus for p in half)

    def test_subset_full_is_identity(self, small_corpus):
        assert small_corpus.subset(1.0) is small_corpus

    def test_subset_validates(self, small_corpus):
        with pytest.raises(ValueError):
            small_corpus.subset(0.0)
        with pytest.raises(ValueError):
            small_corpus.subset(1.5)

    def test_restrict_to_years(self):
        a = make_paper(0)
        b = Paper(1, ("A",), "t", "V", 2010)
        corpus = Corpus([a, b]).restrict_to_years(2005)
        assert len(corpus) == 1 and 0 in corpus

    def test_filter(self, small_corpus):
        sub = small_corpus.filter(lambda p: p.year >= 2010)
        assert all(p.year >= 2010 for p in sub)

    def test_add_updates_indexes(self):
        corpus = Corpus([make_paper(0)])
        corpus.add(Paper(1, ("A", "Z"), "t", "W", 2001))
        assert corpus.papers_of_name("Z") == [1]
        assert corpus.papers_of_name("A") == [0, 1]
        assert corpus.venue_frequency("W") == 1

    def test_add_rejects_duplicates(self):
        corpus = Corpus([make_paper(0)])
        with pytest.raises(ValueError):
            corpus.add(make_paper(0))

    def test_truth_helpers(self, labelled_corpus):
        assert labelled_corpus.labelled
        assert labelled_corpus.authors_of_name("X Y") == {100, 200}

    def test_jsonl_roundtrip(self, tmp_path, labelled_corpus):
        path = str(tmp_path / "corpus.jsonl")
        labelled_corpus.save_jsonl(path)
        restored = Corpus.load_jsonl(path)
        assert len(restored) == len(labelled_corpus)
        assert restored[0] == labelled_corpus[0]


class TestCorpusStats:
    def test_of_labelled(self, labelled_corpus):
        stats = CorpusStats.of(labelled_corpus)
        assert stats.num_papers == 8
        assert stats.num_true_authors == 6
        assert stats.year_range == (2001, 2005)
        assert stats.num_venues == 2

    def test_of_unlabelled(self, figure2_corpus):
        stats = CorpusStats.of(figure2_corpus)
        assert stats.num_true_authors is None
        assert stats.num_names == 7
