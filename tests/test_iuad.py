"""Integration tests for the full IUAD pipeline (Algorithm 1)."""

import pytest

from repro.core import IUAD, IUADConfig, disambiguate
from repro.core.balance import split_prolific_vertices
from repro.core.candidates import candidate_pairs_of_name, sample_training_pairs
from repro.data import build_testing_dataset
from repro.data.testing import per_name_truth
from repro.eval import micro_metrics
from repro.graphs import build_scn


@pytest.fixture(scope="module")
def fitted(small_corpus):
    td = build_testing_dataset(small_corpus, n_names=15)
    iuad = IUAD(IUADConfig()).fit(small_corpus, names=td.names)
    return iuad, td


class TestFit:
    def test_report_populated(self, fitted):
        iuad, _td = fitted
        report = iuad.report_
        assert report is not None
        assert report.scn.n_vertices == len(iuad.scn_)
        assert report.gcn_vertices == len(iuad.gcn_)
        assert report.gcn_vertices <= report.scn.n_vertices
        assert report.stage1_seconds > 0 and report.stage2_seconds > 0

    def test_gcn_never_merges_across_names(self, fitted):
        iuad, _td = fitted
        for vertex in iuad.gcn_:
            for pid in vertex.papers:
                assert vertex.name in iuad.corpus_[pid].authors

    def test_stage2_improves_recall_at_small_precision_cost(self, fitted):
        """The Table IV shape: recall jumps, precision holds (mostly)."""
        iuad, td = fitted
        truth = per_name_truth(td)
        scn_m = micro_metrics(
            {n: iuad.scn_mention_clusters_of_name(n) for n in td.names}, truth
        )
        gcn_m = micro_metrics(
            {n: iuad.mention_clusters_of_name(n) for n in td.names}, truth
        )
        assert gcn_m.recall >= scn_m.recall
        assert gcn_m.f1 >= scn_m.f1
        assert scn_m.precision >= 0.75

    def test_unfitted_accessors_raise(self):
        iuad = IUAD()
        with pytest.raises(RuntimeError):
            iuad.clusters_of_name("x")
        with pytest.raises(RuntimeError):
            iuad.scn_clusters_of_name("x")

    def test_disambiguate_convenience(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=3)
        iuad = disambiguate(small_corpus, names=td.names)
        assert iuad.gcn_ is not None

    def test_candidate_pairs_not_double_counted(self, small_corpus):
        """Regression: ``n_candidate_pairs`` once re-accumulated every
        round's pairs; it must report the unique first-round candidates,
        with later rounds visible only in the per-round breakdown."""
        # δ = 0 guarantees round-1 merges, so a second round actually
        # re-scores pairs (the situation the old counter inflated).
        permissive = IUADConfig(merge_rounds=3, delta=0.0, later_delta=0.0)
        one = IUAD(IUADConfig(merge_rounds=1, delta=0.0)).fit(small_corpus)
        three = IUAD(permissive).fit(small_corpus)
        r1, r3 = one.report_, three.report_
        assert r3.n_candidate_pairs == r1.n_candidate_pairs
        assert r3.per_round_candidate_pairs[0] == r3.n_candidate_pairs
        assert len(r3.per_round_candidate_pairs) >= 2
        # Merged networks can only shrink the candidate set; the old code
        # reported the (larger) multi-round sum.
        assert all(
            later <= r3.n_candidate_pairs
            for later in r3.per_round_candidate_pairs[1:]
        )
        assert len(r3.per_round_merges) == len(r3.per_round_candidate_pairs)
        assert sum(r3.per_round_merges) == r3.n_merges

    def test_fit_reuses_one_similarity_computer(self, small_corpus, monkeypatch):
        """The profile store must persist across merge rounds: one computer
        for the whole decision stage (plus the one-off split-balance
        trainer), not a rebuild per round."""
        import repro.core.iuad as iuad_module
        from repro.similarity.profile import SimilarityComputer

        constructed = []
        original = SimilarityComputer.__init__

        def counting_init(self, *args, **kwargs):
            constructed.append(1)
            original(self, *args, **kwargs)

        monkeypatch.setattr(SimilarityComputer, "__init__", counting_init)
        td = build_testing_dataset(small_corpus, n_names=5)
        iuad = iuad_module.IUAD(IUADConfig(merge_rounds=3)).fit(
            small_corpus, names=td.names
        )
        assert len(constructed) <= 2
        assert iuad.computer_ is not None
        assert iuad.computer_.net is iuad.gcn_

    def test_fit_handles_duplicate_name_papers(self, small_corpus):
        """A corpus containing a homonymous co-author pair (same name twice
        on one paper) must fit cleanly: Stage 1 assigns mentions per
        occurrence, and the cannot-link constraint keeps same-name vertices
        sharing a paper unmerged."""
        from repro.data.records import Corpus, Paper

        extra = Paper(
            pid=10**6,
            authors=("Zz Twin", "Zz Twin", "Other Person"),
            title="homonymous coauthors on one paper",
            venue="DUP-V",
            year=2015,
        )
        corpus = Corpus(list(small_corpus) + [extra])
        # δ = 0 is merge-happy: without the cannot-link guard, the two
        # twin vertices (near-identical one-paper profiles) would merge.
        iuad = IUAD(IUADConfig(merge_rounds=1, delta=0.0)).fit(corpus)
        owners = [
            vid
            for vid in iuad.gcn_.vertices_of_name("Zz Twin")
            if extra.pid in iuad.gcn_.papers_of(vid)
        ]
        # Two homonymous co-authors stay two vertices...
        assert len(owners) == 2
        u, v = owners
        # ...whose collaboration (this very paper) is still an edge, for
        # both twins (relation recovery must not drop one of them).
        assert iuad.gcn_.has_edge(u, v)
        other = next(
            vid
            for vid in iuad.gcn_.vertices_of_name("Other Person")
            if extra.pid in iuad.gcn_.papers_of(vid)
        )
        assert iuad.gcn_.has_edge(u, other)
        assert iuad.gcn_.has_edge(v, other)

    def test_reports_count_mentions_per_occurrence(self, small_corpus):
        """Satellite: SCNBuildReport / FitReport mention totals must match
        the per-occurrence model on a corpus with a homonym paper."""
        from repro.data.records import Corpus, Paper

        extra = Paper(
            pid=10**6,
            authors=("Zz Twin", "Zz Twin", "Other Person"),
            title="homonymous coauthors counted twice",
            venue="DUP-V",
            year=2015,
        )
        corpus = Corpus(list(small_corpus) + [extra])
        iuad = IUAD(IUADConfig(merge_rounds=1)).fit(corpus)
        report = iuad.report_
        # One mention per occurrence: the duplicated name contributes two.
        expected = corpus.num_author_paper_pairs
        assert expected == small_corpus.num_author_paper_pairs + 3
        assert report.scn.n_mentions == expected
        assert report.gcn_mentions == expected
        assert report.gcn_mentions == iuad.gcn_.n_mentions
        assert report.gcn_mentions == sum(
            len(v.mentions) for v in iuad.gcn_
        )

    def test_cannot_link_guard_is_transitive(self, small_corpus):
        """Regression: the guard must hold at *component* level.  With a
        third same-name vertex x, union(t1, x) then union(t2, x) would
        chain the twins into one component even though the (t1, t2) pair
        itself was skipped."""
        from repro.data.records import Corpus, Paper

        twin_paper = Paper(
            pid=10**6,
            authors=("Zz Twin", "Zz Twin"),
            title="joint homonym paper graphs",
            venue="DUP-V",
            year=2015,
        )
        solo_paper = Paper(
            pid=10**6 + 1,
            authors=("Zz Twin",),
            title="solo homonym paper graphs",
            venue="DUP-V",
            year=2016,
        )
        corpus = Corpus(list(small_corpus) + [twin_paper, solo_paper])
        iuad = IUAD(IUADConfig(merge_rounds=1, delta=0.0)).fit(corpus)
        owners = [
            vid
            for vid in iuad.gcn_.vertices_of_name("Zz Twin")
            if twin_paper.pid in iuad.gcn_.papers_of(vid)
        ]
        # However the solo vertex chains, the two co-authors of the twin
        # paper must remain two distinct vertices.
        assert len(owners) == 2

    def test_merge_rounds_one_is_weaker(self, small_corpus):
        td = build_testing_dataset(small_corpus, n_names=10)
        truth = per_name_truth(td)
        one = IUAD(IUADConfig(merge_rounds=1)).fit(small_corpus, names=td.names)
        two = IUAD(IUADConfig(merge_rounds=2)).fit(small_corpus, names=td.names)
        r1 = micro_metrics(
            {n: one.mention_clusters_of_name(n) for n in td.names}, truth
        ).recall
        r2 = micro_metrics(
            {n: two.mention_clusters_of_name(n) for n in td.names}, truth
        ).recall
        assert r2 >= r1


class TestCandidates:
    def test_pairs_of_name(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        name = next(n for n in net.names if len(net.vertices_of_name(n)) >= 3)
        pairs = candidate_pairs_of_name(net, name)
        k = len(net.vertices_of_name(name))
        assert len(pairs) == k * (k - 1) // 2
        assert all(u < v for u, v in pairs)

    def test_sampling_respects_floor(self):
        pairs = [(i, i + 1) for i in range(100)]
        sampled = sample_training_pairs(pairs, 0.1, min_pairs=30, seed=0)
        assert len(sampled) == 30

    def test_sampling_rate(self):
        pairs = [(i, i + 1) for i in range(1000)]
        sampled = sample_training_pairs(pairs, 0.1, min_pairs=1, seed=0)
        assert len(sampled) == 100

    def test_sampling_all_when_few(self):
        pairs = [(0, 1)]
        assert sample_training_pairs(pairs, 0.1, min_pairs=10, seed=0) == pairs

    def test_sampling_validation(self):
        with pytest.raises(ValueError):
            sample_training_pairs([], 0.0, 1, 0)


class TestBalanceSplit:
    def test_split_preserves_papers(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        result = split_prolific_vertices(net, min_papers=4, max_vertices=20, seed=1)
        for vid, halves in result.mapping.items():
            original = net.papers_of(vid)
            combined = set()
            for half in halves:
                combined |= result.network.papers_of(half)
            assert combined == original

    def test_split_halves_share_name_and_are_disconnected(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        result = split_prolific_vertices(net, min_papers=4, max_vertices=20, seed=1)
        assert result.matched_pairs
        for u, v in result.matched_pairs:
            assert result.network.name_of(u) == result.network.name_of(v)
            assert not result.network.has_edge(u, v)
            assert result.network.papers_of(u)
            assert result.network.papers_of(v)

    def test_max_vertices_cap(self, small_corpus):
        net, _ = build_scn(small_corpus, eta=2)
        result = split_prolific_vertices(net, min_papers=4, max_vertices=5, seed=1)
        assert len(result.matched_pairs) <= 5


class TestConfigValidation:
    def test_eta(self):
        with pytest.raises(ValueError):
            IUADConfig(eta=0)

    def test_sample_rate(self):
        with pytest.raises(ValueError):
            IUADConfig(sample_rate=0.0)

    def test_families_width(self):
        with pytest.raises(ValueError):
            IUADConfig(families=("gaussian",))

    def test_split_min(self):
        with pytest.raises(ValueError):
            IUADConfig(split_min_papers=1)
