"""Shard-vs-global parity: the pinning suite of the sharded executor.

The contract of :class:`repro.core.sharding.ShardedIUAD` is that sharding
is an *execution strategy*, not a model change: on the paper's Algorithm 1
(``merge_rounds == 1``) the sharded fit — serial or under a process pool —
produces mention clusterings identical to the whole-corpus
:meth:`IUAD.fit`, and identical across repeated runs regardless of pool
scheduling.  These tests pin that contract on a synthetic duplicate-name
corpus, plus the partition/stitch building blocks around it.
"""

from __future__ import annotations

import pytest

from repro.core import IUAD, IUADConfig, IncrementalDisambiguator, ShardedIUAD
from repro.core.sharding import ShardIndex, plan_shards
from repro.data.records import Corpus, Paper
from repro.data.synthetic import ambiguous_names
from repro.graphs import CollaborationNetwork, combine_networks


def mention_clusterings(est, names):
    """Id-free view of the predicted partitions: name -> sorted clusters."""
    return {
        name: sorted(
            sorted(units)
            for units in est.mention_clusters_of_name(name).values()
        )
        for name in names
    }


@pytest.fixture(scope="module")
def reference(small_corpus):
    """Whole-corpus single-process fit — the parity baseline."""
    iuad = IUAD(IUADConfig()).fit(small_corpus)
    return mention_clusterings(iuad, small_corpus.names)


class TestShardVsGlobalParity:
    def test_corpus_is_genuinely_ambiguous(self, small_corpus):
        # The parity claim is only interesting on a corpus where many
        # names are shared by several authors (duplicate names).
        assert len(ambiguous_names(small_corpus)) >= 20

    def test_serial_sharded_fit_matches_global_fit(
        self, small_corpus, reference
    ):
        sharded = ShardedIUAD(IUADConfig(n_workers=0)).fit(small_corpus)
        assert mention_clusterings(sharded, small_corpus.names) == reference

    def test_process_pool_fit_matches_global_fit(
        self, small_corpus, reference
    ):
        sharded = ShardedIUAD(IUADConfig(n_workers=2)).fit(small_corpus)
        assert mention_clusterings(sharded, small_corpus.names) == reference

    def test_split_blocks_still_match_global_fit(
        self, small_corpus, reference
    ):
        # A tiny shard budget forces the giant name block to be split and
        # packs many shards — decisions must not change.
        sharded = ShardedIUAD(
            IUADConfig(n_workers=0, max_shard_size=300)
        ).fit(small_corpus)
        assert sharded.report_.n_shards > 3
        assert mention_clusterings(sharded, small_corpus.names) == reference

    def test_pool_runs_are_deterministic(self, small_corpus):
        a = ShardedIUAD(IUADConfig(n_workers=2, max_shard_size=300)).fit(
            small_corpus
        )
        b = ShardedIUAD(IUADConfig(n_workers=2, max_shard_size=300)).fit(
            small_corpus
        )
        names = small_corpus.names
        assert mention_clusterings(a, names) == mention_clusterings(b, names)
        assert a.report_.n_merges == b.report_.n_merges

    def test_decision_name_restriction_matches_global(self, small_corpus):
        names = ambiguous_names(small_corpus)[:10]
        base = IUAD(IUADConfig()).fit(small_corpus, names=names)
        sharded = ShardedIUAD(IUADConfig()).fit(small_corpus, names=names)
        assert mention_clusterings(sharded, names) == mention_clusterings(
            base, names
        )

    def test_spawn_pool_fit_matches_global_fit(self, small_corpus, reference):
        # Pinned start method: workers receive the context pickled through
        # the pool initializer instead of fork's copy-on-write, and the
        # model through the shared-memory broadcast — the shipping path a
        # host application forcing "spawn" would get.
        sharded = ShardedIUAD(
            IUADConfig(n_workers=2, mp_start_method="spawn")
        ).fit(small_corpus)
        assert mention_clusterings(sharded, small_corpus.names) == reference

    def test_gamma_chunk_size_does_not_change_decisions(
        self, small_corpus, reference
    ):
        # Chunk granularity is a scheduling knob, not a model knob: a
        # tiny chunk budget (many Phase-A tasks, maximum pipelining
        # surface) must reproduce the same clusterings.
        sharded = ShardedIUAD(
            IUADConfig(n_workers=0, gamma_chunk_pairs=64)
        ).fit(small_corpus)
        assert sharded.report_.n_gamma_chunks > 5
        assert mention_clusterings(sharded, small_corpus.names) == reference


class TestShardReporting:
    def test_report_carries_shard_counters(self, small_corpus):
        sharded = ShardedIUAD(IUADConfig(max_shard_size=300)).fit(small_corpus)
        report = sharded.report_
        assert report.n_shards == len(report.shard_stats) > 0
        assert report.n_fastpath_vertices > 0
        # Decision pairs of round one equal the per-shard sum.
        assert report.n_candidate_pairs == sum(
            s.n_decision_pairs for s in report.shard_stats
        )
        # Every shard did measurable gamma work and owns vertices.
        for stats in report.shard_stats:
            assert stats.n_vertices > 0
            assert stats.n_candidate_pairs > 0
            assert stats.gamma_seconds >= 0.0
        assert (
            report.gcn_mentions == small_corpus.num_author_paper_pairs
        )

    def test_partition_covers_every_pair_bearing_name_once(
        self, small_corpus
    ):
        scn, _ = IUAD(IUADConfig())._build_scn(small_corpus)
        plan = plan_shards(scn, small_corpus, max_shard_size=300)
        seen: set[str] = set()
        owned: set[int] = set()
        for shard in plan.shards:
            for name in shard.names:
                assert name not in seen, "name owned by two shards"
                seen.add(name)
                # a name's vertices are never split across shards
                assert set(scn.vertices_of_name(name)) <= set(shard.owned_vids)
            assert owned.isdisjoint(shard.owned_vids)
            owned.update(shard.owned_vids)
        pair_bearing = {
            name
            for name in scn.names
            if len(scn.vertices_of_name(name)) > 1
        }
        assert seen == pair_bearing
        # fast path is exactly the complement of the owned vertices
        assert owned.isdisjoint(plan.fastpath_vids)
        assert owned | set(plan.fastpath_vids) == {v.vid for v in scn}


class TestPipelineAccounting:
    """Per-stage accounting invariants of the overlapped executor.

    The report's phase walls, worker-summed task seconds and overlap
    counters must be internally consistent with the pipeline wall-clock —
    no double-counted time, no time lost to an untimed lazy stage.
    """

    @pytest.fixture(scope="class")
    def serial_report(self, small_corpus):
        return (
            ShardedIUAD(IUADConfig(n_workers=0, max_shard_size=300))
            .fit(small_corpus)
            .report_
        )

    @pytest.fixture(scope="class")
    def pool_report(self, small_corpus):
        return (
            ShardedIUAD(IUADConfig(n_workers=2, max_shard_size=300))
            .fit(small_corpus)
            .report_
        )

    def test_serial_stages_partition_the_pipeline(self, serial_report):
        # Serial execution has no overlap by construction: the four
        # stage walls tile the pipeline span.  This is exactly the
        # invariant lazy generators used to break — split scoring that
        # executes inside the EM stage's timer shifts wall-clock between
        # stages and the sum stops matching.
        r = serial_report
        walls = (
            r.gamma_wall_seconds
            + r.split_wall_seconds
            + r.em_seconds
            + r.decide_wall_seconds
        )
        assert r.overlap_seconds == 0.0
        assert r.overlap_gamma_chunks == 0
        assert abs(r.pipeline_seconds - walls) <= 0.05 + 0.1 * r.pipeline_seconds

    def test_serial_stage_timers_bound_their_task_sums(self, serial_report):
        # Each stage's wall is measured *around* its eagerly-executed
        # tasks, so it can only exceed the worker-summed task seconds.
        r = serial_report
        assert r.gamma_wall_seconds >= r.gamma_task_seconds > 0.0
        assert r.split_wall_seconds >= r.split_task_seconds
        assert r.decide_wall_seconds >= r.decide_task_seconds > 0.0

    def test_task_seconds_match_shard_attribution(self, serial_report):
        # The per-shard γ/decide attribution is a *redistribution* of the
        # worker-summed totals, never an inflation or a loss.
        r = serial_report
        assert sum(
            s.gamma_seconds for s in r.shard_stats
        ) == pytest.approx(r.gamma_task_seconds, abs=1e-6)
        assert sum(
            s.decide_seconds for s in r.shard_stats
        ) == pytest.approx(r.decide_task_seconds, abs=1e-6)

    def test_serial_runs_ship_no_ipc(self, serial_report):
        assert serial_report.ipc_task_bytes == 0
        assert serial_report.shm_bytes == 0
        assert serial_report.n_gamma_chunks > 0

    def test_pool_walls_fit_inside_the_pipeline(self, pool_report):
        # Every phase wall is a sub-span of the pipeline span; overlap is
        # by definition the wall-clock saved versus running the three
        # serialisable phases as barriers.
        r = pool_report
        eps = 0.05
        assert 0.0 <= r.gamma_wall_seconds <= r.pipeline_seconds + eps
        assert 0.0 <= r.split_wall_seconds <= r.pipeline_seconds + eps
        assert 0.0 <= r.decide_wall_seconds <= r.pipeline_seconds + eps
        assert r.em_seconds <= r.pipeline_seconds + eps
        assert r.overlap_seconds >= 0.0
        assert r.overlap_seconds == pytest.approx(
            max(
                0.0,
                r.gamma_wall_seconds
                + r.split_wall_seconds
                + r.em_seconds
                + r.decide_wall_seconds
                - r.pipeline_seconds,
            ),
            abs=1e-6,
        )
        assert 0 <= r.overlap_gamma_chunks <= r.n_gamma_chunks

    def test_pool_accounts_every_task_and_transport(self, pool_report):
        r = pool_report
        # Worker-summed compute exists and redistributes exactly.
        assert r.gamma_task_seconds > 0.0
        assert sum(
            s.gamma_seconds for s in r.shard_stats
        ) == pytest.approx(r.gamma_task_seconds, abs=1e-6)
        assert sum(
            s.decide_seconds for s in r.shard_stats
        ) == pytest.approx(r.decide_task_seconds, abs=1e-6)
        # Tasks travelled by pickle (tiny), results by shared memory.
        assert r.ipc_task_bytes > 0
        assert r.shm_bytes > 0
        # Stage 2 wraps the whole pipeline plus stitch/model bookkeeping.
        assert r.stage2_seconds >= r.pipeline_seconds


class TestShardedIncrementalRouting:
    def test_streaming_counts_per_owning_shard(self, small_corpus):
        # add_paper mutates the fitted corpus — work on a copy so the
        # session-scoped fixture stays pristine for other test modules.
        corpus_copy = Corpus(list(small_corpus))
        fitted_names = list(corpus_copy.names)
        sharded = ShardedIUAD(IUADConfig(max_shard_size=300)).fit(corpus_copy)
        stream = IncrementalDisambiguator(sharded)
        assert stream.shard_index is sharded.shard_index_
        known = ambiguous_names(small_corpus)[0]
        next_pid = max(p.pid for p in small_corpus) + 1
        stream.add_paper(
            Paper(next_pid, (known, "Brand New Author"), "new paper", "V", 2021)
        )
        stream.add_paper(
            Paper(
                next_pid + 1,
                ("Totally Unknown A", "Totally Unknown B"),
                "another",
                "V",
                2021,
            )
        )
        report = stream.report
        assert sum(report.per_shard_papers.values()) == report.n_papers == 2
        # the known name routed into its fitted shard...
        owning = sharded.shard_index_.shard_of_name(known)
        assert owning is not None and report.per_shard_papers[owning] >= 1
        # ...and the all-new paper opened a fresh shard id
        fresh = sharded.shard_index_.shard_of_name("Totally Unknown A")
        assert fresh is not None and fresh != owning
        # every fitted corpus name — including singleton and fast-path
        # names — routes to an existing block, never a phantom shard
        # (streamed-in new names legitimately get fresh ids >= n_blocks)
        plan = sharded.plan_
        for name in fitted_names:
            block = sharded.shard_index_.shard_of_name(name)
            assert block is not None and block < plan.n_blocks

    def test_bridging_paper_unions_shards(self):
        index = ShardIndex({"a": 0, "b": 1, "c": 2}, n_shards=3)
        assert index.n_shards == 3
        sid = index.route_paper(["a", "b"])
        assert index.n_bridges == 1
        assert index.shard_of_name("a") == index.shard_of_name("b") == sid
        assert index.shard_of_name("c") != sid
        assert index.n_shards == 2


class TestCombineNetworks:
    def _block(self, name, pid, position=0):
        net = CollaborationNetwork()
        net.add_vertex(name, mentions=((pid, position),), vid=7)
        return net

    def test_remapping_is_dense_and_deterministic(self):
        a = CollaborationNetwork()
        a1 = a.add_vertex("x", mentions=((0, 0),), vid=5)
        a2 = a.add_vertex("y", mentions=((0, 1),), vid=9)
        a.add_edge(a1, a2, {0})
        b = self._block("z", 1)
        combined, mappings = combine_networks([a, b])
        again, mappings2 = combine_networks([a, b])
        assert mappings == mappings2 == [{5: 0, 9: 1}, {7: 2}]
        assert len(combined) == 3
        assert combined.has_edge(0, 1)
        assert combined.mentions_of(0) == {0: 0}
        assert sorted(v.name for v in combined) == sorted(
            v.name for v in again
        )

    def test_double_owned_mention_is_rejected(self):
        a = self._block("x", 3, position=1)
        b = self._block("x", 3, position=1)
        with pytest.raises(ValueError, match="owned by two shards"):
            combine_networks([a, b])

    def test_edge_papers_do_not_leak_into_attribution(self):
        net = CollaborationNetwork()
        u = net.add_vertex("x", mentions=((0, 0),))
        v = net.add_vertex("y", mentions=((1, 0),))
        # edge carries a support paper attributed to neither mention set
        net.add_edge(u, v, {5})
        net.set_papers(u, {0})
        net.set_papers(v, {1})
        combined, (mapping,) = combine_networks([net])
        assert combined.papers_of(mapping[u]) == {0}
        assert combined.papers_of(mapping[v]) == {1}
        assert combined.edge_papers(mapping[u], mapping[v]) == {5}
