"""Tests for the exponential-family mixture, EM, and scoring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import (
    DEFAULT_FAMILIES,
    Exponential,
    Gaussian,
    MatchMixture,
    Multinomial,
    ZeroInflatedExponential,
    decide,
    make_component,
    match_score,
    match_scores,
)


class TestGaussian:
    def test_weighted_mle(self):
        g = Gaussian()
        x = np.array([0.0, 2.0, 4.0])
        w = np.array([1.0, 1.0, 2.0])
        g.fit(x, w)
        assert g.mu == pytest.approx(2.5)
        # weighted variance: (1*6.25 + 1*0.25 + 2*2.25)/4 = 2.75
        assert g.sigma**2 == pytest.approx(2.75)

    def test_sigma_floor(self):
        g = Gaussian()
        g.fit(np.array([1.0, 1.0]), np.ones(2))
        assert g.sigma > 0

    def test_log_pdf_peak_at_mean(self):
        g = Gaussian(mu=1.0, sigma=0.5)
        vals = g.log_pdf(np.array([0.0, 1.0, 2.0]))
        assert vals[1] > vals[0] and vals[1] > vals[2]


class TestExponential:
    def test_mle(self):
        e = Exponential()
        e.fit(np.array([1.0, 3.0]), np.ones(2))
        assert e.rate == pytest.approx(0.5)

    def test_all_zero_capped(self):
        e = Exponential()
        e.fit(np.zeros(5), np.ones(5))
        assert np.isfinite(e.log_pdf(np.array([0.0]))[0])


class TestZeroInflatedExponential:
    def test_zero_mass_estimate(self):
        z = ZeroInflatedExponential()
        x = np.array([0.0, 0.0, 0.0, 1.0, 2.0])
        z.fit(x, np.ones(5))
        assert z.zero_mass == pytest.approx(0.6)
        assert z.rate == pytest.approx(1.0 / 1.5)

    def test_log_pdf_split(self):
        z = ZeroInflatedExponential(zero_mass=0.5, rate=2.0)
        vals = z.log_pdf(np.array([0.0, 1.0]))
        assert vals[0] == pytest.approx(np.log(0.5))
        assert vals[1] == pytest.approx(np.log(0.5) + np.log(2.0) - 2.0)

    def test_weighted_zero_mass(self):
        z = ZeroInflatedExponential()
        x = np.array([0.0, 5.0])
        z.fit(x, np.array([3.0, 1.0]))
        assert z.zero_mass == pytest.approx(0.75)


class TestMultinomial:
    def test_bins_and_fit(self):
        m = Multinomial(n_bins=4, lo=0.0, hi=1.0, smoothing=0.0)
        x = np.array([0.1, 0.1, 0.9])
        m.fit(x, np.ones(3))
        assert m.probs[0] == pytest.approx(2 / 3)
        assert m.probs[3] == pytest.approx(1 / 3)

    def test_clipping(self):
        m = Multinomial(n_bins=4)
        assert m.bin_of(np.array([-5.0]))[0] == 0
        assert m.bin_of(np.array([5.0]))[0] == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            Multinomial(n_bins=1)
        with pytest.raises(ValueError):
            Multinomial(lo=1.0, hi=0.0)


class TestFactory:
    def test_all_families(self):
        for family in ("gaussian", "exponential", "zi_exponential", "multinomial"):
            assert make_component(family) is not None

    def test_unknown_family(self):
        with pytest.raises(ValueError):
            make_component("pareto")


def two_class_data(n_m=80, n_u=420, seed=0):
    rng = np.random.default_rng(seed)
    m = np.column_stack(
        [
            rng.exponential(0.6, n_m),
            rng.exponential(0.9, n_m),
            rng.normal(0.7, 0.15, n_m),
            rng.exponential(0.5, n_m),
            rng.exponential(1.3, n_m),
            rng.exponential(0.8, n_m),
        ]
    )
    u = np.column_stack(
        [
            rng.exponential(0.05, n_u) * rng.integers(0, 2, n_u),
            rng.exponential(0.06, n_u) * rng.integers(0, 2, n_u),
            rng.normal(0.1, 0.2, n_u),
            rng.exponential(0.04, n_u) * rng.integers(0, 2, n_u),
            rng.exponential(0.1, n_u) * rng.integers(0, 2, n_u),
            rng.exponential(0.05, n_u) * rng.integers(0, 2, n_u),
        ]
    )
    X = np.vstack([m, u])
    y = np.array([1] * n_m + [0] * n_u)
    return X, y


class TestMixtureEM:
    def test_monotone_log_likelihood(self):
        X, _ = two_class_data()
        model = MatchMixture()
        report = model.fit(X)
        lls = report.log_likelihoods
        assert all(b >= a - 1e-6 for a, b in zip(lls, lls[1:]))

    def test_recovers_separable_classes(self):
        X, y = two_class_data()
        model = MatchMixture()
        model.fit(X)
        scores = match_scores(model, X)
        pred = scores >= 0
        precision = (pred & (y == 1)).sum() / max(pred.sum(), 1)
        recall = (pred & (y == 1)).sum() / (y == 1).sum()
        assert precision > 0.85 and recall > 0.85

    def test_prior_estimate_close(self):
        X, y = two_class_data(n_m=100, n_u=400)
        model = MatchMixture()
        model.fit(X)
        assert model.prior_match == pytest.approx(0.2, abs=0.08)

    def test_orientation_invariant_to_seed_flip(self):
        """Even with an adversarial warm start, M ends as the
        high-similarity component."""
        X, y = two_class_data()
        model = MatchMixture()
        flipped = np.where(y == 1, 0.05, 0.95)  # wrong-way initialisation
        model.fit(X, initial_responsibilities=flipped)
        scores = match_scores(model, X)
        assert scores[y == 1].mean() > scores[y == 0].mean()

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            MatchMixture().fit(np.zeros((0, 6)))

    def test_wrong_width_rejected(self):
        with pytest.raises(ValueError):
            MatchMixture().fit(np.zeros((5, 3)))

    def test_bad_initial_resp_shape_rejected(self):
        X, _ = two_class_data(n_m=10, n_u=10)
        with pytest.raises(ValueError):
            MatchMixture().fit(X, initial_responsibilities=np.ones(3))

    @given(seed=st.integers(0, 30))
    @settings(max_examples=10, deadline=None)
    def test_responsibilities_are_probabilities(self, seed):
        X, _ = two_class_data(seed=seed)
        model = MatchMixture()
        model.fit(X, max_iterations=10)
        resp = model.responsibilities(X)
        assert np.all(resp >= 0.0) and np.all(resp <= 1.0)


class TestScoring:
    def test_scores_and_decide_consistent(self):
        X, _ = two_class_data()
        model = MatchMixture()
        model.fit(X)
        scores = match_scores(model, X)
        merged = decide(model, X, delta=0.0)
        np.testing.assert_array_equal(merged, scores >= 0.0)

    def test_single_pair_score(self):
        X, _ = two_class_data()
        model = MatchMixture()
        model.fit(X)
        s = match_score(model, X[0])
        assert s == pytest.approx(match_scores(model, X[:1])[0])

    def test_higher_delta_merges_fewer(self):
        X, _ = two_class_data()
        model = MatchMixture()
        model.fit(X)
        assert decide(model, X, 5.0).sum() <= decide(model, X, -5.0).sum()

    def test_default_families_length(self):
        assert len(DEFAULT_FAMILIES) == 6
