#!/usr/bin/env python3
"""Docs checks: intra-repo markdown links, file references + doctests.

Run from anywhere:  python tools/check_docs.py

Three checks, all CI-gating (see the ``docs`` job in
``.github/workflows/ci.yml`` and ``tests/test_docs.py`` which runs the
same code in the tier-1 suite):

1. every relative link target in the repo's markdown files must exist
   (``http(s)://``, ``mailto:`` and pure-anchor links are skipped);
2. every inline-code span that *names a repo file* (``foo/bar.py``,
   ``BENCH_x.json``) must reference a file that actually exists — the
   drift class this catches is docs describing an artifact as tracked
   when nothing produces or commits it (``BENCH_sharding.json`` was
   exactly that before PR 5).  Quick-mode bench records
   (``*.quick.json``) are exempt — they are *documented* as untracked
   local smoke outputs — as are the names in
   :data:`KNOWN_FUTURE_ARTIFACTS`;
3. the doctest examples listed in :data:`DOCTEST_FILES` must pass — most
   importantly the homonym-paper example in ``examples/quickstart.py``.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories never scanned for markdown (VCS, tool caches, and local
#: environments whose vendored READMEs the repo does not own).
SKIP_DIRS = {
    ".git",
    ".claude",
    "__pycache__",
    ".pytest_cache",
    "node_modules",
    ".venv",
    "venv",
    ".tox",
    "build",
    "dist",
}

#: Files whose doctest examples are part of the docs contract.
DOCTEST_FILES = (
    "examples/quickstart.py",
    "src/repro/data/records.py",
)

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no support needed for titles or angle-bracket targets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes (and pseudo-targets) that are not filesystem paths.
_EXTERNAL = re.compile(r"^(https?:|mailto:|#)")

#: Markdown files excluded from the *file-reference* check only: they
#: quote external repositories or driver-owned task text whose code spans
#: are not repo paths.  The link check still scans them.
REFERENCE_SKIP_FILES = {
    "PAPER.md",
    "PAPERS.md",
    "SNIPPETS.md",
    "ISSUE.md",
    "CHANGES.md",
}

#: Inline-code span (single backticks, one line).
_CODE_SPAN = re.compile(r"`([^`\n]+)`")

#: A span that *looks like* a repo file: path-safe characters ending in a
#: suffix this repo uses for real files.  Module dotted paths
#: (``repro.core.iuad``) don't match; bare filenames do and are resolved
#: by basename against the whole tree (``snapshot.py`` may live anywhere).
_FILE_REF = re.compile(
    r"^[A-Za-z0-9_.][A-Za-z0-9_.\-/]*\.(?:py|md|json|ya?ml|toml|cfg|ini|txt)$"
)

#: Quick-mode bench records are documented as machine-local smoke
#: artifacts; whether a given one is committed is each bench's call, so
#: their references are always legal.
_UNTRACKED_OK = re.compile(r"\.quick\.json$")

#: Artifacts the docs may name although no checkout contains them yet.
#: Every entry needs a justification — the whole point of the reference
#: check is that this list stays short and deliberate.
KNOWN_FUTURE_ARTIFACTS = {
    # Written (and committed) only by full-mode benchmark runs on >=4-core
    # machines; the README documents it as the upgrade path over the
    # committed BENCH_sharding.quick.json record.
    "BENCH_sharding.json",
}


def iter_markdown_files() -> list[Path]:
    out = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            out.append(path)
    return out


def check_markdown_links() -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors: list[str] = []
    for md in iter_markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO_ROOT)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def iter_repo_files() -> list[Path]:
    out = []
    for path in REPO_ROOT.rglob("*"):
        if path.is_file() and not SKIP_DIRS.intersection(
            p.name for p in path.parents
        ):
            out.append(path)
    return out


def check_file_references() -> list[str]:
    """Return one error per inline-code reference to a nonexistent file.

    Spans containing a ``/`` resolve against the repo root and the
    markdown file's own directory; bare filenames resolve by basename
    anywhere in the tree.  See :data:`KNOWN_FUTURE_ARTIFACTS` and
    ``*.quick.json`` for the two deliberate exemptions.
    """
    basenames = {p.name for p in iter_repo_files()}
    errors: list[str] = []
    for md in iter_markdown_files():
        if md.name in REFERENCE_SKIP_FILES:
            continue
        text = md.read_text(encoding="utf-8")
        for match in _CODE_SPAN.finditer(text):
            target = match.group(1)
            if not _FILE_REF.match(target):
                continue
            if _UNTRACKED_OK.search(target) or target in KNOWN_FUTURE_ARTIFACTS:
                continue
            if "/" in target:
                exists = (REPO_ROOT / target).exists() or (
                    md.parent / target
                ).exists()
            else:
                exists = target in basenames
            if not exists:
                rel = md.relative_to(REPO_ROOT)
                errors.append(
                    f"{rel}: reference to nonexistent repo file -> {target}"
                )
    return errors


def run_doctests() -> list[str]:
    """Return one error string per failing doctest file."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors: list[str] = []
    for rel in DOCTEST_FILES:
        path = REPO_ROOT / rel
        if not path.exists():
            errors.append(f"{rel}: doctest target missing")
            continue
        # testfile in raw-text mode finds every >>> example in the file
        # (module docstrings included) without importing it as __main__.
        results = doctest.testfile(
            str(path), module_relative=False, verbose=False
        )
        if results.failed:
            errors.append(
                f"{rel}: {results.failed} of {results.attempted} "
                "doctest examples failed"
            )
    return errors


def main() -> int:
    errors = check_markdown_links() + check_file_references() + run_doctests()
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if not errors:
        md_count = len(iter_markdown_files())
        print(
            f"check_docs: OK ({md_count} markdown files, "
            f"{len(DOCTEST_FILES)} doctest files)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
