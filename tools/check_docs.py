#!/usr/bin/env python3
"""Docs checks: intra-repo markdown links + doctest examples.

Run from anywhere:  python tools/check_docs.py

Two checks, both CI-gating (see the ``docs`` job in
``.github/workflows/ci.yml`` and ``tests/test_docs.py`` which runs the
same code in the tier-1 suite):

1. every relative link target in the repo's markdown files must exist
   (``http(s)://``, ``mailto:`` and pure-anchor links are skipped);
2. the doctest examples listed in :data:`DOCTEST_FILES` must pass — most
   importantly the homonym-paper example in ``examples/quickstart.py``.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Directories never scanned for markdown (VCS, tool caches, and local
#: environments whose vendored READMEs the repo does not own).
SKIP_DIRS = {
    ".git",
    ".claude",
    "__pycache__",
    ".pytest_cache",
    "node_modules",
    ".venv",
    "venv",
    ".tox",
    "build",
    "dist",
}

#: Files whose doctest examples are part of the docs contract.
DOCTEST_FILES = (
    "examples/quickstart.py",
    "src/repro/data/records.py",
)

#: ``[text](target)`` — good enough for the plain links these docs use
#: (no support needed for titles or angle-bracket targets).
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Schemes (and pseudo-targets) that are not filesystem paths.
_EXTERNAL = re.compile(r"^(https?:|mailto:|#)")


def iter_markdown_files() -> list[Path]:
    out = []
    for path in sorted(REPO_ROOT.rglob("*.md")):
        if not SKIP_DIRS.intersection(p.name for p in path.parents):
            out.append(path)
    return out


def check_markdown_links() -> list[str]:
    """Return one error string per broken intra-repo link."""
    errors: list[str] = []
    for md in iter_markdown_files():
        text = md.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if _EXTERNAL.match(target):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (md.parent / path).resolve()
            if not resolved.exists():
                rel = md.relative_to(REPO_ROOT)
                errors.append(f"{rel}: broken link -> {target}")
    return errors


def run_doctests() -> list[str]:
    """Return one error string per failing doctest file."""
    sys.path.insert(0, str(REPO_ROOT / "src"))
    errors: list[str] = []
    for rel in DOCTEST_FILES:
        path = REPO_ROOT / rel
        if not path.exists():
            errors.append(f"{rel}: doctest target missing")
            continue
        # testfile in raw-text mode finds every >>> example in the file
        # (module docstrings included) without importing it as __main__.
        results = doctest.testfile(
            str(path), module_relative=False, verbose=False
        )
        if results.failed:
            errors.append(
                f"{rel}: {results.failed} of {results.attempted} "
                "doctest examples failed"
            )
    return errors


def main() -> int:
    errors = check_markdown_links() + run_doctests()
    for error in errors:
        print(f"check_docs: {error}", file=sys.stderr)
    if not errors:
        md_count = len(iter_markdown_files())
        print(
            f"check_docs: OK ({md_count} markdown files, "
            f"{len(DOCTEST_FILES)} doctest files)"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
