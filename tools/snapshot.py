#!/usr/bin/env python3
"""Snapshot toolbox: inspect, convert, verify, compact and query snapshots.

Run from the repo root (or anywhere with ``repro`` importable)::

    python tools/snapshot.py --list-backends
    python tools/snapshot.py inspect  fitted.jsonl
    python tools/snapshot.py inspect  fitted.jsonl --json
    python tools/snapshot.py convert  fitted.jsonl fitted.sqlite
    python tools/snapshot.py verify   fitted.sqlite
    python tools/snapshot.py compact  ckpt.jsonl
    python tools/snapshot.py who-is   fitted.sqlite "x y" --pid 3

* ``--list-backends`` — every registered persistence adapter
  (:mod:`repro.io.adapters`), with suffixes and capabilities;
* ``inspect`` — header, counts, stream counters and the delta chain
  (length, base fingerprint, seq range) without fully materialising the
  fitted objects.  ``--json`` emits the validated machine-readable
  header (:func:`repro.io.snapshot_header`) for scripting.  Corrupt or
  non-snapshot files — including a torn delta-chain tail — exit 1 with
  a one-line error, never a traceback;
* ``convert`` — re-write a snapshot through any registered adapter pair
  (the payload is backend-neutral, so conversion is lossless in every
  direction).  A delta-chain log riding next to the source is copied
  alongside: the chain's base fingerprint is computed over the
  *canonical document*, so it survives the adapter change;
* ``verify`` — fully decode base + delta chain and run the structural
  invariant sweep (:func:`repro.io.verify_snapshot`).  A damaged chain
  (truncated tail, checksum failure, seq gap) or any violation exits 1;
* ``compact`` — fold the delta chain into the base and truncate the
  log (:func:`repro.io.compact_chain`).  Crash-safe: the new base lands
  atomically before the log is touched;
* ``who-is`` — query one name's clusters (or one mention's owner with
  ``--pid``) straight from the snapshot file.  ``--no-full-load``
  answers from the stored rows / indexed SQL tables plus the chain
  overlay (:mod:`repro.io.query`) without materialising any fitted
  state — same answers, O(1)-ish on an indexed SQLite snapshot.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.io import (  # noqa: E402 (path setup above)
    Snapshot,
    SnapshotQuery,
    compact_chain,
    delta_log_path,
    list_adapters,
    read_document,
    resolve_adapter,
    snapshot_header,
    verify_snapshot,
    write_document,
)


def list_backends() -> int:
    for name, adapter in list_adapters().items():
        suffixes = ", ".join(adapter.suffixes) or "-"
        capabilities = []
        if type(adapter).open_query is not type(adapter).__mro__[1].open_query:
            capabilities.append("indexed-query")
        if type(adapter).read_meta is not type(adapter).__mro__[1].read_meta:
            capabilities.append("cheap-meta")
        print(
            f"{name:<10} suffixes: {suffixes:<28} "
            f"{' '.join(capabilities) if capabilities else ''}".rstrip()
        )
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    path = Path(args.path)
    # Header validation first: every corruption mode (missing file, bad
    # magic, truncated tables, version drift, torn delta tail) becomes a
    # one-line error and exit code 1 — machine consumers never have to
    # parse tracebacks.
    try:
        header = snapshot_header(path)
    except ValueError as exc:
        print(f"inspect: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(header, indent=2, sort_keys=True))
        return 0
    document = read_document(path)
    sections = document["sections"]
    tables = document["tables"]
    print(
        f"snapshot   {path} ({header['adapter']}, {header['bytes']} bytes)"
    )
    print(f"format     {header['format']} v{header['version']}")
    print(f"kind       {header['kind']}")
    print(f"papers     {len(tables.get('papers', []))}")
    print(
        f"gcn        {len(tables.get('gcn_vertices', []))} vertices / "
        f"{len(tables.get('gcn_edges', []))} edges "
        f"(next_vid {sections['gcn_meta']['next_vid']})"
    )
    if "scn_meta" in sections:
        print(
            f"scn        {len(tables.get('scn_vertices', []))} vertices / "
            f"{len(tables.get('scn_edges', []))} edges"
        )
    model = sections.get("model", {})
    print(
        f"model      prior_match={model.get('prior_match'):.6f} "
        f"families={','.join(model.get('families', []))}"
    )
    rows = tables.get("embedding_rows")
    print(
        "embeddings "
        + (f"{len(rows)} words" if rows else "none (keyword-cosine fallback)")
    )
    if "sharding" in sections:
        sharding = sections["sharding"]
        plan = sharding.get("plan")
        print(
            "sharding   "
            + (f"{len(plan['shards'])} shards, " if plan else "")
            + f"{len(sharding['index']['name_to_shard'])} routed names, "
            f"{sharding['index']['n_bridges']} bridges, "
            f"{len(sharding['cannot_links'])} cannot-links"
        )
    if "stream" in sections:
        stream = sections["stream"]
        print(
            f"stream     {stream['n_papers']} papers / "
            f"{stream['n_mentions']} mentions ingested "
            f"({stream['n_attached']} attached, {stream['n_created']} "
            f"created, {stream['n_duplicates']} duplicates)"
        )
    delta = header.get("delta")
    if delta is not None:
        print(
            f"delta      {delta['chain_length']} records "
            f"({delta['n_papers']} papers, {delta['log_bytes']} bytes, "
            f"seq {delta['base_seq']}..{delta['last_seq']}, "
            f"base {delta['base_fingerprint']})"
        )
    elif header.get("delta_seq"):
        print(f"delta      compacted (seq watermark {header['delta_seq']})")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    src, dst = Path(args.src), Path(args.dst)
    if src.resolve() == dst.resolve():
        print("convert: source and destination are the same file",
              file=sys.stderr)
        return 1
    document = read_document(src)
    write_document(document, dst, args.backend)
    note = ""
    src_log = delta_log_path(src)
    if src_log.exists():
        # The chain stays valid across the conversion: record checksums
        # cover only the record, and the base fingerprint is canonical
        # (adapter-independent).  Copy the log verbatim.
        delta_log_path(dst).write_bytes(src_log.read_bytes())
        note = " (+ delta chain log)"
    print(
        f"convert: {src} ({resolve_adapter(src).name}) -> "
        f"{dst} ({resolve_adapter(dst).name}){note}"
    )
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    try:
        snapshot, info = Snapshot.load_chain(args.path)
    except (ValueError, FileNotFoundError) as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 1
    errors = verify_snapshot(snapshot)
    for error in errors:
        print(f"verify: {error}", file=sys.stderr)
    if errors:
        print(f"verify: FAILED ({len(errors)} violations)", file=sys.stderr)
        return 1
    chain = (
        f", +{info['chain_length']} delta records" if info is not None else ""
    )
    print(
        f"verify: OK — {len(snapshot.corpus)} papers, "
        f"{len(snapshot.gcn)} GCN vertices, "
        f"{snapshot.gcn.n_mentions} mentions, schema v{snapshot.version}"
        f"{chain}"
    )
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    path = Path(args.path)
    if not delta_log_path(path).exists():
        print(f"compact: {path} has no delta chain log", file=sys.stderr)
        return 1
    try:
        _, folded = compact_chain(path)
    except (ValueError, FileNotFoundError) as exc:
        print(f"compact: {exc}", file=sys.stderr)
        return 1
    print(f"compact: folded {folded} delta records into {path}")
    return 0


def cmd_who_is(args: argparse.Namespace) -> int:
    path = Path(args.path)
    try:
        if args.no_full_load:
            with SnapshotQuery(path) as query:
                if args.pid is not None:
                    owner = query.owner_of(args.pid, args.position)
                    hit = (
                        None
                        if owner is None or owner[1] != args.name
                        else {"vid": owner[0], "name": owner[1]}
                    )
                    out = {"owner": hit}
                else:
                    out = {
                        "clusters": {
                            str(vid): [list(m) for m in mentions]
                            for vid, mentions in sorted(
                                query.who_is(args.name).items()
                            )
                        }
                    }
        else:
            from repro.service.view import FittedView

            view = FittedView.from_snapshot(path)
            if args.pid is not None:
                hit = view.who_is(args.name, args.pid, args.position)
                out = {
                    "owner": None
                    if hit is None
                    else {"vid": hit["vid"], "name": hit["name"]}
                }
            else:
                out = {
                    "clusters": {
                        str(vid): [list(m) for m in mentions]
                        for vid, mentions in sorted(
                            view.cluster_of(args.name).items()
                        )
                    }
                }
    except (ValueError, FileNotFoundError) as exc:
        print(f"who-is: {exc}", file=sys.stderr)
        return 1
    out["name"] = args.name
    print(json.dumps(out, indent=2, sort_keys=True))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="snapshot.py", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--list-backends", action="store_true",
        help="list every registered persistence adapter and exit",
    )
    sub = parser.add_subparsers(dest="command")
    adapter_names = tuple(list_adapters())

    p_inspect = sub.add_parser("inspect", help="print header and counts")
    p_inspect.add_argument("path")
    p_inspect.add_argument(
        "--json", action="store_true",
        help="emit the validated machine-readable header as JSON",
    )
    p_inspect.set_defaults(func=cmd_inspect)

    p_convert = sub.add_parser("convert", help="re-write via another adapter")
    p_convert.add_argument("src")
    p_convert.add_argument("dst")
    p_convert.add_argument(
        "--backend", choices=adapter_names, default=None,
        help="force the destination adapter (default: by suffix)",
    )
    p_convert.set_defaults(func=cmd_convert)

    p_verify = sub.add_parser(
        "verify", help="decode base + chain fully, run the invariant sweep"
    )
    p_verify.add_argument("path")
    p_verify.set_defaults(func=cmd_verify)

    p_compact = sub.add_parser(
        "compact", help="fold the delta chain into the base snapshot"
    )
    p_compact.add_argument("path")
    p_compact.set_defaults(func=cmd_compact)

    p_who = sub.add_parser(
        "who-is", help="query a name's clusters straight from the file"
    )
    p_who.add_argument("path")
    p_who.add_argument("name")
    p_who.add_argument(
        "--pid", type=int, default=None,
        help="resolve one mention's owner instead of the whole clustering",
    )
    p_who.add_argument("--position", type=int, default=0)
    p_who.add_argument(
        "--no-full-load", action="store_true",
        help="answer from stored rows / indexed SQL + chain overlay "
        "without materialising fitted state",
    )
    p_who.set_defaults(func=cmd_who_is)

    args = parser.parse_args(argv)
    if args.list_backends:
        return list_backends()
    if args.command is None:
        parser.print_usage(sys.stderr)
        print(
            "snapshot.py: a subcommand (or --list-backends) is required",
            file=sys.stderr,
        )
        return 2
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
